//! CLI subcommand implementations. Each command takes parsed [`Args`]
//! and a writer for its report output, so tests can drive them without
//! spawning processes.

use crate::args::{ArgError, Args};
use pilfill_core::flow::{FlowConfig, FlowContext, FlowOutcome};
use pilfill_core::methods::{DpExact, FillMethod, GreedyFill, IlpOne, IlpTwo, NormalFill};
use pilfill_core::SlackColumnDef;
use pilfill_density::{DensityMap, FixedDissection};
use pilfill_layout::stats::design_stats;
use pilfill_layout::synth::{synthesize, SynthConfig};
use pilfill_layout::{Design, LayerId};
use pilfill_serve::protocol::{design_hash, DesignRef, EditOp, FillParams, Reply, METHOD_NAMES};
use pilfill_serve::{Client, ServeOptions, Server};
use pilfill_stream::write_gds;
use pilfill_viz::{DensityView, LayoutView, Theme};
use std::io::Write;
use std::time::Duration;

/// Any error a command can produce.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing/validation.
    Args(ArgError),
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Unknown enumeration value (method, preset, definition).
    UnknownChoice {
        /// What was being chosen.
        what: &'static str,
        /// The offending value.
        value: String,
        /// Valid choices.
        choices: &'static str,
    },
    /// File I/O.
    Io(std::io::Error),
    /// Anything from the PIL-Fill stack.
    Tool(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command `{c}` (try `pilfill help`)")
            }
            CliError::UnknownChoice {
                what,
                value,
                choices,
            } => write!(f, "unknown {what} `{value}` (choices: {choices})"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Tool(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

fn tool_err(e: impl std::fmt::Display) -> CliError {
    CliError::Tool(e.to_string())
}

/// Dispatches a parsed command. Returns the process exit code.
///
/// # Errors
///
/// Any [`CliError`]; the binary prints it and exits non-zero.
pub fn dispatch(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    match args.command.as_str() {
        "help" => help(out).map_err(Into::into),
        "synth" => synth(args, out),
        "stats" => stats(args, out),
        "density" => density(args, out),
        "fill" => fill(args, out),
        "serve" => serve(args, out),
        "request" => request(args, out),
        "export" => export(args, out),
        "verify" => verify(args, out),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn help(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "pilfill — performance-impact limited area fill synthesis

USAGE: pilfill <command> [args]

COMMANDS:
  synth    --preset t1|t2|small [--seed N] --out design.pfl [--svg layout.svg]
           synthesize a testcase layout and write the text format
  stats    <design.pfl>
           print design statistics
  density  <design.pfl> [--window DBU] [--r N] [--svg heat.svg]
           fixed r-dissection window density analysis
  fill     <design.pfl> [--window DBU] [--r N] [--method normal|greedy|ilp1|ilp2|dp]
           [--def 1|2|3] [--max-density F] [--weighted]
           [--threads N] (0 = auto-detect available parallelism; default)
           [--no-streamed] (disable the fused build+solve pipeline)
           [--gds out.gds] [--svg out.svg] [--csv report.csv]
           run timing-aware fill and report the delay impact
  serve    --listen <host:port|unix:PATH> [--threads N] [--quota N]
           [--max-inflight N] [--cache N] [--design-cache N]
           [--max-conns N]
           run the persistent fill service until a shutdown request
  request  <design.pfl> --connect <host:port|unix:PATH>
           [--window DBU] [--r N] [--method normal|greedy|ilp1|ilp2|dp]
           [--def 1|2|3] [--seed N] [--max-density F] [--weighted] [--lp-budget]
           [--edit dup-sink:NET|widen:NET,SEG,DELTA[+more]] [--by-hash]
           [--repeat K] [--dump blob.bin] [--timeout-ms N] [--shutdown]
           send a fill request to a running service; with --shutdown and
           no design, just stop the service
  export   <design.pfl> --gds out.gds
           export drawn metal to GDSII (without fill)
  verify   <design.pfl> --gds filled.gds
           DRC-check the fill in a GDSII stream against the design rules
  help     show this text"
    )
}

fn load_design(path: &str) -> Result<Design, CliError> {
    let text = std::fs::read_to_string(path)?;
    Design::from_text(&text).map_err(tool_err)
}

fn synth(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let preset = args.require("preset")?;
    let seed = args.get_parsed("seed", 1u64, "an integer seed")?;
    let mut cfg = match preset {
        "t1" => SynthConfig::t1(),
        "t2" => SynthConfig::t2(),
        "small" => SynthConfig::small_test(seed),
        other => {
            return Err(CliError::UnknownChoice {
                what: "preset",
                value: other.to_string(),
                choices: "t1, t2, small",
            })
        }
    };
    if args.get("seed").is_some() {
        cfg.seed = seed;
    }
    let design = synthesize(&cfg);
    let path = args.require("out")?;
    std::fs::write(path, design.to_text())?;
    writeln!(
        out,
        "wrote {path}: {} nets on a {}x{} die",
        design.nets.len(),
        design.die.width(),
        design.die.height()
    )?;
    if let Some(svg_path) = args.get("svg") {
        std::fs::write(svg_path, LayoutView::new(&design).render(&Theme::default()))?;
        writeln!(out, "wrote {svg_path}")?;
    }
    Ok(())
}

fn stats(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let design = load_design(args.positional(0, "design.pfl")?)?;
    let s = design_stats(&design);
    writeln!(out, "design      {}", design.name)?;
    writeln!(
        out,
        "die         {} x {} dbu",
        design.die.width(),
        design.die.height()
    )?;
    writeln!(out, "nets        {}", s.nets)?;
    writeln!(out, "segments    {}", s.segments)?;
    writeln!(
        out,
        "sinks       {} (mean {:.2}/net)",
        s.sinks, s.mean_sinks
    )?;
    writeln!(out, "wirelength  {} dbu", s.wirelength)?;
    for (name, density) in &s.layer_density {
        writeln!(out, "density     {name}: {density:.4}")?;
    }
    Ok(())
}

fn dissection_args(args: &Args) -> Result<(i64, usize), CliError> {
    let window = args.get_parsed("window", 16_000i64, "a window size in dbu")?;
    let r = args.get_parsed("r", 2usize, "a dissection parameter")?;
    Ok((window, r))
}

fn density(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let design = load_design(args.positional(0, "design.pfl")?)?;
    let (window, r) = dissection_args(args)?;
    let dissection = FixedDissection::new(design.die, window, r).map_err(tool_err)?;
    let map = DensityMap::compute(&design, LayerId(0), &dissection);
    let a = map.analyze();
    writeln!(
        out,
        "dissection  window {window} dbu, r = {r}: {} tiles of {} dbu",
        dissection.num_tiles(),
        dissection.tile_size()
    )?;
    writeln!(out, "window density  min {:.4}", a.min_window_density)?;
    writeln!(out, "                max {:.4}", a.max_window_density)?;
    writeln!(out, "                mean {:.4}", a.mean_window_density)?;
    writeln!(out, "                variation {:.4}", a.variation)?;
    if let Some(svg_path) = args.get("svg") {
        std::fs::write(svg_path, DensityView::new(&map).render(640.0))?;
        writeln!(out, "wrote {svg_path}")?;
    }
    Ok(())
}

fn parse_method(name: &str) -> Result<&'static (dyn FillMethod + Sync), CliError> {
    Ok(match name {
        "normal" => &NormalFill,
        "greedy" => &GreedyFill,
        "ilp1" => &IlpOne,
        "ilp2" => &IlpTwo,
        "dp" => &DpExact,
        other => {
            return Err(CliError::UnknownChoice {
                what: "method",
                value: other.to_string(),
                choices: "normal, greedy, ilp1, ilp2, dp",
            })
        }
    })
}

fn parse_def(v: &str) -> Result<SlackColumnDef, CliError> {
    Ok(match v {
        "1" => SlackColumnDef::One,
        "2" => SlackColumnDef::Two,
        "3" => SlackColumnDef::Three,
        other => {
            return Err(CliError::UnknownChoice {
                what: "slack-column definition",
                value: other.to_string(),
                choices: "1, 2, 3",
            })
        }
    })
}

/// Builds the [`FlowConfig`] described by the shared fill-flow options
/// (`--window`, `--r`, `--def`, `--seed`, `--max-density`, `--weighted`,
/// `--lp-budget`, `--layer`) — the same vocabulary for `fill` and
/// `request`, so a served request is specified exactly like a one-shot
/// run.
fn flow_config(args: &Args, design: &Design) -> Result<FlowConfig, CliError> {
    let (window, r) = dissection_args(args)?;
    let mut config = FlowConfig::new(window, r).map_err(tool_err)?;
    config.weighted = args.flag("weighted");
    config.lp_budget = args.flag("lp-budget");
    config.max_density =
        args.get_parsed("max-density", config.max_density, "a density in [0,1]")?;
    config.seed = args.get_parsed("seed", config.seed, "an integer seed")?;
    if let Some(def) = args.get("def") {
        config.def = parse_def(def)?;
    }
    if let Some(layer) = args.get("layer") {
        config.layer = design
            .layer_by_name(layer)
            .ok_or_else(|| CliError::Tool(format!("no layer named `{layer}`")))?;
    }
    Ok(config)
}

fn fill(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let design = load_design(args.positional(0, "design.pfl")?)?;
    let method = parse_method(args.get("method").unwrap_or("ilp2"))?;
    // `--threads 0` (the default) auto-detects the available parallelism;
    // `--threads 1` forces the sequential path.
    let threads = match args.get_parsed("threads", 0usize, "a thread count")? {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    };
    let config = flow_config(args, &design)?;

    // The fused build+solve pipeline is the default; `--no-streamed`
    // restores the two-phase build-then-run flow (`--streamed` is accepted
    // as an explicit no-op). Both produce bit-identical results.
    let outcome = if args.flag("no-streamed") {
        let ctx = FlowContext::build_parallel(&design, &config, threads).map_err(tool_err)?;
        if threads > 1 {
            ctx.run_parallel(&config, method, threads)
                .map_err(tool_err)?
        } else {
            ctx.run(&config, method).map_err(tool_err)?
        }
    } else {
        let pool = pilfill_core::WorkerPool::new(threads);
        pilfill_core::run_flow_streamed(&design, &config, method, &pool)
            .map_err(tool_err)?
            .1
    };
    report_fill(&outcome, out)?;

    if let Some(path) = args.get("gds") {
        std::fs::write(path, write_gds(&design, &outcome.features))?;
        writeln!(out, "wrote {path}")?;
    }
    if let Some(path) = args.get("svg") {
        let svg = LayoutView::new(&design)
            .with_fill(&outcome.features)
            .render(&Theme::default());
        std::fs::write(path, svg)?;
        writeln!(out, "wrote {path}")?;
    }
    if let Some(path) = args.get("csv") {
        let mut csv = String::from("net,delay_s,cap_f\n");
        for (i, (d, c)) in outcome
            .impact
            .per_net_delay
            .iter()
            .zip(&outcome.impact.per_net_cap)
            .enumerate()
        {
            csv.push_str(&format!("{},{:.6e},{:.6e}\n", design.nets[i].name, d, c));
        }
        std::fs::write(path, csv)?;
        writeln!(out, "wrote {path}")?;
    }
    Ok(())
}

fn report_fill(outcome: &FlowOutcome, out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(out, "method           {}", outcome.method)?;
    writeln!(
        out,
        "fill             {} of {} budgeted features placed ({} shortfall)",
        outcome.placed_features, outcome.budget_total, outcome.shortfall
    )?;
    writeln!(
        out,
        "density          min window {:.4} -> {:.4}",
        outcome.density_before.min_window_density, outcome.density_after.min_window_density
    )?;
    writeln!(
        out,
        "delay impact     {:.4} fs total, {:.4} fs weighted",
        outcome.impact.total_delay * 1e15,
        outcome.impact.weighted_delay * 1e15
    )?;
    writeln!(
        out,
        "added coupling   {:.4} aF over {} features ({} in free space)",
        outcome.impact.total_cap * 1e18,
        outcome.placed_features,
        outcome.impact.free_features
    )?;
    writeln!(out, "solve time       {:.2?}", outcome.solve_time)?;
    Ok(())
}

fn serve(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let listen = args.require("listen")?;
    let defaults = ServeOptions::default();
    let opts = ServeOptions {
        lanes: args.get_parsed("threads", defaults.lanes, "a thread count")?,
        quota: args.get_parsed("quota", defaults.quota, "a batch quota")?,
        max_inflight: args.get_parsed(
            "max-inflight",
            defaults.max_inflight,
            "an in-flight request cap",
        )?,
        ctx_cache_cap: args.get_parsed("cache", defaults.ctx_cache_cap, "a context cache size")?,
        design_cache_cap: args.get_parsed(
            "design-cache",
            defaults.design_cache_cap,
            "a design store size",
        )?,
        max_conns: args.get_parsed("max-conns", defaults.max_conns, "a connection cap")?,
    };
    let server = Server::bind(listen, &opts)?;
    writeln!(out, "listening on {}", server.addr())?;
    out.flush()?;
    server.run()?;
    writeln!(out, "shut down")?;
    Ok(())
}

/// Parses an `--edit` spec: ops joined by `+`, each `dup-sink:NET` or
/// `widen:NET,SEG,DELTA`.
fn parse_edits(spec: &str) -> Result<Vec<EditOp>, CliError> {
    let bad = |op: &str| CliError::UnknownChoice {
        what: "edit op",
        value: op.to_string(),
        choices: "dup-sink:NET, widen:NET,SEG,DELTA (joined with +)",
    };
    spec.split('+')
        .map(|op| {
            if let Some(net) = op.strip_prefix("dup-sink:") {
                let net = net.parse().map_err(|_| bad(op))?;
                Ok(EditOp::DupSink { net })
            } else if let Some(rest) = op.strip_prefix("widen:") {
                let mut fields = rest.splitn(3, ',');
                let mut next = || fields.next().ok_or_else(|| bad(op));
                let net = next()?.parse().map_err(|_| bad(op))?;
                let seg = next()?.parse().map_err(|_| bad(op))?;
                let delta = next()?.parse().map_err(|_| bad(op))?;
                Ok(EditOp::WidenSegment { net, seg, delta })
            } else {
                Err(bad(op))
            }
        })
        .collect()
}

/// Human-readable name of a reply's cache temperature.
fn status_name(status: pilfill_serve::protocol::FillStatus) -> &'static str {
    use pilfill_serve::protocol::FillStatus;
    match status {
        FillStatus::Cold => "cold",
        FillStatus::Warm => "warm",
        FillStatus::RebuildIncr => "rebuild-incr",
        FillStatus::RebuildFull => "rebuild-full",
    }
}

fn request(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let spec = args.require("connect")?;
    let timeout = Duration::from_millis(args.get_parsed(
        "timeout-ms",
        30_000u64,
        "a timeout in milliseconds",
    )?);
    // `request --connect SPEC --shutdown` with no design just stops the
    // service.
    if args.positional.is_empty() && args.flag("shutdown") {
        let mut client = Client::connect_retry(spec, timeout)?;
        return finish_shutdown(&mut client, out);
    }

    let design = load_design(args.positional(0, "design.pfl")?)?;
    let config = flow_config(args, &design)?;
    let method_name = args.get("method").unwrap_or("ilp2");
    let method = METHOD_NAMES
        .iter()
        .position(|m| *m == method_name)
        .ok_or_else(|| CliError::UnknownChoice {
            what: "method",
            value: method_name.to_string(),
            choices: "normal, greedy, ilp1, ilp2, dp",
        })?;
    let params = FillParams::from_config(&config, u8::try_from(method).unwrap_or(u8::MAX));

    let base_hash = design_hash(&design);
    let design_ref = if let Some(edit_spec) = args.get("edit") {
        DesignRef::Edit {
            base: base_hash,
            ops: parse_edits(edit_spec)?,
        }
    } else if args.flag("by-hash") {
        DesignRef::Hash(base_hash)
    } else {
        DesignRef::Inline(design.to_text())
    };

    let repeat = args.get_parsed("repeat", 1usize, "a repeat count")?.max(1);
    let mut client = Client::connect_retry(spec, timeout)?;
    for _ in 0..repeat {
        match client.fill_retry(&design_ref, &params, timeout)? {
            Reply::FillOk {
                status,
                server_ns,
                design_hash,
                blob,
            } => {
                writeln!(
                    out,
                    "fill ok  status {}  design {design_hash}  server {server_ns} ns  blob {} bytes",
                    status_name(status),
                    blob.len()
                )?;
                if let Some(path) = args.get("dump") {
                    std::fs::write(path, &blob)?;
                }
            }
            Reply::Busy { inflight } => {
                return Err(CliError::Tool(format!(
                    "server busy ({inflight} requests in flight); raise --timeout-ms or retry"
                )))
            }
            Reply::Err { code, message } => {
                return Err(CliError::Tool(format!("server error {code}: {message}")))
            }
            other => {
                return Err(CliError::Tool(format!(
                    "unexpected reply to a fill request: {other:?}"
                )))
            }
        }
    }

    if args.flag("shutdown") {
        return finish_shutdown(&mut client, out);
    }
    Ok(())
}

fn finish_shutdown(client: &mut Client, out: &mut dyn Write) -> Result<(), CliError> {
    if client.shutdown()? {
        writeln!(out, "shutdown acknowledged")?;
        Ok(())
    } else {
        Err(CliError::Tool("server refused to shut down".into()))
    }
}

/// Stable kebab-case rule identifier for a DRC violation class, matching
/// the `error[rule]` tags the repo linter uses.
fn drc_rule(v: &pilfill_core::DrcViolation) -> &'static str {
    use pilfill_core::DrcViolation;
    match v {
        DrcViolation::OffDie { .. } => "drc-off-die",
        DrcViolation::BufferToWire { .. } => "drc-buffer-wire",
        DrcViolation::BufferToObstruction { .. } => "drc-buffer-obstruction",
        DrcViolation::FillSpacing { .. } => "drc-fill-spacing",
    }
}

fn verify(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use pilfill_core::check_fill;
    use pilfill_diag::{Diagnostic, RuleCounts, Severity};
    let design = load_design(args.positional(0, "design.pfl")?)?;
    let gds_path = args.require("gds")?;
    let bytes = std::fs::read(gds_path)?;
    let lib = pilfill_stream::read_gds(&bytes).map_err(tool_err)?;
    let features = lib.fill_features();
    let report = check_fill(&design, LayerId(0), &features);
    writeln!(out, "checked {} fill features", report.checked)?;
    if report.is_clean() {
        writeln!(out, "DRC clean")?;
        return Ok(());
    }
    // GDS streams have no line numbers: every diagnostic is file-scope
    // (line 0), anchored to the stream path, tagged with its DRC rule.
    let diagnostics: Vec<Diagnostic> = report
        .violations
        .iter()
        .map(|v| Diagnostic::new(Severity::Error, drc_rule(v), gds_path, 0, v.to_string()))
        .collect();
    const MAX_SHOWN: usize = 20;
    for d in diagnostics.iter().take(MAX_SHOWN) {
        writeln!(out, "{}", d.render_text())?;
    }
    if diagnostics.len() > MAX_SHOWN {
        writeln!(out, "... and {} more", diagnostics.len() - MAX_SHOWN)?;
    }
    let counts = RuleCounts::tally(&diagnostics);
    writeln!(out, "\nviolations by rule:")?;
    write!(out, "{}", counts.render_text())?;
    Err(CliError::Tool(format!(
        "{} DRC violation(s)",
        counts.total()
    )))
}

fn export(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let design = load_design(args.positional(0, "design.pfl")?)?;
    let path = args.require("gds")?;
    std::fs::write(path, write_gds(&design, &[]))?;
    writeln!(out, "wrote {path}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(tokens: &[&str]) -> Result<String, CliError> {
        let args = Args::parse(tokens.iter().copied()).map_err(CliError::Args)?;
        let mut buf = Vec::new();
        dispatch(&args, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("pilfill-cli-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_lists_commands() {
        let text = run(&["help"]).expect("help");
        for cmd in ["synth", "stats", "density", "fill", "export"] {
            assert!(text.contains(cmd), "help must mention {cmd}");
        }
    }

    #[test]
    fn unknown_command_fails() {
        assert!(matches!(
            run(&["frobnicate"]),
            Err(CliError::UnknownCommand(_))
        ));
    }

    #[test]
    fn synth_stats_density_fill_export_pipeline() {
        let design_path = tmp("pipe.pfl");
        let out = run(&[
            "synth",
            "--preset",
            "small",
            "--seed",
            "5",
            "--out",
            &design_path,
        ])
        .expect("synth");
        assert!(out.contains("wrote"));

        let out = run(&["stats", &design_path]).expect("stats");
        assert!(out.contains("nets"));
        assert!(out.contains("wirelength"));

        let out = run(&["density", &design_path, "--window", "8000", "--r", "2"]).expect("density");
        assert!(out.contains("variation"));

        let gds_path = tmp("pipe.gds");
        let svg_path = tmp("pipe.svg");
        let csv_path = tmp("pipe.csv");
        let out = run(&[
            "fill",
            &design_path,
            "--window",
            "8000",
            "--r",
            "2",
            "--method",
            "greedy",
            "--gds",
            &gds_path,
            "--svg",
            &svg_path,
            "--csv",
            &csv_path,
        ])
        .expect("fill");
        assert!(out.contains("delay impact"));
        let gds = std::fs::read(&gds_path).expect("gds written");
        assert!(pilfill_stream::read_gds(&gds).is_ok());
        assert!(std::fs::read_to_string(&svg_path)
            .expect("svg written")
            .starts_with("<svg"));
        assert!(std::fs::read_to_string(&csv_path)
            .expect("csv written")
            .starts_with("net,"));

        let export_path = tmp("pipe-export.gds");
        let out = run(&["export", &design_path, "--gds", &export_path]).expect("export");
        assert!(out.contains("wrote"));
    }

    #[test]
    fn verify_passes_on_flow_output_and_fails_on_corrupt_fill() {
        let design_path = tmp("verify.pfl");
        run(&[
            "synth",
            "--preset",
            "small",
            "--seed",
            "8",
            "--out",
            &design_path,
        ])
        .expect("synth");
        let gds_path = tmp("verify.gds");
        run(&[
            "fill",
            &design_path,
            "--window",
            "8000",
            "--r",
            "2",
            "--method",
            "greedy",
            "--gds",
            &gds_path,
        ])
        .expect("fill");
        let out = run(&["verify", &design_path, "--gds", &gds_path]).expect("verify");
        assert!(out.contains("DRC clean"));

        // Corrupt: re-export with a feature on top of a wire.
        let design = load_design(&design_path).expect("load");
        let wire = design.nets[0].segments[0].rect();
        let bad = vec![pilfill_core::FillFeature {
            x: wire.left,
            y: wire.bottom,
        }];
        std::fs::write(tmp("bad.gds"), pilfill_stream::write_gds(&design, &bad))
            .expect("write bad gds");
        let args = Args::parse(
            ["verify", &design_path, "--gds", &tmp("bad.gds")]
                .iter()
                .copied(),
        )
        .expect("parse");
        let mut buf = Vec::new();
        let err = dispatch(&args, &mut buf);
        assert!(matches!(err, Err(CliError::Tool(_))));
        // Violations render through the shared diagnostic formatter.
        let text = String::from_utf8(buf).expect("utf8 output");
        assert!(text.contains("error[drc-"), "diag format missing: {text}");
        assert!(
            text.contains("violations by rule:"),
            "summary missing: {text}"
        );
    }

    #[test]
    fn streamed_and_two_phase_fill_reports_match() {
        let design_path = tmp("streamed.pfl");
        run(&[
            "synth",
            "--preset",
            "small",
            "--seed",
            "11",
            "--out",
            &design_path,
        ])
        .expect("synth");
        let base = &["fill", &design_path, "--window", "8000", "--r", "2"];
        // Reports are identical except for the wall-clock solve-time line.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("solve time"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let streamed = strip(&run(base).expect("streamed fill"));
        let explicit: Vec<&str> = base.iter().copied().chain(["--streamed"]).collect();
        assert_eq!(strip(&run(&explicit).expect("explicit flag")), streamed);
        let two_phase: Vec<&str> = base.iter().copied().chain(["--no-streamed"]).collect();
        assert_eq!(strip(&run(&two_phase).expect("two-phase fill")), streamed);
    }

    #[test]
    fn fill_rejects_unknown_method() {
        let design_path = tmp("method.pfl");
        run(&["synth", "--preset", "small", "--out", &design_path]).expect("synth");
        assert!(matches!(
            run(&["fill", &design_path, "--method", "magic"]),
            Err(CliError::UnknownChoice { .. })
        ));
    }

    #[test]
    fn synth_rejects_unknown_preset() {
        assert!(matches!(
            run(&["synth", "--preset", "t9", "--out", "/dev/null"]),
            Err(CliError::UnknownChoice { .. })
        ));
    }

    #[test]
    fn stats_missing_file_is_io_error() {
        assert!(matches!(
            run(&["stats", "/nonexistent/file.pfl"]),
            Err(CliError::Io(_))
        ));
    }

    #[test]
    fn serve_and_request_round_trip_over_unix_socket() {
        let design_path = tmp("serve-rt.pfl");
        run(&[
            "synth",
            "--preset",
            "small",
            "--seed",
            "21",
            "--out",
            &design_path,
        ])
        .expect("synth");
        let sock = tmp(&format!("serve-rt-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&sock);
        let listen = format!("unix:{sock}");

        let server = std::thread::spawn({
            let listen = listen.clone();
            move || run(&["serve", "--listen", &listen, "--threads", "2"])
        });

        let base: &[&str] = &[
            "request",
            &design_path,
            "--connect",
            &listen,
            "--window",
            "8000",
            "--r",
            "2",
            "--method",
            "greedy",
        ];
        fn with<'a>(base: &[&'a str], extra: &[&'a str]) -> Vec<&'a str> {
            base.iter().chain(extra.iter()).copied().collect()
        }

        // Cold inline upload, then a warm by-hash repeat: byte-identical
        // outcome blobs.
        let cold_blob = tmp("serve-rt-cold.blob");
        let text = run(&with(base, &["--dump", &cold_blob])).expect("cold request");
        assert!(text.contains("status cold"), "not cold: {text}");
        let warm_blob = tmp("serve-rt-warm.blob");
        let text = run(&with(base, &["--by-hash", "--dump", &warm_blob])).expect("warm request");
        assert!(text.contains("status warm"), "not warm: {text}");
        assert_eq!(
            std::fs::read(&cold_blob).expect("cold blob"),
            std::fs::read(&warm_blob).expect("warm blob"),
            "warm replay must match the cold run byte-for-byte"
        );

        // Repeats reuse one connection and stay warm.
        let text = run(&with(base, &["--by-hash", "--repeat", "2"])).expect("repeat");
        assert_eq!(text.matches("status warm").count(), 2, "repeats: {text}");

        // An edit of the cached base goes through rebuild, not cold build.
        let text = run(&with(base, &["--edit", "dup-sink:0"])).expect("edit request");
        assert!(text.contains("status rebuild-"), "not a rebuild: {text}");

        // A design-less `request --shutdown` stops the service cleanly.
        let text = run(&["request", "--connect", &listen, "--shutdown"]).expect("shutdown");
        assert!(text.contains("shutdown acknowledged"));
        let text = server.join().expect("server thread").expect("serve ok");
        assert!(text.contains("listening on unix:"), "serve output: {text}");
        assert!(text.contains("shut down"), "serve output: {text}");
        assert!(
            std::fs::metadata(&sock).is_err(),
            "socket file must be unlinked on shutdown"
        );
    }

    #[test]
    fn request_rejects_bad_edit_specs_and_methods() {
        let design_path = tmp("serve-bad.pfl");
        run(&["synth", "--preset", "small", "--out", &design_path]).expect("synth");
        let sock = tmp(&format!("serve-bad-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&sock);
        let listen = format!("unix:{sock}");
        let server = std::thread::spawn({
            let listen = listen.clone();
            move || run(&["serve", "--listen", &listen, "--threads", "1"])
        });
        // Argument validation happens before anything hits the wire.
        assert!(matches!(
            run(&[
                "request",
                &design_path,
                "--connect",
                &listen,
                "--edit",
                "explode:3"
            ]),
            Err(CliError::UnknownChoice { .. })
        ));
        assert!(matches!(
            run(&[
                "request",
                &design_path,
                "--connect",
                &listen,
                "--method",
                "magic"
            ]),
            Err(CliError::UnknownChoice { .. })
        ));
        run(&["request", "--connect", &listen, "--shutdown"]).expect("shutdown");
        server.join().expect("server thread").expect("serve ok");
    }
}
