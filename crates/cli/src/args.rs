//! A small hand-rolled argument parser: subcommand, positionals,
//! `--key value` options and `--flag` booleans. No external dependencies.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options.
    options: HashMap<String, String>,
    /// Bare `--flag`s.
    flags: Vec<String>,
}

/// Error from argument parsing or validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// An option was given without a value.
    MissingValue(String),
    /// An option value failed to parse.
    BadValue {
        /// Option name.
        option: String,
        /// Offending text.
        value: String,
        /// Expected type/shape.
        expected: &'static str,
    },
    /// A required option is absent.
    Required(&'static str),
    /// A required positional argument is absent.
    MissingPositional(&'static str),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => f.write_str("no command given (try `pilfill help`)"),
            ArgError::MissingValue(o) => write!(f, "option --{o} needs a value"),
            ArgError::BadValue {
                option,
                value,
                expected,
            } => write!(f, "--{option} expects {expected}, got `{value}`"),
            ArgError::Required(o) => write!(f, "missing required option --{o}"),
            ArgError::MissingPositional(name) => {
                write!(f, "missing required argument <{name}>")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Flags that never take a value (everything else consumes the next
/// token as its value).
const BOOLEAN_FLAGS: &[&str] = &[
    "weighted",
    "help",
    "quiet",
    "lp-budget",
    "streamed",
    "no-streamed",
    "by-hash",
    "shutdown",
];

impl Args {
    /// Parses raw arguments (excluding the program name).
    ///
    /// # Errors
    ///
    /// [`ArgError::MissingCommand`] on empty input;
    /// [`ArgError::MissingValue`] when a non-boolean `--option` ends the
    /// input.
    pub fn parse<I, S>(raw: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&name) {
                    out.flags.push(name.to_string());
                } else {
                    match iter.next() {
                        Some(v) => {
                            out.options.insert(name.to_string(), v);
                        }
                        None => return Err(ArgError::MissingValue(name.to_string())),
                    }
                }
            } else if out.command.is_empty() {
                out.command = tok;
            } else {
                out.positional.push(tok);
            }
        }
        if out.command.is_empty() {
            if out.flags.iter().any(|f| f == "help") {
                out.command = "help".into();
                return Ok(out);
            }
            return Err(ArgError::MissingCommand);
        }
        Ok(out)
    }

    /// `true` if `--flag` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The raw value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// [`ArgError::Required`] when absent.
    pub fn require(&self, name: &'static str) -> Result<&str, ArgError> {
        self.get(name).ok_or(ArgError::Required(name))
    }

    /// A parsed option with a default.
    ///
    /// # Errors
    ///
    /// [`ArgError::BadValue`] when present but unparsable.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                option: name.to_string(),
                value: v.to_string(),
                expected,
            }),
        }
    }

    /// The `i`-th positional argument.
    ///
    /// # Errors
    ///
    /// [`ArgError::MissingPositional`] when absent.
    pub fn positional(&self, i: usize, name: &'static str) -> Result<&str, ArgError> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or(ArgError::MissingPositional(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_options_flags_positionals() {
        let a = Args::parse([
            "fill",
            "design.pfl",
            "--window",
            "32000",
            "--weighted",
            "--method",
            "ilp2",
        ])
        .expect("parse");
        assert_eq!(a.command, "fill");
        assert_eq!(a.positional, vec!["design.pfl"]);
        assert_eq!(a.get("window"), Some("32000"));
        assert_eq!(a.get("method"), Some("ilp2"));
        assert!(a.flag("weighted"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn missing_command_rejected() {
        assert_eq!(
            Args::parse(Vec::<String>::new()),
            Err(ArgError::MissingCommand)
        );
    }

    #[test]
    fn bare_help_flag_becomes_help_command() {
        let a = Args::parse(["--help"]).expect("parse");
        assert_eq!(a.command, "help");
    }

    #[test]
    fn option_without_value_rejected() {
        assert_eq!(
            Args::parse(["synth", "--seed"]),
            Err(ArgError::MissingValue("seed".into()))
        );
    }

    #[test]
    fn get_parsed_defaults_and_errors() {
        let a = Args::parse(["x", "--r", "four"]).expect("parse");
        assert_eq!(
            a.get_parsed("window", 9i64, "an integer").expect("default"),
            9
        );
        assert!(matches!(
            a.get_parsed("r", 2usize, "an integer"),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn require_and_positional_errors() {
        let a = Args::parse(["stats"]).expect("parse");
        assert_eq!(a.require("out"), Err(ArgError::Required("out")));
        assert_eq!(
            a.positional(0, "design"),
            Err(ArgError::MissingPositional("design"))
        );
    }
}
