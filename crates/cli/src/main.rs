//! `pilfill` — the PIL-Fill command-line tool.
//!
//! ```sh
//! pilfill synth --preset t2 --out t2.pfl --svg t2.svg
//! pilfill fill t2.pfl --window 32000 --r 2 --method ilp2 --gds t2_filled.gds
//! ```

mod args;
mod commands;

use args::Args;
use commands::{dispatch, CliError};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let code = match Args::parse(raw) {
        Ok(parsed) => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            match dispatch(&parsed, &mut lock) {
                Ok(()) => 0,
                Err(e) => {
                    eprintln!("pilfill: {e}");
                    exit_code(&e)
                }
            }
        }
        Err(e) => {
            eprintln!("pilfill: {e}");
            2
        }
    };
    std::process::exit(code);
}

fn exit_code(e: &CliError) -> i32 {
    match e {
        CliError::Args(_) | CliError::UnknownCommand(_) | CliError::UnknownChoice { .. } => 2,
        CliError::Io(_) => 3,
        CliError::Tool(_) => 1,
    }
}
