//! GDSII 8-byte excess-64 floating point ("real8") conversion.
//!
//! Layout: sign bit, 7-bit exponent biased by 64 (power of 16), 56-bit
//! mantissa interpreted as a fraction in `[1/16, 1)` for normalized
//! values. Zero is all-zero bytes.

/// Encodes an `f64` into the GDSII real8 format.
///
/// Values too large for the format saturate to the largest representable
/// magnitude; subnormal underflow encodes as zero.
pub fn encode_real8(value: f64) -> [u8; 8] {
    // Exact zero test: zero has a dedicated all-zero encoding; every other
    // value (however small) goes through the normal path. pilfill: allow(float-eq)
    if value == 0.0 || !value.is_finite() {
        return [0; 8];
    }
    let sign = if value < 0.0 { 0x80u8 } else { 0 };
    let mut mag = value.abs();
    // Find exponent e such that mag / 16^(e-64) is in [1/16, 1).
    let mut exp: i32 = 64;
    while mag >= 1.0 {
        mag /= 16.0;
        exp += 1;
    }
    while mag < 1.0 / 16.0 {
        mag *= 16.0;
        exp -= 1;
    }
    if exp > 127 {
        // Saturate.
        exp = 127;
        mag = 1.0 - f64::EPSILON;
    }
    if exp < 0 {
        return [0; 8];
    }
    let mantissa = (mag * (1u64 << 56) as f64) as u64;
    let mut out = [0u8; 8];
    out[0] = sign | (u8::try_from(exp).unwrap_or(0) & 0x7F);
    for (i, byte) in out.iter_mut().skip(1).enumerate() {
        *byte = u8::try_from((mantissa >> (8 * (6 - i))) & 0xFF).unwrap_or(0);
    }
    out
}

/// Decodes a GDSII real8 into an `f64`.
pub fn decode_real8(bytes: [u8; 8]) -> f64 {
    let sign = if bytes[0] & 0x80 != 0 { -1.0 } else { 1.0 };
    let exp = i32::from(bytes[0] & 0x7F) - 64;
    let mut mantissa: u64 = 0;
    for &b in &bytes[1..] {
        mantissa = (mantissa << 8) | b as u64;
    }
    if mantissa == 0 {
        return 0.0;
    }
    sign * (mantissa as f64 / (1u64 << 56) as f64) * 16f64.powi(exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_round_trips() {
        assert_eq!(encode_real8(0.0), [0; 8]);
        assert_eq!(decode_real8([0; 8]), 0.0);
    }

    #[test]
    fn known_value_one() {
        // 1.0 = 0x4110000000000000 in GDSII real8.
        let enc = encode_real8(1.0);
        assert_eq!(enc[0], 0x41);
        assert_eq!(enc[1], 0x10);
        assert!((decode_real8(enc) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn typical_units_round_trip() {
        // The canonical UNITS values: 1e-3 user units, 1e-9 meters.
        for v in [1e-3, 1e-9, 0.001, 2.5e-7] {
            let dec = decode_real8(encode_real8(v));
            assert!(((dec - v) / v).abs() < 1e-12, "{v} -> {dec}");
        }
    }

    #[test]
    fn negative_values() {
        let dec = decode_real8(encode_real8(-42.5));
        assert!((dec + 42.5).abs() < 1e-12);
    }

    #[test]
    fn wide_range_relative_error_small() {
        let mut v = 1e-12;
        while v < 1e12 {
            for sign in [1.0, -1.0] {
                let x = sign * v * 1.2345;
                let dec = decode_real8(encode_real8(x));
                assert!(((dec - x) / x).abs() < 1e-12, "{x} -> {dec}");
            }
            v *= 10.0;
        }
    }

    #[test]
    fn non_finite_encodes_as_zero() {
        assert_eq!(encode_real8(f64::NAN), [0; 8]);
        assert_eq!(encode_real8(f64::INFINITY), [0; 8]);
    }
}
