//! GDSII record framing: every record is `[u16 length][u8 rectype][u8
//! datatype][payload]`, big-endian, with `length` counting the 4 header
//! bytes.

/// Record type codes (the subset this crate uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordType {
    /// Stream format version.
    Header = 0x00,
    /// Library begin (modification timestamps).
    BgnLib = 0x01,
    /// Library name.
    LibName = 0x02,
    /// Database units.
    Units = 0x03,
    /// Library end.
    EndLib = 0x04,
    /// Structure begin.
    BgnStr = 0x05,
    /// Structure name.
    StrName = 0x06,
    /// Structure end.
    EndStr = 0x07,
    /// Boundary (polygon) element.
    Boundary = 0x08,
    /// Layer number.
    Layer = 0x0D,
    /// Datatype number.
    Datatype = 0x0E,
    /// Coordinate list.
    Xy = 0x10,
    /// Element end.
    EndEl = 0x11,
}

impl RecordType {
    /// Maps a raw code to a known record type.
    pub fn from_code(code: u8) -> Option<Self> {
        use RecordType::*;
        Some(match code {
            0x00 => Header,
            0x01 => BgnLib,
            0x02 => LibName,
            0x03 => Units,
            0x04 => EndLib,
            0x05 => BgnStr,
            0x06 => StrName,
            0x07 => EndStr,
            0x08 => Boundary,
            0x0D => Layer,
            0x0E => Datatype,
            0x10 => Xy,
            0x11 => EndEl,
            _ => return None,
        })
    }
}

/// GDSII data type codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum DataType {
    /// No payload.
    NoData = 0x00,
    /// 16-bit signed integers.
    Int16 = 0x02,
    /// 32-bit signed integers.
    Int32 = 0x03,
    /// 8-byte excess-64 reals.
    Real8 = 0x05,
    /// ASCII string (padded to even length).
    Ascii = 0x06,
}

/// Error reading a GDSII stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GdsError {
    /// Input ended inside a record.
    UnexpectedEof,
    /// A record declared an invalid length.
    BadRecordLength {
        /// The declared length.
        length: u16,
    },
    /// A record appeared where the grammar does not allow it.
    UnexpectedRecord {
        /// Raw record type code.
        code: u8,
    },
    /// The stream ended before `ENDLIB`.
    MissingEndLib,
    /// Structural records out of order (e.g. `XY` outside `BOUNDARY`).
    Structure(&'static str),
}

impl std::fmt::Display for GdsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GdsError::UnexpectedEof => f.write_str("unexpected end of stream"),
            GdsError::BadRecordLength { length } => {
                write!(f, "invalid record length {length}")
            }
            GdsError::UnexpectedRecord { code } => {
                write!(f, "unexpected record type 0x{code:02x}")
            }
            GdsError::MissingEndLib => f.write_str("stream ends without ENDLIB"),
            GdsError::Structure(msg) => write!(f, "malformed stream: {msg}"),
        }
    }
}

impl std::error::Error for GdsError {}

/// Appends one record to `out`.
pub fn put_record(out: &mut Vec<u8>, rt: RecordType, dt: DataType, payload: &[u8]) {
    debug_assert!(
        payload.len().is_multiple_of(2),
        "GDSII payloads are even-length"
    );
    let len = 4 + payload.len();
    debug_assert!(
        len <= usize::from(u16::MAX),
        "GDSII record payload too large ({len} bytes)"
    );
    out.extend_from_slice(&u16::try_from(len).unwrap_or(u16::MAX).to_be_bytes());
    // `RecordType`/`DataType` are `#[repr(u8)]`; the cast is the only way to
    // read the discriminant and cannot narrow. pilfill: allow(as-cast)
    out.push(rt as u8);
    // pilfill: allow(as-cast)
    out.push(dt as u8);
    out.extend_from_slice(payload);
}

/// A parsed record header plus payload slice offsets.
#[derive(Debug, Clone)]
pub struct RawRecord {
    /// Record type (known subset).
    pub rtype: RecordType,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Reads the next record, or `None` at a clean end of input.
///
/// # Errors
///
/// [`GdsError::UnexpectedEof`] for truncated records,
/// [`GdsError::BadRecordLength`] for lengths under 4,
/// [`GdsError::UnexpectedRecord`] for unknown type codes.
pub fn next_record(buf: &mut &[u8]) -> Result<Option<RawRecord>, GdsError> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf.len() < 4 {
        return Err(GdsError::UnexpectedEof);
    }
    let length = u16::from_be_bytes([buf[0], buf[1]]);
    if length < 4 {
        return Err(GdsError::BadRecordLength { length });
    }
    let code = buf[2];
    let _dtype = buf[3];
    *buf = &buf[4..];
    let payload_len = usize::from(length - 4);
    if buf.len() < payload_len {
        return Err(GdsError::UnexpectedEof);
    }
    let payload = buf[..payload_len].to_vec();
    *buf = &buf[payload_len..];
    let rtype = RecordType::from_code(code).ok_or(GdsError::UnexpectedRecord { code })?;
    Ok(Some(RawRecord { rtype, payload }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trip() {
        let mut out = Vec::new();
        put_record(&mut out, RecordType::Header, DataType::Int16, &[0x02, 0x58]);
        put_record(&mut out, RecordType::EndLib, DataType::NoData, &[]);
        let mut cursor: &[u8] = &out;
        let r1 = next_record(&mut cursor).expect("ok").expect("some");
        assert_eq!(r1.rtype, RecordType::Header);
        assert_eq!(r1.payload, vec![0x02, 0x58]);
        let r2 = next_record(&mut cursor).expect("ok").expect("some");
        assert_eq!(r2.rtype, RecordType::EndLib);
        assert!(r2.payload.is_empty());
        assert!(next_record(&mut cursor).expect("ok").is_none());
    }

    #[test]
    fn truncated_record_errors() {
        let bytes = [0x00u8, 0x08, 0x00]; // length says 8, only 3 bytes
        let mut cursor: &[u8] = &bytes;
        assert!(matches!(
            next_record(&mut cursor),
            Err(GdsError::UnexpectedEof)
        ));
    }

    #[test]
    fn bad_length_errors() {
        let bytes = [0x00u8, 0x02, 0x00, 0x00];
        let mut cursor: &[u8] = &bytes;
        assert!(matches!(
            next_record(&mut cursor),
            Err(GdsError::BadRecordLength { length: 2 })
        ));
    }

    #[test]
    fn unknown_record_type_errors() {
        let bytes = [0x00u8, 0x04, 0x7F, 0x00];
        let mut cursor: &[u8] = &bytes;
        assert!(matches!(
            next_record(&mut cursor),
            Err(GdsError::UnexpectedRecord { code: 0x7F })
        ));
    }
}
