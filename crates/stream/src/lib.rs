//! # pilfill-stream
//!
//! A minimal GDSII Stream writer/reader, sufficient to export a filled
//! layout (drawn wires plus inserted fill features) and read it back —
//! the "GDSII Stream … geometric processing engines" corner of the
//! original experimental testbed.
//!
//! Only the record subset needed for rectangle data is implemented:
//! `HEADER`, `BGNLIB`, `LIBNAME`, `UNITS`, `BGNSTR`, `STRNAME`,
//! `BOUNDARY`, `LAYER`, `DATATYPE`, `XY`, `ENDEL`, `ENDSTR`, `ENDLIB`.
//! Fill features are written with a distinct datatype so downstream tools
//! can tell drawn metal (datatype 0) from fill (datatype
//! [`FILL_DATATYPE`]).
//!
//! # Examples
//!
//! ```
//! use pilfill_layout::synth::{SynthConfig, synthesize};
//! use pilfill_stream::{write_gds, read_gds};
//!
//! let design = synthesize(&SynthConfig::small_test(1));
//! let bytes = write_gds(&design, &[]);
//! let lib = read_gds(&bytes)?;
//! assert_eq!(lib.name, design.name);
//! # Ok::<(), pilfill_stream::GdsError>(())
//! ```

mod reader;
mod real8;
mod records;
mod writer;

pub use reader::{read_gds, GdsBoundary, GdsLibrary};
pub use records::GdsError;
pub use writer::{write_gds, FILL_DATATYPE};

pub(crate) use real8::{decode_real8, encode_real8};
