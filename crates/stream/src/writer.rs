//! GDSII writer: serializes a design's drawn metal and its fill features.

use crate::encode_real8;
use crate::records::{put_record, DataType, RecordType};
use pilfill_core::FillFeature;
use pilfill_geom::Rect;
use pilfill_layout::Design;

/// Datatype used for fill features (drawn metal uses datatype 0).
pub const FILL_DATATYPE: i16 = 1;

fn put_i16(out: &mut Vec<u8>, rt: RecordType, values: &[i16]) {
    let mut payload = Vec::with_capacity(values.len() * 2);
    for v in values {
        payload.extend_from_slice(&v.to_be_bytes());
    }
    put_record(out, rt, DataType::Int16, &payload);
}

fn put_ascii(out: &mut Vec<u8>, rt: RecordType, s: &str) {
    let mut payload = s.as_bytes().to_vec();
    if !payload.len().is_multiple_of(2) {
        payload.push(0);
    }
    put_record(out, rt, DataType::Ascii, &payload);
}

/// Narrows a die coordinate to the 32-bit range GDSII XY records mandate.
///
/// Dies handled here are far below the ±2.1 m (at 1 nm dbu) the format can
/// express; debug builds assert, release builds saturate.
fn gds_coord(c: i64) -> i32 {
    debug_assert!(
        i64::from(i32::MIN) <= c && c <= i64::from(i32::MAX),
        "coordinate {c} exceeds the GDSII 32-bit range"
    );
    c.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32 // pilfill: allow(as-cast)
}

fn put_boundary(out: &mut Vec<u8>, layer: i16, datatype: i16, rect: Rect) {
    put_record(out, RecordType::Boundary, DataType::NoData, &[]);
    put_i16(out, RecordType::Layer, &[layer]);
    put_i16(out, RecordType::Datatype, &[datatype]);
    // Closed 5-point rectangle, counter-clockwise.
    let pts: [(i64, i64); 5] = [
        (rect.left, rect.bottom),
        (rect.right, rect.bottom),
        (rect.right, rect.top),
        (rect.left, rect.top),
        (rect.left, rect.bottom),
    ];
    let mut payload = Vec::with_capacity(40);
    for (x, y) in pts {
        payload.extend_from_slice(&gds_coord(x).to_be_bytes());
        payload.extend_from_slice(&gds_coord(y).to_be_bytes());
    }
    put_record(out, RecordType::Xy, DataType::Int32, &payload);
    put_record(out, RecordType::EndEl, DataType::NoData, &[]);
}

/// Serializes `design` plus `fill` into a single-structure GDSII library.
///
/// Wire segments are written on their layer index with datatype 0; fill
/// features on the first layer (index 0) with datatype [`FILL_DATATYPE`].
/// Units are 1 dbu = 1 nm.
pub fn write_gds(design: &Design, fill: &[FillFeature]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024 + 44 * fill.len());
    put_i16(&mut out, RecordType::Header, &[600]);
    // Fixed timestamps keep output deterministic (tools ignore them).
    put_i16(
        &mut out,
        RecordType::BgnLib,
        &[2003, 6, 1, 0, 0, 0, 2003, 6, 1, 0, 0, 0],
    );
    put_ascii(&mut out, RecordType::LibName, &design.name);
    {
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&encode_real8(1e-3)); // user units per dbu
        payload.extend_from_slice(&encode_real8(1e-9)); // meters per dbu
        put_record(&mut out, RecordType::Units, DataType::Real8, &payload);
    }
    put_i16(
        &mut out,
        RecordType::BgnStr,
        &[2003, 6, 1, 0, 0, 0, 2003, 6, 1, 0, 0, 0],
    );
    put_ascii(&mut out, RecordType::StrName, "TOP");

    for net in &design.nets {
        for seg in &net.segments {
            let layer = i16::try_from(seg.layer.0).unwrap_or(i16::MAX);
            put_boundary(&mut out, layer, 0, seg.rect());
        }
    }
    for o in &design.obstructions {
        let layer = i16::try_from(o.layer.0).unwrap_or(i16::MAX);
        put_boundary(&mut out, layer, 0, o.rect);
    }
    let size = design.rules.feature_size;
    for f in fill {
        put_boundary(&mut out, 0, FILL_DATATYPE, f.rect(size));
    }

    put_record(&mut out, RecordType::EndStr, DataType::NoData, &[]);
    put_record(&mut out, RecordType::EndLib, DataType::NoData, &[]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilfill_layout::synth::{synthesize, SynthConfig};

    #[test]
    fn output_is_deterministic() {
        let d = synthesize(&SynthConfig::small_test(4));
        let fill = vec![FillFeature { x: 100, y: 100 }];
        assert_eq!(write_gds(&d, &fill), write_gds(&d, &fill));
    }

    #[test]
    fn output_grows_with_fill() {
        let d = synthesize(&SynthConfig::small_test(4));
        let none = write_gds(&d, &[]);
        let some = write_gds(
            &d,
            &[
                FillFeature { x: 100, y: 100 },
                FillFeature { x: 600, y: 100 },
            ],
        );
        assert!(some.len() > none.len());
    }

    #[test]
    fn starts_with_header_record() {
        let d = synthesize(&SynthConfig::small_test(4));
        let bytes = write_gds(&d, &[]);
        // length 6, type HEADER (0x00), dtype INT16 (0x02), version 600.
        assert_eq!(&bytes[..6], &[0x00, 0x06, 0x00, 0x02, 0x02, 0x58]);
    }
}
