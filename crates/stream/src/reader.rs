//! GDSII reader: parses the record subset written by [`crate::write_gds`]
//! back into rectangles.

use crate::decode_real8;
use crate::records::{next_record, GdsError, RecordType};
use pilfill_geom::{Point, Rect};

/// One boundary element read from a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct GdsBoundary {
    /// GDSII layer number.
    pub layer: i16,
    /// GDSII datatype number.
    pub datatype: i16,
    /// Polygon vertices (closing vertex removed).
    pub points: Vec<Point>,
}

impl GdsBoundary {
    /// The bounding rectangle; for the axis-aligned rectangles this crate
    /// writes, this is the exact geometry.
    pub fn bbox(&self) -> Rect {
        let mut r = Rect::empty();
        for (i, p) in self.points.iter().enumerate() {
            if i == 0 {
                r = Rect::new(p.x, p.y, p.x, p.y);
            } else {
                r.left = r.left.min(p.x);
                r.bottom = r.bottom.min(p.y);
                r.right = r.right.max(p.x);
                r.top = r.top.max(p.y);
            }
        }
        r
    }

    /// `true` if the vertices trace an axis-aligned rectangle.
    pub fn is_rect(&self) -> bool {
        if self.points.len() != 4 {
            return false;
        }
        let b = self.bbox();
        self.points
            .iter()
            .all(|p| (p.x == b.left || p.x == b.right) && (p.y == b.bottom || p.y == b.top))
    }
}

/// A parsed GDSII library (single-structure subset).
#[derive(Debug, Clone, PartialEq)]
pub struct GdsLibrary {
    /// Library name.
    pub name: String,
    /// Structure name.
    pub structure: String,
    /// Meters per database unit.
    pub meters_per_dbu: f64,
    /// All boundary elements.
    pub boundaries: Vec<GdsBoundary>,
}

impl GdsLibrary {
    /// Boundaries with the given datatype (e.g. fill vs drawn).
    pub fn boundaries_with_datatype(&self, datatype: i16) -> Vec<&GdsBoundary> {
        self.boundaries
            .iter()
            .filter(|b| b.datatype == datatype)
            .collect()
    }

    /// Extracts the fill features (datatype [`crate::FILL_DATATYPE`])
    /// back as [`pilfill_core::FillFeature`]s — the inverse of
    /// [`crate::write_gds`] for the fill half of the stream.
    ///
    /// Non-rectangular boundaries on the fill datatype are skipped.
    pub fn fill_features(&self) -> Vec<pilfill_core::FillFeature> {
        self.boundaries_with_datatype(crate::FILL_DATATYPE)
            .into_iter()
            .filter(|b| b.is_rect())
            .map(|b| {
                let r = b.bbox();
                pilfill_core::FillFeature {
                    x: r.left,
                    y: r.bottom,
                }
            })
            .collect()
    }
}

/// Parses a GDSII stream produced by [`crate::write_gds`] (or any stream
/// restricted to the same record subset with one structure).
///
/// # Errors
///
/// Any [`GdsError`] for truncated, out-of-order or unsupported records.
pub fn read_gds(bytes: &[u8]) -> Result<GdsLibrary, GdsError> {
    let mut cursor = bytes;
    let mut name = String::new();
    let mut structure = String::new();
    let mut meters_per_dbu = 1e-9;
    let mut boundaries = Vec::new();

    #[derive(PartialEq)]
    enum State {
        TopLevel,
        InStructure,
        InBoundary,
    }
    let mut state = State::TopLevel;
    let mut cur_layer: i16 = 0;
    let mut cur_datatype: i16 = 0;
    let mut cur_points: Vec<Point> = Vec::new();
    let mut ended = false;

    while let Some(rec) = next_record(&mut cursor)? {
        match rec.rtype {
            RecordType::Header | RecordType::BgnLib | RecordType::BgnStr => {}
            RecordType::LibName => {
                name = ascii_payload(&rec.payload);
            }
            RecordType::StrName => {
                structure = ascii_payload(&rec.payload);
                state = State::InStructure;
            }
            RecordType::Units => {
                if rec.payload.len() != 16 {
                    return Err(GdsError::Structure("UNITS payload must be 16 bytes"));
                }
                let mut mp = [0u8; 8];
                mp.copy_from_slice(&rec.payload[8..16]);
                meters_per_dbu = decode_real8(mp);
            }
            RecordType::Boundary => {
                if state != State::InStructure {
                    return Err(GdsError::Structure("BOUNDARY outside structure"));
                }
                state = State::InBoundary;
                cur_layer = 0;
                cur_datatype = 0;
                cur_points.clear();
            }
            RecordType::Layer => {
                if state != State::InBoundary {
                    return Err(GdsError::Structure("LAYER outside element"));
                }
                cur_layer = i16_payload(&rec.payload)?;
            }
            RecordType::Datatype => {
                if state != State::InBoundary {
                    return Err(GdsError::Structure("DATATYPE outside element"));
                }
                cur_datatype = i16_payload(&rec.payload)?;
            }
            RecordType::Xy => {
                if state != State::InBoundary {
                    return Err(GdsError::Structure("XY outside element"));
                }
                if rec.payload.len() % 8 != 0 {
                    return Err(GdsError::Structure("XY payload not 8-byte aligned"));
                }
                cur_points = rec
                    .payload
                    .chunks_exact(8)
                    .map(|c| {
                        let x = i32::from_be_bytes([c[0], c[1], c[2], c[3]]);
                        let y = i32::from_be_bytes([c[4], c[5], c[6], c[7]]);
                        Point::new(x as i64, y as i64)
                    })
                    .collect();
                // Drop the closing vertex if present.
                if cur_points.len() >= 2 && cur_points.first() == cur_points.last() {
                    cur_points.pop();
                }
            }
            RecordType::EndEl => {
                if state != State::InBoundary {
                    return Err(GdsError::Structure("ENDEL outside element"));
                }
                boundaries.push(GdsBoundary {
                    layer: cur_layer,
                    datatype: cur_datatype,
                    points: std::mem::take(&mut cur_points),
                });
                state = State::InStructure;
            }
            RecordType::EndStr => {
                if state != State::InStructure {
                    return Err(GdsError::Structure("ENDSTR outside structure"));
                }
                state = State::TopLevel;
            }
            RecordType::EndLib => {
                ended = true;
                break;
            }
        }
    }
    if !ended {
        return Err(GdsError::MissingEndLib);
    }
    Ok(GdsLibrary {
        name,
        structure,
        meters_per_dbu,
        boundaries,
    })
}

fn ascii_payload(payload: &[u8]) -> String {
    let end = payload
        .iter()
        .position(|&b| b == 0)
        .unwrap_or(payload.len());
    String::from_utf8_lossy(&payload[..end]).into_owned()
}

fn i16_payload(payload: &[u8]) -> Result<i16, GdsError> {
    if payload.len() < 2 {
        return Err(GdsError::Structure("short INT16 payload"));
    }
    Ok(i16::from_be_bytes([payload[0], payload[1]]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{write_gds, FILL_DATATYPE};
    use pilfill_core::FillFeature;
    use pilfill_layout::synth::{synthesize, SynthConfig};
    use pilfill_layout::LayerId;

    #[test]
    fn round_trip_counts_and_geometry() {
        let d = synthesize(&SynthConfig::small_test(8));
        let fill = vec![
            FillFeature { x: 1_000, y: 1_000 },
            FillFeature { x: 2_000, y: 2_000 },
        ];
        let bytes = write_gds(&d, &fill);
        let lib = read_gds(&bytes).expect("read back");
        assert_eq!(lib.name, d.name);
        assert_eq!(lib.structure, "TOP");
        assert!((lib.meters_per_dbu - 1e-9).abs() < 1e-21);
        let total_segs: usize = d.nets.iter().map(|n| n.segments.len()).sum();
        assert_eq!(lib.boundaries.len(), total_segs + fill.len());

        // Fill features carry the fill datatype and exact geometry.
        let fills = lib.boundaries_with_datatype(FILL_DATATYPE);
        assert_eq!(fills.len(), 2);
        let size = d.rules.feature_size;
        assert_eq!(fills[0].bbox(), fill[0].rect(size));
        assert!(fills[0].is_rect());

        // Drawn metal on layer 0 matches the design's m3 rects.
        let drawn: Vec<_> = lib
            .boundaries
            .iter()
            .filter(|b| b.datatype == 0 && b.layer == 0)
            .collect();
        assert_eq!(drawn.len(), d.segments_on_layer(LayerId(0)).count());
    }

    #[test]
    fn fill_features_round_trip() {
        let d = synthesize(&SynthConfig::small_test(8));
        let fill = vec![
            FillFeature { x: 1_000, y: 1_000 },
            FillFeature { x: 2_000, y: 2_000 },
            FillFeature { x: 3_500, y: 700 },
        ];
        let lib = read_gds(&write_gds(&d, &fill)).expect("read back");
        assert_eq!(lib.fill_features(), fill);
    }

    #[test]
    fn truncated_stream_fails_cleanly() {
        let d = synthesize(&SynthConfig::small_test(8));
        let bytes = write_gds(&d, &[]);
        let truncated = &bytes[..bytes.len() - 4];
        assert!(read_gds(truncated).is_err());
    }

    #[test]
    fn missing_endlib_detected() {
        let d = synthesize(&SynthConfig::small_test(8));
        let mut bytes = write_gds(&d, &[]);
        bytes.truncate(bytes.len() - 4); // drop the ENDLIB record
        assert_eq!(read_gds(&bytes), Err(GdsError::MissingEndLib));
    }

    #[test]
    fn xy_outside_element_rejected() {
        // Handcrafted: HEADER then XY.
        let bytes = [
            0x00, 0x06, 0x00, 0x02, 0x02, 0x58, // HEADER 600
            0x00, 0x0C, 0x10, 0x03, 0, 0, 0, 1, 0, 0, 0, 2, // XY one point
        ];
        assert!(matches!(read_gds(&bytes), Err(GdsError::Structure(_))));
    }
}
