//! The real `WorkerPool` under the bounded model checker.
//!
//! Compiled only with `--cfg pilfill_check`, which swaps the pool's
//! `sync` shim to the shadow primitives of `pilfill-check`. These tests
//! then run the *actual* pool implementation — `worker_loop`,
//! `claim_loop`, `ReadyGate`, panic propagation — under many explored
//! thread schedules with happens-before checking, not a hand-written
//! transcription of it.
//!
//! Run via `scripts/ci.sh check`, or directly:
//!
//! ```text
//! RUSTFLAGS="--cfg pilfill_check" CARGO_TARGET_DIR=target/check \
//!     cargo test -p pilfill-exec --test model_pool
//! ```
//!
//! (The separate target dir keeps the cfg'd build from thrashing the
//! normal build cache.)

#![cfg(pilfill_check)]

use pilfill_check::{Config, Explorer, Strategy};
use pilfill_exec::WorkerPool;

/// Schedules per test: enough to cross every protocol phase boundary,
/// small enough to keep the suite in CI budget.
const BUDGET: usize = 400;

fn explorer() -> Explorer {
    Explorer::new(Config {
        budget: BUDGET,
        ..Config::default()
    })
}

fn random_explorer(seed: u64) -> Explorer {
    Explorer::new(Config {
        strategy: Strategy::Random { seed },
        budget: BUDGET,
        ..Config::default()
    })
}

#[test]
fn pool_map_is_sound_under_exhaustive_schedules() {
    let mut ex = explorer();
    let outcome = ex.explore(|| {
        let pool = WorkerPool::new(2);
        let out = pool.map(3, |i| i as u64 * 2);
        assert_eq!(out, vec![0, 2, 4]);
    });
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    assert!(outcome.stats.interleavings > 1);
}

#[test]
fn pool_reuse_across_jobs_is_sound() {
    let mut ex = explorer();
    let outcome = ex.explore(|| {
        let pool = WorkerPool::new(2);
        let a = pool.map(2, |i| i + 1);
        let b = pool.map(2, |i| i + 10);
        assert_eq!(a, vec![1, 2]);
        assert_eq!(b, vec![10, 11]);
    });
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
}

#[test]
fn pool_panic_propagates_without_deadlock() {
    let mut ex = explorer();
    let outcome = ex.explore(|| {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(2, |i| {
                assert!(i != 1, "lane panic injected at index 1");
            });
        }));
        assert!(caught.is_err(), "the pool must re-raise the lane panic");
        // The pool must still be usable (and droppable) after a panic.
        let after = pool.map(2, |i| i + 5);
        assert_eq!(after, vec![5, 6]);
    });
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
}

#[test]
fn pool_random_schedules_agree_with_exhaustive() {
    let mut ex = random_explorer(0xFEED);
    let outcome = ex.explore(|| {
        let pool = WorkerPool::new(3);
        let out = pool.map(4, |i| i * i);
        assert_eq!(out, vec![0, 1, 4, 9]);
    });
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
}
