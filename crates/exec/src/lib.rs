//! # pilfill-exec
//!
//! A std-only persistent worker pool with deterministic work claiming.
//!
//! The rest of the workspace used to parallelize with per-call
//! [`std::thread::scope`] and static contiguous chunking. That loses twice
//! on heterogeneous work: thread spawn/join is repaid on every call, and a
//! single expensive item (an ILP-II tile solve is ~700x a Greedy solve)
//! serializes the whole chunk that contains it. This crate fixes both:
//!
//! - **Persistent workers.** [`WorkerPool::new`] spawns its workers once;
//!   every subsequent [`WorkerPool::run`] only wakes them through a
//!   condvar, amortizing spawn cost across calls.
//! - **Deterministic work stealing.** Work items are indices `0..n`.
//!   Idle lanes claim the next batch from a shared atomic cursor with an
//!   adaptive batch size (large while plenty remains, shrinking toward 1
//!   near the end), so no lane is left holding a long static tail.
//!
//! Determinism is by construction rather than by scheduling: the pool
//! never decides *results*, only *who computes which index when*. Callers
//! write each index's result to its own pre-partitioned slot
//! ([`WorkerPool::for_each_slot`] / [`WorkerPool::map`]) and reduce in
//! index order, so the output is bit-identical for every thread count and
//! every interleaving. See DESIGN.md "Parallel execution & determinism".
//!
//! The pool is intentionally minimal: no futures, no channels, no external
//! crates — `std::thread`, two condvars and two atomics.

mod fair;
mod sync;

pub use fair::{BatchRecord, FairError, FairOptions, FairPool, FairRun};

use crate::sync::thread::JoinHandle;
use crate::sync::{AtomicBool, AtomicUsize, Condvar, Mutex, MutexGuard};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Batches per lane the adaptive claiming aims for: each lane claims about
/// `remaining / (lanes * CLAIM_RATIO)` indices per grab, so early grabs are
/// big (low cursor contention) and late grabs shrink toward single indices
/// (no long static tail behind one expensive item).
const CLAIM_RATIO: usize = 4;

/// Upper bound on one claimed batch, keeping latency bounded even for very
/// large index spaces.
const MAX_BATCH: usize = 1024;

/// A persistent pool of worker threads executing indexed jobs.
///
/// A pool with `threads` lanes spawns `threads - 1` OS workers; the thread
/// calling [`WorkerPool::run`] is always the remaining lane, so a pool of 1
/// never parks anything and degrades to a plain serial loop.
///
/// # Examples
///
/// ```
/// use pilfill_exec::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let squares = pool.map(8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    lanes: usize,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    /// Workers park here waiting for a new job epoch.
    work_cv: Condvar,
    /// The submitter parks here waiting for workers to leave the job.
    done_cv: Condvar,
}

#[derive(Debug)]
struct State {
    /// Monotonic job counter; a worker joins a job only once per epoch.
    epoch: u64,
    /// The live job, if any. Cleared by the submitter before it returns.
    job: Option<JobRef>,
    /// Workers currently executing inside the live job.
    active: usize,
    shutdown: bool,
}

/// Type-erased pointer to the submitter's stack-held [`JobCore`]. The
/// submitter keeps the core alive until every worker has checked out
/// (`active == 0`) and no new worker can check in (`job == None`), which is
/// what makes handing this pointer to other threads sound.
#[derive(Debug, Clone, Copy)]
struct JobRef(*const JobCore<'static>);

// SAFETY: the pointee is only dereferenced while the submitting thread
// blocks in `run_erased` keeping it alive (see `JobRef` docs), and
// `JobCore` only hands out `&self` to `Fn + Sync` closures and atomics.
unsafe impl Send for JobRef {}

struct JobCore<'a> {
    /// Next unclaimed index.
    cursor: AtomicUsize,
    /// Total indices in the job.
    n: usize,
    /// Lanes the adaptive batch size is tuned for.
    lanes: usize,
    /// The work itself: called exactly once per index in `0..n`.
    f: &'a (dyn Fn(usize) + Sync),
    /// Set on the first panic; stops all lanes early.
    panicked: AtomicBool,
    /// First panic payload, re-raised on the submitting thread.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Streamed jobs only: lanes may not run an index until the producer
    /// has published it past this watermark.
    gate: Option<&'a ReadyGate>,
}

/// Ready watermark for streamed jobs: the producer publishes `ready = k`
/// once items `0..k` are fully written, and consuming lanes park on the
/// condvar when the cursor catches up with the watermark. The store is
/// `Release` and the loads `Acquire`, so a lane that observes `ready > i`
/// also observes every write the producer made to item `i`.
#[derive(Debug, Default)]
struct ReadyGate {
    ready: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl ReadyGate {
    /// Publishes items `0..upto` as ready and wakes parked lanes. Taking
    /// the lock around the store closes the check-then-wait race in
    /// [`ReadyGate::wait_past`].
    fn publish(&self, upto: usize) {
        let _guard = lock(&self.lock);
        self.ready.store(upto, Ordering::Release);
        self.cv.notify_all();
    }

    /// Blocks until item `i` is ready (`ready > i`). Returns `false` if the
    /// job aborted (a lane or the producer panicked) before that happened.
    fn wait_past(&self, i: usize, core: &JobCore<'_>) -> bool {
        loop {
            if core.panicked.load(Ordering::Relaxed) {
                return false;
            }
            if self.ready.load(Ordering::Acquire) > i {
                return true;
            }
            let guard = lock(&self.lock);
            if self.ready.load(Ordering::Acquire) > i {
                return true;
            }
            if core.panicked.load(Ordering::Relaxed) {
                return false;
            }
            drop(wait_on(&self.cv, guard));
        }
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` lanes (clamped to at least 1),
    /// spawning `threads - 1` persistent worker threads.
    ///
    /// Thread counts are taken literally — callers wanting hardware-sized
    /// pools should pass [`std::thread::available_parallelism`] themselves.
    pub fn new(threads: usize) -> Self {
        let lanes = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(lanes - 1);
        for i in 1..lanes {
            let shared = Arc::clone(&shared);
            let spawned = crate::sync::thread::Builder::new()
                .name(format!("pilfill-exec-{i}"))
                .spawn(move || worker_loop(&shared));
            // A failed spawn (resource exhaustion) degrades the pool to
            // fewer lanes instead of failing the computation.
            if let Ok(h) = spawned {
                handles.push(h);
            }
        }
        Self {
            shared,
            handles,
            lanes,
        }
    }

    /// The number of lanes (worker threads plus the submitting thread).
    pub fn threads(&self) -> usize {
        self.lanes
    }

    /// Alias for [`WorkerPool::threads`]: the lane count callers should
    /// compare against available parallelism when deciding whether the
    /// pooled path is worth its coordination cost.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Runs `f(i)` exactly once for every `i` in `0..n`, on all lanes.
    ///
    /// The submitting thread participates, so a 1-lane pool is a plain
    /// loop. Panics raised by `f` on any lane are re-raised here after all
    /// lanes have stopped. Reentrant submissions (calling `run` from inside
    /// a job) execute inline on the calling lane.
    pub fn run(&self, n: usize, f: impl Fn(usize) + Sync) {
        self.run_erased(n, &f);
    }

    /// Runs `f(i, &mut out[i])` exactly once for every slot of `out`, in
    /// parallel, writing results to pre-partitioned disjoint slots.
    ///
    /// Because each index owns exactly one slot and indices are claimed
    /// exactly once, the result is independent of scheduling: bit-identical
    /// for every lane count.
    pub fn for_each_slot<T: Send>(&self, out: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
        let slots = SlotWriter {
            ptr: out.as_mut_ptr(),
            len: out.len(),
        };
        let job = move |i: usize| {
            // SAFETY: `run` claims each index exactly once across all
            // lanes, so slot `i` is touched by exactly one thread, and
            // `slots` stays in bounds (`i < out.len()` == job size).
            unsafe { slots.with(i, |slot| f(i, slot)) };
        };
        self.run_erased(out.len(), &job);
    }

    /// Maps `0..n` through `f` into a `Vec` in index order.
    pub fn map<T: Send>(&self, n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        let mut out: Vec<Option<T>> = Vec::new();
        out.resize_with(n, || None);
        self.for_each_slot(&mut out, |i, slot| *slot = Some(f(i)));
        out.into_iter()
            .map(|slot| {
                // Every index 0..n was claimed and wrote its slot; an empty
                // slot is unreachable. pilfill: allow(unwrap)
                slot.expect("pool job wrote every slot")
            })
            .collect()
    }

    /// Streams `n` items through a single producer into a parallel
    /// consumer: `producer(k)` runs on the calling thread in index order,
    /// each finished item is published through a ready watermark, and pool
    /// lanes claim published indices with the same adaptive cursor as
    /// [`WorkerPool::run`] — so consumption of item 0 overlaps production
    /// of item 1, and wall-clock approaches max(produce, consume) instead
    /// of produce + consume.
    ///
    /// Returns the produced items and the consumer results, both in index
    /// order. Because every index owns disjoint slots in both vectors and
    /// the caller folds them in index order, the output is bit-identical
    /// for every lane count. On a 1-lane pool (or a reentrant submission)
    /// this degrades to a fused serial loop: produce item `k`, consume item
    /// `k`, repeat — no threads are woken.
    ///
    /// Panics from the producer or any consumer lane are re-raised on the
    /// calling thread after all lanes have stopped.
    pub fn stream_map<T, R>(
        &self,
        n: usize,
        mut producer: impl FnMut(usize) -> T,
        consumer: impl Fn(usize, &T) -> R + Sync,
    ) -> (Vec<T>, Vec<R>)
    where
        T: Send + Sync,
        R: Send,
    {
        let fused_serial = |producer: &mut dyn FnMut(usize) -> T| {
            let mut items = Vec::with_capacity(n);
            let mut results = Vec::with_capacity(n);
            for i in 0..n {
                let item = producer(i);
                results.push(consumer(i, &item));
                items.push(item);
            }
            (items, results)
        };
        if self.handles.is_empty() || n <= 1 {
            return fused_serial(&mut producer);
        }

        let mut items: Vec<Option<T>> = Vec::new();
        items.resize_with(n, || None);
        let mut results: Vec<Option<R>> = Vec::new();
        results.resize_with(n, || None);
        let gate = ReadyGate::default();
        let item_slots = SlotWriter {
            ptr: items.as_mut_ptr(),
            len: n,
        };
        let result_slots = SlotWriter {
            ptr: results.as_mut_ptr(),
            len: n,
        };
        let consumer_ref = &consumer;
        let job = move |i: usize| {
            // SAFETY: a lane only reaches index `i` after the gate
            // published `ready > i` (Acquire), so the producer's write to
            // slot `i` is complete and visible, and the producer never
            // touches a published slot again. Each index is claimed exactly
            // once, so the result slot is unaliased.
            unsafe {
                item_slots.with(i, |slot| {
                    // Invariant: publish happens only after the write.
                    // pilfill: allow(unwrap)
                    let item = slot.as_ref().expect("gate published an unwritten slot");
                    let r = consumer_ref(i, item);
                    result_slots.with(i, |out| *out = Some(r));
                });
            }
        };
        let core = JobCore {
            cursor: AtomicUsize::new(0),
            n,
            lanes: self.lanes.min(n),
            f: &job,
            panicked: AtomicBool::new(false),
            panic: Mutex::new(None),
            gate: Some(&gate),
        };
        if !self.try_open_job(&core) {
            // Reentrant submission from inside a live job: claiming the
            // shared cursor would deadlock the outer job, so run the fused
            // serial loop on this lane instead.
            drop(core);
            return fused_serial(&mut producer);
        }

        // Produce on this thread while lanes consume behind the watermark.
        let produced = catch_unwind(AssertUnwindSafe(|| {
            for k in 0..n {
                let item = producer(k);
                // SAFETY: slot `k` is unpublished (`ready <= k`), so no
                // lane reads it yet; only this thread writes it.
                unsafe { item_slots.with(k, |slot| *slot = Some(item)) };
                gate.publish(k + 1);
            }
        }));
        match produced {
            Ok(()) => {
                // The submitter joins consumption once production is done.
                claim_loop(&core);
            }
            Err(payload) => {
                core.panicked.store(true, Ordering::Relaxed);
                let mut slot = lock(&core.panic);
                if slot.is_none() {
                    *slot = Some(payload);
                }
                drop(slot);
                // Wake parked lanes so they observe the abort.
                gate.publish(n);
            }
        }
        self.close_job(&core);

        fn unwrap_all<V>(v: Vec<Option<V>>, what: &str) -> Vec<V> {
            v.into_iter()
                .map(|slot| {
                    // The job completed without panicking, so every slot
                    // was written. pilfill: allow(unwrap)
                    slot.expect(what)
                })
                .collect()
        }
        (
            unwrap_all(items, "streamed job produced every item"),
            unwrap_all(results, "streamed job consumed every item"),
        )
    }

    fn run_erased(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        // Serial fast path: nothing to coordinate with a single lane (or a
        // single item), and workers are never woken.
        if self.handles.is_empty() || n == 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }

        let core = JobCore {
            cursor: AtomicUsize::new(0),
            n,
            lanes: self.lanes.min(n),
            f,
            panicked: AtomicBool::new(false),
            panic: Mutex::new(None),
            gate: None,
        };
        if !self.try_open_job(&core) {
            // Reentrant submission from inside a job: claiming the
            // shared cursor would deadlock the outer job, so run
            // inline on this lane instead.
            for i in 0..n {
                f(i);
            }
            return;
        }

        // The submitter is a lane too.
        claim_loop(&core);
        self.close_job(&core);
    }

    /// Publishes `core` as the live job and wakes the workers. Returns
    /// `false` without publishing if another job is live (reentrancy).
    fn try_open_job(&self, core: &JobCore<'_>) -> bool {
        let mut st = lock(&self.shared.state);
        if st.job.is_some() {
            return false;
        }
        st.epoch += 1;
        let erased = std::ptr::from_ref(core).cast::<JobCore<'static>>();
        st.job = Some(JobRef(erased));
        self.shared.work_cv.notify_all();
        true
    }

    /// Closes the job (no new worker can join), waits for the ones inside
    /// to leave — only then may `core` drop — and re-raises the first
    /// recorded panic on the calling thread.
    fn close_job(&self, core: &JobCore<'_>) {
        let mut st = lock(&self.shared.state);
        st.job = None;
        while st.active > 0 {
            st = wait_on(&self.shared.done_cv, st);
        }
        drop(st);

        let payload = lock(&core.panic).take();
        if let Some(p) = payload {
            resume_unwind(p);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            // A worker that panicked already recorded the payload with its
            // job; at shutdown there is nothing left to propagate to.
            let _ = h.join();
        }
    }
}

/// Locks a mutex, riding through poisoning: pool state stays consistent
/// on panic because every transition happens before or after — never
/// during — a job's unwinding.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn wait_on<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    let mut st = lock(&shared.state);
    loop {
        if st.shutdown {
            return;
        }
        match st.job {
            Some(job) if st.epoch != seen_epoch => {
                seen_epoch = st.epoch;
                st.active += 1;
                drop(st);
                // SAFETY: `job` was observed under the lock while
                // `state.job` was live and `active` was incremented, so the
                // submitter in `run_erased` cannot release the pointee
                // before this worker decrements `active` again.
                claim_loop(unsafe { &*job.0 });
                st = lock(&shared.state);
                st.active -= 1;
                if st.active == 0 {
                    shared.done_cv.notify_all();
                }
            }
            _ => st = wait_on(&shared.work_cv, st),
        }
    }
}

/// One lane's claim loop: grab an adaptive batch of indices from the
/// cursor, run them, repeat until the cursor is drained or a lane panicked.
/// Streamed jobs additionally clamp each batch to the published watermark
/// and park on the gate while the producer is behind.
fn claim_loop(core: &JobCore<'_>) {
    loop {
        if core.panicked.load(Ordering::Relaxed) {
            return;
        }
        let claimed = core.cursor.load(Ordering::Relaxed);
        if claimed >= core.n {
            return;
        }
        let mut limit = core.n;
        if let Some(gate) = core.gate {
            let ready = gate.ready.load(Ordering::Acquire);
            if ready <= claimed {
                if !gate.wait_past(claimed, core) {
                    return;
                }
                continue;
            }
            limit = ready.min(core.n);
        }
        let remaining = limit - claimed;
        let batch = (remaining / (core.lanes * CLAIM_RATIO)).clamp(1, MAX_BATCH);
        // `fetch_add` hands out disjoint ranges even under contention; a
        // stale `remaining` only mis-sizes the batch, never re-issues an
        // index.
        let begin = core.cursor.fetch_add(batch, Ordering::Relaxed);
        if begin >= core.n {
            return;
        }
        let end = (begin + batch).min(core.n);
        // Racing lanes can push a claim past the watermark; wait for the
        // producer to publish the whole batch before running it.
        if let Some(gate) = core.gate {
            if !gate.wait_past(end - 1, core) {
                return;
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            for i in begin..end {
                (core.f)(i);
            }
        }));
        if let Err(payload) = outcome {
            core.panicked.store(true, Ordering::Relaxed);
            let mut slot = lock(&core.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
            return;
        }
    }
}

/// Raw-slice wrapper letting multiple lanes write disjoint slots of one
/// `&mut [T]`.
#[derive(Debug)]
struct SlotWriter<T> {
    ptr: *mut T,
    len: usize,
}

// Manual impls: the derived ones would add an unwanted `T: Copy` bound —
// the writer is a pointer-and-length pair regardless of `T`.
impl<T> Clone for SlotWriter<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SlotWriter<T> {}

// SAFETY: only used for disjoint per-index access from pool jobs (each
// index is claimed exactly once), so no two threads alias a slot.
unsafe impl<T: Send> Send for SlotWriter<T> {}
// SAFETY: see `Send`; shared access is index-partitioned, never aliased.
unsafe impl<T: Send> Sync for SlotWriter<T> {}

impl<T> SlotWriter<T> {
    /// Wraps a mutable slice for disjoint per-index writes.
    fn new(out: &mut [T]) -> Self {
        Self {
            ptr: out.as_mut_ptr(),
            len: out.len(),
        }
    }

    /// # Safety
    ///
    /// `i` must be `< len`, and no other thread may access slot `i`
    /// concurrently.
    unsafe fn with(&self, i: usize, f: impl FnOnce(&mut T)) {
        debug_assert!(i < self.len);
        f(&mut *self.ptr.add(i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_matches_serial_for_every_lane_count() {
        let expected: Vec<u64> = (0..997u64).map(|i| i * i + 7).collect();
        for threads in 1..=8 {
            let pool = WorkerPool::new(threads);
            let got = pool.map(997, |i| (i as u64) * (i as u64) + 7);
            assert_eq!(got, expected, "{threads} lanes");
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.run(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn pool_reuse_gives_identical_results() {
        let pool = WorkerPool::new(3);
        let a = pool.map(257, |i| i.wrapping_mul(0x9E37_79B9));
        let b = pool.map(257, |i| i.wrapping_mul(0x9E37_79B9));
        assert_eq!(a, b);
        // And many consecutive heterogeneous jobs on one pool stay correct.
        for n in [0usize, 1, 2, 31, 64, 1000] {
            let got = pool.map(n, |i| i + n);
            let want: Vec<usize> = (0..n).map(|i| i + n).collect();
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn for_each_slot_writes_disjoint_slots() {
        let pool = WorkerPool::new(5);
        let mut out = vec![0u32; 513];
        pool.for_each_slot(&mut out, |i, slot| *slot = i as u32 + 1);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u32 + 1);
        }
    }

    #[test]
    fn heterogeneous_work_is_balanced_not_serialized() {
        // One expensive item among many cheap ones: with adaptive claiming
        // the total work still completes and every result is right (the
        // old static-chunk scheme is what this replaces; correctness here,
        // wall-clock in the bench harness).
        let pool = WorkerPool::new(4);
        let got = pool.map(401, |i| {
            if i == 13 {
                (0..50_000u64).fold(0u64, |a, x| a ^ x.wrapping_mul(31))
            } else {
                i as u64
            }
        });
        assert_eq!(got[0], 0);
        assert_eq!(got[400], 400);
        assert_eq!(
            got[13],
            (0..50_000u64).fold(0u64, |a, x| a ^ x.wrapping_mul(31))
        );
    }

    #[test]
    fn single_lane_pool_is_a_plain_loop() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let got = pool.map(10, |i| i * 3);
        assert_eq!(got, (0..10).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zero_items_is_a_no_op() {
        let pool = WorkerPool::new(4);
        let hits = AtomicU64::new(0);
        pool.run(0, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let pool = WorkerPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(100, |i| {
                assert!(i != 42, "boom at 42");
            });
        }));
        assert!(result.is_err(), "panic must reach the submitter");
        // The pool survives a panicked job and runs the next one.
        let got = pool.map(8, |i| i + 1);
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn reentrant_submission_runs_inline() {
        let pool = WorkerPool::new(2);
        let total = AtomicU64::new(0);
        pool.run(4, |_| {
            // Submitting from inside a job must not deadlock.
            pool.run(3, |j| {
                total.fetch_add(j as u64 + 1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * (1 + 2 + 3));
    }

    #[test]
    fn dropping_an_idle_pool_joins_workers() {
        let pool = WorkerPool::new(6);
        drop(pool); // must not hang
    }

    #[test]
    fn stream_map_matches_fused_serial_for_every_lane_count() {
        let n = 403usize;
        let want_items: Vec<u64> = (0..n as u64).map(|k| k * 3 + 1).collect();
        let want_results: Vec<u64> = want_items.iter().map(|&v| v * v).collect();
        for threads in 1..=8 {
            let pool = WorkerPool::new(threads);
            let (items, results) =
                pool.stream_map(n, |k| k as u64 * 3 + 1, |_, item: &u64| item * item);
            assert_eq!(items, want_items, "{threads} lanes");
            assert_eq!(results, want_results, "{threads} lanes");
        }
    }

    #[test]
    fn stream_map_production_order_is_sequential() {
        // The producer must be called with 0, 1, 2, ... in order on the
        // submitting thread, regardless of consumer scheduling.
        let pool = WorkerPool::new(4);
        let mut seen = Vec::new();
        let (items, _) = pool.stream_map(
            100,
            |k| {
                seen.push(k);
                k
            },
            |_, &item| item,
        );
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        assert_eq!(items, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn stream_map_with_slow_producer_still_completes() {
        let pool = WorkerPool::new(4);
        let (_, results) = pool.stream_map(
            24,
            |k| {
                std::thread::sleep(std::time::Duration::from_micros(200));
                k as u32
            },
            |_, &item| item + 1,
        );
        assert_eq!(results, (1..=24).collect::<Vec<u32>>());
    }

    #[test]
    fn stream_map_consumer_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.stream_map(
                64,
                |k| k,
                |_, &item| {
                    assert!(item != 17, "boom at 17");
                    item
                },
            );
        }));
        assert!(result.is_err(), "consumer panic must reach the submitter");
        let got = pool.map(4, |i| i);
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn stream_map_producer_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.stream_map(
                64,
                |k| {
                    assert!(k != 9, "producer boom at 9");
                    k
                },
                |_, &item| item,
            );
        }));
        assert!(result.is_err(), "producer panic must reach the submitter");
        let got = pool.map(4, |i| i + 1);
        assert_eq!(got, vec![1, 2, 3, 4]);
    }

    #[test]
    fn stream_map_reentrant_submission_runs_fused_serial() {
        let pool = WorkerPool::new(2);
        let total = AtomicU64::new(0);
        pool.run(3, |_| {
            let (items, results) = pool.stream_map(5, |k| k as u64, |_, &item| item * 2);
            assert_eq!(items, vec![0, 1, 2, 3, 4]);
            total.fetch_add(results.iter().sum::<u64>(), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 3 * 20);
    }
}
