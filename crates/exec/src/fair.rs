//! Fair-share scheduling of many concurrent requests onto one
//! [`WorkerPool`].
//!
//! The pool itself runs one job at a time: a submitter opens a job, every
//! lane drains its cursor, the submitter closes it. That is the right
//! shape for a single CLI run, but a serving daemon has many requests in
//! flight at once, and feeding them to the pool first-come-first-served
//! lets one T2-sized fill request starve every small density query behind
//! it.
//!
//! [`FairPool`] fixes that with a dispatcher thread and round-robin batch
//! quotas:
//!
//! - **Submitters block, the dispatcher runs.** Each request
//!   ([`FairPool::run`] / [`FairPool::run_slots`] /
//!   [`FairPool::with_pool`]) enqueues a descriptor and parks on a
//!   condvar. A single dispatcher thread owns the [`WorkerPool`] and is
//!   the only thread that ever submits pool jobs, so pool jobs never
//!   contend.
//! - **Round-robin quota slices.** The dispatcher repeatedly pops the
//!   front request, runs at most `quota` of its indices as one pool job,
//!   and re-queues it behind every other waiting request. A request with
//!   4 indices therefore completes within one full rotation even while a
//!   64-index request is in flight — bounded by quota-sized, not
//!   request-sized, head-of-line blocking.
//! - **Admission control.** At most `max_inflight` requests may be in
//!   flight; later submitters get [`FairError::Busy`] immediately instead
//!   of queueing without bound, which is the backpressure signal the
//!   serving layer turns into a `Busy` reply frame.
//! - **Cooperative abort.** A request submitted with an abort flag
//!   ([`FairPool::run_abortable`], or the `abort` argument of
//!   [`FairPool::run_slots`]) is cancelled between batches once the flag
//!   is raised — the gate-abort protocol the streamed flow already uses —
//!   so a disconnected client releases its remaining turns instead of
//!   wedging the pool.
//!
//! Determinism is unaffected by any of this: the scheduler only decides
//! *when* index ranges run, never what they compute, and every index
//! still writes its own pre-partitioned slot. Results are bit-identical
//! for every lane count, quota, and request interleaving.
//!
//! The per-batch schedule can be recorded ([`FairOptions::batch_log`],
//! [`FairPool::take_batch_log`]) so tests can assert fairness properties
//! — e.g. that no small request's completion is delayed past a large
//! request's completion.

use crate::sync::thread::JoinHandle;
use crate::sync::{Condvar, Mutex};
use crate::{lock, wait_on, SlotWriter, WorkerPool};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Configuration for a [`FairPool`].
#[derive(Debug, Clone)]
pub struct FairOptions {
    lanes: usize,
    quota: usize,
    max_inflight: usize,
    batch_log: bool,
}

impl FairOptions {
    /// Options for a pool with `lanes` worker lanes, default quota (4
    /// indices per turn), default admission limit (32 requests), and the
    /// batch log disabled.
    pub fn new(lanes: usize) -> Self {
        Self {
            lanes: lanes.max(1),
            quota: 4,
            max_inflight: 32,
            batch_log: false,
        }
    }

    /// Sets the per-turn index quota (clamped to at least 1). Smaller
    /// quotas bound head-of-line blocking more tightly at the cost of
    /// more pool wakeups per request.
    pub fn quota(mut self, quota: usize) -> Self {
        self.quota = quota.max(1);
        self
    }

    /// Sets the admission limit: requests beyond this many in flight are
    /// rejected with [`FairError::Busy`] (clamped to at least 1).
    pub fn max_inflight(mut self, max_inflight: usize) -> Self {
        self.max_inflight = max_inflight.max(1);
        self
    }

    /// Enables recording of every scheduled batch for later retrieval
    /// with [`FairPool::take_batch_log`].
    pub fn batch_log(mut self, on: bool) -> Self {
        self.batch_log = on;
        self
    }
}

/// A fair-share front end multiplexing many concurrent requests onto one
/// [`WorkerPool`]. See the module docs for the scheduling policy.
#[derive(Debug)]
pub struct FairPool {
    shared: Arc<FairShared>,
    dispatcher: Option<JoinHandle<()>>,
    /// Degraded mode when the dispatcher thread could not be spawned
    /// (resource exhaustion): requests run directly on the submitting
    /// thread against this pool — correct, just not interleaved.
    fallback: Option<WorkerPool>,
    lanes: usize,
    quota: usize,
    max_inflight: usize,
}

/// Receipt for a completed request: its scheduler id (matching
/// [`BatchRecord::request`]) and how many batch turns it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FairRun {
    /// Scheduler-assigned request id.
    pub request: u64,
    /// Number of batch turns the request consumed.
    pub batches: usize,
}

/// Why a request did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FairError {
    /// Admission control rejected the request: `inflight` requests were
    /// already in flight.
    Busy {
        /// Requests in flight at rejection time.
        inflight: usize,
    },
    /// The request's abort flag was raised before it finished; some
    /// indices may not have run.
    Aborted,
}

impl std::fmt::Display for FairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FairError::Busy { inflight } => {
                write!(f, "pool busy: {inflight} requests already in flight")
            }
            FairError::Aborted => write!(f, "request aborted before completion"),
        }
    }
}

impl std::error::Error for FairError {}

/// One scheduled batch, as recorded by the batch log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRecord {
    /// The request the batch belonged to.
    pub request: u64,
    /// First index of the batch (0 for exclusive units).
    pub start: usize,
    /// Indices in the batch (0 for exclusive units).
    pub len: usize,
    /// Whether this was the request's final batch.
    pub last: bool,
}

#[derive(Debug)]
struct FairShared {
    state: Mutex<FairState>,
    /// The dispatcher parks here when the queue is empty.
    work_cv: Condvar,
    /// Submitters park here until their request is marked done.
    done_cv: Condvar,
}

#[derive(Debug)]
struct FairState {
    /// Round-robin turn order of in-flight request ids.
    queue: VecDeque<u64>,
    /// In-flight requests. Entries are removed by their own submitter
    /// after `done` is observed, so the dispatcher can always re-find a
    /// request it is mid-turn on.
    requests: Vec<(u64, Request)>,
    next_id: u64,
    /// Requests admitted and not yet retired (admission-control counter).
    inflight: usize,
    shutdown: bool,
    /// Batch schedule, when enabled.
    log: Option<Vec<BatchRecord>>,
}

#[derive(Debug)]
struct Request {
    work: Work,
    done: bool,
    aborted: bool,
    panic: Option<Box<dyn std::any::Any + Send>>,
    batches: usize,
}

#[derive(Debug)]
enum Work {
    /// An indexed job sliced into quota-sized turns.
    Indexed { job: IndexedRef, cursor: usize },
    /// A single-turn unit run with exclusive access to the pool.
    Exclusive { job: Option<ExclusiveRef> },
}

/// Type-erased pointer to the submitter's stack-held [`IndexedJob`]. The
/// submitter keeps the job alive until the dispatcher marks the request
/// done and the submitter itself removes the entry, which is what makes
/// handing this pointer to the dispatcher thread sound (the same
/// blocking-submitter argument as the pool's `JobRef`).
#[derive(Debug, Clone, Copy)]
struct IndexedRef(*const IndexedJob<'static>);

// SAFETY: the pointee is only dereferenced while the submitting thread
// blocks in `submit` keeping it alive (see `IndexedRef` docs), and
// `IndexedJob` only hands out `&self` to `Fn + Sync` closures and shared
// atomics.
unsafe impl Send for IndexedRef {}

/// Type-erased pointer to the submitter's stack-held [`ExclusiveJob`];
/// sound for the same blocking-submitter reason as [`IndexedRef`], and
/// additionally unique: the dispatcher takes the reference out of the
/// request before running it, so the `&mut` inside is never aliased.
#[derive(Debug)]
struct ExclusiveRef(*mut ExclusiveJob<'static>);

// SAFETY: see `ExclusiveRef` docs — the pointee outlives the dispatch
// (blocking submitter) and is dereferenced by exactly one thread.
unsafe impl Send for ExclusiveRef {}

struct IndexedJob<'a> {
    /// Total indices in the request.
    n: usize,
    /// The work: called exactly once per index in `0..n`.
    f: &'a (dyn Fn(usize) + Sync),
    /// Cooperative-abort flag, checked between batches.
    abort: Option<&'a AtomicBool>,
}

impl std::fmt::Debug for IndexedJob<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexedJob").field("n", &self.n).finish()
    }
}

struct ExclusiveJob<'a> {
    f: Option<&'a mut (dyn FnMut(&WorkerPool) + Send)>,
}

impl std::fmt::Debug for ExclusiveJob<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExclusiveJob").finish()
    }
}

/// Index of request `id` in `requests`.
fn pos_of(requests: &[(u64, Request)], id: u64) -> usize {
    requests
        .iter()
        .position(|(rid, _)| *rid == id)
        // A request entry stays in `requests` until its own submitter
        // removes it after observing `done`. pilfill: allow(unwrap)
        .expect("in-flight request entry present")
}

impl FairPool {
    /// Creates a fair pool with `lanes` lanes and default options.
    pub fn new(lanes: usize) -> Self {
        Self::with_options(FairOptions::new(lanes))
    }

    /// Creates a fair pool from explicit [`FairOptions`].
    pub fn with_options(opts: FairOptions) -> Self {
        let shared = Arc::new(FairShared {
            state: Mutex::new(FairState {
                queue: VecDeque::new(),
                requests: Vec::new(),
                next_id: 0,
                inflight: 0,
                shutdown: false,
                log: if opts.batch_log {
                    Some(Vec::new())
                } else {
                    None
                },
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let lanes = opts.lanes;
        let quota = opts.quota;
        let dispatcher_shared = Arc::clone(&shared);
        let spawned = crate::sync::thread::Builder::new()
            .name("pilfill-fair".to_string())
            .spawn(move || {
                // The dispatcher owns the pool: it is the only thread
                // that ever submits pool jobs, so jobs never contend.
                let pool = WorkerPool::new(lanes);
                dispatcher_loop(&dispatcher_shared, &pool, quota);
            });
        let (dispatcher, fallback) = match spawned {
            Ok(handle) => (Some(handle), None),
            Err(_) => (None, Some(WorkerPool::new(lanes))),
        };
        Self {
            shared,
            dispatcher,
            fallback,
            lanes,
            quota,
            max_inflight: opts.max_inflight,
        }
    }

    /// The lane count of the underlying [`WorkerPool`].
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Requests currently in flight (admitted and not yet retired).
    pub fn inflight(&self) -> usize {
        lock(&self.shared.state).inflight
    }

    /// Runs `f(i)` exactly once for every `i` in `0..n`, interleaved
    /// fairly with other in-flight requests. Blocks until the request
    /// completes. Panics raised by `f` are re-raised here.
    pub fn run(&self, n: usize, f: impl Fn(usize) + Sync) -> Result<FairRun, FairError> {
        self.submit_indexed(n, &f, None)
    }

    /// Like [`FairPool::run`], but the request is cancelled between
    /// batches once `abort` is raised, returning [`FairError::Aborted`].
    pub fn run_abortable(
        &self,
        n: usize,
        f: impl Fn(usize) + Sync,
        abort: &AtomicBool,
    ) -> Result<FairRun, FairError> {
        self.submit_indexed(n, &f, Some(abort))
    }

    /// Runs `f(i, &mut out[i])` exactly once for every slot of `out`,
    /// writing results to pre-partitioned disjoint slots — the fair-pool
    /// analogue of [`WorkerPool::for_each_slot`], with an optional abort
    /// flag. Results are bit-identical for every lane count, quota, and
    /// interleaving.
    pub fn run_slots<T: Send>(
        &self,
        out: &mut [T],
        f: impl Fn(usize, &mut T) + Sync,
        abort: Option<&AtomicBool>,
    ) -> Result<FairRun, FairError> {
        let slots = SlotWriter::new(out);
        let n = out.len();
        let job = move |i: usize| {
            // SAFETY: the scheduler claims each index exactly once across
            // all batches, so slot `i` is touched by exactly one thread,
            // and `i < out.len()` == the request size keeps it in bounds.
            unsafe { slots.with(i, |slot| f(i, slot)) };
        };
        self.submit_indexed(n, &job, abort)
    }

    /// Runs `f` once with exclusive access to the underlying pool, as a
    /// single scheduling turn. This is how context builds and rebuilds —
    /// which drive the pool through their own `run` calls — take their
    /// slice of the machine without interleaving inside the build.
    pub fn with_pool<R: Send>(
        &self,
        f: impl FnOnce(&WorkerPool) -> R + Send,
    ) -> Result<R, FairError> {
        if let Some(pool) = &self.fallback {
            return Ok(f(pool));
        }
        let mut f = Some(f);
        let mut out: Option<R> = None;
        {
            let mut call = |pool: &WorkerPool| {
                if let Some(f) = f.take() {
                    out = Some(f(pool));
                }
            };
            let mut job = ExclusiveJob { f: Some(&mut call) };
            let job_ref =
                ExclusiveRef(std::ptr::from_mut(&mut job).cast::<ExclusiveJob<'static>>());
            self.submit(Work::Exclusive { job: Some(job_ref) })?;
        }
        // The dispatcher ran the unit to completion without panicking
        // (a panic would have been re-raised above). pilfill: allow(unwrap)
        Ok(out.expect("exclusive unit ran"))
    }

    /// Drains and returns the batch log (empty when logging is off).
    pub fn take_batch_log(&self) -> Vec<BatchRecord> {
        let mut st = lock(&self.shared.state);
        match &mut st.log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    fn submit_indexed(
        &self,
        n: usize,
        f: &(dyn Fn(usize) + Sync),
        abort: Option<&AtomicBool>,
    ) -> Result<FairRun, FairError> {
        if let Some(pool) = &self.fallback {
            // Degraded mode: slice inline so abort still takes effect
            // between batches.
            let mut start = 0;
            let mut batches = 0;
            while start < n {
                if abort.is_some_and(|a| a.load(Ordering::Relaxed)) {
                    return Err(FairError::Aborted);
                }
                let end = (start + self.quota).min(n);
                pool.run(end - start, |k| f(start + k));
                batches += 1;
                start = end;
            }
            return Ok(FairRun {
                request: 0,
                batches,
            });
        }
        let job = IndexedJob { n, f, abort };
        let job_ref = IndexedRef(std::ptr::from_ref(&job).cast::<IndexedJob<'static>>());
        if n == 0 {
            let mut st = lock(&self.shared.state);
            if st.inflight >= self.max_inflight {
                return Err(FairError::Busy {
                    inflight: st.inflight,
                });
            }
            let id = st.next_id;
            st.next_id += 1;
            return Ok(FairRun {
                request: id,
                batches: 0,
            });
        }
        self.submit(Work::Indexed {
            job: job_ref,
            cursor: 0,
        })
    }

    /// Admits, enqueues, and blocks on one request; the common tail of
    /// every submission path.
    fn submit(&self, work: Work) -> Result<FairRun, FairError> {
        let mut st = lock(&self.shared.state);
        if st.inflight >= self.max_inflight {
            return Err(FairError::Busy {
                inflight: st.inflight,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        st.inflight += 1;
        st.requests.push((
            id,
            Request {
                work,
                done: false,
                aborted: false,
                panic: None,
                batches: 0,
            },
        ));
        st.queue.push_back(id);
        self.shared.work_cv.notify_all();
        loop {
            let pos = pos_of(&st.requests, id);
            if st.requests[pos].1.done {
                break;
            }
            st = wait_on(&self.shared.done_cv, st);
        }
        let pos = pos_of(&st.requests, id);
        let (_, req) = st.requests.swap_remove(pos);
        st.inflight -= 1;
        drop(st);
        if let Some(payload) = req.panic {
            resume_unwind(payload);
        }
        if req.aborted {
            return Err(FairError::Aborted);
        }
        Ok(FairRun {
            request: id,
            batches: req.batches,
        })
    }
}

impl Drop for FairPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        if let Some(handle) = self.dispatcher.take() {
            // `&mut self` here means no submitter holds `&self`, so the
            // queue is empty and the dispatcher exits at its loop top.
            let _ = handle.join();
        }
    }
}

/// What the dispatcher decided to do with the front-of-queue request.
enum Turn {
    Slice {
        job: IndexedRef,
        start: usize,
        end: usize,
        last: bool,
    },
    Exclusive(ExclusiveRef),
    Cancel,
}

fn dispatcher_loop(shared: &FairShared, pool: &WorkerPool, quota: usize) {
    let mut st = lock(&shared.state);
    loop {
        if st.shutdown {
            return;
        }
        let Some(id) = st.queue.pop_front() else {
            st = wait_on(&shared.work_cv, st);
            continue;
        };
        let turn = {
            let pos = pos_of(&st.requests, id);
            match &mut st.requests[pos].1.work {
                Work::Indexed { job, cursor } => {
                    // SAFETY: the submitter of request `id` is blocked in
                    // `submit` (its entry is not `done`), keeping the
                    // pointee alive.
                    let j = unsafe { &*job.0 };
                    if j.abort.is_some_and(|a| a.load(Ordering::Relaxed)) {
                        Turn::Cancel
                    } else {
                        let start = *cursor;
                        let end = (start + quota).min(j.n);
                        *cursor = end;
                        Turn::Slice {
                            job: *job,
                            start,
                            end,
                            last: end == j.n,
                        }
                    }
                }
                Work::Exclusive { job } => match job.take() {
                    Some(j) => Turn::Exclusive(j),
                    None => Turn::Cancel,
                },
            }
        };
        match turn {
            Turn::Cancel => {
                let pos = pos_of(&st.requests, id);
                let req = &mut st.requests[pos].1;
                req.done = true;
                req.aborted = true;
                shared.done_cv.notify_all();
            }
            Turn::Slice {
                job,
                start,
                end,
                last,
            } => {
                drop(st);
                // SAFETY: as above — the submitter blocks until `done`,
                // keeping the job alive through this batch.
                let j = unsafe { &*job.0 };
                let f = j.f;
                let len = end - start;
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    pool.run(len, |k| f(start + k));
                }));
                st = lock(&shared.state);
                if let Some(log) = &mut st.log {
                    log.push(BatchRecord {
                        request: id,
                        start,
                        len,
                        last,
                    });
                }
                let pos = pos_of(&st.requests, id);
                let req = &mut st.requests[pos].1;
                req.batches += 1;
                match outcome {
                    Err(payload) => {
                        req.panic = Some(payload);
                        req.done = true;
                        shared.done_cv.notify_all();
                    }
                    Ok(()) if last => {
                        req.done = true;
                        shared.done_cv.notify_all();
                    }
                    Ok(()) => st.queue.push_back(id),
                }
            }
            Turn::Exclusive(job) => {
                drop(st);
                // SAFETY: the submitter blocks until `done`, keeping the
                // pointee alive; the reference was taken out of the
                // request above, so this thread holds the only path to
                // the `&mut` inside.
                let j = unsafe { &mut *job.0 };
                let f = j.f.take();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(f) = f {
                        f(pool);
                    }
                }));
                st = lock(&shared.state);
                if let Some(log) = &mut st.log {
                    log.push(BatchRecord {
                        request: id,
                        start: 0,
                        len: 0,
                        last: true,
                    });
                }
                let pos = pos_of(&st.requests, id);
                let req = &mut st.requests[pos].1;
                req.batches += 1;
                req.done = true;
                if let Err(payload) = outcome {
                    req.panic = Some(payload);
                }
                shared.done_cv.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn spin_work(i: usize) -> u64 {
        std::hint::black_box((0..200u64).fold(i as u64, |a, x| a ^ x.wrapping_mul(31)))
    }

    #[test]
    fn run_slots_matches_serial_for_lane_and_quota_mixes() {
        let want: Vec<u64> = (0..199).map(spin_work).collect();
        for lanes in [1usize, 2, 8] {
            for quota in [1usize, 4, 64] {
                let fair = FairPool::with_options(FairOptions::new(lanes).quota(quota));
                let mut out = vec![0u64; 199];
                fair.run_slots(&mut out, |i, slot| *slot = spin_work(i), None)
                    .unwrap();
                assert_eq!(out, want, "lanes={lanes} quota={quota}");
            }
        }
    }

    #[test]
    fn zero_length_request_completes_without_scheduling() {
        let fair = FairPool::new(2);
        let run = fair.run(0, |_| panic!("no index should run")).unwrap();
        assert_eq!(run.batches, 0);
    }

    #[test]
    fn with_pool_returns_the_closure_result() {
        let fair = FairPool::new(2);
        let got = fair.with_pool(|pool| pool.map(5, |i| i * i)).unwrap();
        assert_eq!(got, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn concurrent_requests_interleave_and_all_complete() {
        let fair = FairPool::with_options(FairOptions::new(4).quota(2));
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..6usize)
                .map(|t| {
                    let fair = &fair;
                    s.spawn(move || {
                        let mut out = vec![0u64; 50 + t];
                        fair.run_slots(&mut out, |i, slot| *slot = (i as u64) * 3 + t as u64, None)
                            .map(|_| out)
                    })
                })
                .collect();
            for (t, h) in handles.into_iter().enumerate() {
                let out = h.join().unwrap().unwrap();
                assert_eq!(out.len(), 50 + t);
                for (i, &v) in out.iter().enumerate() {
                    assert_eq!(v, (i as u64) * 3 + t as u64);
                }
            }
        });
    }

    #[test]
    fn abort_flag_cancels_between_batches() {
        let fair = FairPool::with_options(FairOptions::new(1).quota(4));
        let abort = AtomicBool::new(false);
        let hits = AtomicUsize::new(0);
        let got = fair.run_abortable(
            100,
            |_| {
                hits.fetch_add(1, Ordering::Relaxed);
                abort.store(true, Ordering::Relaxed);
            },
            &abort,
        );
        assert_eq!(got, Err(FairError::Aborted));
        // The first batch may finish, but no later batch starts.
        assert!(hits.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn admission_control_returns_busy_then_recovers() {
        let fair = FairPool::with_options(FairOptions::new(1).max_inflight(1));
        let hold = AtomicBool::new(true);
        std::thread::scope(|s| {
            let occupant = s.spawn(|| {
                fair.with_pool(|_| {
                    while hold.load(Ordering::Relaxed) {
                        std::thread::yield_now();
                    }
                })
            });
            while fair.inflight() < 1 {
                std::thread::yield_now();
            }
            let got = fair.run(8, |_| {});
            assert!(matches!(got, Err(FairError::Busy { inflight: 1 })));
            hold.store(false, Ordering::Relaxed);
            occupant.join().unwrap().unwrap();
        });
        assert!(fair.run(8, |_| {}).is_ok(), "capacity restored");
    }

    #[test]
    fn panics_propagate_and_the_pool_survives() {
        let fair = FairPool::new(2);
        let got = catch_unwind(AssertUnwindSafe(|| {
            let _ = fair.run(40, |i| assert!(i != 7, "boom at 7"));
        }));
        assert!(got.is_err(), "panic must reach the submitter");
        let mut out = vec![0u32; 16];
        fair.run_slots(&mut out, |i, slot| *slot = i as u32 + 1, None)
            .unwrap();
        assert_eq!(out, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn with_pool_panic_propagates_and_the_pool_survives() {
        let fair = FairPool::new(2);
        let got = catch_unwind(AssertUnwindSafe(|| {
            let _ = fair.with_pool(|_| panic!("exclusive boom"));
        }));
        assert!(got.is_err());
        assert_eq!(fair.with_pool(|p| p.lanes()).unwrap(), 2);
    }

    #[test]
    fn fairness_small_requests_finish_before_large() {
        // One 64-index request and eight 4-index requests in flight: with
        // quota 4, every small request completes in one turn of the
        // rotation, so none may be delayed past the large request's
        // completion.
        let fair = FairPool::with_options(FairOptions::new(2).quota(4).batch_log(true));
        let hold = AtomicBool::new(true);
        std::thread::scope(|s| {
            // Occupy the dispatcher until every request is enqueued, so
            // the rotation starts with all nine waiting.
            let blocker = s.spawn(|| {
                fair.with_pool(|_| {
                    while hold.load(Ordering::Relaxed) {
                        std::thread::yield_now();
                    }
                })
            });
            let large = s.spawn(|| {
                fair.run(64, |i| {
                    spin_work(i);
                })
            });
            let smalls: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        fair.run(4, |i| {
                            spin_work(i);
                        })
                    })
                })
                .collect();
            while fair.inflight() < 10 {
                std::thread::yield_now();
            }
            hold.store(false, Ordering::Relaxed);
            let large_run = large.join().unwrap().unwrap();
            let small_runs: Vec<FairRun> = smalls
                .into_iter()
                .map(|h| h.join().unwrap().unwrap())
                .collect();
            blocker.join().unwrap().unwrap();

            let log = fair.take_batch_log();
            let last_pos = |id: u64| {
                log.iter()
                    .position(|r| r.request == id && r.last)
                    .unwrap_or_else(|| panic!("no final batch for request {id}"))
            };
            assert_eq!(large_run.batches, 16, "64 indices at quota 4");
            let large_done = last_pos(large_run.request);
            for small in &small_runs {
                assert_eq!(small.batches, 1, "4 indices fit one quota turn");
                assert!(
                    last_pos(small.request) < large_done,
                    "small request {} delayed past the large request",
                    small.request
                );
            }
        });
    }

    #[test]
    fn batch_log_is_off_by_default() {
        let fair = FairPool::new(2);
        let _ = fair.run(16, |_| {}).unwrap();
        assert!(fair.take_batch_log().is_empty());
    }
}
