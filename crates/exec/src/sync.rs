//! Synchronization-primitive shim.
//!
//! The pool's concurrency surface — its atomics, locks, condvars, and
//! thread spawning — goes through this module instead of naming `std`
//! directly. Normally the re-exports below *are* the `std` types, so the
//! shim compiles away to nothing. Under `--cfg pilfill_check` (set via
//! `RUSTFLAGS`, see `scripts/ci.sh`) they swap to the shadow primitives
//! of the `pilfill-check` bounded model checker, which turn every atomic
//! access, lock acquisition, and condvar wait into a visible operation a
//! cooperative scheduler can interleave and verify. That lets
//! `tests/model_pool.rs` run the *real* pool protocols — not a
//! transcription — under exhaustive schedule exploration.
//!
//! Keep the surface minimal: only the types the pool actually uses are
//! re-exported, so a new primitive sneaking into the pool without model
//! coverage shows up as a compile error here first.

#[cfg(not(pilfill_check))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicUsize};
#[cfg(not(pilfill_check))]
pub(crate) use std::sync::{Condvar, Mutex, MutexGuard};
#[cfg(not(pilfill_check))]
pub(crate) use std::thread;

#[cfg(pilfill_check)]
pub(crate) use pilfill_check::sync::{AtomicBool, AtomicUsize, Condvar, Mutex, MutexGuard};
#[cfg(pilfill_check)]
pub(crate) use pilfill_check::thread;
