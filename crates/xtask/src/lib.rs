//! # pilfill-audit (`xtask`)
//!
//! A zero-dependency static-analysis layer for the PIL-Fill workspace.
//! PR 1 removed every external crate, which means no upstream library is
//! vetting our integer geometry for us; this tool is the in-repo
//! replacement: a source auditor that tokenizes every Rust file (string,
//! comment and `#[cfg(test)]`-aware — no `syn`) and enforces the repo's
//! soundness rules with `file:line` diagnostics, severity levels, a
//! machine-readable JSON report and inline suppressions.
//!
//! Run it with:
//!
//! ```text
//! cargo run -p xtask -- lint [--json] [--deny-warnings] [--root DIR]
//! ```
//!
//! See [`rules::Rule`] for the rule set and [`rules::lint_source`] for
//! the per-file entry point (used directly by the fixture tests).

pub mod rules;
pub mod scan;

use pilfill_diag::{JsonWriter, RuleCounts};
use rules::LintReport;
use std::path::{Path, PathBuf};

/// Directories under the repo root whose `src/` trees are library code.
///
/// Test trees (`tests/`, `benches/`, `examples/`) are intentionally not
/// walked: every rule is scoped to non-test library code.
fn library_roots(repo: &Path) -> Vec<PathBuf> {
    let mut roots = Vec::new();
    let crates = repo.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.join("src").is_dir())
            .map(|p| p.join("src"))
            .collect();
        dirs.sort();
        roots.extend(dirs);
    }
    if repo.join("src").is_dir() {
        roots.push(repo.join("src"));
    }
    roots
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints every library source file under `repo`, in deterministic path
/// order.
///
/// # Errors
///
/// Returns the first unreadable source file as an I/O error.
pub fn lint_repo(repo: &Path) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    for root in library_roots(repo) {
        let mut files = Vec::new();
        rust_files(&root, &mut files);
        for file in files {
            let text = std::fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(repo)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            report.merge(rules::lint_source(&rel, &text));
        }
    }
    report.merge(rules::lint_manifests(&workspace_manifests(repo)?));
    Ok(report)
}

/// Collects `(repo-relative path, text)` for the root manifest and every
/// crate manifest, in deterministic order, for the `layering` rule.
fn workspace_manifests(repo: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut paths = vec![repo.join("Cargo.toml")];
    if let Ok(entries) = std::fs::read_dir(repo.join("crates")) {
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .map(|p| p.join("Cargo.toml"))
            .filter(|p| p.is_file())
            .collect();
        dirs.sort();
        paths.extend(dirs);
    }
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(repo)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.push((rel, text));
    }
    Ok(out)
}

/// Renders the full machine-readable report consumed by CI.
pub fn render_json(report: &LintReport) -> String {
    let counts = RuleCounts::tally(&report.diagnostics);
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("tool", "pilfill-audit");
    w.field_str("version", env!("CARGO_PKG_VERSION"));
    w.field_u64("files_scanned", report.files_scanned as u64);
    w.field_u64("errors", report.errors() as u64);
    w.field_u64("warnings", report.warnings() as u64);
    w.field_u64("suppressed", report.suppressed as u64);
    w.key("counts");
    counts.write_json(&mut w);
    w.key("diagnostics");
    w.begin_array();
    for d in &report.diagnostics {
        d.write_json(&mut w);
    }
    w.end_array();
    w.end_object();
    w.finish()
}
