//! `cargo run -p xtask -- lint`: the repo audit gate.
//!
//! Text diagnostics and the per-rule summary go to stderr; `--json`
//! prints the machine-readable report on stdout (CI archives it). The
//! process exits non-zero when any error-severity finding survives
//! suppression, or when `--deny-warnings` is set and warnings remain.

use pilfill_diag::RuleCounts;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "pilfill-audit — PIL-Fill repo static analysis

USAGE: cargo run -p xtask -- <command> [options]

COMMANDS:
  lint     audit all library sources
             --json           print the JSON report on stdout
             --deny-warnings  treat warnings as fatal
             --root DIR       repo root (default: this workspace)
  rules    list the rule set
  help     show this text"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("rules") => {
            for rule in xtask::rules::ALL_RULES {
                eprintln!(
                    "{:<13} {:<8} {}",
                    rule.id(),
                    rule.severity().name(),
                    rule.describe()
                );
            }
            ExitCode::SUCCESS
        }
        Some("help") | None => {
            eprintln!("{}", usage());
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn lint(opts: &[String]) -> ExitCode {
    let mut json = false;
    let mut deny_warnings = false;
    // Default to the workspace this binary was built from.
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let mut it = opts.iter();
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory\n\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown option `{other}`\n\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    let report = match xtask::lint_repo(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot read sources under {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for d in &report.diagnostics {
        eprintln!("{d}");
    }
    let counts = RuleCounts::tally(&report.diagnostics);
    if !counts.is_empty() {
        eprintln!("\nfindings by rule:");
        eprint!("{}", counts.render_text());
    }
    eprintln!(
        "pilfill-audit: {} files, {} errors, {} warnings, {} suppressed",
        report.files_scanned,
        report.errors(),
        report.warnings(),
        report.suppressed
    );
    if json {
        println!("{}", xtask::render_json(&report));
    }

    let failed = report.errors() > 0 || (deny_warnings && report.warnings() > 0);
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
