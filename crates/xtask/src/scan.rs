//! Lexical scanner for the repo linter.
//!
//! Rules must never fire on text inside string literals, comments, or
//! `#[cfg(test)]` regions, so before any rule runs a source file is
//! reduced to a *code view*: the same lines with every comment and
//! string-literal body blanked out (string delimiters are kept so call
//! shapes like `.expect("...")` remain recognizable), plus a per-line
//! mask of which lines sit inside test-only code.
//!
//! This is a line-faithful scanner, not a parser: it understands line
//! and nested block comments, plain/raw/byte strings, char literals vs.
//! lifetimes, and brace-matched `#[cfg(test)]` / `#[test]` item bodies.
//! That is enough to anchor every diagnostic to an exact `file:line`
//! without pulling a full Rust grammar into the workspace.

/// A scanned source file: raw text plus the derived code view.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path (used verbatim in diagnostics).
    pub path: String,
    /// The original lines.
    pub raw: Vec<String>,
    /// The lines with comments and string bodies blanked.
    pub code: Vec<String>,
    /// `true` for lines inside `#[cfg(test)]` or `#[test]` item bodies.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Scans `text` into a code view.
    pub fn parse(path: impl Into<String>, text: &str) -> Self {
        let raw: Vec<String> = text.lines().map(str::to_owned).collect();
        let code = strip_lines(text);
        debug_assert_eq!(raw.len(), code.len());
        let in_test = test_mask(&code);
        Self {
            path: path.into(),
            raw,
            code,
            in_test,
        }
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// `true` for an empty file.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }
}

/// Blanks comments and string-literal bodies, preserving line structure.
fn strip_lines(text: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum St {
        Code,
        Block(u32),
        Str,
        RawStr(usize),
    }
    let mut st = St::Code;
    let mut out = Vec::new();
    let mut line = String::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            out.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        match st {
            St::Code => match c {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    // Line comment (incl. doc comments): blank to newline.
                    while i < chars.len() && chars[i] != '\n' {
                        line.push(' ');
                        i += 1;
                    }
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    st = St::Block(1);
                    line.push_str("  ");
                    i += 2;
                }
                '"' => {
                    st = St::Str;
                    line.push('"');
                    i += 1;
                }
                'r' | 'b' if is_raw_string_start(&chars, i) => {
                    let (hashes, skip) = raw_string_open(&chars, i);
                    st = St::RawStr(hashes);
                    for _ in 0..skip {
                        line.push(' ');
                    }
                    line.pop();
                    line.push('"');
                    i += skip;
                }
                '\'' => {
                    if let Some(end) = char_literal_end(&chars, i) {
                        line.push('\'');
                        for _ in i + 1..end {
                            line.push(' ');
                        }
                        line.push('\'');
                        i = end + 1;
                    } else {
                        // Lifetime: keep the tick, let the ident flow.
                        line.push('\'');
                        i += 1;
                    }
                }
                c if c.is_alphanumeric() || c == '_' => {
                    // Consume a full ident/number so a trailing `r`/`b`
                    // inside it is never mistaken for a raw-string prefix.
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        line.push(chars[i]);
                        i += 1;
                    }
                }
                c => {
                    line.push(c);
                    i += 1;
                }
            },
            St::Block(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::Block(depth - 1)
                    };
                    line.push_str("  ");
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = St::Block(depth + 1);
                    line.push_str("  ");
                    i += 2;
                } else {
                    line.push(' ');
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    // Keep line-continuation newlines visible to the
                    // outer loop so line numbering stays in sync.
                    if chars.get(i + 1) == Some(&'\n') {
                        line.push(' ');
                        i += 1;
                    } else {
                        line.push_str("  ");
                        i += 2;
                    }
                } else if c == '"' {
                    st = St::Code;
                    line.push('"');
                    i += 1;
                } else {
                    line.push(' ');
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    st = St::Code;
                    line.push('"');
                    for _ in 0..hashes {
                        line.push(' ');
                    }
                    i += 1 + hashes;
                } else {
                    line.push(' ');
                    i += 1;
                }
            }
        }
    }
    out.push(line);
    // `str::lines` drops a trailing final newline's empty line; mirror it.
    if text.ends_with('\n') {
        out.pop();
    }
    out
}

/// `true` if `chars[i]` starts a raw or byte string prefix (`r"`, `r#"`,
/// `br"`, `b"`, ...).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
    }
    j > i && chars.get(j) == Some(&'"')
}

/// Returns `(hash_count, chars_consumed)` for a raw/byte string opener.
fn raw_string_open(chars: &[char], i: usize) -> (usize, usize) {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
    }
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    // Consume the opening quote too.
    (hashes, j - i + 1)
}

/// `true` if the `"` at `i` is followed by `hashes` `#`s (raw-string close).
fn closes_raw_string(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

/// If `chars[i]` (a `'`) opens a char literal, returns the index of its
/// closing quote; `None` for lifetimes.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char: scan to the closing quote, stepping over
            // every `\x` pair so `'\\'` and `'\''` close correctly.
            let mut j = i + 1;
            while j < chars.len() {
                if chars[j] == '\\' {
                    j += 2;
                    continue;
                }
                if chars[j] == '\'' {
                    return Some(j);
                }
                j += 1;
            }
            None
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(i + 2),
        _ => None,
    }
}

/// Marks every line inside a `#[cfg(test)]` or `#[test]` item body.
fn test_mask(code: &[String]) -> Vec<bool> {
    // Flatten to (line, char) so brace matching can span lines.
    let mut flat: Vec<(usize, char)> = Vec::new();
    for (ln, l) in code.iter().enumerate() {
        for c in l.chars() {
            flat.push((ln, c));
        }
        flat.push((ln, '\n'));
    }
    let text: String = flat.iter().map(|&(_, c)| c).collect();
    let mut mask = vec![false; code.len()];
    for pat in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0;
        while let Some(off) = text[from..].find(pat) {
            let start = from + off;
            from = start + pat.len();
            // Find the body: the first `{` before the item ends (a `;`
            // at depth zero means an item with no body, e.g. `pub use`).
            let mut j = start + pat.len();
            let mut open = None;
            while j < flat.len() {
                match flat[j].1 {
                    '{' => {
                        open = Some(j);
                        break;
                    }
                    ';' => break,
                    _ => j += 1,
                }
            }
            let Some(open) = open else { continue };
            let mut depth = 0usize;
            let mut close = open;
            for (k, &(_, c)) in flat.iter().enumerate().skip(open) {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            close = k;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let first = flat[start].0;
            let last = flat[close].0;
            for m in mask.iter_mut().take(last + 1).skip(first) {
                *m = true;
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked() {
        let f = SourceFile::parse("t.rs", "let x = 1; // unwrap() here\n");
        assert_eq!(f.code[0].trim_end(), "let x = 1;");
        assert!(f.raw[0].contains("unwrap"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a /* one /* two */ still */ b\n/* open\n.unwrap()\n*/ c\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.code[0].replace(' ', ""), "ab");
        assert_eq!(f.code[1].trim(), "");
        assert_eq!(f.code[2].trim(), "");
        assert_eq!(f.code[3].replace(' ', ""), "c");
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn string_bodies_are_blanked_but_delimiters_kept() {
        let f = SourceFile::parse("t.rs", r#"x.expect("boom .unwrap() \" ok");"#);
        let code = &f.code[0];
        assert!(code.contains(".expect(\""));
        assert!(!code.contains("boom"));
        assert!(!code.contains(".unwrap()"));
        assert!(code.ends_with("\");"));
    }

    #[test]
    fn raw_strings_hide_their_bodies() {
        let src = "let s = r#\"panic!(\"x\")\"#; let t = 1;\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.code[0].contains("panic!"));
        assert!(f.code[0].contains("let t = 1;"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = '\\''; let d = '\"'; c }\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.code[0].contains("fn f<'a>(x: &'a str)"));
        // The `'\"'` char literal must not open a string state.
        assert!(f.code[0].contains('c'));
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\npub fn after() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(
            f.in_test,
            vec![false, true, true, true, true, false],
            "{:?}",
            f.in_test
        );
    }

    #[test]
    fn test_attr_fn_is_masked() {
        let src = "fn a() {}\n#[test]\nfn t() {\n    boom();\n}\nfn b() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn ident_containing_r_is_not_a_raw_string() {
        let f = SourceFile::parse("t.rs", "let number = 4; for x in iter { }\n");
        assert!(f.code[0].contains("number = 4"));
        assert!(f.code[0].contains("for x in iter"));
    }
}
