//! The lint rules of `pilfill-audit`.
//!
//! Every rule reports against the code view built by [`crate::scan`], so
//! comments, strings and `#[cfg(test)]` regions never trigger findings.
//! A finding can be suppressed with a `// pilfill: allow(<rule>)` comment
//! on the same or the preceding line (a suppression must explain the
//! invariant that makes the flagged pattern sound), or for a whole file
//! with `// pilfill: allow-file(<rule>)`.

use crate::scan::SourceFile;
use pilfill_diag::{Diagnostic, Severity};

/// The rule set, in reporting order.
pub const ALL_RULES: [Rule; 6] = [
    Rule::Unwrap,
    Rule::FloatEq,
    Rule::AsCast,
    Rule::ProcessExit,
    Rule::MustUse,
    Rule::MissingDocs,
];

/// One lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// No `.unwrap()` / `.expect()` / `panic!` family in library code.
    Unwrap,
    /// No `==` / `!=` where an operand is visibly floating-point.
    FloatEq,
    /// No bare narrowing `as` casts (use `pilfill_geom::units`).
    AsCast,
    /// No `std::process::exit` outside `crates/cli`.
    ProcessExit,
    /// Solver/flow result types must carry `#[must_use]`.
    MustUse,
    /// Public items must have doc comments.
    MissingDocs,
}

impl Rule {
    /// Stable kebab-case identifier (used in diagnostics and `allow(..)`).
    pub const fn id(self) -> &'static str {
        match self {
            Rule::Unwrap => "unwrap",
            Rule::FloatEq => "float-eq",
            Rule::AsCast => "as-cast",
            Rule::ProcessExit => "process-exit",
            Rule::MustUse => "must-use",
            Rule::MissingDocs => "missing-docs",
        }
    }

    /// Default severity.
    pub const fn severity(self) -> Severity {
        match self {
            Rule::Unwrap | Rule::FloatEq | Rule::AsCast | Rule::ProcessExit => Severity::Error,
            Rule::MustUse | Rule::MissingDocs => Severity::Warning,
        }
    }

    /// One-line description for `lint --rules` and the docs table.
    pub const fn describe(self) -> &'static str {
        match self {
            Rule::Unwrap => {
                "no `.unwrap()`, `.expect()`, `panic!`, `unreachable!`, `todo!` or \
                 `unimplemented!` in non-test library code"
            }
            Rule::FloatEq => "no `==`/`!=` comparisons with floating-point operands",
            Rule::AsCast => {
                "no bare narrowing `as` casts (i8/i16/i32/u8/u16/u32/usize/isize/Coord/Area); \
                 use pilfill_geom::units"
            }
            Rule::ProcessExit => "no `std::process::exit` outside crates/cli",
            Rule::MustUse => "solver/flow result types (*Outcome, *Report, ...) need #[must_use]",
            Rule::MissingDocs => "public items need doc comments",
        }
    }
}

/// The outcome of linting one or more files.
#[derive(Debug, Clone, Default)]
#[must_use = "a lint run is pure; dropping the report discards its findings"]
pub struct LintReport {
    /// Files scanned.
    pub files_scanned: usize,
    /// Findings that survived suppression, in file/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by `pilfill: allow` comments.
    pub suppressed: usize,
}

impl LintReport {
    /// Error-severity finding count.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Warning-severity finding count.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: LintReport) {
        self.files_scanned += other.files_scanned;
        self.diagnostics.extend(other.diagnostics);
        self.suppressed += other.suppressed;
    }
}

/// Lints one file's text. `path` should be repo-relative; it is used both
/// for diagnostics and for path-scoped rules (`process-exit`).
pub fn lint_source(path: &str, text: &str) -> LintReport {
    let file = SourceFile::parse(path, text);
    let mut findings: Vec<(Rule, u32, String)> = Vec::new();
    rule_unwrap(&file, &mut findings);
    rule_float_eq(&file, &mut findings);
    rule_as_cast(&file, &mut findings);
    rule_process_exit(&file, &mut findings);
    rule_must_use(&file, &mut findings);
    rule_missing_docs(&file, &mut findings);
    findings.sort_by_key(|&(_, line, _)| line);

    let mut report = LintReport {
        files_scanned: 1,
        ..LintReport::default()
    };
    for (rule, line, message) in findings {
        if is_suppressed(&file, rule, line) {
            report.suppressed += 1;
        } else {
            report.diagnostics.push(Diagnostic::new(
                rule.severity(),
                rule.id(),
                path,
                line,
                message,
            ));
        }
    }
    report
}

/// `true` when `rule` is allowed at 1-based `line` (same-line or
/// preceding-line `pilfill: allow(..)`, or a file-wide `allow-file(..)`).
fn is_suppressed(file: &SourceFile, rule: Rule, line: u32) -> bool {
    let idx = usize::try_from(line.saturating_sub(1)).unwrap_or(0);
    if line_allows(&file.raw[idx], "pilfill: allow(", rule) {
        return true;
    }
    if idx > 0 && line_allows(&file.raw[idx - 1], "pilfill: allow(", rule) {
        return true;
    }
    file.raw
        .iter()
        .any(|l| line_allows(l, "pilfill: allow-file(", rule))
}

fn line_allows(raw: &str, directive: &str, rule: Rule) -> bool {
    let Some(pos) = raw.find(directive) else {
        return false;
    };
    // Directives only count inside comments.
    let before = &raw[..pos];
    if !before.contains("//") {
        return false;
    }
    let rest = &raw[pos + directive.len()..];
    let Some(close) = rest.find(')') else {
        return false;
    };
    rest[..close].split(',').any(|r| r.trim() == rule.id())
}

/// 1-based diagnostic line number for 0-based line index `i`.
fn line_no(i: usize) -> u32 {
    u32::try_from(i + 1).unwrap_or(u32::MAX)
}

/// Searches `line` for `pat` occurrences, returning byte offsets.
fn find_all(line: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(off) = line[from..].find(pat) {
        out.push(from + off);
        from += off + pat.len();
    }
    out
}

fn rule_unwrap(file: &SourceFile, findings: &mut Vec<(Rule, u32, String)>) {
    const PATTERNS: [(&str, &str); 7] = [
        (".unwrap()", "`.unwrap()`"),
        (".unwrap_unchecked()", "`.unwrap_unchecked()`"),
        (".expect(", "`.expect()`"),
        ("panic!(", "`panic!`"),
        ("unreachable!(", "`unreachable!`"),
        ("todo!(", "`todo!`"),
        ("unimplemented!(", "`unimplemented!`"),
    ];
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        for (pat, what) in PATTERNS {
            for off in find_all(code, pat) {
                // `debug_assert!`-style macros may expand to panic!; the
                // source pattern here is a literal call, so only flag the
                // macro itself, not e.g. `core::panic::Location`.
                if pat == "panic!(" && off >= 1 && code.as_bytes()[off - 1] == b'_' {
                    continue; // e.g. `catch_panic!(` style helper names
                }
                findings.push((
                    Rule::Unwrap,
                    line_no(i),
                    format!(
                        "{what} in library code: return a typed error, or document the \
                         invariant and add `// pilfill: allow(unwrap)`"
                    ),
                ));
            }
        }
    }
}

/// `true` if an operand substring shows floating-point evidence.
fn has_float_evidence(s: &str) -> bool {
    let bytes = s.as_bytes();
    // A float literal: digit '.' digit, with a non-identifier char before
    // the first digit run (so tuple indexing `x.0` never matches).
    for i in 0..bytes.len() {
        if bytes[i] == b'.'
            && i > 0
            && bytes[i - 1].is_ascii_digit()
            && i + 1 < bytes.len()
            && (bytes[i + 1].is_ascii_digit() || !bytes[i + 1].is_ascii_alphanumeric())
        {
            // Walk back over the digit run; a preceding ident char means
            // this dot is field/tuple access on an identifier like `x2.0`.
            let mut j = i - 1;
            while j > 0 && bytes[j - 1].is_ascii_digit() {
                j -= 1;
            }
            let lit_start = j == 0
                || (!bytes[j - 1].is_ascii_alphabetic()
                    && bytes[j - 1] != b'_'
                    && bytes[j - 1] != b'.');
            if lit_start && (i + 1 >= bytes.len() || bytes[i + 1].is_ascii_digit()) {
                return true;
            }
        }
    }
    for tok in ["f64", "f32"] {
        for off in find_all(s, tok) {
            let before_ok = off == 0 || {
                let b = bytes[off - 1];
                !b.is_ascii_alphanumeric()
            };
            let after = off + tok.len();
            let after_ok = after >= bytes.len() || {
                let b = bytes[after];
                !b.is_ascii_alphanumeric() && b != b'_'
            };
            // `_f64` suffixes count as evidence too (`1_f64`).
            if after_ok && (before_ok || bytes[off - 1] == b'_') {
                return true;
            }
        }
    }
    false
}

fn rule_float_eq(file: &SourceFile, findings: &mut Vec<(Rule, u32, String)>) {
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        let bytes = code.as_bytes();
        for op in ["==", "!="] {
            for off in find_all(code, op) {
                // Exclude `<=`, `>=`, `!=` handled separately; guard `===`
                // style accidents and pattern arrows.
                if op == "==" {
                    if off > 0 && matches!(bytes[off - 1], b'!' | b'<' | b'>' | b'=') {
                        continue;
                    }
                    if bytes.get(off + 2) == Some(&b'=') {
                        continue;
                    }
                }
                let left_start = code[..off]
                    .rfind([',', ';', '(', '{', '[', '&', '|'])
                    .map_or(0, |p| p + 1);
                let right_end = code[off + 2..]
                    .find([',', ';', ')', '{', '}', ']', '&', '|'])
                    .map_or(code.len(), |p| off + 2 + p);
                let left = &code[left_start..off];
                let right = &code[off + 2..right_end];
                if has_float_evidence(left) || has_float_evidence(right) {
                    findings.push((
                        Rule::FloatEq,
                        line_no(i),
                        format!(
                            "floating-point `{op}` comparison: compare against an epsilon \
                             or use exact integer areas"
                        ),
                    ));
                }
            }
        }
    }
}

/// Cast targets the `as-cast` rule flags: all lossy-or-sign-changing
/// integer targets plus the coordinate aliases (whose sources are usually
/// `usize` indices, i.e. sign-changing).
const NARROWING_TARGETS: [&str; 10] = [
    "i8", "i16", "i32", "u8", "u16", "u32", "usize", "isize", "Coord", "Area",
];

fn rule_as_cast(file: &SourceFile, findings: &mut Vec<(Rule, u32, String)>) {
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        for off in find_all(code, " as ") {
            let after = &code[off + 4..];
            let ty: String = after
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if NARROWING_TARGETS.contains(&ty.as_str()) {
                findings.push((
                    Rule::AsCast,
                    line_no(i),
                    format!(
                        "narrowing `as {ty}` cast: use `pilfill_geom::units` \
                         (index/coord/try_*) so overflow is checked, or justify with \
                         `// pilfill: allow(as-cast)`"
                    ),
                ));
            }
        }
    }
}

fn rule_process_exit(file: &SourceFile, findings: &mut Vec<(Rule, u32, String)>) {
    if file.path.starts_with("crates/cli/") {
        return;
    }
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        if code.contains("process::exit") {
            findings.push((
                Rule::ProcessExit,
                line_no(i),
                "`std::process::exit` outside crates/cli: return an error (or \
                 `std::process::ExitCode`) so library callers keep control"
                    .to_string(),
            ));
        }
    }
}

/// Type-name suffixes that mark a solver/flow result type.
const MUST_USE_SUFFIXES: [&str; 5] = ["Outcome", "Report", "Solution", "Analysis", "Impact"];

fn rule_must_use(file: &SourceFile, findings: &mut Vec<(Rule, u32, String)>) {
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        let trimmed = code.trim_start();
        let Some(name) = ["pub struct ", "pub enum "]
            .iter()
            .find_map(|kw| trimmed.strip_prefix(kw))
        else {
            continue;
        };
        let name: String = name
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !MUST_USE_SUFFIXES.iter().any(|s| name.ends_with(s)) {
            continue;
        }
        // Walk up over attributes and doc comments looking for #[must_use].
        let mut has = false;
        for j in (0..i).rev() {
            let above = file.raw[j].trim();
            if above.starts_with("#[") || above.starts_with("#![") {
                if above.contains("must_use") {
                    has = true;
                }
                continue;
            }
            if above.starts_with("///") || above.starts_with("//") || above.ends_with(")]") {
                continue;
            }
            break;
        }
        if !has {
            findings.push((
                Rule::MustUse,
                line_no(i),
                format!("result type `{name}` is missing `#[must_use]`"),
            ));
        }
    }
}

fn rule_missing_docs(file: &SourceFile, findings: &mut Vec<(Rule, u32, String)>) {
    const ITEMS: [&str; 9] = [
        "pub fn ",
        "pub const fn ",
        "pub unsafe fn ",
        "pub struct ",
        "pub enum ",
        "pub trait ",
        "pub type ",
        "pub const ",
        "pub static ",
    ];
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        let trimmed = code.trim_start();
        let is_item = ITEMS.iter().any(|kw| trimmed.starts_with(kw))
            || (trimmed.starts_with("pub mod ") && trimmed.contains('{'));
        if !is_item {
            continue;
        }
        // Walk up over attributes; the nearest non-attribute line must be
        // a doc comment.
        let mut documented = false;
        for j in (0..i).rev() {
            let above = file.raw[j].trim();
            if above.starts_with("#[") || above.starts_with("#![") || above.ends_with(")]") {
                continue;
            }
            documented = above.starts_with("///")
                || above.starts_with("/**")
                || above.starts_with("*/")
                || above.ends_with("*/");
            break;
        }
        if !documented {
            let name: String = trimmed
                .split_whitespace()
                .nth(2)
                .unwrap_or("")
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            findings.push((
                Rule::MissingDocs,
                line_no(i),
                format!("public item `{name}` has no doc comment"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(report: &LintReport) -> Vec<&str> {
        report.diagnostics.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn unwrap_flagged_only_outside_tests() {
        let src =
            "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(rules_fired(&report), vec!["unwrap"]);
        assert_eq!(report.diagnostics[0].line, 1);
    }

    #[test]
    fn expect_and_panic_family_flagged() {
        let src = "fn f() { a.expect(\"x\"); panic!(\"y\"); unreachable!(); todo!(); }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(report.diagnostics.len(), 4);
    }

    #[test]
    fn suppression_same_line_and_previous_line() {
        let src = "fn f() { x.unwrap(); } // invariant: x checked above; pilfill: allow(unwrap)\n\
                   // guaranteed non-empty; pilfill: allow(unwrap)\nfn g() { y.unwrap(); }\n\
                   fn h() { z.unwrap(); }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(report.suppressed, 2);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].line, 4);
    }

    #[test]
    fn allow_file_suppresses_everywhere() {
        let src =
            "// pilfill: allow-file(unwrap)\nfn f() { x.unwrap(); }\nfn g() { y.unwrap(); }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.suppressed, 2);
    }

    #[test]
    fn directive_outside_comment_does_not_suppress() {
        let src = "fn f() { let pilfill_allow = \"pilfill: allow(unwrap)\"; x.unwrap(); }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(report.diagnostics.len(), 1);
    }

    #[test]
    fn float_eq_detected_by_literal_or_type_evidence() {
        let src = "fn f() { if x == 0.5 { } if y as f64 != z { } if a == b { } }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(
            rules_fired(&report)
                .iter()
                .filter(|r| **r == "float-eq")
                .count(),
            2
        );
    }

    #[test]
    fn tuple_index_is_not_float_evidence() {
        let src = "fn f() { if cell.0 == other.0 { } }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn narrowing_casts_flagged_widening_ignored() {
        let src = "fn f() { let a = x as usize; let b = y as u32; let c = z as u64; let d = w as f64; }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(
            rules_fired(&report),
            vec!["as-cast", "as-cast"],
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn process_exit_allowed_in_cli_only() {
        let src = "fn f() { std::process::exit(1); }\n";
        assert!(lint_source("crates/cli/src/main.rs", src)
            .diagnostics
            .is_empty());
        assert_eq!(
            rules_fired(&lint_source("crates/core/src/a.rs", src)),
            vec!["process-exit"]
        );
    }

    #[test]
    fn must_use_required_on_result_types() {
        let src = "/// Doc.\npub struct FlowOutcome { }\n/// Doc.\n#[must_use]\npub struct DrcReport { }\n/// Doc.\npub struct Config { }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(rules_fired(&report), vec!["must-use"]);
        assert_eq!(report.diagnostics[0].line, 2);
    }

    #[test]
    fn missing_docs_on_undocumented_public_item() {
        let src = "/// Documented.\npub fn ok() {}\n\npub fn bad() {}\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(rules_fired(&report), vec!["missing-docs"]);
        assert_eq!(report.diagnostics[0].line, 4);
    }

    #[test]
    fn attributes_between_doc_and_item_are_skipped() {
        let src = "/// Doc.\n#[derive(Debug, Clone)]\n#[must_use]\npub struct DrcReport { }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn banned_patterns_in_strings_and_comments_ignored() {
        let src = "// calls .unwrap() internally\nfn f() { log(\"don't panic!(now)\"); }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn report_severity_counters() {
        let src = "pub fn bad() { x.unwrap(); }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(report.errors(), 1);
        assert_eq!(report.warnings(), 1); // missing-docs
    }
}
