//! The lint rules of `pilfill-audit`.
//!
//! Every rule reports against the code view built by [`crate::scan`], so
//! comments, strings and `#[cfg(test)]` regions never trigger findings.
//! A finding can be suppressed with a `// pilfill: allow(<rule>)` comment
//! on the same or the preceding line (a suppression must explain the
//! invariant that makes the flagged pattern sound), or for a whole file
//! with `// pilfill: allow-file(<rule>)`.

use crate::scan::SourceFile;
use pilfill_diag::{Diagnostic, Severity};

/// The rule set, in reporting order.
pub const ALL_RULES: [Rule; 9] = [
    Rule::Unwrap,
    Rule::FloatEq,
    Rule::AsCast,
    Rule::ProcessExit,
    Rule::MustUse,
    Rule::MissingDocs,
    Rule::UnsafeComment,
    Rule::AtomicOrdering,
    Rule::Layering,
];

/// One lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// No `.unwrap()` / `.expect()` / `panic!` family in library code.
    Unwrap,
    /// No `==` / `!=` where an operand is visibly floating-point.
    FloatEq,
    /// No bare narrowing `as` casts (use `pilfill_geom::units`).
    AsCast,
    /// No `std::process::exit` outside `crates/cli`.
    ProcessExit,
    /// Solver/flow result types must carry `#[must_use]`.
    MustUse,
    /// Public items must have doc comments.
    MissingDocs,
    /// Every `unsafe` block / `unsafe impl` needs a `// SAFETY:` rationale.
    UnsafeComment,
    /// No `Relaxed` store paired with an acquiring load of the same
    /// atomic, and no `SeqCst` outside the allowlist.
    AtomicOrdering,
    /// Crate dependencies must respect the workspace layer order
    /// (checked from `Cargo.toml` edges via [`lint_manifests`]).
    Layering,
}

impl Rule {
    /// Stable kebab-case identifier (used in diagnostics and `allow(..)`).
    pub const fn id(self) -> &'static str {
        match self {
            Rule::Unwrap => "unwrap",
            Rule::FloatEq => "float-eq",
            Rule::AsCast => "as-cast",
            Rule::ProcessExit => "process-exit",
            Rule::MustUse => "must-use",
            Rule::MissingDocs => "missing-docs",
            Rule::UnsafeComment => "unsafe-no-safety-comment",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::Layering => "layering",
        }
    }

    /// Default severity.
    pub const fn severity(self) -> Severity {
        match self {
            Rule::Unwrap | Rule::FloatEq | Rule::AsCast | Rule::ProcessExit => Severity::Error,
            Rule::UnsafeComment | Rule::AtomicOrdering | Rule::Layering => Severity::Error,
            Rule::MustUse | Rule::MissingDocs => Severity::Warning,
        }
    }

    /// One-line description for `lint --rules` and the docs table.
    pub const fn describe(self) -> &'static str {
        match self {
            Rule::Unwrap => {
                "no `.unwrap()`, `.expect()`, `panic!`, `unreachable!`, `todo!` or \
                 `unimplemented!` in non-test library code"
            }
            Rule::FloatEq => "no `==`/`!=` comparisons with floating-point operands",
            Rule::AsCast => {
                "no bare narrowing `as` casts (i8/i16/i32/u8/u16/u32/usize/isize/Coord/Area); \
                 use pilfill_geom::units"
            }
            Rule::ProcessExit => "no `std::process::exit` outside crates/cli",
            Rule::MustUse => "solver/flow result types (*Outcome, *Report, ...) need #[must_use]",
            Rule::MissingDocs => "public items need doc comments",
            Rule::UnsafeComment => {
                "every `unsafe` block and `unsafe impl` needs a `// SAFETY:` comment \
                 stating the upheld invariant"
            }
            Rule::AtomicOrdering => {
                "no `Relaxed` store of an atomic that is elsewhere loaded with an \
                 acquiring ordering, and no `SeqCst` outside the allowlist"
            }
            Rule::Layering => {
                "crate dependency edges must point down the workspace layer order \
                 (prng/geom/diag/solver -> check/layout -> exec/rc/density -> core -> ...)"
            }
        }
    }
}

/// The outcome of linting one or more files.
#[derive(Debug, Clone, Default)]
#[must_use = "a lint run is pure; dropping the report discards its findings"]
pub struct LintReport {
    /// Files scanned.
    pub files_scanned: usize,
    /// Findings that survived suppression, in file/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by `pilfill: allow` comments.
    pub suppressed: usize,
}

impl LintReport {
    /// Error-severity finding count.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Warning-severity finding count.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: LintReport) {
        self.files_scanned += other.files_scanned;
        self.diagnostics.extend(other.diagnostics);
        self.suppressed += other.suppressed;
    }
}

/// Lints one file's text. `path` should be repo-relative; it is used both
/// for diagnostics and for path-scoped rules (`process-exit`).
pub fn lint_source(path: &str, text: &str) -> LintReport {
    let file = SourceFile::parse(path, text);
    let mut findings: Vec<(Rule, u32, String)> = Vec::new();
    rule_unwrap(&file, &mut findings);
    rule_float_eq(&file, &mut findings);
    rule_as_cast(&file, &mut findings);
    rule_process_exit(&file, &mut findings);
    rule_must_use(&file, &mut findings);
    rule_missing_docs(&file, &mut findings);
    rule_unsafe_comment(&file, &mut findings);
    rule_atomic_ordering(&file, &mut findings);
    findings.sort_by_key(|&(_, line, _)| line);

    let mut report = LintReport {
        files_scanned: 1,
        ..LintReport::default()
    };
    for (rule, line, message) in findings {
        if is_suppressed(&file, rule, line) {
            report.suppressed += 1;
        } else {
            report.diagnostics.push(Diagnostic::new(
                rule.severity(),
                rule.id(),
                path,
                line,
                message,
            ));
        }
    }
    report
}

/// `true` when `rule` is allowed at 1-based `line` (same-line or
/// preceding-line `pilfill: allow(..)`, or a file-wide `allow-file(..)`).
fn is_suppressed(file: &SourceFile, rule: Rule, line: u32) -> bool {
    let idx = usize::try_from(line.saturating_sub(1)).unwrap_or(0);
    if line_allows(&file.raw[idx], "pilfill: allow(", rule) {
        return true;
    }
    if idx > 0 && line_allows(&file.raw[idx - 1], "pilfill: allow(", rule) {
        return true;
    }
    file.raw
        .iter()
        .any(|l| line_allows(l, "pilfill: allow-file(", rule))
}

fn line_allows(raw: &str, directive: &str, rule: Rule) -> bool {
    let Some(pos) = raw.find(directive) else {
        return false;
    };
    // Directives only count inside comments.
    let before = &raw[..pos];
    if !before.contains("//") {
        return false;
    }
    let rest = &raw[pos + directive.len()..];
    let Some(close) = rest.find(')') else {
        return false;
    };
    rest[..close].split(',').any(|r| r.trim() == rule.id())
}

/// 1-based diagnostic line number for 0-based line index `i`.
fn line_no(i: usize) -> u32 {
    u32::try_from(i + 1).unwrap_or(u32::MAX)
}

/// Searches `line` for `pat` occurrences, returning byte offsets.
fn find_all(line: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(off) = line[from..].find(pat) {
        out.push(from + off);
        from += off + pat.len();
    }
    out
}

fn rule_unwrap(file: &SourceFile, findings: &mut Vec<(Rule, u32, String)>) {
    const PATTERNS: [(&str, &str); 7] = [
        (".unwrap()", "`.unwrap()`"),
        (".unwrap_unchecked()", "`.unwrap_unchecked()`"),
        (".expect(", "`.expect()`"),
        ("panic!(", "`panic!`"),
        ("unreachable!(", "`unreachable!`"),
        ("todo!(", "`todo!`"),
        ("unimplemented!(", "`unimplemented!`"),
    ];
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        for (pat, what) in PATTERNS {
            for off in find_all(code, pat) {
                // `debug_assert!`-style macros may expand to panic!; the
                // source pattern here is a literal call, so only flag the
                // macro itself, not e.g. `core::panic::Location`.
                if pat == "panic!(" && off >= 1 && code.as_bytes()[off - 1] == b'_' {
                    continue; // e.g. `catch_panic!(` style helper names
                }
                findings.push((
                    Rule::Unwrap,
                    line_no(i),
                    format!(
                        "{what} in library code: return a typed error, or document the \
                         invariant and add `// pilfill: allow(unwrap)`"
                    ),
                ));
            }
        }
    }
}

/// `true` if an operand substring shows floating-point evidence.
fn has_float_evidence(s: &str) -> bool {
    let bytes = s.as_bytes();
    // A float literal: digit '.' digit, with a non-identifier char before
    // the first digit run (so tuple indexing `x.0` never matches).
    for i in 0..bytes.len() {
        if bytes[i] == b'.'
            && i > 0
            && bytes[i - 1].is_ascii_digit()
            && i + 1 < bytes.len()
            && (bytes[i + 1].is_ascii_digit() || !bytes[i + 1].is_ascii_alphanumeric())
        {
            // Walk back over the digit run; a preceding ident char means
            // this dot is field/tuple access on an identifier like `x2.0`.
            let mut j = i - 1;
            while j > 0 && bytes[j - 1].is_ascii_digit() {
                j -= 1;
            }
            let lit_start = j == 0
                || (!bytes[j - 1].is_ascii_alphabetic()
                    && bytes[j - 1] != b'_'
                    && bytes[j - 1] != b'.');
            if lit_start && (i + 1 >= bytes.len() || bytes[i + 1].is_ascii_digit()) {
                return true;
            }
        }
    }
    for tok in ["f64", "f32"] {
        for off in find_all(s, tok) {
            let before_ok = off == 0 || {
                let b = bytes[off - 1];
                !b.is_ascii_alphanumeric()
            };
            let after = off + tok.len();
            let after_ok = after >= bytes.len() || {
                let b = bytes[after];
                !b.is_ascii_alphanumeric() && b != b'_'
            };
            // `_f64` suffixes count as evidence too (`1_f64`).
            if after_ok && (before_ok || bytes[off - 1] == b'_') {
                return true;
            }
        }
    }
    false
}

fn rule_float_eq(file: &SourceFile, findings: &mut Vec<(Rule, u32, String)>) {
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        let bytes = code.as_bytes();
        for op in ["==", "!="] {
            for off in find_all(code, op) {
                // Exclude `<=`, `>=`, `!=` handled separately; guard `===`
                // style accidents and pattern arrows.
                if op == "==" {
                    if off > 0 && matches!(bytes[off - 1], b'!' | b'<' | b'>' | b'=') {
                        continue;
                    }
                    if bytes.get(off + 2) == Some(&b'=') {
                        continue;
                    }
                }
                let left_start = code[..off]
                    .rfind([',', ';', '(', '{', '[', '&', '|'])
                    .map_or(0, |p| p + 1);
                let right_end = code[off + 2..]
                    .find([',', ';', ')', '{', '}', ']', '&', '|'])
                    .map_or(code.len(), |p| off + 2 + p);
                let left = &code[left_start..off];
                let right = &code[off + 2..right_end];
                if has_float_evidence(left) || has_float_evidence(right) {
                    findings.push((
                        Rule::FloatEq,
                        line_no(i),
                        format!(
                            "floating-point `{op}` comparison: compare against an epsilon \
                             or use exact integer areas"
                        ),
                    ));
                }
            }
        }
    }
}

/// Cast targets the `as-cast` rule flags: all lossy-or-sign-changing
/// integer targets plus the coordinate aliases (whose sources are usually
/// `usize` indices, i.e. sign-changing).
const NARROWING_TARGETS: [&str; 10] = [
    "i8", "i16", "i32", "u8", "u16", "u32", "usize", "isize", "Coord", "Area",
];

fn rule_as_cast(file: &SourceFile, findings: &mut Vec<(Rule, u32, String)>) {
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        for off in find_all(code, " as ") {
            let after = &code[off + 4..];
            let ty: String = after
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if NARROWING_TARGETS.contains(&ty.as_str()) {
                findings.push((
                    Rule::AsCast,
                    line_no(i),
                    format!(
                        "narrowing `as {ty}` cast: use `pilfill_geom::units` \
                         (index/coord/try_*) so overflow is checked, or justify with \
                         `// pilfill: allow(as-cast)`"
                    ),
                ));
            }
        }
    }
}

fn rule_process_exit(file: &SourceFile, findings: &mut Vec<(Rule, u32, String)>) {
    if file.path.starts_with("crates/cli/") {
        return;
    }
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        if code.contains("process::exit") {
            findings.push((
                Rule::ProcessExit,
                line_no(i),
                "`std::process::exit` outside crates/cli: return an error (or \
                 `std::process::ExitCode`) so library callers keep control"
                    .to_string(),
            ));
        }
    }
}

/// Type-name suffixes that mark a solver/flow result type.
const MUST_USE_SUFFIXES: [&str; 5] = ["Outcome", "Report", "Solution", "Analysis", "Impact"];

fn rule_must_use(file: &SourceFile, findings: &mut Vec<(Rule, u32, String)>) {
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        let trimmed = code.trim_start();
        let Some(name) = ["pub struct ", "pub enum "]
            .iter()
            .find_map(|kw| trimmed.strip_prefix(kw))
        else {
            continue;
        };
        let name: String = name
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !MUST_USE_SUFFIXES.iter().any(|s| name.ends_with(s)) {
            continue;
        }
        // Walk up over attributes and doc comments looking for #[must_use].
        let mut has = false;
        for j in (0..i).rev() {
            let above = file.raw[j].trim();
            if above.starts_with("#[") || above.starts_with("#![") {
                if above.contains("must_use") {
                    has = true;
                }
                continue;
            }
            if above.starts_with("///") || above.starts_with("//") || above.ends_with(")]") {
                continue;
            }
            break;
        }
        if !has {
            findings.push((
                Rule::MustUse,
                line_no(i),
                format!("result type `{name}` is missing `#[must_use]`"),
            ));
        }
    }
}

fn rule_missing_docs(file: &SourceFile, findings: &mut Vec<(Rule, u32, String)>) {
    const ITEMS: [&str; 9] = [
        "pub fn ",
        "pub const fn ",
        "pub unsafe fn ",
        "pub struct ",
        "pub enum ",
        "pub trait ",
        "pub type ",
        "pub const ",
        "pub static ",
    ];
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        let trimmed = code.trim_start();
        let is_item = ITEMS.iter().any(|kw| trimmed.starts_with(kw))
            || (trimmed.starts_with("pub mod ") && trimmed.contains('{'));
        if !is_item {
            continue;
        }
        // Walk up over attributes; the nearest non-attribute line must be
        // a doc comment.
        let mut documented = false;
        for j in (0..i).rev() {
            let above = file.raw[j].trim();
            if above.starts_with("#[") || above.starts_with("#![") || above.ends_with(")]") {
                continue;
            }
            documented = above.starts_with("///")
                || above.starts_with("/**")
                || above.starts_with("*/")
                || above.ends_with("*/");
            break;
        }
        if !documented {
            let name: String = trimmed
                .split_whitespace()
                .nth(2)
                .unwrap_or("")
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            findings.push((
                Rule::MissingDocs,
                line_no(i),
                format!("public item `{name}` has no doc comment"),
            ));
        }
    }
}

/// `true` when the `unsafe` at `line` index `i` is justified: a `SAFETY:`
/// marker on the same raw line, or in the contiguous run of comment /
/// attribute lines directly above (`// SAFETY:` comments and `/// #
/// Safety` doc sections both count).
fn has_safety_evidence(file: &SourceFile, i: usize) -> bool {
    if file.raw[i].contains("SAFETY:") {
        return true;
    }
    for j in (0..i).rev() {
        let above = file.raw[j].trim();
        if above.starts_with("//") || above.starts_with("#[") || above.starts_with("#![") {
            if above.contains("SAFETY:") || above.contains("# Safety") {
                return true;
            }
            continue;
        }
        break;
    }
    false
}

fn rule_unsafe_comment(file: &SourceFile, findings: &mut Vec<(Rule, u32, String)>) {
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        let bytes = code.as_bytes();
        for off in find_all(code, "unsafe") {
            let word_start = off == 0 || {
                let b = bytes[off - 1];
                !b.is_ascii_alphanumeric() && b != b'_'
            };
            if !word_start {
                continue;
            }
            // Only blocks and impls carry a local `// SAFETY:` obligation;
            // `unsafe fn` declarations document their contract in a
            // `# Safety` doc section (enforced via the same evidence walk
            // when the block inside them is audited).
            let rest = code[off + "unsafe".len()..].trim_start();
            if !(rest.starts_with('{') || rest.starts_with("impl")) {
                continue;
            }
            if !has_safety_evidence(file, i) {
                findings.push((
                    Rule::UnsafeComment,
                    line_no(i),
                    "`unsafe` without a `// SAFETY:` comment: state the invariant that \
                     makes this sound on the line(s) directly above"
                        .to_string(),
                ));
            }
            // One finding per line is enough.
            break;
        }
    }
}

/// Files allowed to name `SeqCst`: the model checker's ordering
/// classifier must pattern-match every ordering, including `SeqCst`.
const SEQCST_ALLOWED: [&str; 1] = ["crates/check/src/sync.rs"];

/// Extracts the identifier immediately before byte offset `off` (the
/// receiver field of a `.store(`/`.load(` call).
fn ident_before(code: &str, off: usize) -> String {
    let bytes = code.as_bytes();
    let mut start = off;
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    code[start..off].to_string()
}

fn rule_atomic_ordering(file: &SourceFile, findings: &mut Vec<(Rule, u32, String)>) {
    let mut relaxed_stores: Vec<(String, usize)> = Vec::new();
    let mut acquiring_loads: Vec<(String, usize)> = Vec::new();
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        let bytes = code.as_bytes();
        for off in find_all(code, "SeqCst") {
            let word_start = off == 0 || {
                let b = bytes[off - 1];
                !b.is_ascii_alphanumeric() && b != b'_'
            };
            if word_start && !SEQCST_ALLOWED.contains(&file.path.as_str()) {
                findings.push((
                    Rule::AtomicOrdering,
                    line_no(i),
                    "`SeqCst` outside the allowlist: the pool protocols are specified in \
                     acquire/release terms — justify the full fence or use \
                     `Acquire`/`Release`"
                        .to_string(),
                ));
            }
        }
        // Bound the ordering search to the call's own argument list so
        // several calls sharing a line don't cross-contaminate (ordering
        // names are plain paths, so the first `)` closes the call).
        let args_of = |off: usize| {
            let end = code[off..].find(')').map_or(code.len(), |p| off + p);
            &code[off..end]
        };
        for off in find_all(code, ".store(") {
            if args_of(off).contains("Relaxed") {
                let field = ident_before(code, off);
                if !field.is_empty() {
                    relaxed_stores.push((field, i));
                }
            }
        }
        for off in find_all(code, ".load(") {
            let args = args_of(off);
            if args.contains("Acquire") || args.contains("SeqCst") {
                let field = ident_before(code, off);
                if !field.is_empty() {
                    acquiring_loads.push((field, i));
                }
            }
        }
    }
    for (field, i) in &relaxed_stores {
        if let Some((_, j)) = acquiring_loads.iter().find(|(f, _)| f == field) {
            findings.push((
                Rule::AtomicOrdering,
                line_no(*i),
                format!(
                    "`{field}` is stored with `Relaxed` but loaded with an acquiring \
                     ordering at line {}: the acquire synchronizes with nothing — make \
                     the store `Release` (or both `Relaxed` if no data is published)",
                    line_no(*j)
                ),
            ));
        }
    }
}

/// The workspace layer order. A crate may only depend on crates in a
/// strictly lower layer; edges inside a layer or pointing up are
/// layering violations (they either create cycle risk or invert the
/// prng/geom/diag -> core -> flow architecture documented in DESIGN.md).
const LAYERS: [(&str, u32); 17] = [
    ("pilfill-prng", 0),
    ("pilfill-geom", 0),
    ("pilfill-diag", 0),
    ("pilfill-solver", 0),
    ("pilfill-check", 1),
    ("pilfill-layout", 1),
    ("xtask", 1),
    ("pilfill-exec", 2),
    ("pilfill-rc", 2),
    ("pilfill-density", 2),
    ("pilfill-core", 3),
    ("pilfill-stream", 4),
    ("pilfill-viz", 4),
    ("pilfill-serve", 4),
    ("pilfill-cli", 5),
    ("pilfill-bench", 5),
    ("pil-fill", 5),
];

fn layer_of(name: &str) -> Option<u32> {
    LAYERS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, tier)| tier)
}

/// One parsed manifest: package name plus its `[dependencies]` edges.
struct Manifest {
    path: String,
    name: String,
    /// `(dep_name, 1-based line, suppressed)`.
    deps: Vec<(String, u32, bool)>,
}

/// Parses the package name and `[dependencies]` entries out of a
/// `Cargo.toml`. Line-oriented: good enough for workspace manifests,
/// which this repo keeps in the canonical `name.workspace = true` form.
fn parse_manifest(path: &str, text: &str) -> Manifest {
    let mut name = String::new();
    let mut deps = Vec::new();
    let mut section = String::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line.to_string();
            continue;
        }
        if section == "[package]" && name.is_empty() {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    name = rest.trim().trim_matches('"').to_string();
                }
            }
        }
        if section == "[dependencies]" && !line.is_empty() && !line.starts_with('#') {
            let dep: String = line
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            if !dep.is_empty() {
                let suppressed = raw
                    .find('#')
                    .is_some_and(|p| raw[p..].contains("pilfill: allow(layering)"));
                deps.push((dep, line_no(i), suppressed));
            }
        }
    }
    Manifest {
        path: path.to_string(),
        name,
        deps,
    }
}

/// Lints the workspace dependency graph declared by `manifests`
/// (`(repo-relative path, text)` pairs): every edge must point to a
/// strictly lower layer of [`LAYERS`], and the graph must be acyclic.
/// Suppress a deliberate exception with `# pilfill: allow(layering)` on
/// the dependency line.
pub fn lint_manifests(manifests: &[(String, String)]) -> LintReport {
    let parsed: Vec<Manifest> = manifests
        .iter()
        .map(|(path, text)| parse_manifest(path, text))
        .collect();
    let mut report = LintReport {
        files_scanned: parsed.len(),
        ..LintReport::default()
    };

    for m in &parsed {
        let Some(tier) = layer_of(&m.name) else {
            continue;
        };
        for (dep, line, suppressed) in &m.deps {
            let Some(dep_tier) = layer_of(dep) else {
                continue;
            };
            if tier > dep_tier {
                continue;
            }
            if *suppressed {
                report.suppressed += 1;
            } else {
                report.diagnostics.push(Diagnostic::new(
                    Rule::Layering.severity(),
                    Rule::Layering.id(),
                    &m.path,
                    *line,
                    format!(
                        "layering violation: `{}` (layer {tier}) may not depend on \
                         `{dep}` (layer {dep_tier}); dependency edges must point down \
                         the layer order",
                        m.name
                    ),
                ));
            }
        }
    }

    // Cycle detection over the declared edges (covers crates outside the
    // layer table too).
    let index: std::collections::HashMap<&str, usize> = parsed
        .iter()
        .enumerate()
        .map(|(i, m)| (m.name.as_str(), i))
        .collect();
    // 0 = unvisited, 1 = on the current DFS path, 2 = done.
    let mut state = vec![0u8; parsed.len()];
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for start in 0..parsed.len() {
        if state[start] != 0 {
            continue;
        }
        stack.push((start, 0));
        state[start] = 1;
        while let Some(&(node, edge)) = stack.last() {
            if edge >= parsed[node].deps.len() {
                state[node] = 2;
                stack.pop();
                continue;
            }
            if let Some(top) = stack.last_mut() {
                top.1 += 1;
            }
            let dep = parsed[node].deps[edge].0.as_str();
            let Some(&next) = index.get(dep) else {
                continue;
            };
            if state[next] == 1 {
                let mut cycle: Vec<&str> = stack
                    .iter()
                    .map(|&(n, _)| parsed[n].name.as_str())
                    .collect();
                cycle.push(dep);
                report.diagnostics.push(Diagnostic::new(
                    Rule::Layering.severity(),
                    Rule::Layering.id(),
                    &parsed[next].path,
                    1,
                    format!("dependency cycle: {}", cycle.join(" -> ")),
                ));
            } else if state[next] == 0 {
                state[next] = 1;
                stack.push((next, 0));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(report: &LintReport) -> Vec<&str> {
        report.diagnostics.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn unwrap_flagged_only_outside_tests() {
        let src =
            "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(rules_fired(&report), vec!["unwrap"]);
        assert_eq!(report.diagnostics[0].line, 1);
    }

    #[test]
    fn expect_and_panic_family_flagged() {
        let src = "fn f() { a.expect(\"x\"); panic!(\"y\"); unreachable!(); todo!(); }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(report.diagnostics.len(), 4);
    }

    #[test]
    fn suppression_same_line_and_previous_line() {
        let src = "fn f() { x.unwrap(); } // invariant: x checked above; pilfill: allow(unwrap)\n\
                   // guaranteed non-empty; pilfill: allow(unwrap)\nfn g() { y.unwrap(); }\n\
                   fn h() { z.unwrap(); }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(report.suppressed, 2);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].line, 4);
    }

    #[test]
    fn allow_file_suppresses_everywhere() {
        let src =
            "// pilfill: allow-file(unwrap)\nfn f() { x.unwrap(); }\nfn g() { y.unwrap(); }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.suppressed, 2);
    }

    #[test]
    fn directive_outside_comment_does_not_suppress() {
        let src = "fn f() { let pilfill_allow = \"pilfill: allow(unwrap)\"; x.unwrap(); }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(report.diagnostics.len(), 1);
    }

    #[test]
    fn float_eq_detected_by_literal_or_type_evidence() {
        let src = "fn f() { if x == 0.5 { } if y as f64 != z { } if a == b { } }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(
            rules_fired(&report)
                .iter()
                .filter(|r| **r == "float-eq")
                .count(),
            2
        );
    }

    #[test]
    fn tuple_index_is_not_float_evidence() {
        let src = "fn f() { if cell.0 == other.0 { } }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn narrowing_casts_flagged_widening_ignored() {
        let src = "fn f() { let a = x as usize; let b = y as u32; let c = z as u64; let d = w as f64; }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(
            rules_fired(&report),
            vec!["as-cast", "as-cast"],
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn process_exit_allowed_in_cli_only() {
        let src = "fn f() { std::process::exit(1); }\n";
        assert!(lint_source("crates/cli/src/main.rs", src)
            .diagnostics
            .is_empty());
        assert_eq!(
            rules_fired(&lint_source("crates/core/src/a.rs", src)),
            vec!["process-exit"]
        );
    }

    #[test]
    fn must_use_required_on_result_types() {
        let src = "/// Doc.\npub struct FlowOutcome { }\n/// Doc.\n#[must_use]\npub struct DrcReport { }\n/// Doc.\npub struct Config { }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(rules_fired(&report), vec!["must-use"]);
        assert_eq!(report.diagnostics[0].line, 2);
    }

    #[test]
    fn missing_docs_on_undocumented_public_item() {
        let src = "/// Documented.\npub fn ok() {}\n\npub fn bad() {}\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(rules_fired(&report), vec!["missing-docs"]);
        assert_eq!(report.diagnostics[0].line, 4);
    }

    #[test]
    fn attributes_between_doc_and_item_are_skipped() {
        let src = "/// Doc.\n#[derive(Debug, Clone)]\n#[must_use]\npub struct DrcReport { }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn banned_patterns_in_strings_and_comments_ignored() {
        let src = "// calls .unwrap() internally\nfn f() { log(\"don't panic!(now)\"); }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn report_severity_counters() {
        let src = "pub fn bad() { x.unwrap(); }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(report.errors(), 1);
        assert_eq!(report.warnings(), 1); // missing-docs
    }

    #[test]
    fn unsafe_block_requires_safety_comment() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(rules_fired(&report), vec!["unsafe-no-safety-comment"]);
    }

    #[test]
    fn safety_comment_above_or_inline_satisfies_unsafe_rule() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: p is valid for reads, checked by caller.\n    unsafe { *p }\n}\n// SAFETY: no shared state is touched.\nunsafe impl Send for X {}\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn safety_evidence_walks_over_attributes_and_doc_sections() {
        let src = "// SAFETY: slots are index-partitioned.\n#[allow(clippy::mut_from_ref)]\nunsafe impl<T> Sync for W<T> {}\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn unsafe_fn_declaration_is_not_flagged_as_a_block() {
        // The declaration's contract lives in `# Safety` docs; only the
        // block and impl forms need a local SAFETY comment.
        let src =
            "/// Does things.\n/// # Safety\n/// Caller checks i.\npub unsafe fn w(i: usize) {}\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn unsafe_rule_suppressible() {
        let src = "// justified elsewhere; pilfill: allow(unsafe-no-safety-comment)\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn relaxed_store_with_acquire_load_is_flagged() {
        let src = "fn f(a: &A) { a.ready.store(1, Ordering::Relaxed); }\nfn g(a: &A) -> usize { a.ready.load(Ordering::Acquire) }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(rules_fired(&report), vec!["atomic-ordering"]);
        assert_eq!(report.diagnostics[0].line, 1, "flagged at the store");
    }

    #[test]
    fn consistent_orderings_are_not_flagged() {
        let src = "fn f(a: &A) { a.panicked.store(true, Ordering::Relaxed); let _ = a.panicked.load(Ordering::Relaxed); a.ready.store(1, Ordering::Release); let _ = a.ready.load(Ordering::Acquire); }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn seqcst_is_flagged_outside_the_allowlist() {
        let src = "fn f(a: &A) { a.x.store(1, Ordering::SeqCst); }\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert_eq!(rules_fired(&report), vec!["atomic-ordering"]);
        let allowed = lint_source("crates/check/src/sync.rs", src);
        assert!(allowed.diagnostics.is_empty(), "{:?}", allowed.diagnostics);
    }

    #[test]
    fn atomic_ordering_suppressible() {
        let src = "// intentional: flag is advisory only; pilfill: allow(atomic-ordering)\nfn f(a: &A) { a.hint.store(1, Ordering::Relaxed); }\nfn g(a: &A) -> usize { a.hint.load(Ordering::Acquire) } // pilfill: allow(atomic-ordering)\n";
        let report = lint_source("crates/core/src/a.rs", src);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert_eq!(report.suppressed, 1);
    }

    fn manifest(path: &str, text: &str) -> (String, String) {
        (path.to_string(), text.to_string())
    }

    #[test]
    fn layering_violation_fires_on_upward_edge() {
        let bad = manifest(
            "crates/geom/Cargo.toml",
            "[package]\nname = \"pilfill-geom\"\n\n[dependencies]\npilfill-core.workspace = true\n",
        );
        let report = lint_manifests(&[bad]);
        assert_eq!(report.errors(), 1);
        assert!(report.diagnostics[0].message.contains("pilfill-core"));
    }

    #[test]
    fn layering_ok_for_downward_edges() {
        let good = manifest(
            "crates/core/Cargo.toml",
            "[package]\nname = \"pilfill-core\"\n\n[dependencies]\npilfill-geom.workspace = true\npilfill-exec.workspace = true\n",
        );
        let report = lint_manifests(&[good]);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn layering_suppressible_per_line() {
        let bad = manifest(
            "crates/geom/Cargo.toml",
            "[package]\nname = \"pilfill-geom\"\n\n[dependencies]\npilfill-core.workspace = true # transitional; pilfill: allow(layering)\n",
        );
        let report = lint_manifests(&[bad]);
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn layering_rejects_serve_depending_on_cli() {
        // The service tier sits below the binaries: `pilfill-cli` drives
        // `pilfill-serve`, never the reverse. An inverted edge must fire.
        let bad = manifest(
            "crates/serve/Cargo.toml",
            "[package]\nname = \"pilfill-serve\"\n\n[dependencies]\npilfill-cli.workspace = true\n",
        );
        let report = lint_manifests(&[bad]);
        assert_eq!(report.errors(), 1, "{:?}", report.diagnostics);
        assert!(report.diagnostics[0].message.contains("pilfill-cli"));
        // The real direction is fine: cli (5) and bench (5) -> serve (4).
        let good = manifest(
            "crates/cli/Cargo.toml",
            "[package]\nname = \"pilfill-cli\"\n\n[dependencies]\npilfill-serve.workspace = true\n",
        );
        let report = lint_manifests(&[good]);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn dependency_cycles_are_reported() {
        let a = manifest(
            "crates/a/Cargo.toml",
            "[package]\nname = \"ext-a\"\n\n[dependencies]\next-b = \"1\"\n",
        );
        let b = manifest(
            "crates/b/Cargo.toml",
            "[package]\nname = \"ext-b\"\n\n[dependencies]\next-a = \"1\"\n",
        );
        let report = lint_manifests(&[a, b]);
        assert_eq!(report.errors(), 1, "{:?}", report.diagnostics);
        assert!(report.diagnostics[0].message.contains("cycle"));
    }

    #[test]
    fn dev_dependencies_are_exempt_from_layering() {
        let m = manifest(
            "crates/geom/Cargo.toml",
            "[package]\nname = \"pilfill-geom\"\n\n[dev-dependencies]\npilfill-core.workspace = true\n",
        );
        let report = lint_manifests(&[m]);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }
}
