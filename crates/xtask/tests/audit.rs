//! Integration tests for the pilfill-audit linter: the repo itself must be
//! clean, and a fixture seeded with one violation per rule must fail.

use xtask::rules::{lint_manifests, lint_source};
use xtask::{lint_repo, render_json};

/// The workspace root, two levels above this crate's manifest.
fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn repository_is_lint_clean() {
    let report = lint_repo(&repo_root()).expect("lint run");
    assert!(report.files_scanned > 50, "expected a full workspace scan");
    let messages: Vec<String> = report.diagnostics.iter().map(|d| d.render_text()).collect();
    assert_eq!(report.errors(), 0, "lint errors:\n{}", messages.join("\n"));
    assert_eq!(
        report.warnings(),
        0,
        "lint warnings:\n{}",
        messages.join("\n")
    );
    // The burn-down documented real suppressions; the count must be nonzero
    // (a zero here means suppression parsing silently broke).
    assert!(report.suppressed > 0);
}

/// One seeded violation per rule; the linter must catch every one.
const SEEDED: &str = r#"
pub struct FlowOutcome {
    pub total: f64,
}

pub fn bad(values: &[f64], n: i64) -> u32 {
    let first = values.first().unwrap();
    if *first == 0.5 {
        std::process::exit(2);
    }
    n as u32
}
"#;

#[test]
fn seeded_violations_all_fire() {
    let report = lint_source("crates/core/src/seeded.rs", SEEDED);
    let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule.as_str()).collect();
    for rule in [
        "unwrap",
        "float-eq",
        "as-cast",
        "process-exit",
        "must-use",
        "missing-docs",
    ] {
        assert!(
            rules.contains(&rule),
            "rule `{rule}` did not fire on the fixture; fired: {rules:?}"
        );
    }
    assert!(report.errors() > 0);
}

#[test]
fn seeded_violation_in_cli_may_exit() {
    // `process-exit` is scoped: the CLI binary is the one place a process
    // exit belongs.
    let report = lint_source("crates/cli/src/main.rs", SEEDED);
    assert!(
        !report.diagnostics.iter().any(|d| d.rule == "process-exit"),
        "process-exit must not fire under crates/cli"
    );
}

#[test]
fn suppressions_silence_and_count() {
    let src = "\
//! Docs.

/// Docs.
pub fn f(n: i64) -> u32 {
    n as u32 // pilfill: allow(as-cast)
}
";
    let report = lint_source("crates/core/src/s.rs", src);
    assert_eq!(report.errors(), 0, "{:?}", report.diagnostics);
    assert_eq!(report.suppressed, 1);
}

/// Concurrency-rule fixtures: one failing and one suppressed snippet per
/// new rule, exercised through the public `lint_source` entry point.
#[test]
fn unsafe_without_safety_comment_fails_and_suppresses() {
    let failing = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    let report = lint_source("crates/core/src/u.rs", failing);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "unsafe-no-safety-comment"),
        "{:?}",
        report.diagnostics
    );

    let suppressed = "// audited in review; pilfill: allow(unsafe-no-safety-comment)\n\
                      fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    let report = lint_source("crates/core/src/u.rs", suppressed);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.suppressed, 1);
}

#[test]
fn atomic_ordering_mismatch_fails_and_suppresses() {
    let failing = "fn f(a: &A) { a.gate.store(1, Ordering::Relaxed); }\n\
                   fn g(a: &A) -> usize { a.gate.load(Ordering::Acquire) }\n";
    let report = lint_source("crates/core/src/o.rs", failing);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "atomic-ordering"),
        "{:?}",
        report.diagnostics
    );

    let suppressed = "// flag is advisory, no data published; pilfill: allow(atomic-ordering)\n\
                      fn f(a: &A) { a.gate.store(1, Ordering::Relaxed); }\n\
                      fn g(a: &A) -> usize { a.gate.load(Ordering::Acquire) } // pilfill: allow(atomic-ordering)\n";
    let report = lint_source("crates/core/src/o.rs", suppressed);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.suppressed, 1);
}

#[test]
fn layering_inversion_fails_and_suppresses() {
    let failing = (
        "crates/geom/Cargo.toml".to_string(),
        "[package]\nname = \"pilfill-geom\"\n\n[dependencies]\npilfill-core.workspace = true\n"
            .to_string(),
    );
    let report = lint_manifests(std::slice::from_ref(&failing));
    assert!(
        report.diagnostics.iter().any(|d| d.rule == "layering"),
        "{:?}",
        report.diagnostics
    );

    let suppressed = (
        "crates/geom/Cargo.toml".to_string(),
        "[package]\nname = \"pilfill-geom\"\n\n[dependencies]\npilfill-core.workspace = true # transitional shim; pilfill: allow(layering)\n"
            .to_string(),
    );
    let report = lint_manifests(&[suppressed]);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.suppressed, 1);
}

#[test]
fn workspace_manifest_graph_is_clean() {
    // The layering rule runs on the real workspace as part of lint_repo;
    // this asserts the current crate DAG respects the layer order.
    let report = lint_repo(&repo_root()).expect("lint run");
    assert!(
        !report.diagnostics.iter().any(|d| d.rule == "layering"),
        "layering violations: {:?}",
        report
            .diagnostics
            .iter()
            .filter(|d| d.rule == "layering")
            .collect::<Vec<_>>()
    );
}

#[test]
fn json_report_carries_diagnostics() {
    let report = lint_source("crates/core/src/seeded.rs", SEEDED);
    let json = render_json(&report);
    assert!(json.contains("\"tool\":\"pilfill-audit\""));
    assert!(json.contains("\"rule\":\"unwrap\""));
    assert!(json.contains("crates/core/src/seeded.rs"));
}
