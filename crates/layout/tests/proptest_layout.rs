//! Randomized tests: text-format round trips and generator invariants
//! over random seeds and configurations, driven by the in-repo seeded
//! PRNG so every run explores the same cases.

use pilfill_layout::synth::{synthesize, SynthConfig};
use pilfill_layout::{Design, LayerId};
use pilfill_prng::rngs::StdRng;
use pilfill_prng::{Rng, SeedableRng};

fn rand_config(rng: &mut StdRng) -> SynthConfig {
    let seed = rng.gen_range(0u64..10_000);
    SynthConfig {
        name: format!("prop-{seed}"),
        die_size: 30_000,
        seed,
        num_buses: rng.gen_range(1usize..3),
        bus_bits: rng.gen_range(2usize..5),
        num_tree_nets: rng.gen_range(0usize..8),
        num_local_nets: rng.gen_range(0usize..10),
        wire_width: 280,
        wire_space: 280,
        hotspot_fraction: rng.gen_range(0.0f64..1.0),
        num_macros: seed as usize % 3,
        tech: Default::default(),
        rules: Default::default(),
    }
}

#[test]
fn generated_designs_always_validate() {
    let mut rng = StdRng::seed_from_u64(0x1A_0001);
    for _ in 0..48 {
        let d = synthesize(&rand_config(&mut rng));
        assert!(d.validate().is_ok());
    }
}

#[test]
fn text_round_trip_is_identity() {
    let mut rng = StdRng::seed_from_u64(0x1A_0002);
    for _ in 0..48 {
        let d = synthesize(&rand_config(&mut rng));
        let text = d.to_text();
        let back = Design::from_text(&text).expect("parse back");
        assert_eq!(d, back);
    }
}

#[test]
fn generation_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(0x1A_0003);
    for _ in 0..24 {
        let cfg = rand_config(&mut rng);
        assert_eq!(synthesize(&cfg), synthesize(&cfg));
    }
}

#[test]
fn fill_layer_wires_never_overlap() {
    let mut rng = StdRng::seed_from_u64(0x1A_0004);
    for _ in 0..48 {
        let d = synthesize(&rand_config(&mut rng));
        let rects: Vec<_> = d
            .segments_on_layer(LayerId(0))
            .map(|(_, _, s)| s.rect())
            .collect();
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                assert!(!a.overlaps(b), "overlap {a} vs {b}");
            }
        }
    }
}

#[test]
fn every_net_topology_resolves() {
    let mut rng = StdRng::seed_from_u64(0x1A_0005);
    for _ in 0..48 {
        let d = synthesize(&rand_config(&mut rng));
        for net in &d.nets {
            let topo = net.topology().expect("valid topology");
            assert_eq!(topo.order.len(), net.segments.len());
            // Every sink contributes weight along at least one segment,
            // unless the net has segments only on the source (impossible
            // here: every generated net has >= 1 segment and sinks at
            // ends).
            let total: u32 = topo.downstream_sinks.iter().sum();
            assert!(total as usize >= net.sinks.len());
        }
    }
}
