//! Property tests: text-format round trips and generator invariants over
//! random seeds and configurations.

use pilfill_layout::synth::{synthesize, SynthConfig};
use pilfill_layout::{Design, LayerId};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = SynthConfig> {
    (
        0u64..10_000,
        1usize..3,
        2usize..5,
        0usize..8,
        0usize..10,
        0.0f64..1.0,
    )
        .prop_map(
            |(seed, num_buses, bus_bits, num_tree_nets, num_local_nets, hotspot)| SynthConfig {
                name: format!("prop-{seed}"),
                die_size: 30_000,
                seed,
                num_buses,
                bus_bits,
                num_tree_nets,
                num_local_nets,
                wire_width: 280,
                wire_space: 280,
                hotspot_fraction: hotspot,
                num_macros: seed as usize % 3,
                tech: Default::default(),
                rules: Default::default(),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_designs_always_validate(cfg in config_strategy()) {
        let d = synthesize(&cfg);
        prop_assert!(d.validate().is_ok());
    }

    #[test]
    fn text_round_trip_is_identity(cfg in config_strategy()) {
        let d = synthesize(&cfg);
        let text = d.to_text();
        let back = Design::from_text(&text).expect("parse back");
        prop_assert_eq!(d, back);
    }

    #[test]
    fn generation_is_deterministic(cfg in config_strategy()) {
        prop_assert_eq!(synthesize(&cfg), synthesize(&cfg));
    }

    #[test]
    fn fill_layer_wires_never_overlap(cfg in config_strategy()) {
        let d = synthesize(&cfg);
        let rects: Vec<_> = d
            .segments_on_layer(LayerId(0))
            .map(|(_, _, s)| s.rect())
            .collect();
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                prop_assert!(!a.overlaps(b), "overlap {a} vs {b}");
            }
        }
    }

    #[test]
    fn every_net_topology_resolves(cfg in config_strategy()) {
        let d = synthesize(&cfg);
        for net in &d.nets {
            let topo = net.topology().expect("valid topology");
            prop_assert_eq!(topo.order.len(), net.segments.len());
            // Every sink contributes weight along at least one segment,
            // unless the net has segments only on the source (impossible
            // here: every generated net has >= 1 segment and sinks at ends).
            let total: u32 = topo.downstream_sinks.iter().sum();
            prop_assert!(total as usize >= net.sinks.len());
        }
    }
}
