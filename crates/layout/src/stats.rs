//! Summary statistics for routed designs: quick sanity numbers for reports
//! and benchmark logs.

use crate::{Design, LayerId};
use pilfill_geom::Coord;

/// Aggregate statistics of a [`Design`], computed by [`design_stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct DesignStats {
    /// Number of nets.
    pub nets: usize,
    /// Total segments across nets.
    pub segments: usize,
    /// Total sink pins.
    pub sinks: usize,
    /// Total routed wirelength in dbu.
    pub wirelength: Coord,
    /// Per-layer drawn metal density (metal area / die area).
    pub layer_density: Vec<(String, f64)>,
    /// Longest single net wirelength.
    pub max_net_wirelength: Coord,
    /// Mean sinks per net.
    pub mean_sinks: f64,
}

/// Computes [`DesignStats`] for a design.
///
/// # Examples
///
/// ```
/// use pilfill_layout::synth::{SynthConfig, synthesize};
/// use pilfill_layout::stats::design_stats;
///
/// let d = synthesize(&SynthConfig::small_test(1));
/// let s = design_stats(&d);
/// assert!(s.nets > 0);
/// assert!(s.wirelength > 0);
/// ```
pub fn design_stats(design: &Design) -> DesignStats {
    let nets = design.nets.len();
    let segments = design.nets.iter().map(|n| n.segments.len()).sum();
    let sinks: usize = design.nets.iter().map(|n| n.sinks.len()).sum();
    let wirelength: Coord = design.nets.iter().map(|n| n.wirelength()).sum();
    let max_net_wirelength = design
        .nets
        .iter()
        .map(|n| n.wirelength())
        .max()
        .unwrap_or(0);
    let die_area = design.die.area() as f64;
    let layer_density = design
        .layers
        .iter()
        .enumerate()
        .map(|(i, l)| {
            (
                l.name.clone(),
                design.metal_area_on_layer(LayerId(i)) as f64 / die_area,
            )
        })
        .collect();
    DesignStats {
        nets,
        segments,
        sinks,
        wirelength,
        layer_density,
        max_net_wirelength,
        mean_sinks: if nets == 0 {
            0.0
        } else {
            sinks as f64 / nets as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize, SynthConfig};

    #[test]
    fn stats_reflect_design_contents() {
        let d = synthesize(&SynthConfig::small_test(5));
        let s = design_stats(&d);
        assert_eq!(s.nets, d.nets.len());
        assert!(s.segments >= s.nets); // every net has at least one segment
        assert!(s.sinks >= s.nets); // every generated net has >= 1 sink
        assert!(s.max_net_wirelength <= s.wirelength);
        assert!(s.mean_sinks >= 1.0);
        assert_eq!(s.layer_density.len(), d.layers.len());
        for (_, dens) in &s.layer_density {
            assert!(*dens >= 0.0 && *dens < 1.0);
        }
    }

    #[test]
    fn empty_design_stats_are_zero() {
        let d = Design {
            name: "empty".into(),
            die: pilfill_geom::Rect::new(0, 0, 1000, 1000),
            tech: Default::default(),
            rules: Default::default(),
            layers: vec![],
            nets: vec![],
            obstructions: vec![],
        };
        let s = design_stats(&d);
        assert_eq!(s.nets, 0);
        assert_eq!(s.wirelength, 0);
        assert_eq!(s.mean_sinks, 0.0);
    }
}
