//! Synthetic routed-layout generation: the substitution for the paper's
//! proprietary industry testcases T1 and T2.
//!
//! The generator reproduces the *structural* properties the PIL-Fill
//! algorithms are sensitive to (see `DESIGN.md`):
//!
//! - a preferred horizontal routing layer (the fill target) plus a vertical
//!   jog layer;
//! - a wide spread of wire lengths: long multi-bit buses crossing many
//!   tiles, medium source-rooted trees with branches (so downstream-sink
//!   weights and entry resistances vary), and short local nets;
//! - non-uniform density: net origins are biased towards a configurable
//!   hotspot fraction of the die, leaving sparse regions where the density
//!   LP must add fill.
//!
//! Generation is deterministic for a given [`SynthConfig`] (seeded
//! [`StdRng`]): two calls with the same config produce identical designs.

use crate::{Design, FillRules, Layer, LayerId, Net, Segment, Tech};
use pilfill_geom::{Coord, Dir, Interval, IntervalSet, Point, Rect};
use pilfill_prng::rngs::StdRng;
use pilfill_prng::{Rng, SeedableRng};
use std::collections::HashMap;

/// Parameters of the synthetic layout generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Design name.
    pub name: String,
    /// Side of the square die in dbu.
    pub die_size: Coord,
    /// RNG seed; equal configs generate equal designs.
    pub seed: u64,
    /// Number of long horizontal buses.
    pub num_buses: usize,
    /// Bits (parallel wires) per bus.
    pub bus_bits: usize,
    /// Number of branching tree nets.
    pub num_tree_nets: usize,
    /// Number of short local nets.
    pub num_local_nets: usize,
    /// Drawn wire width.
    pub wire_width: Coord,
    /// Minimum spacing between parallel wires on the same track grid.
    pub wire_space: Coord,
    /// Fraction (0..=1) of nets biased into the lower-left density hotspot.
    pub hotspot_fraction: f64,
    /// Number of macro blockages to place before routing.
    pub num_macros: usize,
    /// Technology parameters.
    pub tech: Tech,
    /// Fill rules.
    pub rules: FillRules,
}

impl SynthConfig {
    /// The T1 stand-in: larger, denser, more nets per tile (slower ILPs).
    pub fn t1() -> Self {
        Self {
            name: "T1".into(),
            die_size: 128_000,
            seed: 0x7101,
            num_buses: 22,
            bus_bits: 8,
            num_tree_nets: 260,
            num_local_nets: 420,
            wire_width: 280,
            wire_space: 280,
            hotspot_fraction: 0.55,
            num_macros: 3,
            tech: Tech::default_180nm(),
            rules: FillRules::default(),
        }
    }

    /// The T2 stand-in: smaller and sparser (faster ILPs, more fill needed).
    pub fn t2() -> Self {
        Self {
            name: "T2".into(),
            die_size: 96_000,
            seed: 0x7215,
            num_buses: 9,
            bus_bits: 6,
            num_tree_nets: 110,
            num_local_nets: 170,
            wire_width: 280,
            wire_space: 280,
            hotspot_fraction: 0.65,
            num_macros: 2,
            tech: Tech::default_180nm(),
            rules: FillRules::default(),
        }
    }

    /// A tiny layout for unit tests.
    pub fn small_test(seed: u64) -> Self {
        Self {
            name: format!("small-{seed}"),
            die_size: 24_000,
            seed,
            num_buses: 1,
            bus_bits: 3,
            num_tree_nets: 4,
            num_local_nets: 6,
            wire_width: 280,
            wire_space: 280,
            hotspot_fraction: 0.5,
            num_macros: 0,
            tech: Tech::default_180nm(),
            rules: FillRules::default(),
        }
    }
}

/// Track-based occupancy manager: one [`IntervalSet`] of *blocked* x ranges
/// per horizontal track.
struct TrackGrid {
    pitch: Coord,
    die: Rect,
    clearance: Coord,
    blocked: HashMap<i64, IntervalSet>,
}

impl TrackGrid {
    fn new(die: Rect, pitch: Coord, clearance: Coord) -> Self {
        Self {
            pitch,
            die,
            clearance,
            blocked: HashMap::new(),
        }
    }

    fn num_tracks(&self) -> i64 {
        (self.die.height() / self.pitch) - 2
    }

    fn track_y(&self, track: i64) -> Coord {
        self.die.bottom + (track + 1) * self.pitch
    }

    /// Tries to claim `[x0, x1)` on `track`; returns `false` on conflict.
    fn claim(&mut self, track: i64, x: Interval) -> bool {
        if x.is_empty() {
            return false;
        }
        let set = self.blocked.entry(track).or_default();
        let padded = x.grown(self.clearance);
        if set.covered_len_within(padded) > 0 {
            return false;
        }
        set.insert(padded);
        true
    }
}

/// Generates a deterministic synthetic routed design from `config`.
///
/// The output always passes [`Design::validate`].
///
/// # Panics
///
/// Panics if the configuration is degenerate (die too small to hold a
/// single track).
pub fn synthesize(config: &SynthConfig) -> Design {
    let die = Rect::new(0, 0, config.die_size, config.die_size);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let pitch = config.wire_width + config.wire_space;
    let mut tracks = TrackGrid::new(die, pitch, config.wire_space / 2);
    assert!(tracks.num_tracks() > 4, "die too small for track grid");

    let mut nets: Vec<Net> = Vec::new();
    let mut obstructions: Vec<crate::Obstruction> = Vec::new();
    let mut gen = Generator {
        config,
        die,
        tracks: &mut tracks,
        rng: &mut rng,
    };

    for _ in 0..config.num_macros {
        if let Some(rect) = gen.macro_block() {
            obstructions.push(crate::Obstruction {
                layer: LayerId(0),
                rect,
            });
        }
    }

    for b in 0..config.num_buses {
        if let Some(mut bus) = gen.bus(b) {
            nets.append(&mut bus);
        }
    }
    for t in 0..config.num_tree_nets {
        if let Some(net) = gen.tree_net(t) {
            nets.push(net);
        }
    }
    for l in 0..config.num_local_nets {
        if let Some(net) = gen.local_net(l) {
            nets.push(net);
        }
    }

    let design = Design {
        name: config.name.clone(),
        die,
        tech: config.tech,
        rules: config.rules,
        layers: vec![
            Layer {
                name: "m3".into(),
                dir: Dir::Horizontal,
            },
            Layer {
                name: "m2".into(),
                dir: Dir::Vertical,
            },
        ],
        nets,
        obstructions,
    };
    debug_assert_eq!(design.validate(), Ok(()));
    design
}

struct Generator<'a> {
    config: &'a SynthConfig,
    die: Rect,
    tracks: &'a mut TrackGrid,
    rng: &'a mut StdRng,
}

impl Generator<'_> {
    /// Samples a track index, biased into the lower-left hotspot band for a
    /// `hotspot_fraction` share of nets.
    fn sample_track(&mut self) -> i64 {
        let n = self.tracks.num_tracks();
        if self.rng.gen_bool(self.config.hotspot_fraction) {
            self.rng.gen_range(0..(n / 2).max(1))
        } else {
            self.rng.gen_range(0..n)
        }
    }

    fn sample_x_origin(&mut self, max_len: Coord) -> Coord {
        // Keep a wire-width margin from the die edge so vertical jogs
        // hanging off trunk endpoints stay inside the die.
        let margin = self.config.wire_width;
        let usable = (self.die.width() - max_len - margin).max(margin + 1);
        if self.rng.gen_bool(self.config.hotspot_fraction) {
            self.rng.gen_range(margin..(usable / 2).max(margin + 1))
        } else {
            self.rng.gen_range(margin..usable)
        }
    }

    /// A rectangular macro blockage: claims every routing track it covers
    /// so later wires avoid it.
    fn macro_block(&mut self) -> Option<Rect> {
        let die_w = self.die.width();
        for _attempt in 0..20 {
            let w = self.rng.gen_range(die_w / 10..die_w / 5);
            let h = self.rng.gen_range(die_w / 10..die_w / 5);
            let x0 = self
                .rng
                .gen_range(self.die.left + 500..self.die.right - w - 500);
            let y0 = self
                .rng
                .gen_range(self.die.bottom + 500..self.die.top - h - 500);
            let rect = Rect::new(x0, y0, x0 + w, y0 + h);
            // Which tracks does it cover (with clearance)?
            let lo = (rect.bottom - self.die.bottom) / self.tracks.pitch - 2;
            let hi = (rect.top - self.die.bottom) / self.tracks.pitch + 1;
            let span = rect.x_span();
            let tracks: Vec<i64> = (lo.max(0)..=hi.min(self.tracks.num_tracks() - 1)).collect();
            let free = tracks.iter().all(|&t| {
                self.tracks.blocked.get(&t).is_none_or(|set| {
                    set.covered_len_within(span.grown(self.tracks.clearance)) == 0
                })
            });
            if !free {
                continue;
            }
            for &t in &tracks {
                let claimed = self.tracks.claim(t, span);
                debug_assert!(claimed);
            }
            return Some(rect);
        }
        None
    }

    /// A multi-bit bus: `bus_bits` parallel trunks on adjacent free tracks.
    fn bus(&mut self, _index: usize) -> Option<Vec<Net>> {
        let w = self.config.wire_width;
        let len = self
            .rng
            .gen_range((self.die.width() * 6 / 10)..(self.die.width() * 9 / 10));
        let x0 = self.sample_x_origin(len);
        let x = Interval::new(x0, x0 + len);
        // Find a base track with `bus_bits` consecutive free tracks
        // (spaced one apart to keep slack sites between the bits).
        'outer: for _attempt in 0..40 {
            let base = self.sample_track();
            let step = 2; // leave one free track between bits
            let top = base + (self.config.bus_bits as i64 - 1) * step;
            if top >= self.tracks.num_tracks() {
                continue;
            }
            for bit in 0..self.config.bus_bits as i64 {
                let t = base + bit * step;
                let set = self.tracks.blocked.entry(t).or_default();
                if set.covered_len_within(x.grown(self.tracks.clearance)) > 0 {
                    continue 'outer;
                }
            }
            let mut nets = Vec::with_capacity(self.config.bus_bits);
            for bit in 0..self.config.bus_bits as i64 {
                let t = base + bit * step;
                let claimed = self.tracks.claim(t, x);
                debug_assert!(claimed);
                let y = self.tracks.track_y(t);
                let (sx, ex) = if bit % 2 == 0 {
                    (x.lo, x.hi)
                } else {
                    // Alternate signal direction like real buses with
                    // drivers on both sides.
                    (x.hi, x.lo)
                };
                nets.push(Net {
                    name: format!("bus{}_{}", _index, bit),
                    source: Point::new(sx, y),
                    sinks: vec![Point::new(ex, y)],
                    segments: vec![Segment {
                        layer: LayerId(0),
                        start: Point::new(sx, y),
                        end: Point::new(ex, y),
                        width: w,
                    }],
                });
            }
            return Some(nets);
        }
        None
    }

    /// A tree net: horizontal trunk + 1..4 branches reached via vertical
    /// jogs on the second layer.
    fn tree_net(&mut self, index: usize) -> Option<Net> {
        let w = self.config.wire_width;
        let trunk_len = self
            .rng
            .gen_range((self.die.width() / 8)..(self.die.width() / 2));
        let x0 = self.sample_x_origin(trunk_len);
        let trunk_x = Interval::new(x0, x0 + trunk_len);

        for _attempt in 0..30 {
            let t = self.sample_track();
            if !self.tracks.claim(t, trunk_x) {
                continue;
            }
            let y = self.tracks.track_y(t);

            // Pick branch take-off points first; the trunk is then emitted
            // split at those points so branching happens at segment
            // endpoints (the tree topology the RC annotator requires).
            struct Branch {
                jx: Coord,
                by: Coord,
                bend: Coord,
            }
            let mut branches: Vec<Branch> = Vec::new();
            let want = self.rng.gen_range(2..=7usize);
            'branches: for _ in 0..want {
                // Keep the jog's drawn rect inside the die.
                let jog_span = Interval::new(trunk_x.lo + w, trunk_x.hi - w);
                if jog_span.is_empty() {
                    break;
                }
                // Several candidate take-off points per branch: dense
                // layouts reject most claims, and multi-sink trees are what
                // give the downstream-sink weights their spread.
                for _attempt in 0..8 {
                    let jx = self.rng.gen_range(jog_span.lo..jog_span.hi);
                    if branches.iter().any(|b| (b.jx - jx).abs() < w) {
                        continue;
                    }
                    let dt =
                        self.rng.gen_range(2..12i64) * if self.rng.gen_bool(0.5) { 1 } else { -1 };
                    let bt = t + dt;
                    if bt < 0 || bt >= self.tracks.num_tracks() {
                        continue;
                    }
                    let blen = self.rng.gen_range(2_000..(self.die.width() / 6));
                    let bdir = self.rng.gen_bool(0.5);
                    let bx = if bdir {
                        Interval::new(jx, (jx + blen).min(self.die.right - w))
                    } else {
                        Interval::new((jx - blen).max(self.die.left + w), jx)
                    };
                    if bx.len() < 1_000 || !self.tracks.claim(bt, bx) {
                        continue;
                    }
                    branches.push(Branch {
                        jx,
                        by: self.tracks.track_y(bt),
                        bend: if bdir { bx.hi } else { bx.lo },
                    });
                    continue 'branches;
                }
            }

            branches.sort_by_key(|b| b.jx);
            let mut net = Net {
                name: format!("tree{index}"),
                source: Point::new(trunk_x.lo, y),
                sinks: vec![Point::new(trunk_x.hi, y)],
                segments: Vec::new(),
            };
            // Trunk pieces between consecutive take-off points.
            let mut cuts: Vec<Coord> = vec![trunk_x.lo];
            cuts.extend(branches.iter().map(|b| b.jx));
            cuts.push(trunk_x.hi);
            for pair in cuts.windows(2) {
                net.segments.push(Segment {
                    layer: LayerId(0),
                    start: Point::new(pair[0], y),
                    end: Point::new(pair[1], y),
                    width: w,
                });
            }
            for b in &branches {
                // Vertical jog on m2 from the trunk to the branch track.
                net.segments.push(Segment {
                    layer: LayerId(1),
                    start: Point::new(b.jx, y),
                    end: Point::new(b.jx, b.by),
                    width: w,
                });
                net.segments.push(Segment {
                    layer: LayerId(0),
                    start: Point::new(b.jx, b.by),
                    end: Point::new(b.bend, b.by),
                    width: w,
                });
                net.sinks.push(Point::new(b.bend, b.by));
            }
            return Some(net);
        }
        None
    }

    /// A short point-to-point net.
    fn local_net(&mut self, index: usize) -> Option<Net> {
        let w = self.config.wire_width;
        let len = self.rng.gen_range(1_500..(self.die.width() / 10));
        let x0 = self.sample_x_origin(len);
        let x = Interval::new(x0, x0 + len);
        for _attempt in 0..30 {
            let t = self.sample_track();
            if !self.tracks.claim(t, x) {
                continue;
            }
            let y = self.tracks.track_y(t);
            return Some(Net {
                name: format!("local{index}"),
                source: Point::new(x.lo, y),
                sinks: vec![Point::new(x.hi, y)],
                segments: vec![Segment {
                    layer: LayerId(0),
                    start: Point::new(x.lo, y),
                    end: Point::new(x.hi, y),
                    width: w,
                }],
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_design_is_valid_and_deterministic() {
        let cfg = SynthConfig::small_test(42);
        let a = synthesize(&cfg);
        let b = synthesize(&cfg);
        assert_eq!(a, b);
        assert!(a.validate().is_ok());
        assert!(!a.nets.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthesize(&SynthConfig::small_test(1));
        let b = synthesize(&SynthConfig::small_test(2));
        assert_ne!(a.nets, b.nets);
    }

    #[test]
    fn t_presets_validate() {
        for cfg in [SynthConfig::t1(), SynthConfig::t2()] {
            let d = synthesize(&cfg);
            assert!(d.validate().is_ok(), "{} invalid", cfg.name);
            assert!(
                d.nets.len() > cfg.num_local_nets / 2,
                "{}: too few nets placed ({})",
                cfg.name,
                d.nets.len()
            );
        }
    }

    #[test]
    fn t1_is_denser_than_t2() {
        let t1 = synthesize(&SynthConfig::t1());
        let t2 = synthesize(&SynthConfig::t2());
        let m3 = LayerId(0);
        let density = |d: &Design| d.metal_area_on_layer(m3) as f64 / d.die.area() as f64;
        assert!(
            density(&t1) > density(&t2),
            "t1 {} <= t2 {}",
            density(&t1),
            density(&t2)
        );
    }

    #[test]
    fn no_same_layer_overlaps_on_fill_layer() {
        let d = synthesize(&SynthConfig::small_test(3));
        let rects: Vec<_> = d
            .segments_on_layer(LayerId(0))
            .map(|(_, _, s)| s.rect())
            .collect();
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                assert!(!a.overlaps(b), "overlap: {a} vs {b}");
            }
        }
    }

    #[test]
    fn tree_nets_have_multiple_sinks() {
        let d = synthesize(&SynthConfig::t2());
        let max_sinks = d.nets.iter().map(|n| n.sinks.len()).max().unwrap_or(0);
        assert!(max_sinks >= 2, "expected at least one branching net");
    }
}
