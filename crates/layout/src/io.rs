//! Plain-text interchange format (the workspace's DEF substitute).
//!
//! The format is line-oriented, whitespace-separated, with `#` comments:
//!
//! ```text
//! PILFILL 1
//! DESIGN demo
//! DIE 0 0 100000 100000
//! TECH 0.07 3.9 500
//! RULES 400 200 300
//! LAYER m3 h
//! NET clk SOURCE 0 50000
//!   SEG m3 0 50000 90000 50000 200
//!   SINK 90000 50000
//! ENDNET
//! ENDDESIGN
//! ```

use crate::{Design, FillRules, Layer, LayoutError, Net, Segment, Tech};
use pilfill_geom::{Coord, Point, Rect};
use std::fmt::Write as _;

impl Design {
    /// Serializes the design to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "PILFILL 1");
        let _ = writeln!(out, "DESIGN {}", self.name);
        let _ = writeln!(
            out,
            "DIE {} {} {} {}",
            self.die.left, self.die.bottom, self.die.right, self.die.top
        );
        let _ = writeln!(
            out,
            "TECH {} {} {}",
            self.tech.sheet_res_ohm_sq, self.tech.eps_r, self.tech.thickness
        );
        let _ = writeln!(
            out,
            "RULES {} {} {}",
            self.rules.feature_size, self.rules.gap, self.rules.buffer
        );
        for layer in &self.layers {
            let dir = if layer.dir.is_horizontal() { "h" } else { "v" };
            let _ = writeln!(out, "LAYER {} {}", layer.name, dir);
        }
        for o in &self.obstructions {
            let _ = writeln!(
                out,
                "OBS {} {} {} {} {}",
                self.layers[o.layer.0].name, o.rect.left, o.rect.bottom, o.rect.right, o.rect.top
            );
        }
        for net in &self.nets {
            let _ = writeln!(
                out,
                "NET {} SOURCE {} {}",
                net.name, net.source.x, net.source.y
            );
            for s in &net.segments {
                let _ = writeln!(
                    out,
                    "  SEG {} {} {} {} {} {}",
                    self.layers[s.layer.0].name, s.start.x, s.start.y, s.end.x, s.end.y, s.width
                );
            }
            for sink in &net.sinks {
                let _ = writeln!(out, "  SINK {} {}", sink.x, sink.y);
            }
            let _ = writeln!(out, "ENDNET");
        }
        let _ = writeln!(out, "ENDDESIGN");
        out
    }

    /// Parses a design from the text format and validates it.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::Parse`] with the offending line number on
    /// syntax errors, or any [`Design::validate`] error afterwards.
    pub fn from_text(text: &str) -> Result<Design, LayoutError> {
        Parser::new(text).parse()
    }
}

struct Parser<'a> {
    lines: Vec<(usize, Vec<&'a str>)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let content = l.split('#').next().unwrap_or("");
                (i + 1, content.split_whitespace().collect::<Vec<_>>())
            })
            .filter(|(_, toks)| !toks.is_empty())
            .collect();
        Self { lines, pos: 0 }
    }

    fn err(&self, line: usize, message: impl Into<String>) -> LayoutError {
        LayoutError::Parse {
            line,
            message: message.into(),
        }
    }

    fn next(&mut self) -> Option<(usize, Vec<&'a str>)> {
        let item = self.lines.get(self.pos)?;
        self.pos += 1;
        Some((item.0, item.1.clone()))
    }

    fn parse_coord(&self, line: usize, tok: &str) -> Result<Coord, LayoutError> {
        tok.parse()
            .map_err(|_| self.err(line, format!("expected integer, got `{tok}`")))
    }

    fn parse_f64(&self, line: usize, tok: &str) -> Result<f64, LayoutError> {
        tok.parse()
            .map_err(|_| self.err(line, format!("expected number, got `{tok}`")))
    }

    fn parse(mut self) -> Result<Design, LayoutError> {
        let (line, toks) = self.next().ok_or_else(|| self.err(1, "empty input"))?;
        if toks != ["PILFILL", "1"] {
            return Err(self.err(line, "expected header `PILFILL 1`"));
        }

        let mut name = String::new();
        let mut die: Option<Rect> = None;
        let mut tech = Tech::default();
        let mut rules = FillRules::default();
        let mut layers: Vec<Layer> = Vec::new();
        let mut nets: Vec<Net> = Vec::new();
        let mut obstructions: Vec<crate::Obstruction> = Vec::new();
        let mut current: Option<Net> = None;
        let mut ended = false;

        while let Some((line, toks)) = self.next() {
            match toks[0] {
                "DESIGN" => {
                    name = toks
                        .get(1)
                        .ok_or_else(|| self.err(line, "DESIGN needs a name"))?
                        .to_string();
                }
                "DIE" => {
                    if toks.len() != 5 {
                        return Err(self.err(line, "DIE needs 4 coordinates"));
                    }
                    die = Some(Rect::new(
                        self.parse_coord(line, toks[1])?,
                        self.parse_coord(line, toks[2])?,
                        self.parse_coord(line, toks[3])?,
                        self.parse_coord(line, toks[4])?,
                    ));
                }
                "TECH" => {
                    if toks.len() != 4 {
                        return Err(self.err(line, "TECH needs 3 values"));
                    }
                    tech = Tech {
                        sheet_res_ohm_sq: self.parse_f64(line, toks[1])?,
                        eps_r: self.parse_f64(line, toks[2])?,
                        thickness: self.parse_coord(line, toks[3])?,
                    };
                }
                "RULES" => {
                    if toks.len() != 4 {
                        return Err(self.err(line, "RULES needs 3 values"));
                    }
                    rules = FillRules {
                        feature_size: self.parse_coord(line, toks[1])?,
                        gap: self.parse_coord(line, toks[2])?,
                        buffer: self.parse_coord(line, toks[3])?,
                    };
                }
                "LAYER" => {
                    if toks.len() != 3 {
                        return Err(self.err(line, "LAYER needs a name and direction"));
                    }
                    let dir = toks[2]
                        .parse()
                        .map_err(|_| self.err(line, "LAYER direction must be h or v"))?;
                    layers.push(Layer {
                        name: toks[1].to_string(),
                        dir,
                    });
                }
                "OBS" => {
                    if toks.len() != 6 {
                        return Err(self.err(line, "OBS needs a layer and 4 coordinates"));
                    }
                    let layer = layers
                        .iter()
                        .position(|l| l.name == toks[1])
                        .map(crate::LayerId)
                        .ok_or_else(|| LayoutError::UnknownLayer(toks[1].to_string()))?;
                    obstructions.push(crate::Obstruction {
                        layer,
                        rect: Rect::new(
                            self.parse_coord(line, toks[2])?,
                            self.parse_coord(line, toks[3])?,
                            self.parse_coord(line, toks[4])?,
                            self.parse_coord(line, toks[5])?,
                        ),
                    });
                }
                "NET" => {
                    if current.is_some() {
                        return Err(self.err(line, "nested NET (missing ENDNET?)"));
                    }
                    if toks.len() != 5 || toks[2] != "SOURCE" {
                        return Err(self.err(line, "expected `NET <name> SOURCE <x> <y>`"));
                    }
                    current = Some(Net {
                        name: toks[1].to_string(),
                        source: Point::new(
                            self.parse_coord(line, toks[3])?,
                            self.parse_coord(line, toks[4])?,
                        ),
                        sinks: Vec::new(),
                        segments: Vec::new(),
                    });
                }
                "SEG" => {
                    let net = current
                        .as_mut()
                        .ok_or_else(|| self.err(line, "SEG outside NET"))?;
                    if toks.len() != 7 {
                        return Err(
                            self.err(line, "expected `SEG <layer> <x0> <y0> <x1> <y1> <width>`")
                        );
                    }
                    let layer = layers
                        .iter()
                        .position(|l| l.name == toks[1])
                        .map(crate::LayerId)
                        .ok_or_else(|| LayoutError::UnknownLayer(toks[1].to_string()))?;
                    net.segments.push(Segment {
                        layer,
                        start: Point::new(
                            self.parse_coord(line, toks[2])?,
                            self.parse_coord(line, toks[3])?,
                        ),
                        end: Point::new(
                            self.parse_coord(line, toks[4])?,
                            self.parse_coord(line, toks[5])?,
                        ),
                        width: self.parse_coord(line, toks[6])?,
                    });
                }
                "SINK" => {
                    let net = current
                        .as_mut()
                        .ok_or_else(|| self.err(line, "SINK outside NET"))?;
                    if toks.len() != 3 {
                        return Err(self.err(line, "expected `SINK <x> <y>`"));
                    }
                    net.sinks.push(Point::new(
                        self.parse_coord(line, toks[1])?,
                        self.parse_coord(line, toks[2])?,
                    ));
                }
                "ENDNET" => {
                    let net = current
                        .take()
                        .ok_or_else(|| self.err(line, "ENDNET without NET"))?;
                    nets.push(net);
                }
                "ENDDESIGN" => {
                    ended = true;
                    break;
                }
                other => {
                    return Err(self.err(line, format!("unknown directive `{other}`")));
                }
            }
        }

        if current.is_some() {
            return Err(self.err(0, "unterminated NET at end of input"));
        }
        if !ended {
            return Err(self.err(0, "missing ENDDESIGN"));
        }
        let die = die.ok_or_else(|| self.err(0, "missing DIE"))?;

        let design = Design {
            name,
            die,
            tech,
            rules,
            layers,
            nets,
            obstructions,
        };
        design.validate()?;
        Ok(design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DesignBuilder;
    use pilfill_geom::Dir;

    fn sample() -> Design {
        DesignBuilder::new("demo", Rect::new(0, 0, 50_000, 50_000))
            .layer("m3", Dir::Horizontal)
            .layer("m2", Dir::Vertical)
            .net("a", Point::new(0, 1000))
            .segment("m3", Point::new(0, 1000), Point::new(20_000, 1000), 200)
            .segment(
                "m2",
                Point::new(20_000, 1000),
                Point::new(20_000, 5000),
                200,
            )
            .sink(Point::new(20_000, 5000))
            .net("b", Point::new(0, 9000))
            .segment("m3", Point::new(0, 9000), Point::new(30_000, 9000), 400)
            .sink(Point::new(30_000, 9000))
            .build()
            .expect("valid sample")
    }

    #[test]
    fn round_trip_preserves_design() {
        let d = sample();
        let text = d.to_text();
        let d2 = Design::from_text(&text).expect("parse back");
        assert_eq!(d, d2);
    }

    #[test]
    fn parse_with_comments_and_blank_lines() {
        let d = sample();
        let mut text = String::from("# generated file\n\n");
        text.push_str(&d.to_text());
        let with_inline = text.replace("DIE", "DIE # die comes here\n DIE");
        // The inline-comment variant intentionally breaks; use the clean one.
        let _ = with_inline;
        let d2 = Design::from_text(&text).expect("parse with leading comments");
        assert_eq!(d.name, d2.name);
    }

    #[test]
    fn inline_comments_are_stripped() {
        let text = "PILFILL 1 # header\nDESIGN x\nDIE 0 0 100 100 # the die\nENDDESIGN\n";
        let d = Design::from_text(text).expect("parse");
        assert_eq!(d.die, Rect::new(0, 0, 100, 100));
    }

    #[test]
    fn error_reports_line_numbers() {
        let text = "PILFILL 1\nDESIGN x\nDIE 0 0 oops 100\nENDDESIGN\n";
        match Design::from_text(text) {
            Err(LayoutError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_header_rejected() {
        assert!(matches!(
            Design::from_text("DESIGN x\n"),
            Err(LayoutError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn seg_outside_net_rejected() {
        let text = "PILFILL 1\nDIE 0 0 10 10\nLAYER m3 h\nSEG m3 0 0 5 0 2\nENDDESIGN\n";
        assert!(matches!(
            Design::from_text(text),
            Err(LayoutError::Parse { line: 4, .. })
        ));
    }

    #[test]
    fn unknown_layer_in_seg_rejected() {
        let text =
            "PILFILL 1\nDIE 0 0 10 10\nNET n SOURCE 0 0\nSEG mX 0 0 5 0 2\nENDNET\nENDDESIGN\n";
        assert!(matches!(
            Design::from_text(text),
            Err(LayoutError::UnknownLayer(_))
        ));
    }

    #[test]
    fn unterminated_net_rejected() {
        let text = "PILFILL 1\nDIE 0 0 10 10\nNET n SOURCE 0 0\nENDDESIGN\n";
        // ENDDESIGN breaks the loop with a NET still open -> error... the
        // loop breaks first, so the check fires after the loop.
        assert!(Design::from_text(text).is_err());
    }

    #[test]
    fn missing_enddesign_rejected() {
        let text = "PILFILL 1\nDIE 0 0 10 10\n";
        assert!(Design::from_text(text).is_err());
    }
}
