/// Errors produced while building, validating or parsing a layout.
#[derive(Debug, Clone, PartialEq)]
pub enum LayoutError {
    /// A referenced layer name does not exist in the design.
    UnknownLayer(String),
    /// A segment is neither horizontal nor vertical.
    DiagonalSegment {
        /// Net the segment belongs to.
        net: String,
    },
    /// A segment has zero length or non-positive width.
    DegenerateSegment {
        /// Net the segment belongs to.
        net: String,
    },
    /// A net's segments do not form a tree connected to its source.
    DisconnectedNet {
        /// The offending net.
        net: String,
    },
    /// A sink does not coincide with any segment endpoint.
    DanglingSink {
        /// The offending net.
        net: String,
    },
    /// Geometry extends beyond the die.
    OutsideDie {
        /// The offending net, or `die` context note.
        net: String,
    },
    /// Technology or rule parameters are out of range.
    InvalidParameter(String),
    /// Text-format syntax error with 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable message.
        message: String,
    },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::UnknownLayer(name) => write!(f, "unknown layer `{name}`"),
            LayoutError::DiagonalSegment { net } => {
                write!(f, "net `{net}` has a non-rectilinear segment")
            }
            LayoutError::DegenerateSegment { net } => {
                write!(f, "net `{net}` has a zero-length or zero-width segment")
            }
            LayoutError::DisconnectedNet { net } => {
                write!(
                    f,
                    "net `{net}` segments do not form a tree rooted at the source"
                )
            }
            LayoutError::DanglingSink { net } => {
                write!(f, "net `{net}` has a sink not on any segment endpoint")
            }
            LayoutError::OutsideDie { net } => {
                write!(f, "net `{net}` has geometry outside the die area")
            }
            LayoutError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            LayoutError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for LayoutError {}
