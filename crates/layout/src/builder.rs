use crate::{Design, FillRules, Layer, LayerId, LayoutError, Net, Segment};
use pilfill_geom::{Coord, Dir, Point, Rect};

/// Incremental builder for [`Design`]s.
///
/// # Examples
///
/// ```
/// use pilfill_layout::DesignBuilder;
/// use pilfill_geom::{Dir, Rect, Point};
///
/// let design = DesignBuilder::new("demo", Rect::new(0, 0, 20_000, 20_000))
///     .layer("m3", Dir::Horizontal)
///     .net("clk", Point::new(0, 10_000))
///     .segment("m3", Point::new(0, 10_000), Point::new(18_000, 10_000), 200)
///     .sink(Point::new(18_000, 10_000))
///     .finish_net()
///     .build()?;
/// assert_eq!(design.nets.len(), 1);
/// # Ok::<(), pilfill_layout::LayoutError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DesignBuilder {
    design: Design,
    current_net: Option<Net>,
    error: Option<LayoutError>,
}

impl DesignBuilder {
    /// Starts a design with default technology and fill rules.
    pub fn new(name: impl Into<String>, die: Rect) -> Self {
        Self {
            design: Design {
                name: name.into(),
                die,
                tech: Default::default(),
                rules: Default::default(),
                layers: Vec::new(),
                nets: Vec::new(),
                obstructions: Vec::new(),
            },
            current_net: None,
            error: None,
        }
    }

    /// Overrides the technology parameters.
    #[must_use]
    pub fn tech(mut self, tech: crate::Tech) -> Self {
        self.design.tech = tech;
        self
    }

    /// Overrides the fill rules.
    #[must_use]
    pub fn rules(mut self, rules: FillRules) -> Self {
        self.design.rules = rules;
        self
    }

    /// Adds a routing layer.
    #[must_use]
    pub fn layer(mut self, name: impl Into<String>, dir: Dir) -> Self {
        self.design.layers.push(Layer {
            name: name.into(),
            dir,
        });
        self
    }

    /// Adds a placement blockage on a layer (looked up by name).
    #[must_use]
    pub fn obstruction(mut self, layer: &str, rect: Rect) -> Self {
        match self.design.layer_by_name(layer) {
            Some(id) => self
                .design
                .obstructions
                .push(crate::Obstruction { layer: id, rect }),
            None => {
                self.error
                    .get_or_insert_with(|| LayoutError::UnknownLayer(layer.to_string()));
            }
        }
        self
    }

    /// Begins a new net with the given driver location. Any net in progress
    /// is finished first.
    #[must_use]
    pub fn net(mut self, name: impl Into<String>, source: Point) -> Self {
        self.flush_net();
        self.current_net = Some(Net {
            name: name.into(),
            source,
            sinks: Vec::new(),
            segments: Vec::new(),
        });
        self
    }

    /// Adds a segment to the net in progress. `layer` is looked up by name;
    /// an unknown name is recorded and reported by [`DesignBuilder::build`].
    ///
    /// # Panics
    ///
    /// Panics if no net is in progress.
    #[must_use]
    pub fn segment(mut self, layer: &str, start: Point, end: Point, width: Coord) -> Self {
        let layer_id = match self.design.layer_by_name(layer) {
            Some(id) => id,
            None => {
                self.error
                    .get_or_insert_with(|| LayoutError::UnknownLayer(layer.to_string()));
                LayerId(usize::MAX)
            }
        };
        let net = self
            .current_net
            .as_mut()
            // Documented `# Panics` contract of the builder API.
            .expect("segment() requires an open net"); // pilfill: allow(unwrap)
        net.segments.push(Segment {
            layer: layer_id,
            start,
            end,
            width,
        });
        self
    }

    /// Adds a sink pin to the net in progress.
    ///
    /// # Panics
    ///
    /// Panics if no net is in progress.
    #[must_use]
    pub fn sink(mut self, at: Point) -> Self {
        self.current_net
            .as_mut()
            // Documented `# Panics` contract of the builder API.
            .expect("sink() requires an open net") // pilfill: allow(unwrap)
            .sinks
            .push(at);
        self
    }

    /// Finishes the net in progress.
    #[must_use]
    pub fn finish_net(mut self) -> Self {
        self.flush_net();
        self
    }

    fn flush_net(&mut self) {
        if let Some(net) = self.current_net.take() {
            self.design.nets.push(net);
        }
    }

    /// Validates and returns the finished design.
    ///
    /// # Errors
    ///
    /// Returns any error recorded during building, or the first
    /// [`Design::validate`] failure.
    pub fn build(mut self) -> Result<Design, LayoutError> {
        self.flush_net();
        if let Some(e) = self.error {
            return Err(e);
        }
        self.design.validate()?;
        Ok(self.design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_design() {
        let d = DesignBuilder::new("b", Rect::new(0, 0, 5000, 5000))
            .layer("m3", Dir::Horizontal)
            .layer("m2", Dir::Vertical)
            .net("a", Point::new(100, 100))
            .segment("m3", Point::new(100, 100), Point::new(4000, 100), 100)
            .sink(Point::new(4000, 100))
            .net("b", Point::new(100, 900))
            .segment("m3", Point::new(100, 900), Point::new(3000, 900), 100)
            .segment("m2", Point::new(3000, 900), Point::new(3000, 2000), 100)
            .sink(Point::new(3000, 2000))
            .build()
            .expect("valid");
        assert_eq!(d.nets.len(), 2);
        assert_eq!(d.layers.len(), 2);
        assert_eq!(d.nets[1].segments.len(), 2);
    }

    #[test]
    fn unknown_layer_reported_at_build() {
        let r = DesignBuilder::new("b", Rect::new(0, 0, 5000, 5000))
            .layer("m3", Dir::Horizontal)
            .net("a", Point::new(0, 0))
            .segment("m9", Point::new(0, 0), Point::new(100, 0), 50)
            .build();
        assert!(matches!(r, Err(LayoutError::UnknownLayer(name)) if name == "m9"));
    }

    #[test]
    fn implicit_finish_net_on_new_net() {
        let d = DesignBuilder::new("b", Rect::new(0, 0, 5000, 5000))
            .layer("m3", Dir::Horizontal)
            .net("a", Point::new(100, 100))
            .segment("m3", Point::new(100, 100), Point::new(400, 100), 50)
            .net("b", Point::new(100, 300))
            .segment("m3", Point::new(100, 300), Point::new(400, 300), 50)
            .build()
            .expect("valid");
        assert_eq!(d.nets.len(), 2);
    }

    #[test]
    #[should_panic(expected = "requires an open net")]
    fn segment_without_net_panics() {
        let _ = DesignBuilder::new("b", Rect::new(0, 0, 100, 100))
            .layer("m3", Dir::Horizontal)
            .segment("m3", Point::new(0, 0), Point::new(10, 0), 5);
    }
}
