use crate::{LayoutError, Net};
use pilfill_geom::{Coord, Dir, Rect};

/// Index of a layer in a [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LayerId(pub usize);

/// A routing layer with a preferred direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Layer name (unique in a design), e.g. `m3`.
    pub name: String,
    /// Preferred routing direction; fill synthesis treats wrong-direction
    /// segments as excluded obstructions (the paper ignores wrong-direction
    /// routing, Sec. 5.2).
    pub dir: Dir,
}

/// Electrical technology parameters shared by all layers.
///
/// Units: geometry in database units (1 dbu = 1 nm), resistance in ohms,
/// capacitance in farads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tech {
    /// Sheet resistance of the routing metal in ohms/square.
    pub sheet_res_ohm_sq: f64,
    /// Relative permittivity of the inter-metal dielectric.
    pub eps_r: f64,
    /// Metal thickness in dbu; the overlap area per unit length `a` of the
    /// paper's Eq. (3) equals this thickness for coplanar coupling.
    pub thickness: Coord,
}

impl Tech {
    /// 180 nm-generation aluminum defaults (matching the paper's era).
    pub fn default_180nm() -> Self {
        Self {
            sheet_res_ohm_sq: 0.07,
            eps_r: 3.9,
            thickness: 500,
        }
    }

    /// Per-unit-length resistance in ohm/dbu of a wire `width` dbu wide.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive.
    pub fn res_per_dbu(&self, width: Coord) -> f64 {
        assert!(width > 0, "wire width must be positive");
        self.sheet_res_ohm_sq / width as f64
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidParameter`] on non-positive values.
    pub fn validate(&self) -> Result<(), LayoutError> {
        if self.sheet_res_ohm_sq <= 0.0 || !self.sheet_res_ohm_sq.is_finite() {
            return Err(LayoutError::InvalidParameter(format!(
                "sheet resistance must be positive (got {})",
                self.sheet_res_ohm_sq
            )));
        }
        if self.eps_r < 1.0 || !self.eps_r.is_finite() {
            return Err(LayoutError::InvalidParameter(format!(
                "relative permittivity must be >= 1 (got {})",
                self.eps_r
            )));
        }
        if self.thickness <= 0 {
            return Err(LayoutError::InvalidParameter(format!(
                "metal thickness must be positive (got {})",
                self.thickness
            )));
        }
        Ok(())
    }
}

impl Default for Tech {
    fn default() -> Self {
        Self::default_180nm()
    }
}

/// Design rules for floating square fill features (the paper's `w`, `s`
/// pattern parameters and buffer distance `buf`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillRules {
    /// Side length of a square fill feature (the paper's `w`).
    pub feature_size: Coord,
    /// Minimum gap between adjacent fill features (the paper's `s`).
    pub gap: Coord,
    /// Minimum spacing from fill to any interconnect (the paper's `buf`).
    pub buffer: Coord,
}

impl FillRules {
    /// Site pitch: one fill feature plus its gap.
    pub fn site_pitch(&self) -> Coord {
        self.feature_size + self.gap
    }

    /// Area of one fill feature.
    pub fn feature_area(&self) -> i64 {
        self.feature_size * self.feature_size
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidParameter`] on non-positive feature
    /// size or negative gap/buffer.
    pub fn validate(&self) -> Result<(), LayoutError> {
        if self.feature_size <= 0 {
            return Err(LayoutError::InvalidParameter(format!(
                "fill feature size must be positive (got {})",
                self.feature_size
            )));
        }
        if self.gap < 0 || self.buffer < 0 {
            return Err(LayoutError::InvalidParameter(
                "fill gap and buffer must be non-negative".into(),
            ));
        }
        Ok(())
    }
}

impl Default for FillRules {
    fn default() -> Self {
        // Sized so one feature fits between routing tracks separated by a
        // single empty track at the default wire pitch (560 dbu).
        Self {
            feature_size: 300,
            gap: 150,
            buffer: 150,
        }
    }
}

/// A placement/routing blockage (e.g. a hard macro): fill must keep the
/// buffer distance from it, and its area counts toward layout density,
/// but it carries no switching signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Obstruction {
    /// Layer the blockage occupies.
    pub layer: LayerId,
    /// Blocked rectangle.
    pub rect: Rect,
}

/// A routed design: die area, technology, rules, layers, nets and
/// blockages.
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    /// Design name.
    pub name: String,
    /// Die (placement/routing) area.
    pub die: Rect,
    /// Technology parameters.
    pub tech: Tech,
    /// Fill design rules.
    pub rules: FillRules,
    /// Routing layers.
    pub layers: Vec<Layer>,
    /// Routed nets.
    pub nets: Vec<Net>,
    /// Placement blockages (macros etc.).
    pub obstructions: Vec<Obstruction>,
}

impl Design {
    /// Looks up a layer by name.
    pub fn layer_by_name(&self, name: &str) -> Option<LayerId> {
        self.layers.iter().position(|l| l.name == name).map(LayerId)
    }

    /// Iterates all segments on `layer` across all nets, with their net
    /// index.
    pub fn segments_on_layer(
        &self,
        layer: LayerId,
    ) -> impl Iterator<Item = (crate::NetId, crate::SegmentId, &crate::Segment)> + '_ {
        self.nets.iter().enumerate().flat_map(move |(ni, net)| {
            net.segments
                .iter()
                .enumerate()
                .filter(move |(_, s)| s.layer == layer)
                .map(move |(si, s)| (crate::NetId(ni), crate::SegmentId(si), s))
        })
    }

    /// Total drawn metal area on `layer`, including obstructions.
    pub fn metal_area_on_layer(&self, layer: LayerId) -> i64 {
        let wires: i64 = self
            .segments_on_layer(layer)
            .map(|(_, _, s)| s.rect().area())
            .sum();
        let obs: i64 = self
            .obstructions_on_layer(layer)
            .map(|o| o.rect.area())
            .sum();
        wires + obs
    }

    /// Iterates the obstructions on `layer`.
    pub fn obstructions_on_layer(&self, layer: LayerId) -> impl Iterator<Item = &Obstruction> + '_ {
        self.obstructions.iter().filter(move |o| o.layer == layer)
    }

    /// The design reflected about the diagonal: die, pins and segments
    /// have x/y swapped and every layer's preferred direction flips.
    ///
    /// Transposition lets algorithms written for horizontally routed
    /// layers run on vertical ones: transpose, process, transpose results
    /// back. It is an involution: `d.transposed().transposed() == d`.
    #[must_use]
    pub fn transposed(&self) -> Design {
        Design {
            name: self.name.clone(),
            die: self.die.transposed(),
            tech: self.tech,
            rules: self.rules,
            layers: self
                .layers
                .iter()
                .map(|l| Layer {
                    name: l.name.clone(),
                    dir: l.dir.perpendicular(),
                })
                .collect(),
            nets: self
                .nets
                .iter()
                .map(|n| crate::Net {
                    name: n.name.clone(),
                    source: n.source.transposed(),
                    sinks: n.sinks.iter().map(|s| s.transposed()).collect(),
                    segments: n
                        .segments
                        .iter()
                        .map(|s| crate::Segment {
                            layer: s.layer,
                            start: s.start.transposed(),
                            end: s.end.transposed(),
                            width: s.width,
                        })
                        .collect(),
                })
                .collect(),
            obstructions: self
                .obstructions
                .iter()
                .map(|o| Obstruction {
                    layer: o.layer,
                    rect: o.rect.transposed(),
                })
                .collect(),
        }
    }

    /// Checks the whole design: parameters, layer references, segment
    /// geometry, die containment and net topologies.
    ///
    /// # Errors
    ///
    /// Returns the first [`LayoutError`] found.
    pub fn validate(&self) -> Result<(), LayoutError> {
        self.tech.validate()?;
        self.rules.validate()?;
        if self.die.is_empty() {
            return Err(LayoutError::InvalidParameter("die area is empty".into()));
        }
        for o in &self.obstructions {
            if o.layer.0 >= self.layers.len() {
                return Err(LayoutError::UnknownLayer(format!("#{}", o.layer.0)));
            }
            if o.rect.is_empty() || !self.die.contains_rect(&o.rect) {
                return Err(LayoutError::OutsideDie {
                    net: "<obstruction>".into(),
                });
            }
        }
        for net in &self.nets {
            for s in &net.segments {
                if s.layer.0 >= self.layers.len() {
                    return Err(LayoutError::UnknownLayer(format!("#{}", s.layer.0)));
                }
                if s.start.x != s.end.x && s.start.y != s.end.y {
                    return Err(LayoutError::DiagonalSegment {
                        net: net.name.clone(),
                    });
                }
                if s.start == s.end || s.width <= 0 {
                    return Err(LayoutError::DegenerateSegment {
                        net: net.name.clone(),
                    });
                }
                if !self.die.contains_rect(&s.rect()) {
                    return Err(LayoutError::OutsideDie {
                        net: net.name.clone(),
                    });
                }
            }
            net.topology()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Net, Segment};
    use pilfill_geom::Point;

    fn minimal_design() -> Design {
        Design {
            name: "t".into(),
            die: Rect::new(0, 0, 10_000, 10_000),
            tech: Tech::default(),
            rules: FillRules::default(),
            layers: vec![Layer {
                name: "m3".into(),
                dir: Dir::Horizontal,
            }],
            nets: vec![Net {
                name: "n0".into(),
                source: Point::new(1000, 5000),
                sinks: vec![Point::new(9000, 5000)],
                segments: vec![Segment {
                    layer: LayerId(0),
                    start: Point::new(1000, 5000),
                    end: Point::new(9000, 5000),
                    width: 200,
                }],
            }],
            obstructions: vec![],
        }
    }

    #[test]
    fn valid_design_passes() {
        assert_eq!(minimal_design().validate(), Ok(()));
    }

    #[test]
    fn res_per_dbu_scales_inversely_with_width() {
        let t = Tech::default_180nm();
        assert!((t.res_per_dbu(200) - 2.0 * t.res_per_dbu(400)).abs() < 1e-12);
    }

    #[test]
    fn tech_validation_rejects_bad_values() {
        let t = Tech {
            sheet_res_ohm_sq: 0.0,
            ..Tech::default()
        };
        assert!(t.validate().is_err());
        let t = Tech {
            eps_r: 0.5,
            ..Tech::default()
        };
        assert!(t.validate().is_err());
        let t = Tech {
            thickness: 0,
            ..Tech::default()
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn rules_site_pitch_and_area() {
        let r = FillRules {
            feature_size: 400,
            gap: 200,
            buffer: 300,
        };
        assert_eq!(r.site_pitch(), 600);
        assert_eq!(r.feature_area(), 160_000);
        assert!(r.validate().is_ok());
        assert!(FillRules {
            feature_size: 0,
            ..r
        }
        .validate()
        .is_err());
    }

    #[test]
    fn design_rejects_segment_outside_die() {
        let mut d = minimal_design();
        d.nets[0].segments[0].end.x = 11_000;
        d.nets[0].sinks[0].x = 11_000;
        assert!(matches!(d.validate(), Err(LayoutError::OutsideDie { .. })));
    }

    #[test]
    fn design_rejects_diagonal_segment() {
        let mut d = minimal_design();
        d.nets[0].segments[0].end = Point::new(9000, 6000);
        assert!(matches!(
            d.validate(),
            Err(LayoutError::DiagonalSegment { .. })
        ));
    }

    #[test]
    fn design_rejects_unknown_layer() {
        let mut d = minimal_design();
        d.nets[0].segments[0].layer = LayerId(5);
        assert!(matches!(d.validate(), Err(LayoutError::UnknownLayer(_))));
    }

    #[test]
    fn layer_lookup_and_metal_area() {
        let d = minimal_design();
        let m3 = d.layer_by_name("m3").expect("m3 exists");
        assert_eq!(m3, LayerId(0));
        assert!(d.layer_by_name("m9").is_none());
        assert_eq!(d.metal_area_on_layer(m3), 8000 * 200);
        assert_eq!(d.segments_on_layer(m3).count(), 1);
    }
}
