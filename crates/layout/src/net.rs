use crate::LayoutError;
use pilfill_geom::{Coord, Dir, Point, Rect};
use std::collections::HashMap;

/// Index of a net in a [`crate::Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub usize);

/// Index of a segment within its net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub usize);

/// Direction of signal flow along a segment, relative to the coordinate
/// axis the segment runs along.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalDir {
    /// Signal flows in the direction of increasing coordinate.
    Increasing,
    /// Signal flows in the direction of decreasing coordinate.
    Decreasing,
}

/// One rectilinear wire piece of a routed net.
///
/// `start` is the source-side end (where the signal enters); `end` the
/// load-side end. Both lie on the wire centerline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Index into [`crate::Design::layers`].
    pub layer: crate::LayerId,
    /// Source-side centerline endpoint.
    pub start: Point,
    /// Load-side centerline endpoint.
    pub end: Point,
    /// Drawn wire width.
    pub width: Coord,
}

impl Segment {
    /// Orientation of the segment.
    ///
    /// # Panics
    ///
    /// Panics if the segment is diagonal (validation rejects those first).
    pub fn dir(&self) -> Dir {
        if self.start.y == self.end.y {
            Dir::Horizontal
        } else if self.start.x == self.end.x {
            Dir::Vertical
        } else {
            // Documented `# Panics` contract; validation rejects diagonals.
            panic!("diagonal segment {:?} -> {:?}", self.start, self.end) // pilfill: allow(unwrap)
        }
    }

    /// Centerline length.
    pub fn length(&self) -> Coord {
        self.start.manhattan_distance(self.end)
    }

    /// Signal-flow direction along the segment's axis.
    pub fn signal_dir(&self) -> SignalDir {
        let d = self.dir();
        if self.end.along(d) >= self.start.along(d) {
            SignalDir::Increasing
        } else {
            SignalDir::Decreasing
        }
    }

    /// The drawn metal rectangle (centerline expanded by half the width).
    pub fn rect(&self) -> Rect {
        let hw = self.width / 2;
        match self.dir() {
            Dir::Horizontal => {
                let (x0, x1) = min_max(self.start.x, self.end.x);
                Rect::new(x0, self.start.y - hw, x1, self.start.y + (self.width - hw))
            }
            Dir::Vertical => {
                let (y0, y1) = min_max(self.start.y, self.end.y);
                Rect::new(self.start.x - hw, y0, self.start.x + (self.width - hw), y1)
            }
        }
    }
}

fn min_max(a: Coord, b: Coord) -> (Coord, Coord) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// A routed signal net: a tree of segments rooted at the source pin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Net name (unique in a design).
    pub name: String,
    /// Driver pin location (must coincide with a segment endpoint).
    pub source: Point,
    /// Receiver pin locations (each must coincide with a segment endpoint).
    pub sinks: Vec<Point>,
    /// Routing tree edges.
    pub segments: Vec<Segment>,
}

impl Net {
    /// Total routed wirelength.
    pub fn wirelength(&self) -> Coord {
        self.segments.iter().map(Segment::length).sum()
    }

    /// Builds and validates the net's tree topology.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::DisconnectedNet`] if the segments do not form
    /// a tree rooted at the source (cycle, disconnection, or a segment whose
    /// `start` is not reachable), and [`LayoutError::DanglingSink`] if a
    /// sink is not a segment endpoint (or the source itself).
    pub fn topology(&self) -> Result<NetTopology, LayoutError> {
        NetTopology::build(self)
    }
}

/// Validated tree topology of a [`Net`], with per-segment structure data.
///
/// Produced by [`Net::topology`]; consumed by the RC annotator which turns
/// path lengths into resistances.
#[derive(Debug, Clone)]
pub struct NetTopology {
    /// For each segment: segments on the source path *before* it (by index),
    /// in source-to-segment order.
    pub upstream: Vec<Vec<SegmentId>>,
    /// For each segment: number of sinks in the subtree at or below its
    /// `end` (the paper's weight `W_l`), plus sinks on the segment interior
    /// are not modeled — sinks sit on endpoints.
    pub downstream_sinks: Vec<u32>,
    /// Depth-first order of segments from the source (parents first).
    pub order: Vec<SegmentId>,
}

impl NetTopology {
    fn build(net: &Net) -> Result<Self, LayoutError> {
        let n = net.segments.len();
        let err = || LayoutError::DisconnectedNet {
            net: net.name.clone(),
        };

        // Map endpoints to segment indices: children hang off a node.
        let mut children_at: HashMap<Point, Vec<usize>> = HashMap::new();
        for (i, s) in net.segments.iter().enumerate() {
            children_at.entry(s.start).or_default().push(i);
        }

        // BFS from the source following start -> end.
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut order: Vec<SegmentId> = Vec::with_capacity(n);
        let mut queue: Vec<(Point, Option<usize>)> = vec![(net.source, None)];
        let mut seen_nodes: Vec<Point> = Vec::new();
        while let Some((node, from_seg)) = queue.pop() {
            seen_nodes.push(node);
            if let Some(kids) = children_at.get(&node) {
                for &k in kids {
                    if visited[k] {
                        // A segment reachable twice means a cycle or a
                        // repeated start point fan-in; both violate the
                        // tree property only if reached via different
                        // parents — fan-out from one node is fine, but a
                        // second visit of the same segment is a cycle.
                        return Err(err());
                    }
                    visited[k] = true;
                    parent[k] = from_seg;
                    order.push(SegmentId(k));
                    queue.push((net.segments[k].end, Some(k)));
                }
            }
        }
        if visited.iter().any(|&v| !v) {
            return Err(err());
        }

        // Sinks must be segment endpoints or the source.
        let mut endpoint_nodes: Vec<Point> =
            net.segments.iter().flat_map(|s| [s.start, s.end]).collect();
        endpoint_nodes.push(net.source);
        for sink in &net.sinks {
            if !endpoint_nodes.contains(sink) {
                return Err(LayoutError::DanglingSink {
                    net: net.name.clone(),
                });
            }
        }

        // Downstream sink counts: a sink at point p counts for every
        // segment on the path from the source to p. Count by walking up
        // from the deepest segment whose `end` equals the sink.
        let mut downstream = vec![0u32; n];
        for sink in &net.sinks {
            // Find the segment whose end is this sink; if the sink sits on
            // the source itself there is no downstream segment.
            if let Some(mut cur) = net.segments.iter().position(|s| s.end == *sink) {
                loop {
                    downstream[cur] += 1;
                    match parent[cur] {
                        Some(p) => cur = p,
                        None => break,
                    }
                }
            }
        }

        // Upstream chains.
        let mut upstream: Vec<Vec<SegmentId>> = vec![Vec::new(); n];
        for &SegmentId(i) in &order {
            if let Some(p) = parent[i] {
                let mut chain = upstream[p].clone();
                chain.push(SegmentId(p));
                upstream[i] = chain;
            }
        }

        Ok(Self {
            upstream,
            downstream_sinks: downstream,
            order,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerId;

    fn seg(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Segment {
        Segment {
            layer: LayerId(0),
            start: Point::new(x0, y0),
            end: Point::new(x1, y1),
            width: 100,
        }
    }

    fn two_sink_net() -> Net {
        // source --A--> (1000,0) --B--> (2000,0) sink1
        //                   \---C--> (1000,500) sink2   (vertical)
        Net {
            name: "n".into(),
            source: Point::new(0, 0),
            sinks: vec![Point::new(2000, 0), Point::new(1000, 500)],
            segments: vec![
                seg(0, 0, 1000, 0),
                seg(1000, 0, 2000, 0),
                seg(1000, 0, 1000, 500),
            ],
        }
    }

    #[test]
    fn segment_geometry() {
        let s = seg(0, 0, 1000, 0);
        assert_eq!(s.dir(), Dir::Horizontal);
        assert_eq!(s.length(), 1000);
        assert_eq!(s.signal_dir(), SignalDir::Increasing);
        assert_eq!(s.rect(), Rect::new(0, -50, 1000, 50));

        let s = seg(500, 800, 500, 200);
        assert_eq!(s.dir(), Dir::Vertical);
        assert_eq!(s.signal_dir(), SignalDir::Decreasing);
        assert_eq!(s.rect(), Rect::new(450, 200, 550, 800));
    }

    #[test]
    fn reversed_segment_rect_same_as_forward() {
        assert_eq!(seg(1000, 0, 0, 0).rect(), seg(0, 0, 1000, 0).rect());
    }

    #[test]
    fn topology_of_branching_net() {
        let net = two_sink_net();
        let topo = net.topology().expect("valid tree");
        // Trunk A feeds both sinks.
        assert_eq!(topo.downstream_sinks[0], 2);
        assert_eq!(topo.downstream_sinks[1], 1);
        assert_eq!(topo.downstream_sinks[2], 1);
        assert!(topo.upstream[0].is_empty());
        assert_eq!(topo.upstream[1], vec![SegmentId(0)]);
        assert_eq!(topo.upstream[2], vec![SegmentId(0)]);
        assert_eq!(topo.order.len(), 3);
        assert_eq!(topo.order[0], SegmentId(0)); // parent first
    }

    #[test]
    fn wirelength_sums_segments() {
        assert_eq!(two_sink_net().wirelength(), 2500);
    }

    #[test]
    fn disconnected_net_rejected() {
        let mut net = two_sink_net();
        net.segments.push(seg(9000, 9000, 9500, 9000));
        assert!(matches!(
            net.topology(),
            Err(LayoutError::DisconnectedNet { .. })
        ));
    }

    #[test]
    fn cycle_rejected() {
        // A segment that loops back onto the source creates a second visit.
        let net = Net {
            name: "cyc".into(),
            source: Point::new(0, 0),
            sinks: vec![],
            segments: vec![seg(0, 0, 1000, 0), seg(1000, 0, 0, 0)],
        };
        // seg1 end coincides with source node; its children (seg0) would be
        // revisited.
        assert!(matches!(
            net.topology(),
            Err(LayoutError::DisconnectedNet { .. })
        ));
    }

    #[test]
    fn dangling_sink_rejected() {
        let mut net = two_sink_net();
        net.sinks.push(Point::new(123, 456));
        assert!(matches!(
            net.topology(),
            Err(LayoutError::DanglingSink { .. })
        ));
    }

    #[test]
    fn sink_at_source_contributes_no_downstream() {
        let mut net = two_sink_net();
        net.sinks = vec![Point::new(0, 0)];
        let topo = net.topology().expect("valid");
        assert!(topo.downstream_sinks.iter().all(|&w| w == 0));
    }
}
