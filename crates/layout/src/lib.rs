//! # pilfill-layout
//!
//! Routed-layout database for PIL-Fill: the data the original experiments
//! read from industry LEF/DEF files, rebuilt as a self-contained model.
//!
//! A [`Design`] owns a die area, a technology description ([`Tech`]), fill
//! design rules ([`FillRules`]), routing [`Layer`]s and routed [`Net`]s.
//! Each net is a source-rooted routing tree of rectilinear [`Segment`]s;
//! the RC crate (`pilfill-rc`) annotates segments with entry resistance and
//! downstream-sink weights, and the core crate extracts per-tile *active
//! lines* from segment geometry.
//!
//! Three entry points matter to users:
//!
//! - build a design programmatically with [`DesignBuilder`];
//! - read/write the plain-text interchange format with [`Design::from_text`]
//!   / [`Design::to_text`] (our substitution for DEF, see `DESIGN.md`);
//! - generate industry-like testcases with [`synth::synthesize`] (the
//!   substitution for the paper's proprietary T1/T2 layouts).
//!
//! # Examples
//!
//! ```
//! use pilfill_layout::synth::{SynthConfig, synthesize};
//!
//! let design = synthesize(&SynthConfig::small_test(7));
//! assert!(design.validate().is_ok());
//! assert!(!design.nets.is_empty());
//! ```

mod builder;
mod design;
mod error;
mod io;
mod net;
pub mod stats;
pub mod synth;

pub use builder::DesignBuilder;
pub use design::{Design, FillRules, Layer, LayerId, Obstruction, Tech};
pub use error::LayoutError;
pub use net::{Net, NetId, NetTopology, Segment, SegmentId, SignalDir};
