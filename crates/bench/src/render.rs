//! Text and CSV rendering of experiment rows in the paper's table format.

use crate::experiments::ExperimentRow;
use std::fmt::Write as _;
use std::path::Path;

/// Renders rows as an aligned text table mirroring the paper's Tables 1/2.
///
/// `weighted` selects which delay metric fills the tau columns; delays are
/// printed in femtoseconds (the synthetic testbed is macro-block scale, so
/// absolute magnitudes are smaller than the paper's — see EXPERIMENTS.md).
pub fn render_rows(rows: &[ExperimentRow], weighted: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>10} | {:>9} | {:>9} {:>7} | {:>9} {:>7} | {:>9} {:>7}",
        "T/W/r", "budget", "Normal", "ILP-I", "CPU", "ILP-II", "CPU", "Greedy", "CPU"
    );
    let _ = writeln!(out, "{}", "-".repeat(100));
    for row in rows {
        let tau = |i: usize| -> f64 {
            let m = &row.methods[i];
            let t = if weighted {
                m.weighted_delay
            } else {
                m.total_delay
            };
            t * 1e15 // seconds -> fs
        };
        let cpu = |i: usize| row.methods[i].cpu.as_secs_f64() * 1e3; // ms
        let _ = writeln!(
            out,
            "{:<10} {:>10} | {:>9.2} | {:>9.2} {:>5.0}ms | {:>9.2} {:>5.0}ms | {:>9.2} {:>5.0}ms",
            format!("{}/{}/{}", row.testcase, row.window_label, row.r),
            row.budget,
            tau(0),
            tau(1),
            cpu(1),
            tau(2),
            cpu(2),
            tau(3),
            cpu(3),
        );
    }
    out
}

/// Writes rows as CSV (one line per method per grid cell).
///
/// # Errors
///
/// Any I/O error creating or writing the file.
pub fn write_csv(rows: &[ExperimentRow], path: &Path) -> std::io::Result<()> {
    let mut out = String::from(
        "testcase,window,r,budget,method,total_delay_s,weighted_delay_s,cpu_s,placed,shortfall,min_density_after\n",
    );
    for row in rows {
        for m in &row.methods {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{:.6e},{:.6e},{:.4},{},{},{:.6}",
                row.testcase,
                row.window_label,
                row.r,
                row.budget,
                m.method,
                m.total_delay,
                m.weighted_delay,
                m.cpu.as_secs_f64(),
                m.placed,
                m.shortfall,
                m.min_density_after,
            );
        }
    }
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, out)
}

/// Percentage reduction of `value` relative to `baseline` (positive =
/// better than baseline).
pub fn reduction_pct(baseline: f64, value: f64) -> f64 {
    // Exact-zero guard against division by zero; any nonzero baseline,
    // however small, is meaningful. pilfill: allow(float-eq)
    if baseline == 0.0 {
        return 0.0;
    }
    100.0 * (baseline - value) / baseline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::MethodResult;
    use std::time::Duration;

    fn row() -> ExperimentRow {
        let m = |name: &'static str, t: f64| MethodResult {
            method: name,
            total_delay: t,
            weighted_delay: t * 3.0,
            cpu: Duration::from_millis(250),
            placed: 100,
            shortfall: 0,
            min_density_after: 0.3,
        };
        ExperimentRow {
            testcase: "T1".into(),
            window_label: 32,
            r: 2,
            budget: 100,
            methods: vec![
                m("Normal", 1e-10),
                m("ILP-I", 8e-11),
                m("ILP-II", 2e-11),
                m("Greedy", 7e-11),
            ],
        }
    }

    #[test]
    fn text_table_contains_row_and_header() {
        let s = render_rows(&[row()], false);
        assert!(s.contains("T1/32/2"));
        assert!(s.contains("Normal"));
        assert!(s.contains("100000.00")); // 1e-10 s = 100000 fs
    }

    #[test]
    fn weighted_rendering_uses_weighted_metric() {
        let s = render_rows(&[row()], true);
        assert!(s.contains("300000.00"));
    }

    #[test]
    fn csv_round_trips_line_count() {
        let dir = std::env::temp_dir().join("pilfill-bench-test");
        let path = dir.join("t.csv");
        write_csv(&[row()], &path).expect("write csv");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count(), 1 + 4);
        assert!(text.starts_with("testcase,"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reduction_pct_basics() {
        assert_eq!(reduction_pct(100.0, 10.0), 90.0);
        assert_eq!(reduction_pct(0.0, 5.0), 0.0);
        assert!(reduction_pct(50.0, 75.0) < 0.0);
    }
}
