//! The Table-1/Table-2 experiment grid runner.

use pilfill_core::flow::{FlowConfig, FlowContext, FlowError};
use pilfill_core::methods::{FillMethod, GreedyFill, IlpOne, IlpTwo, NormalFill};
use pilfill_geom::Coord;
use pilfill_layout::Design;
use std::time::Duration;

/// One method's result within a row.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodResult {
    /// Method name.
    pub method: &'static str,
    /// Unweighted total delay increase, seconds.
    pub total_delay: f64,
    /// Weighted total delay increase, seconds.
    pub weighted_delay: f64,
    /// Aggregate per-tile solve CPU time.
    pub cpu: Duration,
    /// Features placed / shortfall.
    pub placed: u64,
    /// Budgeted features that found no room.
    pub shortfall: u64,
    /// Post-fill minimum window density.
    pub min_density_after: f64,
}

/// One `T/W/r` row of the experiment grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRow {
    /// Testcase name.
    pub testcase: String,
    /// Window label (the paper's "32"/"20").
    pub window_label: u32,
    /// Dissection parameter.
    pub r: usize,
    /// Total budgeted features.
    pub budget: u64,
    /// Per-method results: Normal, ILP-I, ILP-II, Greedy.
    pub methods: Vec<MethodResult>,
}

/// Experiment grid configuration.
#[derive(Debug, Clone)]
pub struct Grid {
    /// `(label, window dbu, r)` combinations.
    pub cells: Vec<(u32, Coord, usize)>,
    /// Optimize the weighted objective (Table 2) instead of unweighted
    /// (Table 1).
    pub weighted: bool,
    /// Worker threads for per-tile solving.
    pub threads: usize,
}

impl Grid {
    /// The full Tables-1/2 grid.
    pub fn paper(weighted: bool) -> Self {
        Self {
            cells: crate::testcases::windows_and_r(),
            weighted,
            threads: default_threads(),
        }
    }

    /// A reduced grid for smoke tests: one cell.
    pub fn smoke(weighted: bool) -> Self {
        Self {
            cells: vec![(32, 32_000, 2)],
            weighted,
            threads: default_threads(),
        }
    }
}

/// Number of worker threads: all but one hardware thread.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(4)
}

/// The four paper methods in table order.
pub fn paper_methods() -> Vec<&'static (dyn FillMethod + Sync)> {
    vec![&NormalFill, &IlpOne, &IlpTwo, &GreedyFill]
}

/// Runs the grid for one testcase, calling `progress` after each method.
///
/// # Errors
///
/// Propagates the first [`FlowError`].
pub fn run_grid(
    design: &Design,
    grid: &Grid,
    progress: &mut dyn FnMut(&str),
) -> Result<Vec<ExperimentRow>, FlowError> {
    let mut rows = Vec::new();
    for &(label, window, r) in &grid.cells {
        let mut config = FlowConfig::new(window, r)?;
        config.weighted = grid.weighted;
        progress(&format!(
            "{}/{}/{}: building context...",
            design.name, label, r
        ));
        let ctx = FlowContext::build(design, &config)?;
        let mut methods = Vec::new();
        for method in paper_methods() {
            let outcome = ctx.run_parallel(&config, method, grid.threads)?;
            progress(&format!(
                "{}/{}/{} {:>7}: tau = {:.3e} s, cpu = {:.2?}",
                design.name,
                label,
                r,
                outcome.method,
                outcome.impact.total_delay,
                outcome.solve_time
            ));
            methods.push(MethodResult {
                method: outcome.method,
                total_delay: outcome.impact.total_delay,
                weighted_delay: outcome.impact.weighted_delay,
                cpu: outcome.solve_time,
                placed: outcome.placed_features,
                shortfall: outcome.shortfall,
                min_density_after: outcome.density_after.min_window_density,
            });
        }
        rows.push(ExperimentRow {
            testcase: design.name.clone(),
            window_label: label,
            r,
            budget: ctx.budget_total(),
            methods,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilfill_layout::synth::{synthesize, SynthConfig};

    #[test]
    fn smoke_grid_runs_all_methods() {
        let design = synthesize(&SynthConfig::small_test(2));
        let grid = Grid {
            cells: vec![(8, 8_000, 2)],
            weighted: false,
            threads: 2,
        };
        let rows = run_grid(&design, &grid, &mut |_| {}).expect("grid");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].methods.len(), 4);
        let names: Vec<_> = rows[0].methods.iter().map(|m| m.method).collect();
        assert_eq!(names, vec!["Normal", "ILP-I", "ILP-II", "Greedy"]);
        // Density quality identical across methods (same budget placed).
        let placed: Vec<_> = rows[0].methods.iter().map(|m| m.placed).collect();
        assert!(placed.windows(2).all(|w| w[0] == w[1]), "{placed:?}");
    }
}
