//! Std-only allocation counter for the bench harness.
//!
//! With the crate's `bench` feature enabled, a counting
//! [`GlobalAlloc`] wrapper around [`System`] is installed as the
//! `#[global_allocator]`; every `alloc`/`realloc`/`alloc_zeroed` call
//! bumps a relaxed atomic, so [`count`] can report how many heap
//! allocations a closure performed. The counter costs one relaxed
//! `fetch_add` per allocation — negligible next to the allocation
//! itself — but the feature is still off by default so ordinary builds
//! use the system allocator untouched.
//!
//! Without the feature the module still compiles (so callers need no
//! `cfg` of their own); [`enabled`] reports `false` and [`count`]
//! returns `0` allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts allocation events.
///
/// Deallocations are deliberately not counted: the interesting figure
/// for a hot path is how often it asks the allocator for new memory.
pub struct CountingAlloc;

// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the counter touches no allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded verbatim; the caller upholds
        // `GlobalAlloc::alloc`'s contract, which `System` requires.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: as in `alloc` — the caller's `layout` obligations are
        // passed through to `System` unchanged.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr` came from this allocator (which delegates to
        // `System`) with `layout`, per the caller's `realloc` contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` satisfy `dealloc`'s contract for the
        // allocator that produced them, which is `System` underneath.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[cfg(feature = "bench")]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// `true` when the counting allocator is installed (`bench` feature).
pub const fn enabled() -> bool {
    cfg!(feature = "bench")
}

/// Total allocation events since process start (0 without the feature).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `f` and returns its result plus the number of allocations it
/// performed. Only meaningful when [`enabled`]; single-threaded callers
/// get an exact count, concurrent ones a process-wide delta.
pub fn count<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = allocations();
    let out = f();
    (out, allocations() - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_observes_vec_growth_when_enabled() {
        let (sum, allocs) = count(|| {
            let mut v: Vec<u64> = Vec::new();
            for i in 0..10_000u64 {
                v.push(i);
            }
            v.iter().sum::<u64>()
        });
        assert_eq!(sum, 49_995_000);
        if enabled() {
            // Doubling growth: at least a handful, far fewer than one
            // allocation per push.
            assert!(allocs >= 5, "vec growth must allocate: {allocs}");
            assert!(allocs < 100, "implausibly many allocations: {allocs}");
        } else {
            assert_eq!(allocs, 0);
        }
    }

    #[test]
    fn counter_is_monotonic() {
        let a = allocations();
        let _v: Vec<u8> = Vec::with_capacity(64);
        let b = allocations();
        assert!(b >= a);
    }
}
