//! Regenerates **Figure 3** of the paper as data: the segmented RC line
//! model and the Elmore additivity property of Eq. (9) — adding `dC` at
//! stage `i` raises every downstream stage's delay by `dC * R_cum(i)`.
//!
//! Usage: `cargo run --release -p pilfill-bench --bin fig3_elmore_chain`

use pilfill_rc::RcChain;

fn main() {
    let n = 10;
    let r = 5.0; // ohm per stage
    let c = 2e-15; // farad per stage
    let chain = RcChain::uniform(n, r, c);
    let base = chain.delays();

    println!("Figure 3: segmented RC line ({n} stages, {r} ohm / {c:.0e} F each)\n");
    println!("  {:>5} {:>12}", "stage", "tau (ps)");
    for (k, d) in base.iter().enumerate() {
        println!("  {:>5} {:>12.4}", k + 1, d * 1e12);
    }

    // Additivity check: inject dC at stage 4, compare predicted vs
    // recomputed delay at every stage.
    let inject_at = 3;
    let dc = 1e-15;
    let predicted: Vec<f64> = (0..n)
        .map(|k| chain.delay_increment(k, inject_at, dc))
        .collect();
    // Recompute by building the perturbed chain.
    let caps: Vec<f64> = (0..n)
        .map(|i| if i == inject_at { c + dc } else { c })
        .collect();
    let perturbed = RcChain::new(vec![r; n], caps);
    let after = perturbed.delays();

    println!(
        "\n  inject dC = {dc:.0e} F at stage {}: Eq. (9) predicts dtau = dC * R_cum",
        inject_at + 1
    );
    println!(
        "  {:>5} {:>14} {:>14} {:>10}",
        "stage", "predicted(fs)", "recomputed(fs)", "match"
    );
    for k in 0..n {
        let recomputed = after[k] - base[k];
        let ok = (recomputed - predicted[k]).abs() < 1e-20;
        println!(
            "  {:>5} {:>14.4} {:>14.4} {:>10}",
            k + 1,
            predicted[k] * 1e15,
            recomputed * 1e15,
            if ok { "yes" } else { "NO" }
        );
        assert!(ok, "Eq. (9) additivity violated at stage {k}");
    }
    println!("\nEq. (9) additivity holds at every stage.");
}
