// Offline experiment harness: inputs are fixed and a failed step should
// abort loudly rather than be handled. pilfill: allow-file(unwrap)
//! Regenerates **Figures 4-6** of the paper as data: the three
//! slack-column definitions on the same tile. Reports, per definition,
//! how many columns a representative tile sees, their total capacity, and
//! how much of that capacity the definition believes is "free" (no
//! associated line pair) — the mis-attribution that separates II from III.
//!
//! Usage: `cargo run --release -p pilfill-bench --bin fig456_slack_columns`

use pilfill_bench::testcases::t2;
use pilfill_core::{build_tile_problems, extract_active_lines, scan_slack_columns, SlackColumnDef};
use pilfill_density::FixedDissection;
use pilfill_layout::LayerId;

fn main() {
    let design = t2();
    let dissection = FixedDissection::new(design.die, 32_000, 2).expect("dissection");
    let lines = extract_active_lines(&design, LayerId(0)).expect("lines");
    let columns = scan_slack_columns(&lines, design.die, design.rules);

    println!("Figures 4-6: slack-column definitions (testcase T2, W=32k, r=2)\n");
    println!(
        "{:<16} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "definition", "columns", "capacity", "paired cap", "free cap", "free %"
    );
    for def in [
        SlackColumnDef::One,
        SlackColumnDef::Two,
        SlackColumnDef::Three,
    ] {
        let problems = build_tile_problems(
            &lines,
            &columns,
            &dissection,
            &design.tech,
            design.rules,
            def,
        );
        let mut n_cols = 0usize;
        let mut cap = 0u64;
        let mut paired = 0u64;
        for p in &problems {
            n_cols += p.columns.len();
            for c in &p.columns {
                cap += c.capacity() as u64;
                if c.distance.is_some() {
                    paired += c.capacity() as u64;
                }
            }
        }
        let free = cap - paired;
        println!(
            "{:<16} {:>8} {:>10} {:>12} {:>12} {:>9.1}%",
            def.to_string(),
            n_cols,
            cap,
            paired,
            free,
            100.0 * free as f64 / cap.max(1) as f64
        );
    }
    println!(
        "\nShape check (paper Sec. 5.1): definition I wastes all slack not\n\
         between a line pair inside the tile; definition II recovers the\n\
         capacity but believes boundary-bounded columns are cost-free;\n\
         definition III keeps every column associated with its true line\n\
         pair, so its \"free\" share is the smallest."
    );
}
