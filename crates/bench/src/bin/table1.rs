// Offline experiment harness: inputs are fixed and a failed step should
// abort loudly rather than be handled. pilfill: allow-file(unwrap)
//! Regenerates **Table 1** of the paper: non-weighted PIL-Fill synthesis —
//! total delay increase and per-method CPU time for Normal / ILP-I /
//! ILP-II / Greedy over the T{1,2} x W{32,20} x r{2,4,8} grid.
//!
//! Usage: `cargo run --release -p pilfill-bench --bin table1 [--smoke]`
//!
//! Results are printed and written to `results/table1.csv`.

use pilfill_bench::{render_rows, run_grid, t1, t2, write_csv, Grid};
use std::path::Path;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let grid = if smoke {
        Grid::smoke(false)
    } else {
        Grid::paper(false)
    };
    let mut rows = Vec::new();
    for design in [t1(), t2()] {
        let got = run_grid(&design, &grid, &mut |msg| eprintln!("[table1] {msg}"))
            .expect("experiment grid must run");
        rows.extend(got);
    }
    println!("\nTable 1: non-weighted PIL-Fill synthesis (tau in fs)\n");
    println!("{}", render_rows(&rows, false));
    let path = Path::new("results/table1.csv");
    write_csv(&rows, path).expect("write csv");
    eprintln!("[table1] wrote {}", path.display());
}
