// Offline experiment harness: inputs are fixed and a failed step should
// abort loudly rather than be handled. pilfill: allow-file(unwrap)
//! Regenerates **Figure 2** of the paper as data: the coupling-capacitance
//! configurations. Prints the exact fill-perturbed coupling `f(m, d)`
//! (Eq. 5) against the Eq. 6 linearization across fill counts and line
//! spacings, and the relative error as `m*w/d` grows — the quantity that
//! explains why ILP-I degrades.
//!
//! Usage: `cargo run --release -p pilfill-bench --bin fig2_cap_model`
//!
//! Writes `results/fig2_cap_model.csv`.

use pilfill_layout::Tech;
use pilfill_rc::CouplingModel;
use std::fmt::Write as _;

fn main() {
    let tech = Tech::default_180nm();
    let model = CouplingModel::new(&tech);
    let w = 300i64; // fill feature size (dbu)

    println!("Figure 2: incremental coupling capacitance of a fill column");
    println!("  (aF per column footprint; w = {w} dbu feature)\n");
    println!(
        "  {:>6} {:>4} {:>8} {:>12} {:>12} {:>8}",
        "d", "m", "m*w/d", "exact", "linear", "err%"
    );
    let mut csv = String::from("d_dbu,m,ratio,exact_f,linear_f,error_pct\n");
    for d in [1_000i64, 1_400, 2_000, 4_000, 8_000] {
        let max_m = // site-pitch capacity
            pilfill_geom::units::saturating_count(((d - 2 * 150) / 450).max(1) as u64);
        for m in 1..=max_m {
            let exact = model.delta_cap_exact(m, d, w);
            let linear = model.delta_cap_linear(m, d, w);
            let err = 100.0 * (exact - linear) / exact;
            println!(
                "  {:>6} {:>4} {:>8.3} {:>12.4} {:>12.4} {:>8.2}",
                d,
                m,
                m as f64 * w as f64 / d as f64,
                exact * 1e18,
                linear * 1e18,
                err
            );
            let _ = writeln!(
                csv,
                "{d},{m},{:.4},{:.6e},{:.6e},{:.3}",
                m as f64 * w as f64 / d as f64,
                exact,
                linear,
                err
            );
        }
        println!();
    }
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/fig2_cap_model.csv", csv).expect("write csv");
    println!("wrote results/fig2_cap_model.csv");
    println!("\nShape check (paper Sec. 3/5.3): the linearization underestimates");
    println!("the exact increment, with error exploding as m*w approaches d —");
    println!("the regime where ILP-I's answers become unreliable.");
}
