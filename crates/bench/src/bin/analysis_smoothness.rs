// Offline experiment harness: inputs are fixed and a failed step should
// abort loudly rather than be handled. pilfill: allow-file(unwrap)
//! **Extension E**: smoothness analysis of filled layouts (the paper's
//! reference \[4\], ISPD 2002) — beyond min/max window density, report
//! the window-to-window gradient and multi-scale uniformity before and
//! after fill, for Normal and ILP-II.
//!
//! Usage: `cargo run --release -p pilfill-bench --bin analysis_smoothness`
//!
//! Writes `results/analysis_smoothness.csv`.

use pilfill_bench::experiments::default_threads;
use pilfill_bench::testcases::{t1, t2};
use pilfill_core::flow::{FlowConfig, FlowContext};
use pilfill_core::methods::{IlpTwo, NormalFill};
use pilfill_density::{gradient_analysis, DensityMap, FixedDissection};
use pilfill_layout::LayerId;
use std::fmt::Write as _;

fn main() {
    let threads = default_threads();
    let mut csv =
        String::from("testcase,stage,window,min_density,variation,max_gradient,mean_gradient\n");
    println!("Extension E: smoothness of filled layouts (r = 2)\n");
    println!(
        "{:<6} {:<14} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "case", "stage", "window", "min", "variation", "max grad", "mean grad"
    );
    for design in [t1(), t2()] {
        let cfg = FlowConfig::new(32_000, 2).expect("config");
        let ctx = FlowContext::build(&design, &cfg).expect("context");
        let ilp2 = ctx.run_parallel(&cfg, &IlpTwo, threads).expect("ilp2 run");
        let normal = ctx
            .run_parallel(&cfg, &NormalFill, threads)
            .expect("normal run");

        for window in [16_000i64, 32_000] {
            let dis = FixedDissection::new(design.die, window, 2).expect("dissection");
            let before = DensityMap::compute(&design, LayerId(0), &dis);
            let apply = |features: &[pilfill_core::FillFeature]| {
                let mut m = before.clone();
                for f in features {
                    if let Some(cell) = dis.tiles().cell_at(f.x, f.y) {
                        m.add_tile_area(cell, design.rules.feature_area());
                    }
                }
                m
            };
            let stages = [
                ("unfilled", before.clone()),
                ("normal-fill", apply(&normal.features)),
                ("ilp2-fill", apply(&ilp2.features)),
            ];
            for (stage, map) in &stages {
                let a = map.analyze();
                let g = gradient_analysis(map);
                println!(
                    "{:<6} {:<14} {:>8} {:>8.4} {:>10.4} {:>10.4} {:>10.4}",
                    design.name,
                    stage,
                    window,
                    a.min_window_density,
                    a.variation,
                    g.max_gradient,
                    g.mean_gradient
                );
                let _ = writeln!(
                    csv,
                    "{},{},{},{:.6},{:.6},{:.6},{:.6}",
                    design.name,
                    stage,
                    window,
                    a.min_window_density,
                    a.variation,
                    g.max_gradient,
                    g.mean_gradient
                );
            }
            println!();
        }
    }
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/analysis_smoothness.csv", csv).expect("write csv");
    println!("wrote results/analysis_smoothness.csv");
    println!(
        "\nShape check: both fill methods improve uniformity (higher min,\n\
         lower variation and gradient) identically at every scale — the\n\
         timing-aware method costs nothing in smoothness, which is the\n\
         premise of the PIL-Fill formulation."
    );
}
