// Offline experiment harness: inputs are fixed and a failed step should
// abort loudly rather than be handled. pilfill: allow-file(unwrap)
//! Regenerates **Figure 1** of the paper as data: the fixed r-dissection
//! framework. Prints tile/window counts for the experiment grid and an
//! ASCII rendering of a small r = 3 dissection like the paper's figure.
//!
//! Usage: `cargo run --release -p pilfill-bench --bin fig1_dissection`

use pilfill_bench::{t1, t2, windows_and_r};
use pilfill_density::FixedDissection;
use pilfill_geom::Rect;

fn main() {
    // The paper's illustration: an n x n layout, r = 3.
    let die = Rect::new(0, 0, 9_000, 9_000);
    let dis = FixedDissection::new(die, 3_000, 3).expect("r=3 dissection");
    println!("Figure 1: fixed r-dissection (r = 3, window = 3000 dbu)");
    println!(
        "  layout {}x{} dbu -> {}x{} tiles of {} dbu, {} overlapping windows\n",
        die.width(),
        die.height(),
        dis.tiles().nx(),
        dis.tiles().ny(),
        dis.tile_size(),
        dis.windows().count()
    );
    // ASCII: tiles as cells; one window (anchor 1,1) marked.
    let marked: Vec<(usize, usize)> = dis
        .windows()
        .nth(dis.tiles().nx() - 2 + 1)
        .map(|w| w.tiles().collect())
        .unwrap_or_default();
    for iy in (0..dis.tiles().ny()).rev() {
        let mut line = String::new();
        for ix in 0..dis.tiles().nx() {
            line.push_str(if marked.contains(&(ix, iy)) {
                "[#]"
            } else {
                "[ ]"
            });
        }
        println!("  {line}");
    }
    println!("  (# = one w x w window = r x r = 9 tiles)\n");

    println!("Experiment-grid dissections:");
    println!(
        "  {:<10} {:>9} {:>4} {:>10} {:>8} {:>9}",
        "T/W/r", "window", "r", "tile", "tiles", "windows"
    );
    for design in [t1(), t2()] {
        for (label, window, r) in windows_and_r() {
            let dis = FixedDissection::new(design.die, window, r).expect("valid dissection");
            println!(
                "  {:<10} {:>9} {:>4} {:>10} {:>8} {:>9}",
                format!("{}/{}/{}", design.name, label, r),
                window,
                r,
                dis.tile_size(),
                dis.num_tiles(),
                dis.windows().count()
            );
        }
    }
}
