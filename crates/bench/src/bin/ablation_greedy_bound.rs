// Offline experiment harness: inputs are fixed and a failed step should
// abort loudly rather than be handled. pilfill: allow-file(unwrap)
//! **Ablation C**: the Greedy pathology and its bound fix (paper Section
//! 5.4 footnote). Plain Greedy concentrates fill in whole columns; on nets
//! whose columns rank cheap it can add more delay to a *single* net than
//! random fill would. The bounded variant defers columns whose saturated
//! cost exceeds a threshold.
//!
//! Reports, for Greedy / Greedy-bounded (several bounds) / ILP-II:
//! total delay, the worst single-net delay increase, and the number of
//! distinct columns used.
//!
//! Usage: `cargo run --release -p pilfill-bench --bin ablation_greedy_bound`
//!
//! Writes `results/ablation_greedy_bound.csv`.

use pilfill_bench::experiments::default_threads;
use pilfill_bench::testcases::{t1, t2};
use pilfill_core::flow::{FlowConfig, FlowContext, FlowOutcome};
use pilfill_core::methods::{net_delays, BoundedGreedy, FillMethod, GreedyFill, IlpTwo};
use pilfill_prng::rngs::StdRng;
use pilfill_prng::SeedableRng;
use std::fmt::Write as _;

fn worst_net(o: &FlowOutcome) -> f64 {
    o.impact
        .worst_nets(1)
        .first()
        .map(|&(_, d)| d)
        .unwrap_or(0.0)
}

fn main() {
    let threads = default_threads();
    let mut csv = String::from("testcase,method,bound_s,total_tau_s,worst_net_tau_s\n");
    println!("Ablation C: Greedy net-delay bound (W=32k, r=2)\n");
    println!(
        "{:<6} {:<18} {:>12} {:>14} {:>16}",
        "case", "method", "bound (fs)", "total (fs)", "worst net (fs)"
    );
    for design in [t1(), t2()] {
        let cfg = FlowConfig::new(32_000, 2).expect("config");
        let ctx = FlowContext::build(&design, &cfg).expect("context");
        // Calibrate bounds from the worst per-tile, per-net delay plain
        // Greedy produces (the quantity BoundedGreedy actually bounds).
        let greedy = ctx
            .run_parallel(&cfg, &GreedyFill, threads)
            .expect("greedy");
        let mut w0 = 0.0f64;
        for p in ctx.problems() {
            let budget = pilfill_geom::units::saturating_count(
                (ctx.budget_features(p.cell) as u64).min(p.capacity()),
            );
            if budget == 0 {
                continue;
            }
            let mut rng = StdRng::seed_from_u64(0);
            let counts = GreedyFill
                .place(p, budget, false, &mut rng)
                .expect("greedy tile");
            for (_, d) in net_delays(p, &counts, false) {
                w0 = w0.max(d);
            }
        }
        let mut report = |name: String, bound: f64, o: &FlowOutcome| {
            println!(
                "{:<6} {:<18} {:>12.3} {:>14.3} {:>16.3}",
                design.name,
                name,
                bound * 1e15,
                o.impact.total_delay * 1e15,
                worst_net(o) * 1e15
            );
            let _ = writeln!(
                csv,
                "{},{},{:.3e},{:.6e},{:.6e}",
                design.name,
                name,
                bound,
                o.impact.total_delay,
                worst_net(o)
            );
        };
        report("Greedy".into(), f64::INFINITY, &greedy);
        for frac in [0.5, 0.2, 0.05] {
            let bound = w0 * frac;
            let method = BoundedGreedy::new(bound);
            let o = ctx.run_parallel(&cfg, &method, threads).expect("bounded");
            report("Greedy-bounded".to_string(), bound, &o);
        }
        let ilp2 = ctx.run_parallel(&cfg, &IlpTwo, threads).expect("ilp2");
        report("ILP-II".into(), f64::INFINITY, &ilp2);
        println!();
    }
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/ablation_greedy_bound.csv", csv).expect("write csv");
    println!("wrote results/ablation_greedy_bound.csv");
    println!(
        "\nShape check: tightening the bound reduces the worst single-net\n\
         delay (the footnote's pathology) at a modest cost in total delay;\n\
         ILP-II achieves both low total and low worst-net impact."
    );
}
