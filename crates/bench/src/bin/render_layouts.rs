// Offline experiment harness: inputs are fixed and a failed step should
// abort loudly rather than be handled. pilfill: allow-file(unwrap)
//! Renders the experiment testcases and a filled result as SVG — the
//! visual counterparts of the paper's layout illustrations, generated
//! from live data into `results/`.
//!
//! Usage: `cargo run --release -p pilfill-bench --bin render_layouts`

use pilfill_bench::experiments::default_threads;
use pilfill_bench::testcases::{t1, t2};
use pilfill_core::flow::{FlowConfig, FlowContext};
use pilfill_core::methods::{IlpTwo, NormalFill};
use pilfill_density::{DensityMap, FixedDissection};
use pilfill_layout::LayerId;
use pilfill_viz::{DensityView, LayoutView, Theme};

fn main() {
    std::fs::create_dir_all("results").expect("results dir");
    let theme = Theme::default();
    let threads = default_threads();

    for design in [t1(), t2()] {
        let tag = design.name.to_lowercase();

        // Bare layout.
        let svg = LayoutView::new(&design).render(&theme);
        let path = format!("results/{tag}_layout.svg");
        std::fs::write(&path, svg).expect("write layout svg");
        println!("wrote {path}");

        // Density heat map before fill.
        let dissection = FixedDissection::new(design.die, 32_000, 2).expect("dissection");
        let map = DensityMap::compute(&design, LayerId(0), &dissection);
        let path = format!("results/{tag}_density_before.svg");
        std::fs::write(
            &path,
            DensityView::new(&map).with_max_density(0.5).render(640.0),
        )
        .expect("write density svg");
        println!("wrote {path}");

        // Filled layout (ILP-II) + density after, on a shared color scale.
        let cfg = FlowConfig::new(32_000, 2).expect("config");
        let ctx = FlowContext::build(&design, &cfg).expect("context");
        for method in [
            &IlpTwo as &(dyn pilfill_core::methods::FillMethod + Sync),
            &NormalFill,
        ] {
            let outcome = ctx.run_parallel(&cfg, method, threads).expect("fill run");
            let name = outcome.method.to_lowercase().replace('-', "");
            let svg = LayoutView::new(&design)
                .with_fill(&outcome.features)
                .render(&theme);
            let path = format!("results/{tag}_filled_{name}.svg");
            std::fs::write(&path, svg).expect("write filled svg");
            println!(
                "wrote {path} ({} features, {:.3} fs impact)",
                outcome.placed_features,
                outcome.impact.total_delay * 1e15
            );

            let mut after = map.clone();
            for f in &outcome.features {
                if let Some(cell) = dissection.tiles().cell_at(f.x, f.y) {
                    after.add_tile_area(cell, design.rules.feature_area());
                }
            }
            let path = format!("results/{tag}_density_after_{name}.svg");
            std::fs::write(
                &path,
                DensityView::new(&after).with_max_density(0.5).render(640.0),
            )
            .expect("write density-after svg");
            println!("wrote {path}");
        }
    }
}
