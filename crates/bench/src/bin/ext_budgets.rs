// Offline experiment harness: inputs are fixed and a failed step should
// abort loudly rather than be handled. pilfill: allow-file(unwrap)
//! **Extension D**: per-net capacitance budgets (paper Section 7's
//! "ongoing research"). Runs ILP-II with and without per-net capacitance
//! budget constraints and reports the worst-net delay and the number of
//! nets whose fill-induced capacitance exceeds their budget.
//!
//! Usage: `cargo run --release -p pilfill-bench --bin ext_budgets`
//!
//! Writes `results/ext_budgets.csv`.

use pilfill_bench::experiments::default_threads;
use pilfill_bench::testcases::{t1, t2};
use pilfill_core::budget_ext::{BudgetedIlpTwo, CapBudgets};
use pilfill_core::flow::{FlowConfig, FlowContext};
use pilfill_core::methods::IlpTwo;
use pilfill_rc::CouplingModel;
use std::fmt::Write as _;

fn main() {
    let threads = default_threads();
    let mut csv = String::from("testcase,method,protected_cap_f,others_cap_f,total_tau_s\n");
    println!("Extension D: per-net capacitance budgets (W=16k, r=2)");
    println!("Protecting the 5 most fill-coupled nets with a 10% budget.\n");
    println!(
        "{:<6} {:<16} {:>20} {:>16} {:>14}",
        "case", "method", "protected cap (aF)", "others (aF)", "total (fs)"
    );
    for design in [t1(), t2()] {
        let cfg = FlowConfig::new(16_000, 2).expect("config");
        let ctx = FlowContext::build(&design, &cfg).expect("context");
        let model = CouplingModel::new(&design.tech);
        let _ = &model;

        // Baseline: plain ILP-II; pick the 5 nets that absorbed the most
        // fill coupling (the "critical nets" a timing engine would flag).
        let plain = ctx.run_parallel(&cfg, &IlpTwo, threads).expect("ilp2");
        let mut by_cap: Vec<(usize, f64)> = plain
            .impact
            .per_net_cap
            .iter()
            .enumerate()
            .map(|(i, &c)| (i, c))
            .collect();
        by_cap.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let protected: Vec<usize> = by_cap.iter().take(5).map(|&(i, _)| i).collect();

        // Budgets: protected nets get 10% of their unconstrained coupling,
        // split over the tiles they touch; everyone else is unconstrained.
        let mut global = vec![f64::INFINITY; design.nets.len()];
        for &i in &protected {
            global[i] = plain.impact.per_net_cap[i] * 0.10;
        }
        let budgets = CapBudgets::from_global(global).split_over_tiles(ctx.problems());
        let budgeted_method = BudgetedIlpTwo { budgets };
        let budgeted = ctx
            .run_parallel(&cfg, &budgeted_method, threads)
            .expect("budgeted");

        for (name, outcome) in [("ILP-II", &plain), ("ILP-II+budgets", &budgeted)] {
            let prot: f64 = protected
                .iter()
                .map(|&i| outcome.impact.per_net_cap[i])
                .sum();
            let others: f64 = outcome.impact.per_net_cap.iter().sum::<f64>() - prot;
            println!(
                "{:<6} {:<16} {:>20.3} {:>16.3} {:>14.3}",
                design.name,
                name,
                prot * 1e18,
                others * 1e18,
                outcome.impact.total_delay * 1e15,
            );
            let _ = writeln!(
                csv,
                "{},{},{:.6e},{:.6e},{:.6e}",
                design.name, name, prot, others, outcome.impact.total_delay
            );
        }
        println!();
    }
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/ext_budgets.csv", csv).expect("write csv");
    println!("wrote results/ext_budgets.csv");
    println!(
        "\nShape check: budgets push coupling off the protected nets onto\n\
         unprotected neighbours (and cost some total delay) — the\n\
         Section-7 slack-budget mechanism."
    );
}
