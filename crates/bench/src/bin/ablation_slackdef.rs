// Offline experiment harness: inputs are fixed and a failed step should
// abort loudly rather than be handled. pilfill: allow-file(unwrap)
//! **Ablation A**: effect of the slack-column definition on delay impact
//! and fill completion (paper Section 5.1's qualitative claims, measured).
//!
//! For each definition, runs the full flow with ILP-II and reports the
//! exact delay impact, the shortfall (definition I runs out of capacity),
//! and the gap between the definition's *believed* cost and the exact
//! evaluation (definition II believes boundary columns are free and is
//! punished by the evaluator).
//!
//! Usage: `cargo run --release -p pilfill-bench --bin ablation_slackdef`
//!
//! Writes `results/ablation_slackdef.csv`.

use pilfill_bench::experiments::default_threads;
use pilfill_bench::testcases::{t1, t2};
use pilfill_core::flow::{FlowConfig, FlowContext};
use pilfill_core::methods::IlpTwo;
use pilfill_core::SlackColumnDef;
use std::fmt::Write as _;

fn main() {
    let threads = default_threads();
    let mut csv = String::from("testcase,definition,tau_s,placed,shortfall,free_features\n");
    println!("Ablation A: slack-column definition (ILP-II, W=32k, r=2)\n");
    println!(
        "{:<6} {:<16} {:>12} {:>9} {:>10} {:>12}",
        "case", "definition", "tau (ps)", "placed", "shortfall", "free feats"
    );
    for design in [t1(), t2()] {
        for def in [
            SlackColumnDef::One,
            SlackColumnDef::Two,
            SlackColumnDef::Three,
        ] {
            let mut cfg = FlowConfig::new(32_000, 2).expect("config");
            cfg.def = def;
            let ctx = FlowContext::build(&design, &cfg).expect("context");
            let o = ctx.run_parallel(&cfg, &IlpTwo, threads).expect("run");
            println!(
                "{:<6} {:<16} {:>12.4} {:>9} {:>10} {:>12}",
                design.name,
                def.to_string(),
                o.impact.total_delay * 1e12,
                o.placed_features,
                o.shortfall,
                o.impact.free_features
            );
            let _ = writeln!(
                csv,
                "{},{},{:.6e},{},{},{}",
                design.name,
                def,
                o.impact.total_delay,
                o.placed_features,
                o.shortfall,
                o.impact.free_features
            );
        }
        println!();
    }
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/ablation_slackdef.csv", csv).expect("write csv");
    println!("wrote results/ablation_slackdef.csv");
    println!(
        "\nShape check: definition I leaves budget unplaced (shortfall > 0);\n\
         definition II places everything but with higher exact delay than\n\
         definition III, which both places everything and attributes costs\n\
         correctly."
    );
}
