// Offline experiment harness: inputs are fixed and a failed step should
// abort loudly rather than be handled. pilfill: allow-file(unwrap)
//! One-shot machine-readable bench report: times the hot paths of the
//! whole pipeline (density analysis, scan-line extraction, every per-tile
//! fill method, and the end-to-end flow) and writes `BENCH_pr1.json`
//! mapping each metric to its median nanoseconds.
//!
//! Run with `cargo run --release -p pilfill-bench --bin bench_json`.

use pilfill_bench::{Harness, Json};
use pilfill_core::flow::{FlowConfig, FlowContext};
use pilfill_core::methods::{DpExact, FillMethod, GreedyFill, IlpOne, IlpTwo, NormalFill};
use pilfill_core::{extract_active_lines, scan_slack_columns, TileProblem};
use pilfill_density::{DensityMap, FixedDissection};
use pilfill_layout::synth::{synthesize, SynthConfig};
use pilfill_layout::{Design, LayerId};
use pilfill_prng::rngs::StdRng;
use pilfill_prng::SeedableRng;

const OUT_PATH: &str = "BENCH_pr1.json";

/// Picks the tile with the most paired capacity (the hardest instance).
fn representative_tile(design: &Design, cfg: &FlowConfig) -> (TileProblem, u32) {
    let ctx = FlowContext::build(design, cfg).expect("context");
    let problem = ctx
        .problems()
        .iter()
        .max_by_key(|p| {
            p.columns
                .iter()
                .filter(|c| c.distance.is_some())
                .map(|c| c.capacity() as u64)
                .sum::<u64>()
        })
        .expect("at least one tile")
        .clone();
    let budget = pilfill_geom::units::saturating_count(problem.capacity() / 2);
    (problem, budget)
}

fn main() {
    let mut h = Harness::new();
    let t2 = synthesize(&SynthConfig::t2());
    let cfg = FlowConfig::new(32_000, 2).expect("config");

    // Density: map construction and the (now prefix-sum-backed) window
    // analysis.
    let dissection = FixedDissection::new(t2.die, cfg.window, cfg.r).expect("dissection");
    h.bench("density/compute_map_t2", 15, 1, || {
        DensityMap::compute(&t2, LayerId(0), &dissection)
    });
    let map = DensityMap::compute(&t2, LayerId(0), &dissection);
    h.bench("density/analyze_t2", 15, 8, || map.analyze());

    // Scan-line core.
    let lines = extract_active_lines(&t2, LayerId(0)).expect("lines");
    h.bench("scanline/extract_active_lines_t2", 15, 1, || {
        extract_active_lines(&t2, LayerId(0)).expect("lines")
    });
    h.bench("scanline/scan_slack_columns_t2", 15, 1, || {
        scan_slack_columns(&lines, t2.die, t2.rules)
    });

    // Flow preparation (context build: extraction + scan + tile problems +
    // budget), sequential and chunked.
    h.bench("flow/context_build_t2", 7, 1, || {
        FlowContext::build(&t2, &cfg).expect("context")
    });
    h.bench("flow/context_build_parallel4_t2", 7, 1, || {
        FlowContext::build_parallel(&t2, &cfg, 4).expect("context")
    });

    // Per-tile method solves on the hardest tile.
    let (tile, budget) = representative_tile(&t2, &cfg);
    let methods: Vec<(&str, &dyn FillMethod)> = vec![
        ("normal", &NormalFill),
        ("greedy", &GreedyFill),
        ("ilp1", &IlpOne),
        ("ilp2", &IlpTwo),
        ("dp_exact", &DpExact),
    ];
    for (name, method) in methods {
        h.bench(&format!("tile/{name}"), 9, 1, || {
            let mut rng = StdRng::seed_from_u64(1);
            method
                .place(&tile, budget, false, &mut rng)
                .expect("placement")
        });
    }

    // End-to-end flow (context reused, placement + assembly + evaluation).
    let ctx = FlowContext::build(&t2, &cfg).expect("context");
    h.bench("flow/run_greedy_t2", 5, 1, || {
        ctx.run(&cfg, &GreedyFill).expect("run")
    });
    h.bench("flow/run_ilp2_t2", 5, 1, || {
        ctx.run(&cfg, &IlpTwo).expect("run")
    });
    h.bench("flow/run_parallel4_ilp2_t2", 5, 1, || {
        ctx.run_parallel(&cfg, &IlpTwo, 4).expect("run")
    });

    let mut report = Json::object();
    report.insert("schema", Json::Str("pilfill-bench/median_ns/v1".into()));
    let mut metrics = Json::object();
    for m in h.results() {
        metrics.insert(&m.name, Json::UInt(m.median_ns));
    }
    report.insert("median_ns", metrics);
    std::fs::write(OUT_PATH, report.to_pretty_string()).expect("write report");
    println!("wrote {OUT_PATH}");
}
