// Offline experiment harness: inputs are fixed and a failed step should
// abort loudly rather than be handled. pilfill: allow-file(unwrap)
//! One-shot machine-readable bench report: times the hot paths of the
//! whole pipeline (density analysis, scan-line extraction, every per-tile
//! fill method, and the end-to-end flow) and writes a `BENCH_*.json`
//! mapping each metric to its median nanoseconds.
//!
//! Run with `cargo run --release -p pilfill-bench --bin bench_json`.
//!
//! Flags:
//!
//! - `--quick`: a small design and minimal sample counts — a CI smoke run
//!   that checks the harness end-to-end in seconds, not a measurement.
//! - `--threads-sweep`: additionally emit `flow/run_parallelN_ilp2_t2`
//!   and `flow/context_build_parallelN_t2` for N in {1, 2, 4, 8}, each on
//!   a persistent [`WorkerPool`] created outside the timed region, plus a
//!   `scaling` object with `.../speedup@N` keys in permille (the N = 1
//!   median over the N-lane median, so 2000 = a clean 2x). Judge those
//!   against `host_parallelism`: lanes beyond the hardware measure
//!   scheduling overhead, not speedup (`scripts/check_scaling.sh`).
//! - `--serve-load`: additionally start an in-process fill service on a
//!   unix socket and drive it with an open-loop multi-client request
//!   stream (send times are scheduled up front, so queueing delay counts
//!   against latency instead of silently thinning the arrival rate —
//!   no coordinated omission). Emits a `serve` object: `serve/rps`,
//!   `serve/p50_ns`, `serve/p99_ns`, `serve/warm_hit_ratio` (permille),
//!   plus `serve/cold_ns` vs `serve/warm_edit_ns` — the cold-build
//!   request against the served latency of an edited design riding the
//!   cached context through `FlowContext::rebuild`.
//! - `--out PATH`: report path (default `BENCH_pr9.json`).
//!
//! Besides timings, the report carries a `solver` object of raw effort
//! counters from one ILP-II solve of the representative tile — simplex
//! iterations, LU refactorizations and branch-and-bound nodes — so a
//! regression in solver behavior is visible even when wall time hides it.
//!
//! Built with `--features bench`, the counting global allocator is
//! installed and the report additionally carries `allocs/*` keys: the
//! number of heap allocations one call of the matching flow entry point
//! performs (exact — the harness is single-threaded).
//!
//! The report records `host_parallelism` (what
//! [`std::thread::available_parallelism`] saw) so sweep numbers can be
//! judged against the hardware they ran on: on a single-core host every
//! N > 1 measures scheduling overhead, not speedup.

use pilfill_bench::{alloc_count, Harness, Json};
use pilfill_core::flow::{run_flow_streamed, FlowConfig, FlowContext};
use pilfill_core::methods::{DpExact, FillMethod, GreedyFill, IlpOne, IlpTwo, NormalFill};
use pilfill_core::{
    extract_active_lines, scan_slack_columns, scan_slack_columns_into, ScanScratch, TileProblem,
    WorkerPool,
};
use pilfill_density::{DensityMap, FixedDissection};
use pilfill_layout::synth::{synthesize, SynthConfig};
use pilfill_layout::{Design, LayerId};
use pilfill_prng::rngs::StdRng;
use pilfill_prng::SeedableRng;

const DEFAULT_OUT: &str = "BENCH_pr9.json";

/// Thread counts covered by `--threads-sweep`.
const SWEEP_THREADS: [usize; 4] = [1, 2, 4, 8];

struct Options {
    quick: bool,
    sweep: bool,
    serve_load: bool,
    out: String,
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        sweep: false,
        serve_load: false,
        out: DEFAULT_OUT.to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--threads-sweep" => opts.sweep = true,
            "--serve-load" => opts.serve_load = true,
            "--out" => opts.out = args.next().expect("--out needs a path"),
            other => panic!(
                "unknown flag {other:?} (try --quick, --threads-sweep, --serve-load, --out PATH)"
            ),
        }
    }
    opts
}

/// Picks the tile with the most paired capacity (the hardest instance).
fn representative_tile(design: &Design, cfg: &FlowConfig) -> (TileProblem, u32) {
    let ctx = FlowContext::build(design, cfg).expect("context");
    let problem = ctx
        .problems()
        .iter()
        .max_by_key(|p| {
            p.columns
                .iter()
                .filter(|c| c.distance.is_some())
                .map(|c| c.capacity() as u64)
                .sum::<u64>()
        })
        .expect("at least one tile")
        .clone();
    let budget = pilfill_geom::units::saturating_count(problem.capacity() / 2);
    (problem, budget)
}

/// A copy of `design` with one sink duplicated on a fill-layer net whose
/// footprint spans the fewest tile-grid columns. The edit bumps every
/// downstream line weight (so the net's tiles must be re-solved) without
/// moving geometry — the canonical "one dirty tile, budget reusable"
/// incremental workload.
fn mutated_copy(design: &Design, tile: i64) -> Design {
    let ni = narrowest_net(design, tile);
    let mut copy = design.clone();
    let sink = copy.nets[ni].sinks[0];
    copy.nets[ni].sinks.push(sink);
    copy
}

/// Index of the fill-layer net with sinks whose footprint spans the
/// fewest tile-grid columns — the cheapest net to dirty.
fn narrowest_net(design: &Design, tile: i64) -> usize {
    let layer = LayerId(0);
    design
        .nets
        .iter()
        .enumerate()
        .filter(|(_, n)| !n.sinks.is_empty() && n.segments.iter().any(|s| s.layer == layer))
        .min_by_key(|(_, n)| {
            let xs = n
                .segments
                .iter()
                .filter(|s| s.layer == layer)
                .flat_map(|s| [s.start.x, s.end.x]);
            let lo = xs.clone().min().unwrap_or(0);
            let hi = xs.max().unwrap_or(0);
            hi.div_euclid(tile) - lo.div_euclid(tile)
        })
        .map(|(ni, _)| ni)
        .expect("a net with sinks on the fill layer")
}

/// Open-loop load generation against an in-process fill service on a
/// unix socket.
///
/// Eight client threads each drive one connection: a cold inline upload
/// of a per-client design followed by warm by-hash repeats. Send times
/// are fixed on a global interleaved schedule *before* the run, so a
/// slow reply pushes later sends past their scheduled instants and the
/// lateness is charged to their latency — the open-loop discipline that
/// avoids coordinated omission. Afterwards a sequential probe measures
/// `serve/cold_ns` (fresh design, full build) against
/// `serve/warm_edit_ns` (one-net edit riding the cached context through
/// `FlowContext::rebuild`).
fn serve_load_metrics(quick: bool) -> Vec<(&'static str, u64)> {
    use pilfill_serve::protocol::{design_hash, DesignRef, EditOp, FillParams, FillStatus, Reply};
    use pilfill_serve::{Client, ServeOptions, Server};
    use std::time::{Duration, Instant};

    let sock =
        std::env::temp_dir().join(format!("pilfill-bench-serve-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let spec = format!("unix:{}", sock.display());
    let server = Server::bind(&spec, &ServeOptions::default()).expect("bind serve socket");
    let server_thread = std::thread::spawn(move || server.run());

    const CLIENTS: usize = 8;
    let per_client: usize = if quick { 4 } else { 16 };
    let interval = Duration::from_millis(if quick { 3 } else { 2 });
    // Greedy placement keeps each request small enough that the stream,
    // not one solve, dominates the measurement.
    let mut params = FillParams::new(8_000, 2).expect("params");
    params.method = 1;
    let reply_timeout = Duration::from_secs(60);

    // Scheduled epoch: every client waits for it, so the interleaved
    // send schedule is shared and the rate is fixed up front.
    let start = Instant::now() + Duration::from_millis(50);
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let spec = spec.clone();
        let params = params.clone();
        handles.push(std::thread::spawn(move || {
            let seed = 400 + u64::try_from(c).unwrap_or(0);
            let design = synthesize(&SynthConfig::small_test(seed));
            let text = design.to_text();
            let hash = design_hash(&design);
            let mut client = Client::connect_retry(&spec, Duration::from_secs(5)).expect("connect");
            let mut latencies = Vec::with_capacity(per_client);
            let mut warm = 0u64;
            for i in 0..per_client {
                let slot = u32::try_from(i * CLIENTS + c).unwrap_or(u32::MAX);
                let due = start + interval * slot;
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let design_ref = if i == 0 {
                    DesignRef::Inline(text.clone())
                } else {
                    DesignRef::Hash(hash)
                };
                let reply = client
                    .fill_retry(&design_ref, &params, reply_timeout)
                    .expect("fill reply");
                let served = Instant::now();
                match reply {
                    Reply::FillOk { status, .. } => {
                        if status == FillStatus::Warm {
                            warm += 1;
                        }
                    }
                    other => panic!("unexpected load reply: {other:?}"),
                }
                latencies
                    .push(u64::try_from(served.duration_since(due).as_nanos()).unwrap_or(u64::MAX));
            }
            (latencies, warm)
        }));
    }
    let mut latencies: Vec<u64> = Vec::new();
    let mut warm_hits = 0u64;
    for handle in handles {
        let (lat, warm) = handle.join().expect("load client");
        latencies.extend(lat);
        warm_hits += warm;
    }
    let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    latencies.sort_unstable();
    let pct = |p: usize| latencies[(latencies.len() - 1) * p / 100];
    let total = u64::try_from(latencies.len()).unwrap_or(0);
    let rps = total
        .saturating_mul(1_000_000_000)
        .checked_div(elapsed_ns.max(1))
        .unwrap_or(0);
    let warm_permille = warm_hits
        .saturating_mul(1000)
        .checked_div(total.max(1))
        .unwrap_or(0);

    // Cold build vs served warm-edit rebuild, same host, same server.
    let median = |v: &mut Vec<u64>| {
        v.sort_unstable();
        v[v.len() / 2]
    };
    let mut client = Client::connect_retry(&spec, Duration::from_secs(5)).expect("connect");
    let rounds: u64 = if quick { 2 } else { 5 };
    // Probe on T1: big enough that context construction dominates a cold
    // request, so the edited repeat — which rides the cached context
    // through `FlowContext::rebuild` and re-solves only the dirtied
    // tiles — shows the cache's real payoff. A per-round config seed
    // forces a fresh context cache key (a genuine cold build) while the
    // paired edit lands on exactly that entry.
    let t1 = synthesize(&SynthConfig::t1());
    let t1_text = t1.to_text();
    let t1_hash = design_hash(&t1);
    let mut probe = FillParams::new(32_000, 2).expect("probe params");
    probe.method = 1;
    let mut cold_ns: Vec<u64> = Vec::new();
    let mut warm_edit_ns: Vec<u64> = Vec::new();
    for k in 0..rounds {
        probe.seed = 7000 + k;
        match client
            .fill_retry(&DesignRef::Inline(t1_text.clone()), &probe, reply_timeout)
            .expect("cold reply")
        {
            Reply::FillOk {
                status: FillStatus::Cold,
                server_ns,
                ..
            } => cold_ns.push(server_ns),
            other => panic!("expected a cold fill, got {other:?}"),
        }
        let edit = DesignRef::Edit {
            base: t1_hash,
            ops: vec![EditOp::DupSink {
                net: u32::try_from(narrowest_net(&t1, 32_000 / 2)).unwrap_or(0),
            }],
        };
        match client
            .fill_retry(&edit, &probe, reply_timeout)
            .expect("edit reply")
        {
            Reply::FillOk {
                status: FillStatus::RebuildIncr | FillStatus::RebuildFull,
                server_ns,
                ..
            } => warm_edit_ns.push(server_ns),
            other => panic!("expected an edit rebuild, got {other:?}"),
        }
    }
    let cold = median(&mut cold_ns);
    let warm_edit = median(&mut warm_edit_ns);
    println!(
        "serve-load: {total} requests, {rps} rps, warm ratio {warm_permille}‰, \
         cold {cold} ns vs warm-edit {warm_edit} ns ({:.1}x)",
        cold.max(1) as f64 / warm_edit.max(1) as f64 // pilfill: allow(as-cast)
    );

    assert!(client.shutdown().expect("shutdown"), "shutdown refused");
    server_thread.join().expect("server thread").expect("serve");

    vec![
        ("serve/rps", rps),
        ("serve/p50_ns", pct(50)),
        ("serve/p99_ns", pct(99)),
        ("serve/warm_hit_ratio", warm_permille),
        ("serve/cold_ns", cold),
        ("serve/warm_edit_ns", warm_edit),
    ]
}

fn main() {
    let opts = parse_args();
    let mut h = Harness::new();
    let (design, cfg, samples) = if opts.quick {
        let d = synthesize(&SynthConfig::small_test(21));
        (d, FlowConfig::new(8_000, 2).expect("config"), 3)
    } else {
        let d = synthesize(&SynthConfig::t2());
        (d, FlowConfig::new(32_000, 2).expect("config"), 7)
    };
    let t2 = &design;

    // Density: map construction and the prefix-sum-backed window analysis.
    let dissection = FixedDissection::new(t2.die, cfg.window, cfg.r).expect("dissection");
    h.bench("density/compute_map_t2", 2 * samples + 1, 1, || {
        DensityMap::compute(t2, LayerId(0), &dissection)
    });
    let map = DensityMap::compute(t2, LayerId(0), &dissection);
    h.bench("density/analyze_t2", 2 * samples + 1, 8, || map.analyze());

    // Scan-line core.
    let lines = extract_active_lines(t2, LayerId(0)).expect("lines");
    h.bench(
        "scanline/extract_active_lines_t2",
        2 * samples + 1,
        1,
        || extract_active_lines(t2, LayerId(0)).expect("lines"),
    );
    h.bench("scanline/scan_slack_columns_t2", 2 * samples + 1, 1, || {
        scan_slack_columns(&lines, t2.die, t2.rules)
    });

    // Flow preparation (context build: extraction + scan + tile problems +
    // budget), sequential baseline.
    h.bench("flow/context_build_t2", samples, 1, || {
        FlowContext::build(t2, &cfg).expect("context")
    });

    // Per-tile method solves on the hardest tile.
    let (tile, budget) = representative_tile(t2, &cfg);
    let methods: Vec<(&str, &dyn FillMethod)> = vec![
        ("normal", &NormalFill),
        ("greedy", &GreedyFill),
        ("ilp1", &IlpOne),
        ("ilp2", &IlpTwo),
        ("dp_exact", &DpExact),
    ];
    for (name, method) in methods {
        h.bench(&format!("tile/{name}"), samples + 2, 1, || {
            let mut rng = StdRng::seed_from_u64(1);
            method
                .place(&tile, budget, false, &mut rng)
                .expect("placement")
        });
    }

    // Solver effort counters (counts, not nanoseconds): one ILP-II solve
    // of the representative tile, reported verbatim. These catch solver
    // regressions — e.g. a pricing change that triples the pivot count —
    // that noisy wall-clock medians can absorb.
    let solver_stats = {
        let mut rng = StdRng::seed_from_u64(1);
        let (_, stats) = IlpTwo
            .place_with_stats(&tile, budget, false, &mut rng)
            .expect("ilp2 stats");
        stats
    };

    // End-to-end flow (context reused, placement + assembly + evaluation).
    let ctx = FlowContext::build(t2, &cfg).expect("context");
    h.bench("flow/run_greedy_t2", samples, 1, || {
        ctx.run(&cfg, &GreedyFill).expect("run")
    });
    h.bench("flow/run_ilp2_t2", samples, 1, || {
        ctx.run(&cfg, &IlpTwo).expect("run")
    });

    // Fused pipeline: one call covers what `context_build` + `run_ilp2`
    // cover separately, so its figure competes with their *sum* — the
    // `_buildsolve` suffix marks it as build+solve so bench_compare.sh
    // diffs never pit it against the solve-only `flow/run_ilp2_t2`.
    let pool = WorkerPool::new(
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    );
    h.bench("flow/run_streamed_buildsolve_ilp2_t2", samples, 1, || {
        run_flow_streamed(t2, &cfg, &IlpTwo, &pool).expect("streamed")
    });

    // Incremental rebuild with exactly one mutated net. Alternating
    // between the pristine design and its mutated copy keeps every timed
    // call a real single-net diff (a same-design rebuild would be a no-op).
    let mutated = mutated_copy(t2, dissection.tile_size());
    {
        let mut rctx = FlowContext::build(t2, &cfg).expect("context");
        let mut flip = false;
        h.bench("flow/rebuild_dirty1_t2", samples, 1, || {
            let target = if flip { t2 } else { &mutated };
            flip = !flip;
            let stats = rctx.rebuild(target, &cfg, &pool).expect("rebuild");
            assert!(!stats.full, "rebuild must take the incremental path");
            stats
        });
    }

    // Allocation counts (only with `--features bench`): how many heap
    // allocations one call of each flow entry point performs.
    let mut allocs: Vec<(&str, u64)> = Vec::new();
    if alloc_count::enabled() {
        let (_, build_allocs) =
            alloc_count::count(|| FlowContext::build(t2, &cfg).expect("context"));
        allocs.push(("allocs/context_build_t2", build_allocs));
        let (_, streamed_allocs) =
            alloc_count::count(|| run_flow_streamed(t2, &cfg, &IlpTwo, &pool).expect("streamed"));
        allocs.push(("allocs/run_streamed_buildsolve_ilp2_t2", streamed_allocs));
        // Warm-scratch hot paths: after one priming call both must run
        // allocation-free (the scan emits into a retained Vec, the density
        // fold into retained area/prefix buffers).
        let mut scan_scratch = ScanScratch::default();
        let mut cols = Vec::new();
        scan_slack_columns_into(&lines, t2.die, t2.rules, &mut scan_scratch, &mut cols);
        let (_, scan_allocs) = alloc_count::count(|| {
            scan_slack_columns_into(&lines, t2.die, t2.rules, &mut scan_scratch, &mut cols)
        });
        allocs.push(("allocs/scan_slack_columns_t2", scan_allocs));
        let mut warm_map = DensityMap::compute(t2, LayerId(0), &dissection);
        warm_map.recompute(t2, LayerId(0));
        let (_, map_allocs) = alloc_count::count(|| warm_map.recompute(t2, LayerId(0)));
        allocs.push(("allocs/compute_map_t2", map_allocs));
    }

    if opts.sweep {
        // Persistent pools: workers are spawned once per thread count,
        // outside the timed region, so the sweep measures steady-state
        // dispatch rather than thread spawn-up.
        for n in SWEEP_THREADS {
            let pool = WorkerPool::new(n);
            h.bench(
                &format!("flow/context_build_parallel{n}_t2"),
                samples,
                1,
                || FlowContext::build_pool(t2, &cfg, &pool).expect("context"),
            );
            h.bench(&format!("flow/run_parallel{n}_ilp2_t2"), samples, 1, || {
                ctx.run_pool(&cfg, &IlpTwo, &pool).expect("run")
            });
        }
    } else {
        // Legacy single-point parallel keys (the sweep supersedes these).
        h.bench("flow/context_build_parallel4_t2", samples, 1, || {
            FlowContext::build_parallel(t2, &cfg, 4).expect("context")
        });
        h.bench("flow/run_parallel4_ilp2_t2", samples, 1, || {
            ctx.run_parallel(&cfg, &IlpTwo, 4).expect("run")
        });
    }

    let mut report = Json::object();
    report.insert("schema", Json::Str("pilfill-bench/median_ns/v1".into()));
    let host = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    report.insert(
        "host_parallelism",
        Json::UInt(u64::try_from(host).unwrap_or(0)),
    );
    let mut metrics = Json::object();
    for m in h.results() {
        metrics.insert(&m.name, Json::UInt(m.median_ns));
    }
    report.insert("median_ns", metrics);
    if opts.sweep {
        // Multicore scaling in permille: the 1-lane median over the N-lane
        // median (2000 = a clean 2x). Derived, so bench_compare.sh can diff
        // speedups directly instead of re-deriving them from raw medians;
        // meaningless across different host_parallelism values.
        let median = |name: &str| {
            h.results()
                .iter()
                .find(|m| m.name == name)
                .map(|m| m.median_ns)
        };
        let mut scaling = Json::object();
        for (label, pattern) in [
            ("run_ilp2_t2", "flow/run_parallel{n}_ilp2_t2"),
            ("context_build_t2", "flow/context_build_parallel{n}_t2"),
        ] {
            let base = median(&pattern.replace("{n}", "1"));
            for n in SWEEP_THREADS.iter().skip(1) {
                let lane = median(&pattern.replace("{n}", &n.to_string()));
                if let (Some(base), Some(lane)) = (base, lane) {
                    if let Some(permille) = (base * 1000).checked_div(lane) {
                        scaling.insert(
                            &format!("scaling/{label}/speedup@{n}"),
                            Json::UInt(permille),
                        );
                    }
                }
            }
        }
        report.insert("scaling", scaling);
    }
    if !allocs.is_empty() {
        let mut counts = Json::object();
        for (name, n) in &allocs {
            counts.insert(name, Json::UInt(*n));
        }
        report.insert("allocs", counts);
    }
    {
        let mut solver = Json::object();
        for (name, n) in [
            ("solver/iters_ilp2_t2", solver_stats.pivots),
            ("solver/refactor_count_t2", solver_stats.refactorizations),
            ("solver/bb_nodes_ilp2_t2", solver_stats.nodes),
        ] {
            solver.insert(name, Json::UInt(u64::try_from(n).unwrap_or(0)));
        }
        report.insert("solver", solver);
    }
    if opts.serve_load {
        let mut serve = Json::object();
        for (name, v) in serve_load_metrics(opts.quick) {
            serve.insert(name, Json::UInt(v));
        }
        report.insert("serve", serve);
    }
    std::fs::write(&opts.out, report.to_pretty_string()).expect("write report");
    println!("wrote {}", opts.out);
}
