// Offline experiment harness: inputs are fixed and a failed step should
// abort loudly rather than be handled. pilfill: allow-file(unwrap)
//! Regenerates **Table 2** of the paper: weighted PIL-Fill synthesis — the
//! same grid as Table 1 with the downstream-sink-weighted objective and
//! metric.
//!
//! Usage: `cargo run --release -p pilfill-bench --bin table2 [--smoke]`
//!
//! Results are printed and written to `results/table2.csv`.

use pilfill_bench::{render_rows, run_grid, t1, t2, write_csv, Grid};
use std::path::Path;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let grid = if smoke {
        Grid::smoke(true)
    } else {
        Grid::paper(true)
    };
    let mut rows = Vec::new();
    for design in [t1(), t2()] {
        let got = run_grid(&design, &grid, &mut |msg| eprintln!("[table2] {msg}"))
            .expect("experiment grid must run");
        rows.extend(got);
    }
    println!("\nTable 2: weighted PIL-Fill synthesis (weighted tau in fs)\n");
    println!("{}", render_rows(&rows, true));
    let path = Path::new("results/table2.csv");
    write_csv(&rows, path).expect("write csv");
    eprintln!("[table2] wrote {}", path.display());
}
