// Offline experiment harness: inputs are fixed and a failed step should
// abort loudly rather than be handled. pilfill: allow-file(unwrap)
//! **Ablation B**: dissection-granularity effect (paper Section 6: "when
//! the dissection becomes too fine-grain, it becomes harder to consider
//! the total impact of a slack site column since we handle the overlapping
//! tiles separately").
//!
//! Sweeps `r` for both testcases at fixed window size and reports the
//! ILP-II delay and its reduction over the Normal baseline — the reduction
//! should shrink as `r` grows.
//!
//! Usage: `cargo run --release -p pilfill-bench --bin ablation_granularity`
//!
//! Writes `results/ablation_granularity.csv`.

use pilfill_bench::experiments::default_threads;
use pilfill_bench::render::reduction_pct;
use pilfill_bench::testcases::{t1, t2};
use pilfill_core::flow::{FlowConfig, FlowContext};
use pilfill_core::methods::{IlpTwo, NormalFill};
use std::fmt::Write as _;

fn main() {
    let threads = default_threads();
    let mut csv = String::from("testcase,r,tiles,normal_tau_s,ilp2_tau_s,reduction_pct\n");
    println!("Ablation B: dissection granularity (W = 32k dbu)\n");
    println!(
        "{:<6} {:>4} {:>8} {:>14} {:>14} {:>12}",
        "case", "r", "tiles", "Normal (fs)", "ILP-II (fs)", "reduction"
    );
    for design in [t1(), t2()] {
        for r in [1usize, 2, 4, 8, 16] {
            let cfg = FlowConfig::new(32_000, r).expect("config");
            let ctx = FlowContext::build(&design, &cfg).expect("context");
            let normal = ctx
                .run_parallel(&cfg, &NormalFill, threads)
                .expect("normal");
            let ilp2 = ctx.run_parallel(&cfg, &IlpTwo, threads).expect("ilp2");
            let red = reduction_pct(normal.impact.total_delay, ilp2.impact.total_delay);
            println!(
                "{:<6} {:>4} {:>8} {:>14.3} {:>14.3} {:>11.1}%",
                design.name,
                r,
                normal.tiles,
                normal.impact.total_delay * 1e15,
                ilp2.impact.total_delay * 1e15,
                red
            );
            let _ = writeln!(
                csv,
                "{},{},{},{:.6e},{:.6e},{:.2}",
                design.name,
                r,
                normal.tiles,
                normal.impact.total_delay,
                ilp2.impact.total_delay,
                red
            );
        }
        println!();
    }
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/ablation_granularity.csv", csv).expect("write csv");
    println!("wrote results/ablation_granularity.csv");
    println!(
        "\nShape check: the reduction over Normal is largest for coarse\n\
         dissections and shrinks as r grows, because fine tiles split slack\n\
         columns across independently-solved subproblems."
    );
}
