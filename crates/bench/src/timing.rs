//! Std-only micro-benchmark harness: wall-clock sampling with median
//! reporting, replacing criterion so the workspace builds offline.
//!
//! Each metric is measured as `samples` independent timed runs of the
//! closure (after `warmup` untimed runs); the reported figure is the
//! median per-call time in nanoseconds, which is robust to scheduler
//! noise without needing criterion's bootstrap machinery. Sub-microsecond
//! closures should be batched by the caller via `inner_iters` so a single
//! sample stays well above timer granularity.

use std::hint::black_box;
use std::time::Instant;

/// One measured metric.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Metric name as it appears in reports and `BENCH_*.json`.
    pub name: String,
    /// Median per-call wall-clock time in nanoseconds.
    pub median_ns: u64,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Closure invocations per sample.
    pub inner_iters: usize,
}

/// Collects measurements and prints them as they complete.
#[derive(Debug, Default)]
pub struct Harness {
    results: Vec<Measurement>,
    quiet: bool,
}

impl Harness {
    /// Creates a harness that prints each result to stdout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a harness that stays silent (for smoke tests).
    pub fn quiet() -> Self {
        Self {
            results: Vec::new(),
            quiet: true,
        }
    }

    /// Times `f` and records the median per-call nanoseconds.
    ///
    /// Runs `warmup` untimed calls, then `samples` timed samples of
    /// `inner_iters` calls each. Return values pass through
    /// [`black_box`] so the optimizer cannot elide the work.
    pub fn bench<T>(
        &mut self,
        name: &str,
        samples: usize,
        inner_iters: usize,
        mut f: impl FnMut() -> T,
    ) -> u64 {
        assert!(samples > 0 && inner_iters > 0, "empty benchmark plan");
        let warmup = samples.div_ceil(4).max(1);
        for _ in 0..warmup {
            black_box(f());
        }
        let mut per_call: Vec<u64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..inner_iters {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as u64;
            per_call.push(ns / inner_iters as u64);
        }
        per_call.sort_unstable();
        let median_ns = median_of_sorted(&per_call);
        if !self.quiet {
            println!(
                "{name:<44} {:>14} ns/iter  ({samples} samples)",
                group_digits(median_ns)
            );
        }
        self.results.push(Measurement {
            name: name.to_string(),
            median_ns,
            samples,
            inner_iters,
        });
        median_ns
    }

    /// All measurements recorded so far, in insertion order.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

fn median_of_sorted(sorted: &[u64]) -> u64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

/// Formats `1234567` as `1_234_567` for readable console output.
fn group_digits(v: u64) -> String {
    let raw = v.to_string();
    let mut out = String::with_capacity(raw.len() + raw.len() / 3);
    for (i, ch) in raw.chars().enumerate() {
        if i > 0 && (raw.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_orders_results() {
        let mut h = Harness::quiet();
        h.bench("a", 3, 1, || 1 + 1);
        h.bench("b", 5, 10, || 2 + 2);
        let names: Vec<_> = h.results().iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(h.results()[1].samples, 5);
        assert_eq!(h.results()[1].inner_iters, 10);
    }

    #[test]
    fn median_handles_even_and_odd() {
        assert_eq!(median_of_sorted(&[1, 2, 3]), 2);
        assert_eq!(median_of_sorted(&[1, 2, 3, 10]), 2);
        assert_eq!(median_of_sorted(&[7]), 7);
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1000), "1_000");
        assert_eq!(group_digits(1234567), "1_234_567");
    }

    #[test]
    fn timing_is_positive_for_real_work() {
        let mut h = Harness::quiet();
        let data: Vec<u64> = (0..4096).collect();
        let ns = h.bench("sum", 5, 4, || data.iter().sum::<u64>());
        // A 4096-element sum cannot take literally zero time every sample.
        assert!(ns < 10_000_000, "implausibly slow: {ns} ns");
    }
}
