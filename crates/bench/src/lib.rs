//! # pilfill-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded results).
//!
//! The library half provides the shared machinery — testcase construction,
//! the `T/W/r` experiment grid, parallel method execution and text/CSV
//! table rendering. The binaries (`table1`, `table2`, `fig*`,
//! `ablation_*`, `ext_budgets`) each regenerate one artifact.

pub mod alloc_count;
pub mod experiments;
pub mod json;
pub mod render;
pub mod testcases;
pub mod timing;

pub use experiments::{run_grid, ExperimentRow, Grid, MethodResult};
pub use json::Json;
pub use render::{render_rows, write_csv};
pub use testcases::{t1, t2, windows_and_r};
pub use timing::{Harness, Measurement};
