//! The experiment testcases: synthesized stand-ins for the paper's
//! industry layouts T1 and T2 (see `DESIGN.md`, substitution 1), plus the
//! `W`/`r` grid of Tables 1 and 2.

use pilfill_geom::Coord;
use pilfill_layout::synth::{synthesize, SynthConfig};
use pilfill_layout::Design;

/// The T1 stand-in: larger and denser, so per-tile ILPs are bigger and
/// runtimes longer — matching the paper's T1-slower-than-T2 ordering.
pub fn t1() -> Design {
    synthesize(&SynthConfig::t1())
}

/// The T2 stand-in: smaller and sparser, with more low-density area for
/// the budgeter to fill.
pub fn t2() -> Design {
    synthesize(&SynthConfig::t2())
}

/// The `(window, r)` grid of Tables 1 and 2. The paper labels window sizes
/// "32" and "20"; we interpret them in kdbu (32 000 and 20 000 dbu), both
/// divisible by every `r` in the grid.
pub fn windows_and_r() -> Vec<(u32, Coord, usize)> {
    let mut out = Vec::new();
    for (label, window) in [(32u32, 32_000i64), (20, 20_000)] {
        for r in [2usize, 4, 8] {
            out.push((label, window, r));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testcases_are_valid_and_distinct() {
        let a = t1();
        let b = t2();
        assert!(a.validate().is_ok());
        assert!(b.validate().is_ok());
        assert!(a.die.area() > b.die.area());
    }

    #[test]
    fn grid_matches_paper_shape() {
        let g = windows_and_r();
        assert_eq!(g.len(), 6);
        for (_, w, r) in g {
            assert_eq!(w % r as i64, 0);
        }
    }
}
