//! Minimal hand-rolled JSON writer — enough to emit `BENCH_*.json`
//! without serde. Only the value shapes the bench harness needs are
//! supported: objects with string keys, strings, and integers.

use std::fmt::Write as _;

/// A JSON value restricted to what the bench reports emit.
#[derive(Debug, Clone)]
pub enum Json {
    /// Unsigned integer (nanosecond counts, sample counts).
    UInt(u64),
    /// String scalar.
    Str(String),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn object() -> Self {
        Json::Object(Vec::new())
    }

    /// Inserts `key: value`, replacing an existing key in place.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not [`Json::Object`].
    pub fn insert(&mut self, key: &str, value: Json) {
        let Json::Object(entries) = self else {
            // Documented `# Panics` contract: inserting into a non-object is a
            // caller bug in this offline harness. pilfill: allow(unwrap)
            panic!("insert on non-object JSON value");
        };
        if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in entries.iter().enumerate() {
                    for _ in 0..indent + 2 {
                        out.push(' ');
                    }
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 2);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                for _ in 0..indent {
                    out.push(' ');
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_object() {
        let mut inner = Json::object();
        inner.insert("median_ns", Json::UInt(1500));
        let mut root = Json::object();
        root.insert("analyze", inner);
        root.insert("note", Json::Str("a\"b".into()));
        let text = root.to_pretty_string();
        assert_eq!(
            text,
            "{\n  \"analyze\": {\n    \"median_ns\": 1500\n  },\n  \"note\": \"a\\\"b\"\n}\n"
        );
    }

    #[test]
    fn insert_replaces_existing_key() {
        let mut o = Json::object();
        o.insert("k", Json::UInt(1));
        o.insert("k", Json::UInt(2));
        assert_eq!(o.to_pretty_string(), "{\n  \"k\": 2\n}\n");
    }

    #[test]
    fn empty_object_and_control_chars() {
        assert_eq!(Json::object().to_pretty_string(), "{}\n");
        let mut o = Json::object();
        o.insert("s", Json::Str("\u{1}\n".into()));
        assert!(o.to_pretty_string().contains("\\u0001\\n"));
    }
}
