//! Micro-benchmark for the Figure-7 scan-line slack-column extraction
//! (the computational-geometry core every experiment depends on).

use pilfill_bench::Harness;
use pilfill_core::{extract_active_lines, scan_slack_columns};
use pilfill_layout::synth::{synthesize, SynthConfig};
use pilfill_layout::LayerId;

fn main() {
    let mut h = Harness::new();
    for (name, design) in [
        ("t2", synthesize(&SynthConfig::t2())),
        ("t1", synthesize(&SynthConfig::t1())),
    ] {
        let lines = extract_active_lines(&design, LayerId(0)).expect("lines");
        h.bench(
            &format!("scanline/scan_{name}_{}_lines", lines.len()),
            15,
            1,
            || scan_slack_columns(&lines, design.die, design.rules),
        );
    }
    let design = synthesize(&SynthConfig::t2());
    h.bench("scanline/extract_active_lines_t2", 15, 1, || {
        extract_active_lines(&design, LayerId(0)).expect("lines")
    });
}
