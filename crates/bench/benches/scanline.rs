//! Micro-benchmark for the Figure-7 scan-line slack-column extraction
//! (the computational-geometry core every experiment depends on).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pilfill_core::{extract_active_lines, scan_slack_columns};
use pilfill_layout::synth::{synthesize, SynthConfig};
use pilfill_layout::LayerId;

fn bench_scanline(c: &mut Criterion) {
    let mut group = c.benchmark_group("scanline");
    for (name, design) in [
        ("t2", synthesize(&SynthConfig::t2())),
        ("t1", synthesize(&SynthConfig::t1())),
    ] {
        let lines = extract_active_lines(&design, LayerId(0)).expect("lines");
        group.bench_function(format!("scan_{name}_{}_lines", lines.len()), |b| {
            b.iter_batched(
                || lines.clone(),
                |lines| scan_slack_columns(&lines, design.die, design.rules),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let design = synthesize(&SynthConfig::t2());
    c.bench_function("extract_active_lines_t2", |b| {
        b.iter(|| extract_active_lines(&design, LayerId(0)).expect("lines"))
    });
}

criterion_group!(benches, bench_scanline, bench_extraction);
criterion_main!(benches);
