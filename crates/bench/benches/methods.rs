//! Per-tile method benchmarks: one representative mid-density tile, all
//! four paper methods plus the DP reference — the per-tile costs behind
//! the CPU columns of Tables 1 and 2.

use pilfill_bench::Harness;
use pilfill_core::flow::{FlowConfig, FlowContext};
use pilfill_core::methods::{DpExact, FillMethod, GreedyFill, IlpOne, IlpTwo, NormalFill};
use pilfill_core::TileProblem;
use pilfill_layout::synth::{synthesize, SynthConfig};
use pilfill_prng::rngs::StdRng;
use pilfill_prng::SeedableRng;

/// Picks the tile with the most paired capacity (the hardest instance).
fn representative_tile() -> (TileProblem, u32) {
    let design = synthesize(&SynthConfig::t2());
    let cfg = FlowConfig::new(32_000, 2).expect("config");
    let ctx = FlowContext::build(&design, &cfg).expect("context");
    let problem = ctx
        .problems()
        .iter()
        .max_by_key(|p| {
            p.columns
                .iter()
                .filter(|c| c.distance.is_some())
                .map(|c| c.capacity() as u64)
                .sum::<u64>()
        })
        .expect("at least one tile")
        .clone();
    let budget = (problem.capacity() / 2) as u32;
    (problem, budget)
}

fn main() {
    let (tile, budget) = representative_tile();
    let mut h = Harness::new();
    let methods: Vec<(&str, &dyn FillMethod)> = vec![
        ("normal", &NormalFill),
        ("greedy", &GreedyFill),
        ("ilp1", &IlpOne),
        ("ilp2", &IlpTwo),
        ("dp_exact", &DpExact),
    ];
    for (name, method) in methods {
        h.bench(
            &format!(
                "tile_methods/{name}_cols{}_budget{budget}",
                tile.columns.len()
            ),
            9,
            1,
            || {
                let mut rng = StdRng::seed_from_u64(1);
                method
                    .place(&tile, budget, false, &mut rng)
                    .expect("placement")
            },
        );
    }
}
