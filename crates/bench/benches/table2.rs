//! Timing for one Table-2 grid cell (T2/32/2, weighted objective):
//! tracks the cost of the weighted variant of the pipeline.

use pilfill_bench::Harness;
use pilfill_core::flow::{FlowConfig, FlowContext};
use pilfill_core::methods::{GreedyFill, IlpTwo};
use pilfill_layout::synth::{synthesize, SynthConfig};

fn main() {
    let design = synthesize(&SynthConfig::t2());
    let mut cfg = FlowConfig::new(32_000, 2).expect("config");
    cfg.weighted = true;
    let ctx = FlowContext::build(&design, &cfg).expect("context");
    let mut h = Harness::new();
    h.bench("table2_cell_t2_32_2_weighted/greedy_weighted", 7, 1, || {
        ctx.run(&cfg, &GreedyFill).expect("run")
    });
    h.bench(
        "table2_cell_t2_32_2_weighted/ilp2_weighted_parallel",
        5,
        1,
        || ctx.run_parallel(&cfg, &IlpTwo, 4).expect("run"),
    );
}
