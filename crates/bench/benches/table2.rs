//! Criterion wrapper for one Table-2 grid cell (T2/32/2, weighted
//! objective): tracks the cost of the weighted variant of the pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use pilfill_core::flow::{FlowConfig, FlowContext};
use pilfill_core::methods::{GreedyFill, IlpTwo};
use pilfill_layout::synth::{synthesize, SynthConfig};

fn bench_table2_cell(c: &mut Criterion) {
    let design = synthesize(&SynthConfig::t2());
    let mut cfg = FlowConfig::new(32_000, 2).expect("config");
    cfg.weighted = true;
    let ctx = FlowContext::build(&design, &cfg).expect("context");
    let mut group = c.benchmark_group("table2_cell_t2_32_2_weighted");
    group.sample_size(10);
    group.bench_function("greedy_weighted", |b| {
        b.iter(|| ctx.run(&cfg, &GreedyFill).expect("run"))
    });
    group.bench_function("ilp2_weighted_parallel", |b| {
        b.iter(|| ctx.run_parallel(&cfg, &IlpTwo, 4).expect("run"))
    });
    group.finish();
}

criterion_group!(benches, bench_table2_cell);
criterion_main!(benches);
