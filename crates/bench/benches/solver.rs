//! Micro-benchmarks for the LP/MILP solver on MDFC-shaped instances
//! (the CPLEX-substitute whose runtime dominates the ILP-II CPU columns).

use pilfill_bench::Harness;
use pilfill_solver::{Model, Objective, Sense};

/// Builds an ILP-II-shaped model: `k` columns with one-hot binaries over
/// capacities `cap`, convex costs, one budget row.
fn ilp2_shaped(k: usize, cap: u32, budget: f64) -> Model {
    let mut m = Model::new(Objective::Minimize);
    let mut budget_terms = Vec::new();
    for col in 0..k {
        let alpha = 1.0 + (col % 7) as f64 * 0.31;
        let vars: Vec<_> = (0..=cap)
            .map(|n| {
                // Convex in n, like the exact capacitance table.
                let cost = alpha * (n as f64) / (cap as f64 + 1.0 - n as f64);
                m.add_binary_var(cost)
            })
            .collect();
        m.add_constraint(vars.iter().map(|&v| (v, 1.0)), Sense::Eq, 1.0);
        budget_terms.extend(vars.iter().enumerate().map(|(n, &v)| (v, n as f64)));
    }
    m.add_constraint(budget_terms, Sense::Eq, budget);
    m
}

/// An ILP-I-shaped model: integer counts, linear costs, one budget row.
fn ilp1_shaped(k: usize, cap: u32, budget: f64) -> Model {
    let mut m = Model::new(Objective::Minimize);
    let vars: Vec<_> = (0..k)
        .map(|col| {
            let cost = 1.0 + (col % 7) as f64 * 0.31;
            m.add_integer_var(0.0, cap as f64, cost)
        })
        .collect();
    m.add_constraint(vars.iter().map(|&v| (v, 1.0)), Sense::Eq, budget);
    m
}

fn main() {
    let mut h = Harness::new();
    for (k, cap) in [(20usize, 4u32), (60, 6)] {
        let budget = (k as f64 * cap as f64 * 0.5).floor();
        h.bench(&format!("solver/ilp2_shape_k{k}_cap{cap}"), 11, 1, || {
            ilp2_shaped(k, cap, budget).solve().expect("feasible model")
        });
        h.bench(&format!("solver/ilp1_shape_k{k}_cap{cap}"), 11, 1, || {
            ilp1_shaped(k, cap, budget).solve().expect("feasible model")
        });
    }
    h.bench("solver/lp_relaxation_k60_cap6", 11, 1, || {
        ilp2_shaped(60, 6, 180.0).solve_lp().expect("lp")
    });
}
