//! Pluggable branch-variable selection for branch-and-bound.
//!
//! The search core in [`crate::milp`] delegates the "which fractional
//! variable do we branch on?" decision to a [`BranchRule`] object —
//! the same plugin surface SCIP-style solvers expose. Two rules ship
//! built in:
//!
//! - [`MostFractional`]: pick the variable whose relaxation value is
//!   farthest from an integer. Stateless; this is the historical default
//!   and keeps existing search trees (and incumbents) bit-identical.
//! - [`PseudoCost`]: track the average objective degradation per unit of
//!   fractionality observed on past branchings of each variable and pick
//!   the candidate with the best product of estimated down/up
//!   degradations. Pays off on trees deep enough to amortize the
//!   learning phase.
//!
//! Custom rules implement [`BranchRule`] and enter through
//! [`crate::Model::solve_with_rule`].

use crate::model::VarId;

/// Direction of one branch child.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchDir {
    /// The `var <= floor(value)` child.
    Down,
    /// The `var >= floor(value) + 1` child.
    Up,
}

/// A fractional integer variable eligible for branching.
#[derive(Debug, Clone, Copy)]
pub struct BranchCandidate {
    /// The variable.
    pub var: VarId,
    /// Its LP relaxation value (strictly fractional beyond the
    /// integrality tolerance).
    pub value: f64,
}

impl BranchCandidate {
    /// Distance to the nearest integer, in `[0, 0.5]`.
    pub fn fractionality(&self) -> f64 {
        (self.value - self.value.round()).abs()
    }
}

/// A branching-variable selection rule.
///
/// `select` is called once per branched node with a non-empty candidate
/// list (in deterministic variable order) and returns the index of the
/// chosen candidate. `observe` feeds back the objective degradation each
/// child's relaxation actually exhibited, enabling history-based rules.
pub trait BranchRule {
    /// Human-readable rule name (for logs and stats).
    fn name(&self) -> &'static str;

    /// Chooses a candidate index from a non-empty slice.
    fn select(&mut self, candidates: &[BranchCandidate]) -> usize;

    /// Feedback after a child's relaxation solved: branching `var` in
    /// `dir` moved its value by `frac` and degraded the (minimization)
    /// objective by `degradation >= 0`.
    fn observe(&mut self, var: VarId, dir: BranchDir, frac: f64, degradation: f64) {
        let _ = (var, dir, frac, degradation);
    }
}

/// Selects the variable whose value is farthest from integral (first on
/// ties, matching the historical search order).
#[derive(Debug, Clone, Copy, Default)]
pub struct MostFractional;

impl BranchRule for MostFractional {
    fn name(&self) -> &'static str {
        "most-fractional"
    }

    fn select(&mut self, candidates: &[BranchCandidate]) -> usize {
        let mut best = 0usize;
        let mut best_frac = 0.0f64;
        for (i, c) in candidates.iter().enumerate() {
            let frac = c.fractionality();
            if frac > best_frac {
                best_frac = frac;
                best = i;
            }
        }
        best
    }
}

/// History-based pseudo-cost branching: per-variable running averages of
/// objective degradation per unit of fractional distance, scored by the
/// product of the down and up estimates. Variables with no history fall
/// back to their raw fractional distance, so the rule degrades gracefully
/// to most-fractional-like behavior on fresh trees.
#[derive(Debug, Clone, Default)]
pub struct PseudoCost {
    down: Vec<(f64, u32)>,
    up: Vec<(f64, u32)>,
}

impl PseudoCost {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    fn estimate(table: &[(f64, u32)], idx: usize, dist: f64) -> f64 {
        match table.get(idx) {
            Some(&(sum, count)) if count > 0 => (sum / f64::from(count)) * dist,
            _ => dist,
        }
    }
}

impl BranchRule for PseudoCost {
    fn name(&self) -> &'static str {
        "pseudo-cost"
    }

    fn select(&mut self, candidates: &[BranchCandidate]) -> usize {
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (i, c) in candidates.iter().enumerate() {
            let f = c.value - c.value.floor();
            let down = Self::estimate(&self.down, c.var.index(), f);
            let up = Self::estimate(&self.up, c.var.index(), 1.0 - f);
            let score = down.max(1e-12) * up.max(1e-12);
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    fn observe(&mut self, var: VarId, dir: BranchDir, frac: f64, degradation: f64) {
        let idx = var.index();
        let table = match dir {
            BranchDir::Down => &mut self.down,
            BranchDir::Up => &mut self.up,
        };
        if table.len() <= idx {
            table.resize(idx + 1, (0.0, 0));
        }
        let per_unit = degradation / frac.max(1e-6);
        let (sum, count) = &mut table[idx];
        *sum += per_unit;
        *count += 1;
    }
}

/// Built-in rule selection for [`crate::MilpOptions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchRuleKind {
    /// [`MostFractional`] (the default, preserving historical trees).
    #[default]
    MostFractional,
    /// [`PseudoCost`].
    PseudoCost,
}

impl BranchRuleKind {
    pub(crate) fn instantiate(self) -> Box<dyn BranchRule> {
        match self {
            BranchRuleKind::MostFractional => Box::new(MostFractional),
            BranchRuleKind::PseudoCost => Box::new(PseudoCost::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(i: usize, value: f64) -> BranchCandidate {
        BranchCandidate {
            var: VarId(i),
            value,
        }
    }

    #[test]
    fn most_fractional_picks_farthest_from_integral() {
        let mut rule = MostFractional;
        let cands = [cand(0, 2.1), cand(1, 3.5), cand(2, 0.8)];
        assert_eq!(rule.select(&cands), 1);
        // First wins ties.
        let cands = [cand(0, 1.5), cand(1, 2.5)];
        assert_eq!(rule.select(&cands), 0);
    }

    #[test]
    fn pseudo_cost_without_history_uses_fractional_distance() {
        let mut rule = PseudoCost::new();
        // Scores f*(1-f): maximized at f = 0.5.
        let cands = [cand(0, 2.1), cand(1, 3.5), cand(2, 0.9)];
        assert_eq!(rule.select(&cands), 1);
    }

    #[test]
    fn pseudo_cost_learns_from_observations() {
        let mut rule = PseudoCost::new();
        // Var 0 historically degrades the objective a lot in both
        // directions; var 1 degrades it barely at all.
        for _ in 0..4 {
            rule.observe(VarId(0), BranchDir::Down, 0.5, 10.0);
            rule.observe(VarId(0), BranchDir::Up, 0.5, 10.0);
            rule.observe(VarId(1), BranchDir::Down, 0.5, 0.01);
            rule.observe(VarId(1), BranchDir::Up, 0.5, 0.01);
        }
        let cands = [cand(0, 2.5), cand(1, 3.5)];
        assert_eq!(rule.select(&cands), 0, "high-impact variable preferred");
    }
}
