//! Branch-and-bound layer over the LP relaxation.
//!
//! Depth-first search with best-incumbent pruning. Branch-variable
//! selection is delegated to a pluggable [`BranchRule`] (most-fractional
//! by default, pseudo-cost optional — see [`crate::branch`]); the search
//! explores the branch nearer the fractional value first (a cheap form of
//! best-first dive). Node, pivot, cut and refactorization counts are
//! reported in [`BranchBoundStats`] so benchmark tables can include
//! solver effort, not just wall time.
//!
//! At the root, **knapsack cover cuts** ([`crate::cuts`]) are separated
//! from `<=`/`=` rows over binaries (cut-and-branch): a few rounds of
//! globally valid covers tighten the relaxation before the tree starts,
//! which the ILP-II budget row is particularly amenable to.
//!
//! Child nodes are warm-started from the parent's optimal basis: a branch
//! only tightens one variable's bounds, which leaves the basis dual
//! feasible, so the child re-optimizes with a few dual-simplex pivots
//! instead of a from-scratch primal solve. Both children of a node share
//! the parent state through an [`Rc`] and clone it on use; any numerical
//! trouble on the warm path falls back to the cold solve. The warm state
//! is backend-shaped: an LU-factored [`SparseSimplex`] for the default
//! sparse engine, a dense [`Tableau`] for the reference oracle.

use std::rc::Rc;

use crate::branch::{BranchCandidate, BranchDir, BranchRule, BranchRuleKind};
use crate::cuts;
use crate::model::{Model, Solution, SolveError, SolverBackend, VarId};
use crate::simplex::{self, LpStatus, StandardLp, Tableau};
use crate::sparse::{self, SparseLp, SparseSimplex};

/// Rounds of cover-cut separation at the root.
const CUT_ROUNDS: usize = 3;
/// Maximum cover cuts accepted per separation round.
const CUTS_PER_ROUND: usize = 8;

/// Tuning knobs for [`Model::solve_with`].
#[derive(Debug, Clone)]
pub struct MilpOptions {
    /// Maximum branch-and-bound nodes before giving up.
    pub node_limit: usize,
    /// Absolute integrality tolerance.
    pub int_tol: f64,
    /// Prune nodes whose bound is within this of the incumbent (absolute).
    pub gap_tol: f64,
    /// Warm-start child nodes from the parent LP basis (dual simplex).
    /// Disable to force the from-scratch solve at every node (slower;
    /// useful for testing and as a numerical escape hatch).
    pub warm_start: bool,
    /// Objective value of a known feasible solution (in the model's own
    /// optimization direction), used as the initial incumbent bound: any
    /// node whose relaxation cannot beat it by more than `gap_tol` is
    /// pruned immediately. When the search ends without finding a strictly
    /// better integer solution, [`Model::solve_with`] returns
    /// [`SolveError::Cutoff`] and the caller should keep the solution the
    /// cutoff came from.
    pub cutoff: Option<f64>,
    /// Built-in branch-variable selection rule. For custom rules use
    /// [`Model::solve_with_rule`].
    pub branch_rule: BranchRuleKind,
    /// Separate knapsack cover cuts at the root (cut-and-branch).
    pub cover_cuts: bool,
}

impl Default for MilpOptions {
    fn default() -> Self {
        Self {
            node_limit: 200_000,
            int_tol: 1e-6,
            gap_tol: 1e-9,
            warm_start: true,
            cutoff: None,
            branch_rule: BranchRuleKind::default(),
            cover_cuts: true,
        }
    }
}

/// Search statistics from a branch-and-bound run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchBoundStats {
    /// LP relaxations solved.
    pub nodes: usize,
    /// Nodes pruned by bound.
    pub pruned: usize,
    /// Incumbent improvements.
    pub incumbents: usize,
    /// Total simplex pivots across all relaxations.
    pub pivots: usize,
    /// Nodes re-optimized from the parent basis (dual simplex).
    pub warm_solves: usize,
    /// LU basis refactorizations (sparse backend only).
    pub refactorizations: usize,
    /// Cover cuts added at the root.
    pub cuts: usize,
}

/// Backend-shaped warm-start state shared by both children of a node.
enum WarmState {
    Dense(Rc<Tableau>),
    Sparse(Rc<SparseSimplex>),
}

impl WarmState {
    fn share(&self) -> WarmState {
        match self {
            WarmState::Dense(t) => WarmState::Dense(Rc::clone(t)),
            WarmState::Sparse(s) => WarmState::Sparse(Rc::clone(s)),
        }
    }
}

struct Node {
    /// (var, lb, ub) bound overrides along this branch.
    bounds: Vec<(VarId, f64, f64)>,
    /// Parent's optimal basis plus this node's single new bound
    /// `(column, lb, ub)` — in root standard space for the dense backend,
    /// in model space for the sparse backend.
    warm: Option<(WarmState, (usize, f64, f64))>,
    depth: usize,
    /// The branching that created this node: (var, direction, fractional
    /// distance moved, parent objective in minimization sense). Feeds
    /// [`BranchRule::observe`].
    branch: Option<(VarId, BranchDir, f64, f64)>,
}

/// Per-node LP solve outcome, normalized to model space.
enum Relaxed {
    Optimal(Solution, Option<WarmState>),
    Infeasible,
    Unbounded,
    Fatal(SolveError),
}

/// Shared per-search solve context: the cut-augmented models and the
/// backend-specific root forms they compile to.
struct SearchCtx {
    /// Presolved root model plus any cover cuts (bound base for branching).
    work: Model,
    /// Original model plus the same cuts (cold-solve base: keeps the
    /// original rows so node bounds computed against original bases stay
    /// sound).
    cold_base: Model,
    backend: SolverBackend,
    minimize_sign: f64,
    /// Dense-backend root form: standard LP, objective offset, root lower
    /// bounds (the shift the warm deltas are expressed in).
    dense: Option<(StandardLp, f64, Vec<f64>)>,
    /// Sparse-backend root form.
    sparse: Option<Rc<SparseLp>>,
    scratch: Model,
}

impl SearchCtx {
    fn new(model: &Model, work: Model) -> Self {
        let backend = model.backend();
        let mut ctx = Self {
            work,
            cold_base: model.clone(),
            backend,
            minimize_sign: if model.is_minimize() { 1.0 } else { -1.0 },
            dense: None,
            sparse: None,
            scratch: model.clone(),
        };
        ctx.compile_root();
        ctx
    }

    /// (Re-)compiles the root forms from `work`; called after cut rounds.
    fn compile_root(&mut self) {
        match self.backend {
            SolverBackend::DenseReference => {
                let (lp, offset) = self.work.to_standard();
                let lower = self.work.lower_bounds().to_vec();
                self.dense = Some((lp, offset, lower));
                self.sparse = None;
            }
            SolverBackend::Sparse => {
                self.sparse = Some(Rc::new(SparseLp::build(&self.work)));
                self.dense = None;
            }
        }
    }

    /// Adds cover cuts to both models. The cuts are globally valid, so
    /// they strengthen every node's relaxation.
    fn add_cuts(&mut self, new_cuts: &[cuts::CoverCut]) {
        for cut in new_cuts {
            let terms: Vec<(VarId, f64)> = cut.vars.iter().map(|&v| (v, 1.0)).collect();
            self.work
                .add_constraint(terms.clone(), crate::Sense::Le, cut.rhs);
            self.cold_base
                .add_constraint(terms, crate::Sense::Le, cut.rhs);
        }
        self.compile_root();
    }

    /// Solves the root relaxation, producing the tree-seeding warm state.
    fn solve_root(&mut self, stats: &mut BranchBoundStats) -> Relaxed {
        match self.backend {
            SolverBackend::DenseReference => {
                let Some((lp, offset, lower)) = self.dense.as_ref() else {
                    return Relaxed::Fatal(SolveError::IterationLimit);
                };
                let (sol, warm) = simplex::solve_with_warm(lp);
                stats.pivots += sol.iterations;
                self.dense_outcome(sol, warm.map(Rc::new), *offset, lower)
            }
            SolverBackend::Sparse => {
                let Some(lp) = self.sparse.as_ref() else {
                    return Relaxed::Fatal(SolveError::IterationLimit);
                };
                let (sol, warm) = sparse::solve_sparse(lp);
                stats.pivots += sol.iterations;
                if let Some(sim) = &warm {
                    stats.refactorizations += sim.refactor_count();
                }
                self.sparse_outcome(sol, warm.map(Rc::new))
            }
        }
    }

    fn dense_outcome(
        &self,
        sol: simplex::LpSolution,
        warm: Option<Rc<Tableau>>,
        offset: f64,
        lower: &[f64],
    ) -> Relaxed {
        match sol.status {
            LpStatus::Optimal => {
                let values: Vec<f64> = sol.values.iter().zip(lower).map(|(v, lb)| v + lb).collect();
                let objective = self.minimize_sign * (sol.objective + offset);
                Relaxed::Optimal(
                    Solution {
                        values,
                        objective,
                        stats: BranchBoundStats::default(),
                    },
                    warm.map(WarmState::Dense),
                )
            }
            LpStatus::Infeasible => Relaxed::Infeasible,
            LpStatus::Unbounded => Relaxed::Unbounded,
            LpStatus::IterationLimit => Relaxed::Fatal(SolveError::IterationLimit),
        }
    }

    fn sparse_outcome(&self, sol: simplex::LpSolution, warm: Option<Rc<SparseSimplex>>) -> Relaxed {
        match sol.status {
            LpStatus::Optimal => Relaxed::Optimal(
                Solution {
                    values: sol.values,
                    objective: self.minimize_sign * sol.objective,
                    stats: BranchBoundStats::default(),
                },
                warm.map(WarmState::Sparse),
            ),
            LpStatus::Infeasible => Relaxed::Infeasible,
            LpStatus::Unbounded => Relaxed::Unbounded,
            LpStatus::IterationLimit => Relaxed::Fatal(SolveError::IterationLimit),
        }
    }

    /// Solves one node's relaxation: warm dual re-optimize when possible,
    /// cold solve on the cut-augmented base model otherwise.
    fn solve_node(
        &mut self,
        node: &Node,
        effective: &[(VarId, f64, f64)],
        stats: &mut BranchBoundStats,
        options: &MilpOptions,
    ) -> Relaxed {
        if options.warm_start {
            if let Some((parent, (col, lb, ub))) = &node.warm {
                match parent {
                    WarmState::Dense(parent) => {
                        let mut tab = Tableau::clone(parent);
                        if !tab.apply_var_bounds(*col, *lb, *ub) {
                            return Relaxed::Infeasible;
                        }
                        if let Some(sol) = tab.dual_solve() {
                            stats.pivots += sol.iterations;
                            stats.warm_solves += 1;
                            let (offset, lower): (f64, &[f64]) = match self.dense.as_ref() {
                                Some((_, off, low)) => (*off, low),
                                None => (0.0, &[]),
                            };
                            return self.dense_outcome(sol, Some(Rc::new(tab)), offset, lower);
                        }
                        // Dual solve bailed out: fall through to cold.
                    }
                    WarmState::Sparse(parent) => {
                        let mut sim = SparseSimplex::clone(parent);
                        if !sim.apply_var_bounds(*col, *lb, *ub) {
                            return Relaxed::Infeasible;
                        }
                        let refactor0 = sim.refactor_count();
                        if let Some(sol) = sim.dual_solve() {
                            stats.pivots += sol.iterations;
                            stats.warm_solves += 1;
                            stats.refactorizations += sim.refactor_count() - refactor0;
                            return self.sparse_outcome(sol, Some(Rc::new(sim)));
                        }
                        // Dual solve bailed out: fall through to cold.
                    }
                }
            }
        }

        if node.depth == 0 {
            return self.solve_root(stats);
        }

        // Cold fallback: apply bounds onto a fresh copy of the base model
        // (original rows plus cuts, so presolve-consumed singleton rows
        // cannot be loosened away).
        self.scratch.clone_from(&self.cold_base);
        for &(v, lb, ub) in effective {
            self.scratch.set_bounds(v, lb, ub);
        }
        match self.scratch.solve_lp() {
            Ok(s) => {
                stats.pivots += s.stats.pivots;
                stats.refactorizations += s.stats.refactorizations;
                Relaxed::Optimal(s, None)
            }
            Err(SolveError::Infeasible) => Relaxed::Infeasible,
            Err(SolveError::Unbounded) => Relaxed::Unbounded,
            Err(e) => Relaxed::Fatal(e),
        }
    }
}

/// Runs branch-and-bound with the rule configured in `options`.
pub(crate) fn branch_and_bound(
    model: &Model,
    options: &MilpOptions,
) -> Result<Solution, SolveError> {
    branch_and_bound_stats(model, options).0
}

/// Runs branch-and-bound and always reports the search statistics, even
/// when the outcome is an error (e.g. [`SolveError::Cutoff`], where the
/// caller's incumbent wins but the tree was still searched).
pub(crate) fn branch_and_bound_stats(
    model: &Model,
    options: &MilpOptions,
) -> (Result<Solution, SolveError>, BranchBoundStats) {
    let mut rule = options.branch_rule.instantiate();
    branch_and_bound_with(model, options, rule.as_mut())
}

/// Branch-and-bound with a caller-supplied branching rule (the plugin
/// entry point behind [`Model::solve_with_rule`]).
pub(crate) fn branch_and_bound_with(
    model: &Model,
    options: &MilpOptions,
    rule: &mut dyn BranchRule,
) -> (Result<Solution, SolveError>, BranchBoundStats) {
    let mut stats = BranchBoundStats::default();
    let minimize_sign = if model.is_minimize() { 1.0 } else { -1.0 };
    // A caller-supplied incumbent objective acts as the initial pruning
    // level: the search only keeps solutions strictly better than it.
    let cutoff_min: Option<f64> = options.cutoff.map(|c| minimize_sign * c);

    let int_vars: Vec<VarId> = model.integer_vars().collect();
    debug_assert!(!int_vars.is_empty());

    // Root presolve once: singleton-row bound tightenings are valid at
    // every node, and the resulting forms fix the spaces all warm-started
    // bases share.
    let Some(work) = model.presolved() else {
        return (Err(SolveError::Infeasible), stats);
    };
    let mut ctx = SearchCtx::new(model, work);

    // Root solve + cover-cut rounds (cut-and-branch).
    let mut root = ctx.solve_root(&mut stats);
    if options.cover_cuts {
        for _ in 0..CUT_ROUNDS {
            let Relaxed::Optimal(sol, _) = &root else {
                break;
            };
            let fractional = int_vars.iter().any(|&v| {
                let val = sol.values[v.index()];
                (val - val.round()).abs() > options.int_tol
            });
            if !fractional {
                break;
            }
            let new_cuts = cuts::separate_cover_cuts(&ctx.work, &sol.values, CUTS_PER_ROUND);
            if new_cuts.is_empty() {
                break;
            }
            stats.cuts += new_cuts.len();
            ctx.add_cuts(&new_cuts);
            root = ctx.solve_root(&mut stats);
        }
    }

    let mut incumbent: Option<Solution> = None;
    let mut stack = vec![Node {
        bounds: Vec::new(),
        warm: None,
        depth: 0,
        branch: None,
    }];
    let mut root_relax = Some(root);
    let mut relaxation_unbounded_at_root = false;

    while let Some(node) = stack.pop() {
        if stats.nodes >= options.node_limit {
            return match incumbent {
                Some(sol) => (Ok(finish(sol, stats)), stats),
                None => (Err(SolveError::NodeLimit), stats),
            };
        }

        // Effective bounds along this branch, checked for consistency
        // before any solve.
        let mut consistent = true;
        let mut effective: Vec<(VarId, f64, f64)> = Vec::with_capacity(node.bounds.len());
        for &(v, lb, ub) in &node.bounds {
            let (base_lb, base_ub) = model.bounds(v);
            let mut new_lb = base_lb.max(lb);
            let mut new_ub = base_ub.min(ub);
            if let Some(pos) = effective.iter().position(|&(ev, _, _)| ev == v) {
                new_lb = new_lb.max(effective[pos].1);
                new_ub = new_ub.min(effective[pos].2);
                effective[pos] = (v, new_lb, new_ub);
            } else {
                effective.push((v, new_lb, new_ub));
            }
            if new_lb > new_ub {
                consistent = false;
                break;
            }
        }
        if !consistent {
            stats.pruned += 1;
            continue;
        }

        stats.nodes += 1;
        let relax = match root_relax.take() {
            Some(r) if node.depth == 0 => r,
            _ => ctx.solve_node(&node, &effective, &mut stats, options),
        };
        let (relax, warm) = match relax {
            Relaxed::Optimal(sol, warm) => (sol, warm),
            Relaxed::Infeasible => continue,
            Relaxed::Unbounded => {
                if node.depth == 0 {
                    relaxation_unbounded_at_root = true;
                }
                // An unbounded relaxation at depth > 0 still means the MILP
                // may be unbounded; treat conservatively as unbounded.
                relaxation_unbounded_at_root = relaxation_unbounded_at_root || node.depth > 0;
                if relaxation_unbounded_at_root {
                    return (Err(SolveError::Unbounded), stats);
                }
                continue;
            }
            Relaxed::Fatal(e) => return (Err(e), stats),
        };

        // Pseudo-cost style feedback for the rule that created this node.
        if let Some((bvar, dir, frac, parent_obj)) = node.branch {
            let degradation = (minimize_sign * relax.objective - parent_obj).max(0.0);
            rule.observe(bvar, dir, frac, degradation);
        }

        // Bound pruning (compare in minimization sense) against the best
        // of the incumbent and the caller's cutoff.
        let prune_level = best_bound(&incumbent, cutoff_min, minimize_sign);
        if let Some(level) = prune_level {
            if minimize_sign * relax.objective >= level - options.gap_tol {
                stats.pruned += 1;
                continue;
            }
        }

        // Fractional candidates, in deterministic variable order.
        let mut candidates: Vec<BranchCandidate> = Vec::new();
        for &v in &int_vars {
            let value = relax.value(v);
            if (value - value.round()).abs() > options.int_tol {
                candidates.push(BranchCandidate { var: v, value });
            }
        }

        if candidates.is_empty() {
            // Integer feasible: snap and record.
            let mut snapped = relax;
            for &v in &int_vars {
                snapped.values[v.index()] = snapped.values[v.index()].round();
            }
            let better = best_bound(&incumbent, cutoff_min, minimize_sign)
                .is_none_or(|level| minimize_sign * snapped.objective < level - options.gap_tol);
            if better {
                stats.incumbents += 1;
                incumbent = Some(snapped);
            }
            continue;
        }

        let chosen = rule.select(&candidates).min(candidates.len() - 1);
        let BranchCandidate { var: v, value: val } = candidates[chosen];
        let floor = val.floor();
        let node_obj_min = minimize_sign * relax.objective;
        // Each child tightens one side of v around the fractional value;
        // compute the child's full [lb, ub] for v so the warm path can
        // apply it as a single delta. The base comes from the *presolved*
        // root model: singleton rows were consumed into these bounds and
        // no longer exist in the shared root forms, so dropping them here
        // would let children escape them.
        let (mut cur_lb, mut cur_ub) = ctx.work.bounds(v);
        if let Some(&(_, lb, ub)) = effective.iter().find(|&&(ev, _, _)| ev == v) {
            cur_lb = cur_lb.max(lb);
            cur_ub = cur_ub.min(ub);
        }
        // Warm deltas: root-standard space (shifted by the root lower
        // bound) for the dense backend, model space for the sparse one.
        let (down_delta, up_delta) = match ctx.backend {
            SolverBackend::DenseReference => {
                let lb0 = ctx
                    .dense
                    .as_ref()
                    .map_or(0.0, |(_, _, lower)| lower[v.index()]);
                (
                    (v.index(), cur_lb - lb0, floor - lb0),
                    (v.index(), floor + 1.0 - lb0, cur_ub - lb0),
                )
            }
            SolverBackend::Sparse => ((v.index(), cur_lb, floor), (v.index(), floor + 1.0, cur_ub)),
        };
        let frac = val - floor;
        let child = |bounds: Vec<(VarId, f64, f64)>, delta, dir, moved| Node {
            bounds,
            warm: warm.as_ref().map(|w| (w.share(), delta)),
            depth: node.depth + 1,
            branch: Some((v, dir, moved, node_obj_min)),
        };
        // Explore the nearer branch last so it pops first (DFS stack
        // order): dive towards the fractional value.
        let down = child(
            with_bound(&node.bounds, v, f64::NEG_INFINITY, floor),
            down_delta,
            BranchDir::Down,
            frac,
        );
        let up = child(
            with_bound(&node.bounds, v, floor + 1.0, f64::INFINITY),
            up_delta,
            BranchDir::Up,
            1.0 - frac,
        );
        if frac < 0.5 {
            stack.push(up);
            stack.push(down);
        } else {
            stack.push(down);
            stack.push(up);
        }
    }

    match incumbent {
        Some(sol) => (Ok(finish(sol, stats)), stats),
        // With a cutoff the empty outcome is the expected "your incumbent
        // already wins" verdict, not an infeasibility proof.
        None if options.cutoff.is_some() => (Err(SolveError::Cutoff), stats),
        None => (Err(SolveError::Infeasible), stats),
    }
}

/// The current pruning level in minimization sense: the better of the
/// incumbent objective and the caller's cutoff, if either exists.
fn best_bound(
    incumbent: &Option<Solution>,
    cutoff_min: Option<f64>,
    minimize_sign: f64,
) -> Option<f64> {
    let inc = incumbent.as_ref().map(|s| minimize_sign * s.objective);
    match (inc, cutoff_min) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

fn with_bound(bounds: &[(VarId, f64, f64)], v: VarId, lb: f64, ub: f64) -> Vec<(VarId, f64, f64)> {
    let mut out = bounds.to_vec();
    out.push((v, lb, ub));
    out
}

fn finish(mut sol: Solution, stats: BranchBoundStats) -> Solution {
    sol.stats = stats;
    sol
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Objective, Sense};

    /// Exhaustive reference solver for tiny pure-integer models.
    fn brute_force_best(
        maximize: bool,
        objs: &[f64],
        caps: &[i64],
        constraints: &[(Vec<f64>, Sense, f64)],
    ) -> Option<f64> {
        fn rec(idx: usize, caps: &[i64], current: &mut Vec<i64>, all: &mut Vec<Vec<i64>>) {
            if idx == caps.len() {
                all.push(current.clone());
                return;
            }
            for v in 0..=caps[idx] {
                current.push(v);
                rec(idx + 1, caps, current, all);
                current.pop();
            }
        }
        let mut all = Vec::new();
        rec(0, caps, &mut Vec::new(), &mut all);
        let feasible = all.into_iter().filter(|x| {
            constraints.iter().all(|(coeffs, sense, rhs)| {
                let lhs: f64 = coeffs
                    .iter()
                    .zip(x.iter())
                    .map(|(c, &v)| c * v as f64)
                    .sum();
                match sense {
                    Sense::Le => lhs <= rhs + 1e-9,
                    Sense::Ge => lhs >= rhs - 1e-9,
                    Sense::Eq => (lhs - rhs).abs() < 1e-9,
                }
            })
        });
        let objective =
            |x: &Vec<i64>| -> f64 { objs.iter().zip(x.iter()).map(|(c, &v)| c * v as f64).sum() };
        feasible
            .map(|x| objective(&x))
            .fold(None, |best: Option<f64>, o| match best {
                None => Some(o),
                Some(b) => Some(if maximize { b.max(o) } else { b.min(o) }),
            })
    }

    type BruteCase = (bool, Vec<f64>, Vec<i64>, Vec<(Vec<f64>, Sense, f64)>);

    fn run_cases(warm_start: bool) {
        let cases: Vec<BruteCase> = vec![
            (
                true,
                vec![5.0, 4.0, 3.0],
                vec![3, 3, 3],
                vec![(vec![2.0, 3.0, 1.0], Sense::Le, 5.0)],
            ),
            (
                false,
                vec![2.0, 7.0, 1.5, 4.0],
                vec![2, 2, 2, 2],
                vec![(vec![1.0, 1.0, 1.0, 1.0], Sense::Eq, 4.0)],
            ),
            (
                false,
                vec![1.0, 1.0, 10.0],
                vec![4, 4, 4],
                vec![
                    (vec![1.0, 2.0, 1.0], Sense::Ge, 5.0),
                    (vec![1.0, 0.0, 1.0], Sense::Le, 3.0),
                ],
            ),
        ];
        let opts = MilpOptions {
            warm_start,
            ..MilpOptions::default()
        };
        for (maximize, objs, caps, cons) in cases {
            let mut m = Model::new(if maximize {
                Objective::Maximize
            } else {
                Objective::Minimize
            });
            let vars: Vec<_> = objs
                .iter()
                .zip(&caps)
                .map(|(&o, &c)| m.add_integer_var(0.0, c as f64, o))
                .collect();
            for (coeffs, sense, rhs) in &cons {
                m.add_constraint(vars.iter().zip(coeffs).map(|(&v, &c)| (v, c)), *sense, *rhs);
            }
            let expected = brute_force_best(maximize, &objs, &caps, &cons);
            match (m.solve_with(&opts), expected) {
                (Ok(sol), Some(best)) => {
                    assert!(
                        (sol.objective - best).abs() < 1e-6,
                        "milp {} vs brute {best} (warm_start {warm_start})",
                        sol.objective
                    );
                }
                (Err(SolveError::Infeasible), None) => {}
                (got, want) => panic!("mismatch: got {got:?}, brute force {want:?}"),
            }
        }
    }

    #[test]
    fn matches_brute_force_on_fixed_instances() {
        run_cases(true);
    }

    #[test]
    fn matches_brute_force_without_warm_start() {
        run_cases(false);
    }

    #[test]
    fn stats_are_populated() {
        let mut m = Model::new(Objective::Maximize);
        let vars: Vec<_> = (0..6)
            .map(|i| m.add_binary_var(1.0 + i as f64 * 0.3))
            .collect();
        m.add_constraint(vars.iter().map(|&v| (v, 1.0)), Sense::Le, 3.0);
        let s = m.solve().expect("solvable");
        assert!(s.stats.nodes >= 1);
    }

    #[test]
    fn node_limit_without_incumbent_errors() {
        let mut m = Model::new(Objective::Minimize);
        // A problem that needs branching to find feasibility.
        let x = m.add_integer_var(0.0, 10.0, 1.0);
        let y = m.add_integer_var(0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, 2.0), (y, 2.0)], Sense::Eq, 7.0); // infeasible in integers
        let opts = MilpOptions {
            node_limit: 1,
            ..MilpOptions::default()
        };
        let res = m.solve_with(&opts);
        assert!(matches!(
            res,
            Err(SolveError::NodeLimit) | Err(SolveError::Infeasible)
        ));
    }

    #[test]
    fn cutoff_at_optimum_prunes_everything() {
        // Solve once to learn the optimum, then hand it back as a cutoff:
        // nothing strictly better exists, so the verdict is Cutoff — the
        // caller's incumbent wins, without the search re-proving it.
        let m = ilp2_tile(6, 3, 8.0);
        let baseline = m.solve().expect("solvable");
        let with_cutoff = m.solve_with(&MilpOptions {
            cutoff: Some(baseline.objective),
            ..MilpOptions::default()
        });
        assert!(matches!(with_cutoff, Err(SolveError::Cutoff)));
    }

    #[test]
    fn loose_cutoff_still_finds_the_optimum_with_less_work() {
        let m = ilp2_tile(8, 3, 11.0);
        let baseline = m.solve().expect("solvable");
        let with_cutoff = m
            .solve_with(&MilpOptions {
                // A strictly worse incumbent: the optimum must still be
                // found, and the pre-seeded bound can only shrink the tree.
                cutoff: Some(baseline.objective + 1.0),
                ..MilpOptions::default()
            })
            .expect("cutoff run solvable");
        assert!(
            (with_cutoff.objective - baseline.objective).abs() < 1e-6,
            "cutoff {} vs baseline {}",
            with_cutoff.objective,
            baseline.objective
        );
        assert!(
            with_cutoff.stats.nodes <= baseline.stats.nodes,
            "cutoff must not grow the tree: {} vs {}",
            with_cutoff.stats.nodes,
            baseline.stats.nodes
        );
    }

    #[test]
    fn cutoff_on_maximization_prunes_in_the_right_direction() {
        let mut m = Model::new(Objective::Maximize);
        let vars: Vec<_> = (0..5)
            .map(|i| m.add_binary_var(1.0 + i as f64 * 0.5))
            .collect();
        m.add_constraint(vars.iter().map(|&v| (v, 1.0)), Sense::Le, 2.0);
        let best = m.solve().expect("solvable");
        // An unbeatable incumbent prunes everything...
        assert!(matches!(
            m.solve_with(&MilpOptions {
                cutoff: Some(best.objective),
                ..MilpOptions::default()
            }),
            Err(SolveError::Cutoff)
        ));
        // ...while a beatable one is beaten.
        let sol = m
            .solve_with(&MilpOptions {
                cutoff: Some(best.objective - 0.75),
                ..MilpOptions::default()
            })
            .expect("beatable cutoff");
        assert!((sol.objective - best.objective).abs() < 1e-6);
    }

    /// Builds an ILP-II tile-shaped instance: one-hot binaries per costed
    /// column over capacities, a convexity row per column, one budget row.
    fn ilp2_tile(k: usize, cap: u32, budget: f64) -> Model {
        let mut m = Model::new(Objective::Minimize);
        let mut budget_terms = Vec::new();
        for col in 0..k {
            let alpha = 1.0 + (col % 7) as f64 * 0.31;
            let vars: Vec<_> = (0..=cap)
                .map(|n| {
                    // Deliberately non-convex in n (weighted tiles produce
                    // such tables), so the LP relaxation goes fractional
                    // and branching actually happens.
                    let jitter = ((col * 31 + n as usize * 17) % 13) as f64 * 0.23;
                    let cost = alpha * (n as f64) * 0.4 + jitter;
                    m.add_binary_var(cost)
                })
                .collect();
            m.add_constraint(vars.iter().map(|&v| (v, 1.0)), Sense::Eq, 1.0);
            budget_terms.extend(vars.iter().enumerate().map(|(n, &v)| (v, n as f64)));
        }
        m.add_constraint(budget_terms, Sense::Eq, budget);
        m
    }

    #[test]
    fn warm_start_same_optimum_fewer_pivots_on_ilp2_tile() {
        // A budget that does not divide evenly across columns forces real
        // branching, so the warm path gets exercised.
        let m = ilp2_tile(8, 3, 11.0);
        let warm = m
            .solve_with(&MilpOptions::default())
            .expect("warm solvable");
        let cold = m
            .solve_with(&MilpOptions {
                warm_start: false,
                ..MilpOptions::default()
            })
            .expect("cold solvable");
        assert!(
            (warm.objective - cold.objective).abs() < 1e-6,
            "optima differ: warm {} cold {}",
            warm.objective,
            cold.objective
        );
        assert!(
            warm.stats.warm_solves > 0,
            "warm path never taken: {:?}",
            warm.stats
        );
        assert!(
            warm.stats.pivots < cold.stats.pivots,
            "warm {} pivots vs cold {}",
            warm.stats.pivots,
            cold.stats.pivots
        );
    }

    #[test]
    fn pseudo_cost_rule_reaches_the_same_optimum() {
        let m = ilp2_tile(8, 3, 11.0);
        let base = m.solve().expect("most-fractional solvable");
        let pc = m
            .solve_with(&MilpOptions {
                branch_rule: BranchRuleKind::PseudoCost,
                ..MilpOptions::default()
            })
            .expect("pseudo-cost solvable");
        assert!(
            (base.objective - pc.objective).abs() < 1e-6,
            "optima differ: {} vs {}",
            base.objective,
            pc.objective
        );
    }

    #[test]
    fn cover_cuts_do_not_change_the_optimum() {
        // A knapsack with distinct weights, where cover separation can
        // actually fire.
        let mut weights = Vec::new();
        let mut m = Model::new(Objective::Maximize);
        let vars: Vec<_> = (0..10)
            .map(|i| {
                let w = 2.0 + (i % 5) as f64 * 1.3;
                weights.push(w);
                m.add_binary_var(1.0 + i as f64 * 0.7)
            })
            .collect();
        m.add_constraint(
            vars.iter().zip(&weights).map(|(&v, &w)| (v, w)),
            Sense::Le,
            14.0,
        );
        let with_cuts = m.solve().expect("with cuts");
        let without = m
            .solve_with(&MilpOptions {
                cover_cuts: false,
                ..MilpOptions::default()
            })
            .expect("without cuts");
        assert!(
            (with_cuts.objective - without.objective).abs() < 1e-6,
            "cuts changed the optimum: {} vs {}",
            with_cuts.objective,
            without.objective
        );
    }

    #[test]
    fn backends_agree_on_ilp2_tile() {
        let sparse = ilp2_tile(8, 3, 11.0);
        let mut dense = sparse.clone();
        dense.set_backend(crate::SolverBackend::DenseReference);
        let s = sparse.solve().expect("sparse solvable");
        let d = dense.solve().expect("dense solvable");
        assert!(
            (s.objective - d.objective).abs() < 1e-6,
            "sparse {} vs dense {}",
            s.objective,
            d.objective
        );
    }

    #[test]
    fn solve_with_stats_reports_the_tree_on_cutoff() {
        let m = ilp2_tile(6, 3, 8.0);
        let baseline = m.solve().expect("solvable");
        let (result, stats) = m.solve_with_stats(&MilpOptions {
            cutoff: Some(baseline.objective),
            ..MilpOptions::default()
        });
        assert!(matches!(result, Err(SolveError::Cutoff)));
        assert!(stats.nodes >= 1, "search ran but stats empty: {stats:?}");
    }
}
