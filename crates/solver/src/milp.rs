//! Branch-and-bound layer over the LP relaxation.
//!
//! Depth-first search with best-incumbent pruning. Branching selects the
//! integer variable whose relaxation value is most fractional, and explores
//! the branch nearer the fractional value first (a cheap form of
//! best-first dive). Node and pivot counts are reported in
//! [`BranchBoundStats`] so benchmark tables can include solver effort.

use crate::model::{Model, Solution, SolveError, VarId};

/// Tuning knobs for [`Model::solve_with`].
#[derive(Debug, Clone)]
pub struct MilpOptions {
    /// Maximum branch-and-bound nodes before giving up.
    pub node_limit: usize,
    /// Absolute integrality tolerance.
    pub int_tol: f64,
    /// Prune nodes whose bound is within this of the incumbent (absolute).
    pub gap_tol: f64,
}

impl Default for MilpOptions {
    fn default() -> Self {
        Self {
            node_limit: 200_000,
            int_tol: 1e-6,
            gap_tol: 1e-9,
        }
    }
}

/// Search statistics from a branch-and-bound run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchBoundStats {
    /// LP relaxations solved.
    pub nodes: usize,
    /// Nodes pruned by bound.
    pub pruned: usize,
    /// Incumbent improvements.
    pub incumbents: usize,
    /// Total simplex pivots across all relaxations.
    pub pivots: usize,
}

struct Node {
    /// (var, lb, ub) bound overrides along this branch.
    bounds: Vec<(VarId, f64, f64)>,
    depth: usize,
}

/// Runs branch-and-bound on `model` (which must contain integer variables).
///
/// # Errors
///
/// Returns [`SolveError::Infeasible`] when no integer-feasible point exists,
/// [`SolveError::Unbounded`] when the relaxation is unbounded, and
/// [`SolveError::NodeLimit`] when the node budget is exhausted with no
/// incumbent.
pub(crate) fn branch_and_bound(
    model: &Model,
    options: &MilpOptions,
) -> Result<Solution, SolveError> {
    // Work internally in minimization sense: incumbent comparisons multiply
    // the model-direction objective by this sign.
    let minimize_sign = if model.is_minimize() { 1.0 } else { -1.0 };

    let int_vars: Vec<VarId> = model.integer_vars().collect();
    debug_assert!(!int_vars.is_empty());

    let mut stats = BranchBoundStats::default();
    let mut incumbent: Option<Solution> = None;
    let mut stack = vec![Node {
        bounds: Vec::new(),
        depth: 0,
    }];
    let mut scratch = model.clone();
    let mut relaxation_unbounded_at_root = false;

    while let Some(node) = stack.pop() {
        if stats.nodes >= options.node_limit {
            return match incumbent {
                Some(sol) => Ok(finish(sol, stats)),
                None => Err(SolveError::NodeLimit),
            };
        }

        // Apply node bounds onto a fresh copy of the base model.
        scratch.clone_from(model);
        let mut consistent = true;
        for &(v, lb, ub) in &node.bounds {
            let (cur_lb, cur_ub) = scratch.bounds(v);
            let new_lb = cur_lb.max(lb);
            let new_ub = cur_ub.min(ub);
            if new_lb > new_ub {
                consistent = false;
                break;
            }
            scratch.set_bounds(v, new_lb, new_ub);
        }
        if !consistent {
            stats.pruned += 1;
            continue;
        }

        stats.nodes += 1;
        let relax = match scratch.solve_lp() {
            Ok(s) => {
                stats.pivots += s.stats.pivots;
                s
            }
            Err(SolveError::Infeasible) => continue,
            Err(SolveError::Unbounded) => {
                if node.depth == 0 {
                    relaxation_unbounded_at_root = true;
                }
                // An unbounded relaxation at depth > 0 still means the MILP
                // may be unbounded; treat conservatively as unbounded.
                relaxation_unbounded_at_root = relaxation_unbounded_at_root || node.depth > 0;
                if relaxation_unbounded_at_root {
                    return Err(SolveError::Unbounded);
                }
                continue;
            }
            Err(e) => return Err(e),
        };

        // Bound pruning (compare in minimization sense).
        if let Some(inc) = &incumbent {
            if minimize_sign * relax.objective
                >= minimize_sign * inc.objective - options.gap_tol
            {
                stats.pruned += 1;
                continue;
            }
        }

        // Find most fractional integer variable.
        let mut branch_var: Option<(VarId, f64)> = None;
        let mut best_frac = options.int_tol;
        for &v in &int_vars {
            let val = relax.value(v);
            let frac = (val - val.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch_var = Some((v, val));
            }
        }

        match branch_var {
            None => {
                // Integer feasible: snap and record.
                let mut snapped = relax;
                for &v in &int_vars {
                    snapped.values[v.index()] = snapped.values[v.index()].round();
                }
                let better = incumbent.as_ref().map_or(true, |inc| {
                    minimize_sign * snapped.objective
                        < minimize_sign * inc.objective - options.gap_tol
                });
                if better {
                    stats.incumbents += 1;
                    incumbent = Some(snapped);
                }
            }
            Some((v, val)) => {
                let floor = val.floor();
                // Explore the nearer branch last so it pops first (DFS
                // stack order): dive towards the fractional value.
                let down = Node {
                    bounds: with_bound(&node.bounds, v, f64::NEG_INFINITY, floor),
                    depth: node.depth + 1,
                };
                let up = Node {
                    bounds: with_bound(&node.bounds, v, floor + 1.0, f64::INFINITY),
                    depth: node.depth + 1,
                };
                if val - floor < 0.5 {
                    stack.push(up);
                    stack.push(down);
                } else {
                    stack.push(down);
                    stack.push(up);
                }
            }
        }
    }

    match incumbent {
        Some(sol) => Ok(finish(sol, stats)),
        None => Err(SolveError::Infeasible),
    }
}

fn with_bound(
    bounds: &[(VarId, f64, f64)],
    v: VarId,
    lb: f64,
    ub: f64,
) -> Vec<(VarId, f64, f64)> {
    let mut out = bounds.to_vec();
    out.push((v, lb, ub));
    out
}

fn finish(mut sol: Solution, stats: BranchBoundStats) -> Solution {
    sol.stats = stats;
    sol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Objective, Sense};

    /// Exhaustive reference solver for tiny pure-integer models.
    fn brute_force_best(
        maximize: bool,
        objs: &[f64],
        caps: &[i64],
        constraints: &[(Vec<f64>, Sense, f64)],
    ) -> Option<f64> {
        fn rec(
            idx: usize,
            caps: &[i64],
            current: &mut Vec<i64>,
            all: &mut Vec<Vec<i64>>,
        ) {
            if idx == caps.len() {
                all.push(current.clone());
                return;
            }
            for v in 0..=caps[idx] {
                current.push(v);
                rec(idx + 1, caps, current, all);
                current.pop();
            }
        }
        let mut all = Vec::new();
        rec(0, caps, &mut Vec::new(), &mut all);
        let feasible = all.into_iter().filter(|x| {
            constraints.iter().all(|(coeffs, sense, rhs)| {
                let lhs: f64 = coeffs
                    .iter()
                    .zip(x.iter())
                    .map(|(c, &v)| c * v as f64)
                    .sum();
                match sense {
                    Sense::Le => lhs <= rhs + 1e-9,
                    Sense::Ge => lhs >= rhs - 1e-9,
                    Sense::Eq => (lhs - rhs).abs() < 1e-9,
                }
            })
        });
        let objective = |x: &Vec<i64>| -> f64 {
            objs.iter().zip(x.iter()).map(|(c, &v)| c * v as f64).sum()
        };
        feasible
            .map(|x| objective(&x))
            .fold(None, |best: Option<f64>, o| match best {
                None => Some(o),
                Some(b) => Some(if maximize { b.max(o) } else { b.min(o) }),
            })
    }

    #[test]
    fn matches_brute_force_on_fixed_instances() {
        let cases: Vec<(bool, Vec<f64>, Vec<i64>, Vec<(Vec<f64>, Sense, f64)>)> = vec![
            (
                true,
                vec![5.0, 4.0, 3.0],
                vec![3, 3, 3],
                vec![(vec![2.0, 3.0, 1.0], Sense::Le, 5.0)],
            ),
            (
                false,
                vec![2.0, 7.0, 1.5, 4.0],
                vec![2, 2, 2, 2],
                vec![(vec![1.0, 1.0, 1.0, 1.0], Sense::Eq, 4.0)],
            ),
            (
                false,
                vec![1.0, 1.0, 10.0],
                vec![4, 4, 4],
                vec![
                    (vec![1.0, 2.0, 1.0], Sense::Ge, 5.0),
                    (vec![1.0, 0.0, 1.0], Sense::Le, 3.0),
                ],
            ),
        ];
        for (maximize, objs, caps, cons) in cases {
            let mut m = Model::new(if maximize {
                Objective::Maximize
            } else {
                Objective::Minimize
            });
            let vars: Vec<_> = objs
                .iter()
                .zip(&caps)
                .map(|(&o, &c)| m.add_integer_var(0.0, c as f64, o))
                .collect();
            for (coeffs, sense, rhs) in &cons {
                m.add_constraint(
                    vars.iter().zip(coeffs).map(|(&v, &c)| (v, c)),
                    *sense,
                    *rhs,
                );
            }
            let expected = brute_force_best(maximize, &objs, &caps, &cons);
            match (m.solve(), expected) {
                (Ok(sol), Some(best)) => {
                    assert!(
                        (sol.objective - best).abs() < 1e-6,
                        "milp {} vs brute {best}",
                        sol.objective
                    );
                }
                (Err(SolveError::Infeasible), None) => {}
                (got, want) => panic!("mismatch: got {got:?}, brute force {want:?}"),
            }
        }
    }

    #[test]
    fn stats_are_populated() {
        let mut m = Model::new(Objective::Maximize);
        let vars: Vec<_> = (0..6).map(|i| m.add_binary_var(1.0 + i as f64 * 0.3)).collect();
        m.add_constraint(vars.iter().map(|&v| (v, 1.0)), Sense::Le, 3.0);
        let s = m.solve().expect("solvable");
        assert!(s.stats.nodes >= 1);
    }

    #[test]
    fn node_limit_without_incumbent_errors() {
        let mut m = Model::new(Objective::Minimize);
        // A problem that needs branching to find feasibility.
        let x = m.add_integer_var(0.0, 10.0, 1.0);
        let y = m.add_integer_var(0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, 2.0), (y, 2.0)], Sense::Eq, 7.0); // infeasible in integers
        let opts = MilpOptions {
            node_limit: 1,
            ..MilpOptions::default()
        };
        let res = m.solve_with(&opts);
        assert!(matches!(
            res,
            Err(SolveError::NodeLimit) | Err(SolveError::Infeasible)
        ));
    }
}
