//! LP engines and their shared status/solution types.
//!
//! Two backends implement the same solve/warm-start/dual-re-optimize
//! contract:
//!
//! - [`crate::sparse`] — the default sparse revised simplex with an
//!   LU-factored basis, native bounds and two-phase feasibility;
//! - [`dense_reference`] — the original dense bounded-variable Big-M
//!   tableau, kept as the oracle for equivalence suites and as the
//!   [`crate::model::SolverBackend::DenseReference`] escape hatch.

pub(crate) mod dense_reference;

pub(crate) use dense_reference::{solve_standard, solve_with_warm, Tableau};

/// Feasibility/boundedness status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below (for minimization).
    Unbounded,
    /// The iteration limit was exceeded (numerical trouble).
    IterationLimit,
}

/// A linear program in dense computational standard form (the
/// [`dense_reference`] input; the sparse backend builds its own form
/// directly from the model).
#[derive(Debug, Clone)]
pub struct StandardLp {
    /// Number of structural variables (excluding slacks/artificials).
    pub n_structural: usize,
    /// Objective coefficients (minimization), length `n_structural`.
    pub costs: Vec<f64>,
    /// Dense constraint rows over structural variables.
    pub rows: Vec<Vec<f64>>,
    /// Row senses normalized to `<=` (false) or `=` (true); `>=` rows are
    /// pre-negated by the caller.
    pub eq: Vec<bool>,
    /// Right-hand sides, one per row.
    pub rhs: Vec<f64>,
    /// Upper bounds per structural variable (may be `f64::INFINITY`).
    pub upper: Vec<f64>,
}

/// Result of an LP solve (either backend).
#[derive(Debug, Clone)]
#[must_use = "an LP solve is expensive; dropping the solution discards it"]
pub struct LpSolution {
    /// Solve status; values/objective are meaningful only for
    /// [`LpStatus::Optimal`].
    pub status: LpStatus,
    /// Values of the structural variables. The dense backend reports them
    /// in shifted (lower-bound-relative) space; the sparse backend reports
    /// model space directly.
    pub values: Vec<f64>,
    /// Objective value (minimization sense).
    pub objective: f64,
    /// Simplex pivots performed.
    pub iterations: usize,
}
