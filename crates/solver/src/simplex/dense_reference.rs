//! Dense bounded-variable primal simplex with Big-M feasibility.
//!
// Exact `!= 0.0` comparisons in this file are sparsity/no-op guards:
// skipping arithmetic on an exactly-zero coefficient never changes a
// result, whereas an epsilon threshold would silently drop small but
// meaningful pivot terms. pilfill: allow-file(float-eq)
//!
//! Solves `min c'x  s.t.  Ax = b, 0 <= x <= u` where some components of `u`
//! may be infinite. Inequalities and general bounds are normalized into this
//! form by [`crate::model::Model`]. The tableau `[B^-1 A | B^-1 b]` is kept
//! in a single row-major `Vec<f64>` (one allocation, cache-friendly pivots)
//! and updated in place; nonbasic variables may rest at their lower *or*
//! upper bound (the standard upper-bounded simplex extension), which keeps
//! the tableau small for models with many box-constrained variables (e.g.
//! ILP-II binaries).
//!
//! Reduced costs are maintained incrementally across pivots and priced with
//! a cyclic candidate list (partial pricing), so a pivot costs O(rows·cols)
//! for the elimination but pricing no longer rescans every column against
//! every row. A full reduced-cost refresh runs periodically and before
//! declaring optimality, so accumulated float drift cannot produce a wrong
//! termination.
//!
//! For branch-and-bound, a solved tableau doubles as a warm-start state:
//! tightening a structural variable's bounds leaves `B^-1 A` and the
//! reduced costs unchanged (bound shifts touch only the right-hand side),
//! so a child node is re-optimized with the dual simplex from the parent
//! basis instead of re-running the Big-M primal from scratch. See
//! [`Tableau::apply_var_bounds`] and [`Tableau::dual_solve`].

use super::{LpSolution, LpStatus, StandardLp};

const EPS: f64 = 1e-9;
/// Pivot elements smaller than this are rejected for stability.
const PIVOT_EPS: f64 = 1e-7;
/// Candidate-list size for partial pricing: the cyclic scan stops as soon
/// as this many improving columns have been seen and pivots on the best.
const PRICE_CANDIDATES: usize = 24;
/// Maintained reduced costs are refreshed from scratch every this many
/// pivots to bound float drift.
const REFRESH_INTERVAL: usize = 256;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NonbasicAt {
    Lower,
    Upper,
}

/// Solves the standard-form LP with the bounded-variable Big-M simplex.
///
/// All variables have implicit lower bound zero. Slack variables are added
/// for `<=` rows; artificial variables (with Big-M cost) are added for `=`
/// rows and for `<=` rows with negative right-hand side.
pub fn solve_standard(lp: &StandardLp) -> LpSolution {
    Tableau::build(lp).primal_solve()
}

/// Solves the LP and, on optimality, also returns the solved tableau so
/// branch-and-bound can warm-start child nodes from it.
pub(crate) fn solve_with_warm(lp: &StandardLp) -> (LpSolution, Option<Tableau>) {
    let mut tab = Tableau::build(lp);
    let sol = tab.primal_solve();
    let warm = (sol.status == LpStatus::Optimal).then_some(tab);
    (sol, warm)
}

#[derive(Debug, Clone)]
pub(crate) struct Tableau {
    /// `n_rows x n_cols` coefficient matrix (structural + slack +
    /// artificial), row-major in one flat allocation.
    a: Vec<f64>,
    /// Current right-hand side (basic variable values given nonbasic rests),
    /// expressed in the shifted variable space.
    b: Vec<f64>,
    /// Cost per column (Big-M applied to artificials).
    cost: Vec<f64>,
    /// Width of the feasible interval per column (`hi - lo` after shifts).
    upper: Vec<f64>,
    /// Current lower bound of each column in root standard space. Zero
    /// until branch-and-bound tightens a bound; only structural columns
    /// ever acquire a shift.
    shift: Vec<f64>,
    /// Maintained reduced costs, refreshed periodically.
    d: Vec<f64>,
    /// Basic variable (column index) per row.
    basis: Vec<usize>,
    /// O(1) basis membership (replaces scanning `basis`).
    in_basis: Vec<bool>,
    /// Rest position of each nonbasic column.
    at: Vec<NonbasicAt>,
    /// First artificial column (for the feasibility check).
    artificial_start: usize,
    /// Number of structural columns (prefix of the column range).
    n_structural: usize,
    /// Cyclic pricing cursor.
    price_start: usize,
    /// Scratch copy of the normalized pivot row.
    work: Vec<f64>,
    n_cols: usize,
    n_rows: usize,
    big_m: f64,
}

impl Tableau {
    fn build(lp: &StandardLp) -> Self {
        let n_rows = lp.rows.len();
        let n_struct = lp.n_structural;

        // Normalize rows so rhs >= 0 (flip row sign if needed); `<=` rows
        // that get flipped become `>=`, which then need surplus+artificial.
        // We encode: for each row, slack coefficient (+1 for <=, -1 for >=,
        // 0 for =) and whether an artificial is required.
        let mut rows = lp.rows.clone();
        let mut rhs = lp.rhs.clone();
        let mut slack_sign = vec![0.0f64; n_rows];
        let mut needs_artificial = vec![false; n_rows];
        for i in 0..n_rows {
            let mut ge = false;
            if rhs[i] < 0.0 {
                for v in rows[i].iter_mut() {
                    *v = -*v;
                }
                rhs[i] = -rhs[i];
                if !lp.eq[i] {
                    ge = true; // flipped <= becomes >=
                }
            }
            if lp.eq[i] {
                slack_sign[i] = 0.0;
                needs_artificial[i] = true;
            } else if ge {
                slack_sign[i] = -1.0;
                needs_artificial[i] = true;
            } else {
                slack_sign[i] = 1.0;
                needs_artificial[i] = false;
            }
        }

        // Row equilibration: scale each row so its largest coefficient has
        // magnitude 1. Keeps Big-M proportionate when callers pass rows
        // with wildly different magnitudes (e.g. capacitances vs counts).
        for i in 0..n_rows {
            let max_abs = rows[i].iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            if max_abs > 0.0 && !(1e-3..=1e3).contains(&max_abs) {
                let inv = 1.0 / max_abs;
                for v in rows[i].iter_mut() {
                    *v *= inv;
                }
                rhs[i] *= inv;
            }
        }

        let n_slack = slack_sign.iter().filter(|&&s| s != 0.0).count();
        let n_art = needs_artificial.iter().filter(|&&x| x).count();
        let n_cols = n_struct + n_slack + n_art;

        let max_abs_cost = lp.costs.iter().fold(1.0f64, |m, &c| m.max(c.abs()));
        let max_abs_rhs = rhs.iter().fold(1.0f64, |m, &r| m.max(r.abs()));
        let big_m = 1e7 * max_abs_cost.max(max_abs_rhs);

        let mut a = vec![0.0; n_rows * n_cols];
        let mut cost = vec![0.0; n_cols];
        let mut upper = vec![f64::INFINITY; n_cols];
        cost[..n_struct].copy_from_slice(&lp.costs);
        upper[..n_struct].copy_from_slice(&lp.upper);
        for (i, row) in rows.iter().enumerate() {
            a[i * n_cols..i * n_cols + n_struct].copy_from_slice(row);
        }

        let mut col = n_struct;
        let mut slack_col = vec![usize::MAX; n_rows];
        for i in 0..n_rows {
            if slack_sign[i] != 0.0 {
                a[i * n_cols + col] = slack_sign[i];
                slack_col[i] = col;
                col += 1;
            }
        }
        let artificial_start = col;
        let mut basis = vec![usize::MAX; n_rows];
        for i in 0..n_rows {
            if needs_artificial[i] {
                a[i * n_cols + col] = 1.0;
                cost[col] = big_m;
                basis[i] = col;
                col += 1;
            } else {
                basis[i] = slack_col[i];
            }
        }
        debug_assert_eq!(col, n_cols);

        let mut in_basis = vec![false; n_cols];
        for &bj in &basis {
            in_basis[bj] = true;
        }

        let mut tab = Self {
            a,
            b: rhs,
            cost,
            upper,
            shift: vec![0.0; n_cols],
            d: vec![0.0; n_cols],
            basis,
            in_basis,
            at: vec![NonbasicAt::Lower; n_cols],
            artificial_start,
            n_structural: n_struct,
            price_start: 0,
            work: vec![0.0; n_cols],
            n_cols,
            n_rows,
            big_m,
        };
        tab.refresh_reduced_costs();
        tab
    }

    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        &self.a[i * self.n_cols..(i + 1) * self.n_cols]
    }

    #[inline]
    fn coeff(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.n_cols + j]
    }

    /// Value of column `j` given its rest position, in shifted space.
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.at[j] {
            NonbasicAt::Lower => 0.0,
            NonbasicAt::Upper => self.upper[j],
        }
    }

    /// Recomputes `d_j = c_j - c_B' B^-1 A_j` from scratch.
    fn refresh_reduced_costs(&mut self) {
        self.d.copy_from_slice(&self.cost);
        for i in 0..self.n_rows {
            let cb = self.cost[self.basis[i]];
            if cb != 0.0 {
                let row = &self.a[i * self.n_cols..(i + 1) * self.n_cols];
                for (dj, &aij) in self.d.iter_mut().zip(row) {
                    if aij != 0.0 {
                        *dj -= cb * aij;
                    }
                }
            }
        }
        for (j, dj) in self.d.iter_mut().enumerate() {
            if self.in_basis[j] {
                *dj = 0.0;
            }
        }
    }

    /// Whether moving nonbasic `j` in its feasible direction improves the
    /// objective.
    #[inline]
    fn improving(&self, j: usize) -> bool {
        match self.at[j] {
            NonbasicAt::Lower => self.d[j] < -EPS,
            NonbasicAt::Upper => self.d[j] > EPS,
        }
    }

    /// Partial pricing: cyclic scan collecting at most [`PRICE_CANDIDATES`]
    /// improving columns, returning the one with the largest |d|.
    fn price_candidate(&mut self) -> Option<(usize, f64)> {
        let n = self.n_cols;
        let mut best: Option<(usize, f64)> = None;
        let mut found = 0usize;
        for step in 0..n {
            let j = (self.price_start + step) % n;
            if self.in_basis[j] || !self.improving(j) {
                continue;
            }
            let dj = self.d[j];
            if best.is_none_or(|(_, bd)| dj.abs() > bd.abs()) {
                best = Some((j, dj));
            }
            found += 1;
            if found >= PRICE_CANDIDATES {
                self.price_start = (j + 1) % n;
                return best;
            }
        }
        self.price_start = 0;
        best
    }

    /// Bland's rule: smallest-index improving column (anti-cycling).
    fn price_bland(&self) -> Option<(usize, f64)> {
        (0..self.n_cols)
            .find(|&j| !self.in_basis[j] && self.improving(j))
            .map(|j| (j, self.d[j]))
    }

    fn primal_solve(&mut self) -> LpSolution {
        let iter_limit = 200 * (self.n_rows + self.n_cols).max(50);
        let mut iterations = 0usize;
        let mut degenerate_streak = 0usize;

        loop {
            if iterations > iter_limit {
                return LpSolution {
                    status: LpStatus::IterationLimit,
                    values: vec![0.0; self.n_structural],
                    objective: f64::NAN,
                    iterations,
                };
            }
            if iterations > 0 && iterations.is_multiple_of(REFRESH_INTERVAL) {
                self.refresh_reduced_costs();
            }

            let use_bland = degenerate_streak > 2 * self.n_rows.max(10);
            let entering = if use_bland {
                // Recompute before an anti-cycling pick: Bland's guarantee
                // needs exact signs, not drifted ones.
                self.refresh_reduced_costs();
                self.price_bland()
            } else {
                match self.price_candidate() {
                    Some(e) => Some(e),
                    None => {
                        // The maintained d claims optimality; verify with a
                        // full refresh before believing it.
                        self.refresh_reduced_costs();
                        self.price_candidate()
                    }
                }
            };

            let Some((q, dq)) = entering else {
                return self.extract(iterations);
            };

            // Direction: +1 if q increases from lower, -1 if decreases from
            // upper.
            let dir = if self.at[q] == NonbasicAt::Lower {
                1.0
            } else {
                -1.0
            };
            debug_assert!(dq * dir < 0.0);

            // Ratio test with bounds. t = amount of movement of q (>= 0).
            // Basic variable i changes by -dir * a[i][q] * t; it must stay
            // within [0, upper[basis[i]]]. q itself must stay within
            // [0, upper[q]].
            let mut t_max = if self.upper[q].is_finite() {
                self.upper[q]
            } else {
                f64::INFINITY
            };
            // Leaving candidate: (row, basic var goes to which bound).
            let mut leaving: Option<(usize, NonbasicAt)> = None;
            for i in 0..self.n_rows {
                let alpha = dir * self.coeff(i, q);
                let xb = self.b[i];
                if alpha > PIVOT_EPS {
                    // Basic decreases towards 0.
                    let t = xb / alpha;
                    if t < t_max {
                        t_max = t.max(0.0);
                        leaving = Some((i, NonbasicAt::Lower));
                    }
                } else if alpha < -PIVOT_EPS {
                    let ub = self.upper[self.basis[i]];
                    if ub.is_finite() {
                        // Basic increases towards its upper bound.
                        let t = (ub - xb) / (-alpha);
                        if t < t_max {
                            t_max = t.max(0.0);
                            leaving = Some((i, NonbasicAt::Upper));
                        }
                    }
                }
            }

            if t_max.is_infinite() {
                // A ray in the composite (Big-M) objective while an
                // artificial is still basic at positive level does not
                // prove true unboundedness: the ray keeps the artificial
                // sum constant, so no feasible point has been reached.
                // Report infeasibility, matching the two-phase sparse
                // engine on infeasible-with-ray instances.
                let feas_tol = 1e-6 * (1.0 + self.big_m / 1e7);
                let artificial_residual = self
                    .basis
                    .iter()
                    .zip(&self.b)
                    .any(|(&bj, &xb)| bj >= self.artificial_start && xb.abs() > feas_tol);
                if artificial_residual {
                    return LpSolution {
                        status: LpStatus::Infeasible,
                        values: vec![0.0; self.n_structural],
                        objective: f64::NAN,
                        iterations,
                    };
                }
                return LpSolution {
                    status: LpStatus::Unbounded,
                    values: vec![0.0; self.n_structural],
                    objective: f64::NEG_INFINITY,
                    iterations,
                };
            }

            degenerate_streak = if t_max < EPS {
                degenerate_streak + 1
            } else {
                0
            };

            match leaving {
                None => {
                    // q moves all the way to its other bound; basis is
                    // unchanged ("bound flip").
                    for i in 0..self.n_rows {
                        self.b[i] -= dir * self.coeff(i, q) * t_max;
                    }
                    self.at[q] = match self.at[q] {
                        NonbasicAt::Lower => NonbasicAt::Upper,
                        NonbasicAt::Upper => NonbasicAt::Lower,
                    };
                }
                Some((r, leave_to)) => {
                    self.pivot(r, q, dir, t_max, leave_to);
                }
            }
            iterations += 1;
        }
    }

    /// Pivot: q enters the basis at row r; the old basic leaves to
    /// `leave_to`. Shared by the primal and dual loops — both move q by
    /// `t >= 0` in direction `dir` and then exchange basis columns.
    fn pivot(&mut self, r: usize, q: usize, dir: f64, t: f64, leave_to: NonbasicAt) {
        let leaving_var = self.basis[r];
        let nc = self.n_cols;

        // Update basic values for the movement t of q.
        for i in 0..self.n_rows {
            self.b[i] -= dir * self.a[i * nc + q] * t;
        }
        // New basic value of q = rest value + dir * t.
        let q_new = self.nonbasic_value(q) + dir * t;

        // Normalize pivot row and stash it for the eliminations.
        let piv = self.a[r * nc + q];
        debug_assert!(piv.abs() > PIVOT_EPS * 0.5, "tiny pivot {piv}");
        let inv = 1.0 / piv;
        for v in self.a[r * nc..(r + 1) * nc].iter_mut() {
            *v *= inv;
        }
        self.work.copy_from_slice(&self.a[r * nc..(r + 1) * nc]);
        // b[r] currently holds the (updated) value of the *leaving*
        // variable; replace row content for q's row, eliminating q from
        // other rows. For the b vector we maintain actual basic values, so
        // set row r to q's value first, then eliminate.
        self.b[r] = q_new;

        for (i, row) in self.a.chunks_exact_mut(nc).enumerate() {
            if i == r {
                continue;
            }
            let factor = row[q];
            if factor != 0.0 {
                for (x, y) in row.iter_mut().zip(&self.work) {
                    *x -= factor * y;
                }
                // b[i] was already updated by the movement step; the
                // elimination does not change basic values, only the
                // representation.
            }
        }

        // Reduced costs: d_j -= d_q * (normalized pivot row)_j. The column
        // of the leaving variable is the unit e_r pre-pivot, so the same
        // update assigns it -d_q / piv; the entering column lands on zero.
        let dq = self.d[q];
        if dq != 0.0 {
            for (dj, &wj) in self.d.iter_mut().zip(&self.work) {
                if wj != 0.0 {
                    *dj -= dq * wj;
                }
            }
        }
        self.d[q] = 0.0;

        self.basis[r] = q;
        self.in_basis[q] = true;
        self.in_basis[leaving_var] = false;
        self.at[leaving_var] = leave_to;
        // Guard: a nonbasic "at upper" with infinite bound is invalid; can
        // only happen with numerical trouble.
        if leave_to == NonbasicAt::Upper && !self.upper[leaving_var].is_finite() {
            self.at[leaving_var] = NonbasicAt::Lower;
        }
    }

    /// Tightens column `j` (structural) to `[lo, hi]` in root standard
    /// space. Only the right-hand side changes — `B^-1 A` and the reduced
    /// costs are invariant under bound shifts — so a subsequent
    /// [`Tableau::dual_solve`] re-optimizes from the current basis.
    ///
    /// Returns `false` when the interval is empty (the node is infeasible).
    pub(crate) fn apply_var_bounds(&mut self, j: usize, lo: f64, hi: f64) -> bool {
        debug_assert!(j < self.n_structural);
        if hi - lo < -1e-9 {
            return false;
        }
        let width = (hi - lo).max(0.0);
        let nc = self.n_cols;
        if !self.in_basis[j] && self.at[j] == NonbasicAt::Upper {
            // The variable rests at its (finite) upper bound; moving that
            // bound moves the rest value.
            let old_hi = self.shift[j] + self.upper[j];
            let move_down = old_hi - hi;
            if move_down != 0.0 {
                for i in 0..self.n_rows {
                    self.b[i] += self.a[i * nc + j] * move_down;
                }
            }
        } else {
            // Resting at (or basic above) the lower bound: shifting the
            // lower bound by delta moves the rest value by delta. A basic
            // column is the unit e_r, so only its own row adjusts and its
            // model-space value is preserved.
            let delta = lo - self.shift[j];
            if delta != 0.0 {
                for i in 0..self.n_rows {
                    self.b[i] -= self.a[i * nc + j] * delta;
                }
            }
        }
        self.shift[j] = lo;
        self.upper[j] = width;
        true
    }

    /// Re-optimizes with the bounded dual simplex after bound tightenings.
    ///
    /// The basis stays dual feasible across [`Tableau::apply_var_bounds`],
    /// so each iteration drops the most infeasible basic variable to the
    /// violated bound and brings in the column that keeps the reduced
    /// costs sign-correct. Returns `None` on numerical trouble (caller
    /// falls back to a cold solve); otherwise the usual solution with
    /// status `Optimal` or `Infeasible`.
    pub(crate) fn dual_solve(&mut self) -> Option<LpSolution> {
        let feas_tol = 1e-7 * (1.0 + self.big_m / 1e7);
        // Start from exact reduced costs and verify dual feasibility; a
        // violation means the caller's tableau was not optimal.
        self.refresh_reduced_costs();
        if !self.dual_feasible(feas_tol) {
            return None;
        }

        let iter_limit = 100 * (self.n_rows + self.n_cols).max(50);
        let mut iterations = 0usize;
        loop {
            if iterations > iter_limit {
                return None;
            }

            // Leaving row: largest primal bound violation.
            let mut leave: Option<(usize, f64, NonbasicAt)> = None;
            for i in 0..self.n_rows {
                let xb = self.b[i];
                let ub = self.upper[self.basis[i]];
                if xb < -feas_tol {
                    let viol = -xb;
                    if leave.is_none_or(|(_, v, _)| viol > v) {
                        leave = Some((i, viol, NonbasicAt::Lower));
                    }
                } else if ub.is_finite() && xb > ub + feas_tol {
                    let viol = xb - ub;
                    if leave.is_none_or(|(_, v, _)| viol > v) {
                        leave = Some((i, viol, NonbasicAt::Upper));
                    }
                }
            }
            let Some((r, _, leave_to)) = leave else {
                // Primal feasible again; certify optimality before
                // extracting (drifted d would silently mis-terminate).
                self.refresh_reduced_costs();
                if !self.dual_feasible(feas_tol) {
                    return None;
                }
                return Some(self.extract(iterations));
            };

            // Entering column: dual ratio test. Eligibility keeps the
            // movement reducing the violation; among eligible columns pick
            // the smallest |d/a| (first dual constraint to go tight).
            let below = leave_to == NonbasicAt::Lower;
            let row = self.row(r);
            let mut entering: Option<(usize, f64, f64)> = None; // (col, ratio, |a|)
            let mut any_eligible_sign = false;
            for (j, &arj) in row.iter().enumerate() {
                if self.in_basis[j] {
                    continue;
                }
                let eligible = match (below, self.at[j]) {
                    (true, NonbasicAt::Lower) => arj < -EPS,
                    (true, NonbasicAt::Upper) => arj > EPS,
                    (false, NonbasicAt::Lower) => arj > EPS,
                    (false, NonbasicAt::Upper) => arj < -EPS,
                };
                if !eligible {
                    continue;
                }
                any_eligible_sign = true;
                if arj.abs() <= PIVOT_EPS {
                    continue;
                }
                let ratio = self.d[j].abs() / arj.abs();
                let better = match entering {
                    None => true,
                    Some((_, best, besta)) => {
                        ratio < best - EPS || (ratio < best + EPS && arj.abs() > besta)
                    }
                };
                if better {
                    entering = Some((j, ratio, arj.abs()));
                }
            }
            match entering {
                Some((q, _, _)) => {
                    let dir = if self.at[q] == NonbasicAt::Lower {
                        1.0
                    } else {
                        -1.0
                    };
                    // Move q until the leaving basic lands on its violated
                    // bound: b[r] - dir*a[r][q]*t = target.
                    let target = match leave_to {
                        NonbasicAt::Lower => 0.0,
                        NonbasicAt::Upper => self.upper[self.basis[r]],
                    };
                    let t = (self.b[r] - target) / (dir * self.coeff(r, q));
                    debug_assert!(t >= -EPS, "negative dual step {t}");
                    self.pivot(r, q, dir, t.max(0.0), leave_to);
                }
                None if any_eligible_sign => {
                    // Only numerically tiny pivots available: bail out to
                    // the cold path rather than risk a bad basis.
                    return None;
                }
                None => {
                    // No column can reduce the violation: the primal is
                    // infeasible (dual unbounded).
                    return Some(LpSolution {
                        status: LpStatus::Infeasible,
                        values: vec![0.0; self.n_structural],
                        objective: f64::NAN,
                        iterations,
                    });
                }
            }
            iterations += 1;
        }
    }

    /// Checks the reduced-cost sign conditions for every nonbasic column.
    fn dual_feasible(&self, tol: f64) -> bool {
        (0..self.n_cols).all(|j| {
            self.in_basis[j]
                || match self.at[j] {
                    NonbasicAt::Lower => self.d[j] >= -tol,
                    NonbasicAt::Upper => self.d[j] <= tol,
                }
        })
    }

    fn extract(&self, iterations: usize) -> LpSolution {
        let mut values = vec![0.0; self.n_cols];
        for (j, v) in values.iter_mut().enumerate() {
            if !self.in_basis[j] {
                *v = self.nonbasic_value(j);
            }
        }
        for (i, &bj) in self.basis.iter().enumerate() {
            values[bj] = self.b[i];
        }
        // Check artificials: any residual means infeasible.
        let feas_tol = 1e-6 * (1.0 + self.big_m / 1e7);
        for v in &values[self.artificial_start..self.n_cols] {
            if v.abs() > feas_tol {
                return LpSolution {
                    status: LpStatus::Infeasible,
                    values: vec![0.0; self.n_structural],
                    objective: f64::NAN,
                    iterations,
                };
            }
        }
        let structural: Vec<f64> = values[..self.n_structural]
            .iter()
            .zip(&self.shift)
            .map(|(&v, &s)| {
                let x = v + s;
                if x.abs() < 1e-11 {
                    0.0
                } else {
                    x
                }
            })
            .collect();
        let objective = structural.iter().zip(&self.cost).map(|(v, c)| v * c).sum();
        LpSolution {
            status: LpStatus::Optimal,
            values: structural,
            objective,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(costs: Vec<f64>, rows: Vec<(Vec<f64>, bool, f64)>, upper: Vec<f64>) -> StandardLp {
        let n = costs.len();
        StandardLp {
            n_structural: n,
            costs,
            eq: rows.iter().map(|r| r.1).collect(),
            rhs: rows.iter().map(|r| r.2).collect(),
            rows: rows.into_iter().map(|r| r.0).collect(),
            upper,
        }
    }

    #[test]
    fn simple_two_var_max() {
        // min -x - 2y s.t. x + y <= 4, y <= 3 (via bound). Optimum (1, 3).
        let p = lp(
            vec![-1.0, -2.0],
            vec![(vec![1.0, 1.0], false, 4.0)],
            vec![f64::INFINITY, 3.0],
        );
        let s = solve_standard(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - (-7.0)).abs() < 1e-6, "obj {}", s.objective);
        assert!((s.values[0] - 1.0).abs() < 1e-6);
        assert!((s.values[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraint() {
        // min x + y s.t. x + 2y = 6, 0<=x, 0<=y<=2 -> y=2, x=2, obj 4.
        let p = lp(
            vec![1.0, 1.0],
            vec![(vec![1.0, 2.0], true, 6.0)],
            vec![f64::INFINITY, 2.0],
        );
        let s = solve_standard(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 4.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 3 (encoded as -x <= -3).
        let p = lp(
            vec![1.0],
            vec![(vec![1.0], false, 1.0), (vec![-1.0], false, -3.0)],
            vec![f64::INFINITY],
        );
        let s = solve_standard(&p);
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x, x >= 0 unbounded.
        let p = lp(vec![-1.0], vec![], vec![f64::INFINITY]);
        let s = solve_standard(&p);
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn bounded_by_upper_only() {
        // min -x - y with x<=5, y<=7 and no rows: optimum at (5,7).
        let p = lp(vec![-1.0, -1.0], vec![], vec![5.0, 7.0]);
        let s = solve_standard(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 12.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple constraints active at the optimum.
        let p = lp(
            vec![-1.0, -1.0],
            vec![
                (vec![1.0, 0.0], false, 2.0),
                (vec![1.0, 0.0], false, 2.0),
                (vec![0.0, 1.0], false, 2.0),
                (vec![1.0, 1.0], false, 4.0),
            ],
            vec![f64::INFINITY, f64::INFINITY],
        );
        let s = solve_standard(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 4.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_le_row_feasible() {
        // -x <= -2 means x >= 2; min x -> 2.
        let p = lp(
            vec![1.0],
            vec![(vec![-1.0], false, -2.0)],
            vec![f64::INFINITY],
        );
        let s = solve_standard(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn classic_product_mix() {
        // min -3x - 5y; x <= 4; 2y <= 12; 3x + 2y <= 18 -> (2, 6), obj -36.
        let p = lp(
            vec![-3.0, -5.0],
            vec![
                (vec![1.0, 0.0], false, 4.0),
                (vec![0.0, 2.0], false, 12.0),
                (vec![3.0, 2.0], false, 18.0),
            ],
            vec![f64::INFINITY, f64::INFINITY],
        );
        let s = solve_standard(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 36.0).abs() < 1e-6);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_with_upper_bounds_budget() {
        // The MDFC shape: min c'm s.t. sum m = F, 0 <= m_k <= C_k.
        // c = [3, 1, 2], C = [2, 2, 2], F = 4 -> m = [0, 2, 2], obj 6.
        let p = lp(
            vec![3.0, 1.0, 2.0],
            vec![(vec![1.0, 1.0, 1.0], true, 4.0)],
            vec![2.0, 2.0, 2.0],
        );
        let s = solve_standard(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 6.0).abs() < 1e-6, "obj {}", s.objective);
        assert!((s.values[0]).abs() < 1e-6);
        assert!((s.values[1] - 2.0).abs() < 1e-6);
        assert!((s.values[2] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn warm_restart_matches_cold_after_bound_tightening() {
        // min -3x - 5y; x <= 4; 2y <= 12; 3x + 2y <= 18. Tighten x <= 1
        // (warm) and compare against solving the tightened LP cold.
        let p = lp(
            vec![-3.0, -5.0],
            vec![
                (vec![1.0, 0.0], false, 4.0),
                (vec![0.0, 2.0], false, 12.0),
                (vec![3.0, 2.0], false, 18.0),
            ],
            vec![f64::INFINITY, f64::INFINITY],
        );
        let (root, warm) = solve_with_warm(&p);
        assert_eq!(root.status, LpStatus::Optimal);
        let mut tab = warm.expect("warm state on optimal");
        assert!(tab.apply_var_bounds(0, 0.0, 1.0));
        let warm_sol = tab.dual_solve().expect("dual solve");
        assert_eq!(warm_sol.status, LpStatus::Optimal);

        let mut cold_lp = p.clone();
        cold_lp.upper[0] = 1.0;
        let cold_sol = solve_standard(&cold_lp);
        assert_eq!(cold_sol.status, LpStatus::Optimal);
        assert!(
            (warm_sol.objective - cold_sol.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm_sol.objective,
            cold_sol.objective
        );
        assert!((warm_sol.values[0] - 1.0).abs() < 1e-6);
        assert!((warm_sol.values[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn warm_restart_raised_lower_bound() {
        // MDFC shape again: min 3a + b + 2c, a+b+c = 4, all in [0,2].
        // Optimal has a = 0; force a >= 1 and re-optimize warm.
        let p = lp(
            vec![3.0, 1.0, 2.0],
            vec![(vec![1.0, 1.0, 1.0], true, 4.0)],
            vec![2.0, 2.0, 2.0],
        );
        let (root, warm) = solve_with_warm(&p);
        assert_eq!(root.status, LpStatus::Optimal);
        let mut tab = warm.expect("warm");
        assert!(tab.apply_var_bounds(0, 1.0, 2.0));
        let sol = tab.dual_solve().expect("dual solve");
        assert_eq!(sol.status, LpStatus::Optimal);
        // a=1 forced; remaining 3 split b=2, c=1: obj 3 + 2 + 2 = 7.
        assert!((sol.objective - 7.0).abs() < 1e-6, "obj {}", sol.objective);
        assert!((sol.values[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn warm_restart_detects_infeasible_child() {
        // x + y = 4 with x, y in [0, 2]: forcing x = 0 leaves y = 4 > 2.
        let p = lp(
            vec![1.0, 1.0],
            vec![(vec![1.0, 1.0], true, 4.0)],
            vec![2.0, 2.0],
        );
        let (root, warm) = solve_with_warm(&p);
        assert_eq!(root.status, LpStatus::Optimal);
        let mut tab = warm.expect("warm");
        assert!(tab.apply_var_bounds(0, 0.0, 0.0));
        let sol = tab.dual_solve().expect("dual path");
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn warm_restart_empty_interval_rejected() {
        let p = lp(vec![1.0], vec![], vec![5.0]);
        let (_, warm) = solve_with_warm(&p);
        let mut tab = warm.expect("warm");
        assert!(!tab.apply_var_bounds(0, 3.0, 2.0));
    }
}
