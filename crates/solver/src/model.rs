//! User-facing model builder and solve entry points.

use std::rc::Rc;

use crate::branch::BranchRule;
use crate::milp::{self, BranchBoundStats, MilpOptions};
use crate::simplex::{self, LpStatus, StandardLp};
use crate::sparse::{self, SparseLp};

/// Handle to a decision variable in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in the model's solution vector.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize the objective function.
    Minimize,
    /// Maximize the objective function.
    Maximize,
}

/// Which LP engine backs [`Model::solve_lp`] and the branch-and-bound
/// relaxations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBackend {
    /// Sparse revised simplex with an LU-factored basis, bounded
    /// variables and two-phase feasibility (the default engine).
    #[default]
    Sparse,
    /// The original dense bounded-variable tableau with Big-M
    /// feasibility — kept as a numerical oracle and escape hatch.
    DenseReference,
}

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Left-hand side `<=` right-hand side.
    Le,
    /// Left-hand side `>=` right-hand side.
    Ge,
    /// Left-hand side `=` right-hand side.
    Eq,
}

/// Error returned when a model cannot be solved to optimality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The simplex iteration limit was hit (numerical trouble).
    IterationLimit,
    /// Branch-and-bound exhausted its node limit before proving optimality.
    NodeLimit,
    /// Every branch was pruned against [`crate::MilpOptions::cutoff`]: no
    /// integer solution beats the caller-supplied incumbent objective.
    /// Callers holding the incumbent (a warm-start heuristic solution)
    /// should keep it — it is optimal to within the pruning tolerance.
    Cutoff,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SolveError::Infeasible => "model is infeasible",
            SolveError::Unbounded => "model is unbounded",
            SolveError::IterationLimit => "simplex iteration limit exceeded",
            SolveError::NodeLimit => "branch-and-bound node limit exceeded",
            SolveError::Cutoff => "no integer solution beats the cutoff incumbent",
        })
    }
}

impl std::error::Error for SolveError {}

/// An optimal (or best-found) solution.
#[derive(Debug, Clone)]
#[must_use = "a solve is expensive; dropping the solution discards it"]
pub struct Solution {
    /// Value per variable, indexed by [`VarId::index`].
    pub values: Vec<f64>,
    /// Objective value in the model's own direction (max problems report
    /// the maximum).
    pub objective: f64,
    /// Branch-and-bound statistics (zero nodes for pure LPs).
    pub stats: BranchBoundStats,
}

impl Solution {
    /// Value of variable `v`.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.0]
    }

    /// Value of `v` rounded to the nearest integer (for integer variables).
    pub fn int_value(&self, v: VarId) -> i64 {
        self.values[v.0].round() as i64
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub(crate) terms: Vec<(usize, f64)>,
    pub(crate) sense: Sense,
    pub(crate) rhs: f64,
}

/// A linear / mixed-integer optimization model.
///
/// # Examples
///
/// ```
/// use pilfill_solver::{Model, Objective, Sense};
///
/// // Knapsack: max 6a + 5b + 4c, 2a + 3b + c <= 4, binaries.
/// let mut m = Model::new(Objective::Maximize);
/// let a = m.add_binary_var(6.0);
/// let b = m.add_binary_var(5.0);
/// let c = m.add_binary_var(4.0);
/// m.add_constraint(vec![(a, 2.0), (b, 3.0), (c, 1.0)], Sense::Le, 4.0);
/// let sol = m.solve()?;
/// assert_eq!(sol.objective.round(), 10.0); // pick a and c
/// # Ok::<(), pilfill_solver::SolveError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Model {
    minimize: bool,
    obj: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    integer: Vec<bool>,
    constraints: Vec<Constraint>,
    backend: SolverBackend,
}

impl Model {
    /// Creates an empty model with the given optimization direction.
    pub fn new(objective: Objective) -> Self {
        Self {
            minimize: objective == Objective::Minimize,
            ..Self::default()
        }
    }

    /// Creates an empty model solved by a specific LP backend.
    pub fn with_backend(objective: Objective, backend: SolverBackend) -> Self {
        Self {
            backend,
            ..Self::new(objective)
        }
    }

    /// The LP engine this model solves with.
    pub fn backend(&self) -> SolverBackend {
        self.backend
    }

    /// Switches the LP engine (e.g. to cross-check the two backends).
    pub fn set_backend(&mut self, backend: SolverBackend) {
        self.backend = backend;
    }

    /// Adds a continuous variable with bounds `[lb, ub]` and objective
    /// coefficient `obj`.
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub`, `lb` is not finite, or either bound is NaN.
    pub fn add_var(&mut self, lb: f64, ub: f64, obj: f64) -> VarId {
        assert!(lb.is_finite(), "lower bound must be finite (got {lb})");
        assert!(!ub.is_nan() && ub >= lb, "invalid bounds [{lb}, {ub}]");
        let id = VarId(self.obj.len());
        self.obj.push(obj);
        self.lower.push(lb);
        self.upper.push(ub);
        self.integer.push(false);
        id
    }

    /// Adds a general integer variable with bounds `[lb, ub]`.
    ///
    /// # Panics
    ///
    /// Panics on invalid bounds (see [`Model::add_var`]).
    pub fn add_integer_var(&mut self, lb: f64, ub: f64, obj: f64) -> VarId {
        let id = self.add_var(lb, ub, obj);
        self.integer[id.0] = true;
        id
    }

    /// Adds a 0/1 variable.
    pub fn add_binary_var(&mut self, obj: f64) -> VarId {
        self.add_integer_var(0.0, 1.0, obj)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.obj.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// `true` if any variable is integer.
    pub fn has_integers(&self) -> bool {
        self.integer.iter().any(|&b| b)
    }

    /// Adds the linear constraint `sum(coeff * var) sense rhs`. Terms with
    /// a repeated variable are summed.
    ///
    /// # Panics
    ///
    /// Panics if a term references a variable not in this model.
    pub fn add_constraint(
        &mut self,
        terms: impl IntoIterator<Item = (VarId, f64)>,
        sense: Sense,
        rhs: f64,
    ) {
        // Sum duplicate terms; a map keeps this linear for the large
        // budget rows the fill ILPs generate.
        let mut dense: Vec<(usize, f64)> = Vec::new();
        let mut index_of: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for (v, c) in terms {
            assert!(v.0 < self.obj.len(), "variable out of range");
            match index_of.entry(v.0) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    dense[*e.get()].1 += c;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(dense.len());
                    dense.push((v.0, c));
                }
            }
        }
        self.constraints.push(Constraint {
            terms: dense,
            sense,
            rhs,
        });
    }

    /// Tightens the bounds of `v` to `[lb, ub]` (used by branch-and-bound).
    pub(crate) fn set_bounds(&mut self, v: VarId, lb: f64, ub: f64) {
        self.lower[v.0] = lb;
        self.upper[v.0] = ub;
    }

    pub(crate) fn bounds(&self, v: VarId) -> (f64, f64) {
        (self.lower[v.0], self.upper[v.0])
    }

    pub(crate) fn is_minimize(&self) -> bool {
        self.minimize
    }

    pub(crate) fn integer_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.integer
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| VarId(i))
    }

    /// Current lower bounds per variable.
    pub(crate) fn lower_bounds(&self) -> &[f64] {
        &self.lower
    }

    /// Current upper bounds per variable.
    pub(crate) fn upper_bounds(&self) -> &[f64] {
        &self.upper
    }

    /// Objective coefficients in the model's own direction.
    pub(crate) fn objective_coeffs(&self) -> &[f64] {
        &self.obj
    }

    /// The raw constraint rows (post-presolve when called on a presolved
    /// model).
    pub(crate) fn constraint_rows(&self) -> &[Constraint] {
        &self.constraints
    }

    /// `true` when variable `idx` is a 0/1 integer.
    pub(crate) fn is_binary(&self, idx: usize) -> bool {
        // Exact bound comparison: binaries are constructed with literal
        // 0.0/1.0 bounds, never computed ones. pilfill: allow(float-eq)
        self.integer[idx] && self.lower[idx] == 0.0 && self.upper[idx] == 1.0
    }

    /// Light presolve: empty rows become feasibility checks, singleton
    /// rows become variable bounds. Returns the simplified model, or
    /// `None` when presolve proves infeasibility.
    pub(crate) fn presolved(&self) -> Option<Model> {
        let mut out = self.clone();
        let mut kept = Vec::with_capacity(out.constraints.len());
        for c in out.constraints.drain(..) {
            match c.terms.as_slice() {
                [] => {
                    let ok = match c.sense {
                        Sense::Le => 0.0 <= c.rhs + 1e-12,
                        Sense::Ge => 0.0 >= c.rhs - 1e-12,
                        Sense::Eq => c.rhs.abs() <= 1e-12,
                    };
                    if !ok {
                        return None;
                    }
                }
                // Exact zero test: guards the division below; an epsilon
                // would misroute tiny-coefficient rows. pilfill: allow(float-eq)
                [(var, coeff)] if *coeff != 0.0 => {
                    let bound = c.rhs / coeff;
                    // Sense flips when dividing by a negative coefficient.
                    let (mut lo, mut hi) = (out.lower[*var], out.upper[*var]);
                    match (c.sense, *coeff > 0.0) {
                        (Sense::Le, true) | (Sense::Ge, false) => hi = hi.min(bound),
                        (Sense::Ge, true) | (Sense::Le, false) => lo = lo.max(bound),
                        (Sense::Eq, _) => {
                            lo = lo.max(bound);
                            hi = hi.min(bound);
                        }
                    }
                    if lo > hi + 1e-9 {
                        return None;
                    }
                    out.lower[*var] = lo;
                    out.upper[*var] = hi.max(lo);
                }
                _ => kept.push(c),
            }
        }
        out.constraints = kept;
        Some(out)
    }

    /// Converts to computational standard form: shift each variable by its
    /// lower bound so all variables live in `[0, ub - lb]`, and negate the
    /// objective for maximization.
    pub(crate) fn to_standard(&self) -> (StandardLp, f64) {
        let n = self.num_vars();
        let sign = if self.minimize { 1.0 } else { -1.0 };
        let costs: Vec<f64> = self.obj.iter().map(|&c| sign * c).collect();
        // Constant objective offset from the shift (in minimize sign).
        let offset: f64 = costs.iter().zip(&self.lower).map(|(c, lb)| c * lb).sum();
        let upper: Vec<f64> = self
            .upper
            .iter()
            .zip(&self.lower)
            .map(|(ub, lb)| ub - lb)
            .collect();
        let mut rows = Vec::with_capacity(self.constraints.len());
        let mut eq = Vec::with_capacity(self.constraints.len());
        let mut rhs = Vec::with_capacity(self.constraints.len());
        for c in &self.constraints {
            let mut row = vec![0.0; n];
            let mut shift = 0.0;
            for &(i, coeff) in &c.terms {
                row[i] += coeff;
                shift += coeff * self.lower[i];
            }
            let mut b = c.rhs - shift;
            match c.sense {
                Sense::Le => {
                    eq.push(false);
                }
                Sense::Ge => {
                    // Negate to a <= row.
                    for v in row.iter_mut() {
                        *v = -*v;
                    }
                    b = -b;
                    eq.push(false);
                }
                Sense::Eq => {
                    eq.push(true);
                }
            }
            rows.push(row);
            rhs.push(b);
        }
        (
            StandardLp {
                n_structural: n,
                costs,
                rows,
                eq,
                rhs,
                upper,
            },
            offset,
        )
    }

    /// Solves the continuous (LP) relaxation, ignoring integrality.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Infeasible`], [`SolveError::Unbounded`] or
    /// [`SolveError::IterationLimit`] when no optimal solution exists or the
    /// solver fails to converge.
    pub fn solve_lp(&self) -> Result<Solution, SolveError> {
        match self.backend {
            SolverBackend::Sparse => match self.solve_lp_sparse() {
                // Numerical trouble in the sparse engine: retry on the
                // dense oracle before reporting failure.
                Err(SolveError::IterationLimit) => self.solve_lp_dense(),
                other => other,
            },
            SolverBackend::DenseReference => self.solve_lp_dense(),
        }
    }

    fn solve_lp_sparse(&self) -> Result<Solution, SolveError> {
        let presolved = self.presolved().ok_or(SolveError::Infeasible)?;
        let lp = Rc::new(SparseLp::build(&presolved));
        let (sol, warm) = sparse::solve_sparse(&lp);
        match sol.status {
            LpStatus::Optimal => {
                let sign = if self.minimize { 1.0 } else { -1.0 };
                Ok(Solution {
                    // Sparse solutions are already in model space.
                    objective: sign * sol.objective,
                    values: sol.values,
                    stats: BranchBoundStats {
                        pivots: sol.iterations,
                        refactorizations: warm.as_ref().map_or(0, |s| s.refactor_count()),
                        ..BranchBoundStats::default()
                    },
                })
            }
            LpStatus::Infeasible => Err(SolveError::Infeasible),
            LpStatus::Unbounded => Err(SolveError::Unbounded),
            LpStatus::IterationLimit => Err(SolveError::IterationLimit),
        }
    }

    fn solve_lp_dense(&self) -> Result<Solution, SolveError> {
        let presolved = self.presolved().ok_or(SolveError::Infeasible)?;
        let (std_lp, offset) = presolved.to_standard();
        let sol = simplex::solve_standard(&std_lp);
        match sol.status {
            LpStatus::Optimal => {
                let sign = if self.minimize { 1.0 } else { -1.0 };
                let values: Vec<f64> = sol
                    .values
                    .iter()
                    .zip(&presolved.lower)
                    .map(|(v, lb)| v + lb)
                    .collect();
                Ok(Solution {
                    objective: sign * (sol.objective + offset),
                    values,
                    stats: BranchBoundStats {
                        pivots: sol.iterations,
                        ..BranchBoundStats::default()
                    },
                })
            }
            LpStatus::Infeasible => Err(SolveError::Infeasible),
            LpStatus::Unbounded => Err(SolveError::Unbounded),
            LpStatus::IterationLimit => Err(SolveError::IterationLimit),
        }
    }

    /// Solves the model, branching on integer variables if present.
    ///
    /// # Errors
    ///
    /// See [`Model::solve_lp`]; additionally returns
    /// [`SolveError::NodeLimit`] if branch-and-bound runs out of nodes
    /// without an incumbent.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.solve_with(&MilpOptions::default())
    }

    /// Solves with explicit branch-and-bound options.
    ///
    /// # Errors
    ///
    /// See [`Model::solve`]; additionally returns [`SolveError::Cutoff`]
    /// when [`MilpOptions::cutoff`] is set and no integer solution beats
    /// it.
    pub fn solve_with(&self, options: &MilpOptions) -> Result<Solution, SolveError> {
        if !self.has_integers() {
            return self.solve_lp();
        }
        milp::branch_and_bound(self, options)
    }

    /// Like [`Model::solve_with`], but always reports the branch-and-bound
    /// statistics — including when the result is an error such as
    /// [`SolveError::Cutoff`], where the search ran to completion and the
    /// caller's incumbent simply survived.
    pub fn solve_with_stats(
        &self,
        options: &MilpOptions,
    ) -> (Result<Solution, SolveError>, BranchBoundStats) {
        if !self.has_integers() {
            let result = self.solve_lp();
            let stats = result.as_ref().map(|s| s.stats).unwrap_or_default();
            return (result, stats);
        }
        milp::branch_and_bound_stats(self, options)
    }

    /// Solves with a caller-supplied [`BranchRule`] plugin (overriding
    /// [`MilpOptions::branch_rule`]). The model must contain integer
    /// variables.
    ///
    /// # Errors
    ///
    /// See [`Model::solve_with`].
    pub fn solve_with_rule(
        &self,
        options: &MilpOptions,
        rule: &mut dyn BranchRule,
    ) -> Result<Solution, SolveError> {
        if !self.has_integers() {
            return self.solve_lp();
        }
        milp::branch_and_bound_with(self, options, rule).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp_max_matches_hand_solution() {
        let mut m = Model::new(Objective::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 3.0);
        let y = m.add_var(0.0, f64::INFINITY, 5.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Le, 4.0);
        m.add_constraint(vec![(y, 2.0)], Sense::Le, 12.0);
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let s = m.solve().expect("solvable");
        assert!((s.objective - 36.0).abs() < 1e-6);
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn lp_with_nonzero_lower_bounds() {
        // min x + y, x >= 2, y >= 3, x + y >= 7 -> 7.
        let mut m = Model::new(Objective::Minimize);
        let x = m.add_var(2.0, f64::INFINITY, 1.0);
        let y = m.add_var(3.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 7.0);
        let s = m.solve().expect("solvable");
        assert!((s.objective - 7.0).abs() < 1e-6);
        assert!(s.value(x) >= 2.0 - 1e-9);
        assert!(s.value(y) >= 3.0 - 1e-9);
    }

    #[test]
    fn lp_negative_lower_bounds() {
        // min x with x in [-5, 5] and x >= -3 -> -3.
        let mut m = Model::new(Objective::Minimize);
        let x = m.add_var(-5.0, 5.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, -3.0);
        let s = m.solve().expect("solvable");
        assert!((s.objective + 3.0).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn duplicate_terms_are_summed() {
        let mut m = Model::new(Objective::Maximize);
        let x = m.add_var(0.0, 10.0, 1.0);
        // x + x <= 6 -> x <= 3.
        m.add_constraint(vec![(x, 1.0), (x, 1.0)], Sense::Le, 6.0);
        let s = m.solve().expect("solvable");
        assert!((s.value(x) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_eq_pair() {
        let mut m = Model::new(Objective::Minimize);
        let x = m.add_var(0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Eq, 2.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Eq, 3.0);
        assert!(matches!(m.solve(), Err(SolveError::Infeasible)));
    }

    #[test]
    fn unbounded_reported() {
        let mut m = Model::new(Objective::Maximize);
        let _ = m.add_var(0.0, f64::INFINITY, 1.0);
        assert!(matches!(m.solve(), Err(SolveError::Unbounded)));
    }

    #[test]
    fn pure_integer_knapsack() {
        // max 6a + 5b + 4c, 2a + 3b + c <= 4 over binaries: best is a + c = 10.
        let mut m = Model::new(Objective::Maximize);
        let a = m.add_binary_var(6.0);
        let b = m.add_binary_var(5.0);
        let c = m.add_binary_var(4.0);
        m.add_constraint(vec![(a, 2.0), (b, 3.0), (c, 1.0)], Sense::Le, 4.0);
        let s = m.solve().expect("solvable");
        assert_eq!(s.objective.round() as i64, 10);
        assert_eq!(s.int_value(a), 1);
        assert_eq!(s.int_value(b), 0);
        assert_eq!(s.int_value(c), 1);
    }

    #[test]
    fn integer_rounding_matters() {
        // max y s.t. 2y <= 7 -> LP 3.5, ILP 3.
        let mut m = Model::new(Objective::Maximize);
        let y = m.add_integer_var(0.0, 100.0, 1.0);
        m.add_constraint(vec![(y, 2.0)], Sense::Le, 7.0);
        let lp = m.solve_lp().expect("lp");
        assert!((lp.objective - 3.5).abs() < 1e-6);
        let ip = m.solve().expect("ip");
        assert_eq!(ip.objective.round() as i64, 3);
    }

    #[test]
    fn mdfc_shaped_budget_equality() {
        // min 3a + 1b + 2c, a + b + c = 4, each in [0, 2] integer.
        let mut m = Model::new(Objective::Minimize);
        let a = m.add_integer_var(0.0, 2.0, 3.0);
        let b = m.add_integer_var(0.0, 2.0, 1.0);
        let c = m.add_integer_var(0.0, 2.0, 2.0);
        m.add_constraint(vec![(a, 1.0), (b, 1.0), (c, 1.0)], Sense::Eq, 4.0);
        let s = m.solve().expect("solvable");
        assert_eq!(s.objective.round() as i64, 6);
        assert_eq!(s.int_value(b), 2);
        assert_eq!(s.int_value(c), 2);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max x + 10z, x <= 2.5 continuous, z binary, x + 4z <= 5.
        // z=1 -> x <= 1 -> obj 11; z=0 -> x = 2.5 -> 2.5.
        let mut m = Model::new(Objective::Maximize);
        let x = m.add_var(0.0, 2.5, 1.0);
        let z = m.add_binary_var(10.0);
        m.add_constraint(vec![(x, 1.0), (z, 4.0)], Sense::Le, 5.0);
        let s = m.solve().expect("solvable");
        assert!((s.objective - 11.0).abs() < 1e-6);
        assert_eq!(s.int_value(z), 1);
    }

    #[test]
    fn integer_infeasible() {
        // 2x = 3 with integer x.
        let mut m = Model::new(Objective::Minimize);
        let x = m.add_integer_var(0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, 2.0)], Sense::Eq, 3.0);
        assert!(matches!(m.solve(), Err(SolveError::Infeasible)));
    }

    #[test]
    fn empty_model_solves_trivially() {
        let m = Model::new(Objective::Minimize);
        let s = m.solve().expect("trivial");
        assert_eq!(s.objective, 0.0);
        assert!(s.values.is_empty());
    }

    #[test]
    fn presolve_tightens_singleton_rows() {
        // 2x <= 10 (x <= 5) and -x <= -2 (x >= 2); min x -> 2.
        let mut m = Model::new(Objective::Minimize);
        let x = m.add_var(0.0, 100.0, 1.0);
        m.add_constraint(vec![(x, 2.0)], Sense::Le, 10.0);
        m.add_constraint(vec![(x, -1.0)], Sense::Le, -2.0);
        let s = m.solve().expect("solvable");
        assert!((s.objective - 2.0).abs() < 1e-9);
        // And max x -> 5 through the same rows.
        let mut m = Model::new(Objective::Maximize);
        let x = m.add_var(0.0, 100.0, 1.0);
        m.add_constraint(vec![(x, 2.0)], Sense::Le, 10.0);
        m.add_constraint(vec![(x, -1.0)], Sense::Le, -2.0);
        let s = m.solve().expect("solvable");
        assert!((s.objective - 5.0).abs() < 1e-9);
    }

    #[test]
    fn presolve_detects_empty_row_infeasibility() {
        let mut m = Model::new(Objective::Minimize);
        let _x = m.add_var(0.0, 1.0, 1.0);
        // 0 >= 3 encoded as an empty Ge row.
        m.add_constraint(Vec::<(VarId, f64)>::new(), Sense::Ge, 3.0);
        assert!(matches!(m.solve(), Err(SolveError::Infeasible)));
        // A vacuous empty row is dropped without harm.
        let mut m = Model::new(Objective::Minimize);
        let x = m.add_var(0.0, 1.0, 1.0);
        m.add_constraint(Vec::<(VarId, f64)>::new(), Sense::Le, 3.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 1.0);
        assert!((m.solve().expect("solvable").objective - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn inverted_bounds_panic() {
        let mut m = Model::new(Objective::Minimize);
        let _ = m.add_var(2.0, 1.0, 0.0);
    }
}
