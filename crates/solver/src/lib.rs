//! # pilfill-solver
//!
//! A self-contained linear-programming and mixed-integer-programming solver,
//! standing in for the CPLEX 7.0 installation used by the original PIL-Fill
//! experiments.
//!
//! The solver is sized for the problems PIL-Fill actually produces — per-tile
//! MDFC instances with tens of general-integer variables (ILP-I) or a few
//! hundred binaries (ILP-II), and the per-layout density-budget LP:
//!
//! - [`Model`]: a builder API for variables (with bounds and integrality),
//!   linear constraints and a linear objective;
//! - a *sparse revised simplex* with an LU-factored basis, native bounded
//!   variables and two-phase feasibility as the default LP engine
//!   ([`Model::solve_lp`]), with the original dense bounded-variable Big-M
//!   tableau retained as a cross-checking oracle
//!   ([`SolverBackend::DenseReference`]);
//! - a best-incumbent depth-first branch-and-bound layer for integer
//!   variables ([`Model::solve`]) with pluggable branching rules
//!   ([`BranchRule`]) and root knapsack cover cuts (cut-and-branch).
//!
//! # Examples
//!
//! ```
//! use pilfill_solver::{Model, Objective, Sense};
//!
//! // max x + 2y  s.t.  x + y <= 4, y <= 3, x,y >= 0 integer
//! let mut m = Model::new(Objective::Maximize);
//! let x = m.add_integer_var(0.0, f64::INFINITY, 1.0);
//! let y = m.add_integer_var(0.0, 3.0, 2.0);
//! m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 4.0);
//! let sol = m.solve()?;
//! assert_eq!(sol.objective.round(), 7.0); // x=1, y=3
//! # Ok::<(), pilfill_solver::SolveError>(())
//! ```

mod branch;
mod cuts;
mod lu;
mod milp;
mod model;
mod simplex;
mod sparse;

pub use branch::{
    BranchCandidate, BranchDir, BranchRule, BranchRuleKind, MostFractional, PseudoCost,
};
pub use milp::{BranchBoundStats, MilpOptions};
pub use model::{Model, Objective, Sense, Solution, SolveError, SolverBackend, VarId};
pub use simplex::LpStatus;
