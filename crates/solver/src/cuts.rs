//! Knapsack cover cut separation for the branch-and-bound root.
//!
//! A row `sum(a_j x_j) <= b` over binaries with `a_j > 0` is a knapsack;
//! a *cover* is a subset `C` with `sum_{C} a_j > b`, which forces
//! `sum_{C} x_j <= |C| - 1` on every integer point. Equality rows imply
//! their `<=` direction, so the ILP-II budget row (`sum n·y_n = budget`
//! from the PR 4 re-encoding) and the one-hot net-capacitance rows are
//! both eligible. Separation is the standard greedy: sort by fractional
//! value descending, accumulate until the capacity is exceeded, minimize
//! the cover, and keep it only when the LP point actually violates it.
//!
//! Rows whose coefficients are all (nearly) equal are skipped: their
//! covers reduce to cardinality bounds the LP relaxation already
//! satisfies, so separation can never find a violation worth a row —
//! this covers the unit-coefficient convexity rows that dominate ILP-II
//! models.

use crate::model::{Model, VarId};
use crate::Sense;

/// Minimum violation of the LP point before a cover is worth adding.
const MIN_VIOLATION: f64 = 1e-4;

/// A cover inequality `sum_{v in vars} x_v <= rhs`.
#[derive(Debug, Clone)]
pub(crate) struct CoverCut {
    /// Member binaries of the (minimal) cover.
    pub(crate) vars: Vec<VarId>,
    /// `|cover| - 1`.
    pub(crate) rhs: f64,
}

/// Separates violated cover cuts at the LP point `x`, at most `max_cuts`.
pub(crate) fn separate_cover_cuts(model: &Model, x: &[f64], max_cuts: usize) -> Vec<CoverCut> {
    let mut cuts = Vec::new();
    for c in model.constraint_rows() {
        if cuts.len() >= max_cuts {
            break;
        }
        if c.sense == Sense::Ge || c.rhs <= 0.0 {
            continue;
        }
        // Knapsack shape: every term a positive coefficient on a binary.
        let mut min_a = f64::INFINITY;
        let mut max_a = 0.0f64;
        let mut total = 0.0f64;
        let knapsack = c.terms.iter().all(|&(j, a)| {
            min_a = min_a.min(a);
            max_a = max_a.max(a);
            total += a;
            a > 1e-12 && model.is_binary(j)
        });
        if !knapsack || c.terms.len() < 2 || total <= c.rhs + 1e-9 {
            continue;
        }
        // Near-uniform coefficients: covers degenerate to cardinality
        // bounds (never violated by the relaxation); skip cheaply.
        if max_a - min_a <= 1e-9 * max_a.max(1.0) {
            continue;
        }
        if let Some(cut) = separate_row(&c.terms, c.rhs, x) {
            cuts.push(cut);
        }
    }
    cuts
}

/// Greedy cover on one knapsack row; returns a violated minimal cover.
fn separate_row(terms: &[(usize, f64)], b: f64, x: &[f64]) -> Option<CoverCut> {
    // Candidates sorted by fractional value descending (tie: index) —
    // maximizes the left-hand side of the prospective cover inequality.
    let mut order: Vec<usize> = (0..terms.len()).collect();
    order.sort_unstable_by(|&p, &q| {
        x[terms[q].0]
            .total_cmp(&x[terms[p].0])
            .then(terms[p].0.cmp(&terms[q].0))
    });
    let mut cover: Vec<usize> = Vec::new();
    let mut weight = 0.0f64;
    for &k in &order {
        if weight > b + 1e-9 {
            break;
        }
        // Items at (near) zero cannot contribute violation.
        if x[terms[k].0] <= 1e-9 {
            break;
        }
        cover.push(k);
        weight += terms[k].1;
    }
    if weight <= b + 1e-9 {
        return None;
    }
    // Minimalize from the least-valuable end: drop members whose removal
    // keeps the set a cover.
    let mut keep = vec![true; cover.len()];
    for pos in (0..cover.len()).rev() {
        let a = terms[cover[pos]].1;
        if weight - a > b + 1e-9 {
            keep[pos] = false;
            weight -= a;
        }
    }
    let members: Vec<usize> = cover
        .into_iter()
        .zip(keep)
        .filter(|&(_, k)| k)
        .map(|(t, _)| t)
        .collect();
    let rhs = members.len().saturating_sub(1) as f64;
    let lhs: f64 = members.iter().map(|&k| x[terms[k].0]).sum();
    if lhs <= rhs + MIN_VIOLATION {
        return None;
    }
    Some(CoverCut {
        vars: members.iter().map(|&k| VarId(terms[k].0)).collect(),
        rhs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, Objective};

    /// 3 binaries, weights 3/3/2, capacity 4; LP point (1, 1, 0) is cut
    /// by the cover {0, 1}: x0 + x1 <= 1.
    #[test]
    fn violated_cover_found() {
        let mut m = Model::new(Objective::Maximize);
        let a = m.add_binary_var(1.0);
        let b = m.add_binary_var(1.0);
        let c = m.add_binary_var(1.0);
        m.add_constraint(vec![(a, 3.0), (b, 3.0), (c, 2.0)], Sense::Le, 4.0);
        let x = vec![1.0, 1.0, 0.0];
        let cuts = separate_cover_cuts(&m, &x, 8);
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].rhs, 1.0);
        assert_eq!(cuts[0].vars.len(), 2);
    }

    #[test]
    fn satisfied_point_yields_no_cut() {
        let mut m = Model::new(Objective::Maximize);
        let a = m.add_binary_var(1.0);
        let b = m.add_binary_var(1.0);
        let c = m.add_binary_var(1.0);
        m.add_constraint(vec![(a, 3.0), (b, 3.0), (c, 2.0)], Sense::Le, 4.0);
        let x = vec![0.5, 0.5, 0.5];
        assert!(separate_cover_cuts(&m, &x, 8).is_empty());
    }

    #[test]
    fn unit_coefficient_rows_skipped() {
        // Convexity-style row: covers are cardinality bounds, never
        // violated by an LP-feasible point — the separator must not even
        // try.
        let mut m = Model::new(Objective::Maximize);
        let vars: Vec<_> = (0..4).map(|_| m.add_binary_var(1.0)).collect();
        m.add_constraint(vars.iter().map(|&v| (v, 1.0)), Sense::Eq, 1.0);
        let x = vec![0.25; 4];
        assert!(separate_cover_cuts(&m, &x, 8).is_empty());
    }

    #[test]
    fn general_integer_rows_skipped() {
        let mut m = Model::new(Objective::Maximize);
        let a = m.add_integer_var(0.0, 3.0, 1.0);
        let b = m.add_binary_var(1.0);
        m.add_constraint(vec![(a, 3.0), (b, 2.0)], Sense::Le, 4.0);
        let x = vec![1.0, 0.9];
        assert!(separate_cover_cuts(&m, &x, 8).is_empty());
    }

    #[test]
    fn equality_budget_row_is_eligible() {
        // ILP-II budget shape: sum n*y_n = b with distinct coefficients.
        let mut m = Model::new(Objective::Minimize);
        let y1 = m.add_binary_var(1.0);
        let y2 = m.add_binary_var(1.0);
        let y3 = m.add_binary_var(1.0);
        m.add_constraint(vec![(y1, 1.0), (y2, 2.0), (y3, 3.0)], Sense::Eq, 3.0);
        // Point (0.8, 0.9, 0.2): cover {y2, y3} has weight 5 > 3 and
        // lhs 1.1 > 1.
        let x = vec![0.8, 0.9, 0.2];
        let cuts = separate_cover_cuts(&m, &x, 8);
        assert!(!cuts.is_empty(), "equality row must separate");
    }

    #[test]
    fn cut_never_removes_integer_points() {
        // Exhaustive check on a small knapsack: every integer-feasible
        // point satisfies every emitted cover.
        let mut m = Model::new(Objective::Maximize);
        let vars: Vec<_> = (0..4).map(|_| m.add_binary_var(1.0)).collect();
        let w = [5.0, 4.0, 3.0, 2.0];
        m.add_constraint(vars.iter().zip(w).map(|(&v, c)| (v, c)), Sense::Le, 8.0);
        // A deliberately fractional point.
        let x = vec![0.9, 0.9, 0.4, 0.1];
        for cut in separate_cover_cuts(&m, &x, 8) {
            for bits in 0..16u32 {
                let pt: Vec<f64> = (0..4).map(|i| f64::from((bits >> i) & 1)).collect();
                let load: f64 = pt.iter().zip(w).map(|(v, c)| v * c).sum();
                if load <= 8.0 + 1e-9 {
                    let lhs: f64 = cut.vars.iter().map(|v| pt[v.index()]).sum();
                    assert!(
                        lhs <= cut.rhs + 1e-9,
                        "cut removed feasible point {pt:?} (lhs {lhs} rhs {})",
                        cut.rhs
                    );
                }
            }
        }
    }
}
