//! Dense bounded-variable primal simplex with Big-M feasibility.
//!
//! Solves `min c'x  s.t.  Ax = b, 0 <= x <= u` where some components of `u`
//! may be infinite. Inequalities and general bounds are normalized into this
//! form by [`crate::model::Model`]. The implementation keeps the full
//! tableau `[B^-1 A | B^-1 b]` and updates it by pivoting; nonbasic
//! variables may rest at their lower *or* upper bound (the standard
//! upper-bounded simplex extension), which keeps the tableau small for
//! models with many box-constrained variables (e.g. ILP-II binaries).

/// Feasibility/boundedness status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below (for minimization).
    Unbounded,
    /// The iteration limit was exceeded (numerical trouble).
    IterationLimit,
}

/// A linear program in computational standard form.
#[derive(Debug, Clone)]
pub struct StandardLp {
    /// Number of structural variables (excluding slacks/artificials).
    pub n_structural: usize,
    /// Objective coefficients (minimization), length `n_structural`.
    pub costs: Vec<f64>,
    /// Dense constraint rows over structural variables.
    pub rows: Vec<Vec<f64>>,
    /// Row senses normalized to `<=` (false) or `=` (true); `>=` rows are
    /// pre-negated by the caller.
    pub eq: Vec<bool>,
    /// Right-hand sides, one per row.
    pub rhs: Vec<f64>,
    /// Upper bounds per structural variable (may be `f64::INFINITY`).
    pub upper: Vec<f64>,
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Solve status; values/objective are meaningful only for
    /// [`LpStatus::Optimal`].
    pub status: LpStatus,
    /// Values of the structural variables.
    pub values: Vec<f64>,
    /// Objective value (minimization sense).
    pub objective: f64,
    /// Simplex pivots performed.
    pub iterations: usize,
}

const EPS: f64 = 1e-9;
/// Pivot elements smaller than this are rejected for stability.
const PIVOT_EPS: f64 = 1e-7;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NonbasicAt {
    Lower,
    Upper,
}

/// Solves the standard-form LP with the bounded-variable Big-M simplex.
///
/// All variables have implicit lower bound zero. Slack variables are added
/// for `<=` rows; artificial variables (with Big-M cost) are added for `=`
/// rows and for `<=` rows with negative right-hand side.
pub fn solve_standard(lp: &StandardLp) -> LpSolution {
    Tableau::build(lp).solve(lp)
}

struct Tableau {
    /// rows x cols coefficient matrix (structural + slack + artificial).
    a: Vec<Vec<f64>>,
    /// Current right-hand side (basic variable values given nonbasic rests).
    b: Vec<f64>,
    /// Cost per column (Big-M applied to artificials).
    cost: Vec<f64>,
    /// Upper bound per column.
    upper: Vec<f64>,
    /// Basic variable (column index) per row.
    basis: Vec<usize>,
    /// Rest position of each nonbasic column.
    at: Vec<NonbasicAt>,
    /// Columns that are artificial (for the feasibility check).
    artificial_start: usize,
    n_cols: usize,
    n_rows: usize,
    big_m: f64,
}

impl Tableau {
    fn build(lp: &StandardLp) -> Self {
        let n_rows = lp.rows.len();
        let n_struct = lp.n_structural;

        // Normalize rows so rhs >= 0 (flip row sign if needed); `<=` rows
        // that get flipped become `>=`, which then need surplus+artificial.
        // We encode: for each row, slack coefficient (+1 for <=, -1 for >=,
        // 0 for =) and whether an artificial is required.
        let mut rows = lp.rows.clone();
        let mut rhs = lp.rhs.clone();
        let mut slack_sign = vec![0.0f64; n_rows];
        let mut needs_artificial = vec![false; n_rows];
        for i in 0..n_rows {
            let mut ge = false;
            if rhs[i] < 0.0 {
                for v in rows[i].iter_mut() {
                    *v = -*v;
                }
                rhs[i] = -rhs[i];
                if !lp.eq[i] {
                    ge = true; // flipped <= becomes >=
                }
            }
            if lp.eq[i] {
                slack_sign[i] = 0.0;
                needs_artificial[i] = true;
            } else if ge {
                slack_sign[i] = -1.0;
                needs_artificial[i] = true;
            } else {
                slack_sign[i] = 1.0;
                needs_artificial[i] = false;
            }
        }

        // Row equilibration: scale each row so its largest coefficient has
        // magnitude 1. Keeps Big-M proportionate when callers pass rows
        // with wildly different magnitudes (e.g. capacitances vs counts).
        for i in 0..n_rows {
            let max_abs = rows[i]
                .iter()
                .fold(0.0f64, |m, &v| m.max(v.abs()));
            if max_abs > 0.0 && (max_abs > 1e3 || max_abs < 1e-3) {
                let inv = 1.0 / max_abs;
                for v in rows[i].iter_mut() {
                    *v *= inv;
                }
                rhs[i] *= inv;
            }
        }

        let n_slack = slack_sign.iter().filter(|&&s| s != 0.0).count();
        let n_art = needs_artificial.iter().filter(|&&x| x).count();
        let n_cols = n_struct + n_slack + n_art;

        let max_abs_cost = lp
            .costs
            .iter()
            .fold(1.0f64, |m, &c| m.max(c.abs()));
        let max_abs_rhs = rhs.iter().fold(1.0f64, |m, &r| m.max(r.abs()));
        let big_m = 1e7 * max_abs_cost.max(max_abs_rhs);

        let mut a = vec![vec![0.0; n_cols]; n_rows];
        let mut cost = vec![0.0; n_cols];
        let mut upper = vec![f64::INFINITY; n_cols];
        cost[..n_struct].copy_from_slice(&lp.costs);
        upper[..n_struct].copy_from_slice(&lp.upper);
        for (i, row) in rows.iter().enumerate() {
            a[i][..n_struct].copy_from_slice(row);
        }

        let mut col = n_struct;
        let mut slack_col = vec![usize::MAX; n_rows];
        for i in 0..n_rows {
            if slack_sign[i] != 0.0 {
                a[i][col] = slack_sign[i];
                slack_col[i] = col;
                col += 1;
            }
        }
        let artificial_start = col;
        let mut basis = vec![usize::MAX; n_rows];
        for i in 0..n_rows {
            if needs_artificial[i] {
                a[i][col] = 1.0;
                cost[col] = big_m;
                basis[i] = col;
                col += 1;
            } else {
                basis[i] = slack_col[i];
            }
        }
        debug_assert_eq!(col, n_cols);

        Self {
            a,
            b: rhs,
            cost,
            upper,
            basis,
            at: vec![NonbasicAt::Lower; n_cols],
            artificial_start,
            n_cols,
            n_rows,
            big_m,
        }
    }

    /// Value of column `j` given its rest position (0, upper, or basic).
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.at[j] {
            NonbasicAt::Lower => 0.0,
            NonbasicAt::Upper => self.upper[j],
        }
    }

    fn is_basic(&self, j: usize) -> bool {
        self.basis.contains(&j)
    }

    fn solve(mut self, lp: &StandardLp) -> LpSolution {
        // Adjust b for nonbasic variables resting at finite upper bounds:
        // initially all rest at lower (=0), so nothing to do. The invariant
        // maintained throughout: self.b[i] = value of basic var of row i.
        let iter_limit = 200 * (self.n_rows + self.n_cols).max(50);
        let mut iterations = 0usize;
        let mut degenerate_streak = 0usize;

        loop {
            if iterations > iter_limit {
                return LpSolution {
                    status: LpStatus::IterationLimit,
                    values: vec![0.0; lp.n_structural],
                    objective: f64::NAN,
                    iterations,
                };
            }

            // Reduced costs: d_j = c_j - c_B' B^-1 A_j. Since we keep the
            // tableau in updated form (a = B^-1 A), d_j = c_j - sum_i
            // c_basis[i] * a[i][j].
            let mut entering: Option<(usize, f64)> = None;
            let use_bland = degenerate_streak > 2 * self.n_rows.max(10);
            for j in 0..self.n_cols {
                if self.is_basic(j) {
                    continue;
                }
                let mut d = self.cost[j];
                for i in 0..self.n_rows {
                    let cb = self.cost[self.basis[i]];
                    if cb != 0.0 {
                        d -= cb * self.a[i][j];
                    }
                }
                // Improving direction: increase var at lower bound when
                // d < 0; decrease var at upper bound when d > 0.
                let improving = match self.at[j] {
                    NonbasicAt::Lower => d < -EPS,
                    NonbasicAt::Upper => d > EPS,
                };
                if improving {
                    let score = d.abs();
                    if use_bland {
                        entering = Some((j, d));
                        break;
                    }
                    if entering.map_or(true, |(_, best)| score > best.abs()) {
                        entering = Some((j, d));
                    }
                }
            }

            let Some((q, dq)) = entering else {
                return self.extract(lp, iterations);
            };

            // Direction: +1 if q increases from lower, -1 if decreases from
            // upper.
            let dir = if self.at[q] == NonbasicAt::Lower { 1.0 } else { -1.0 };
            debug_assert!(dq * dir < 0.0);

            // Ratio test with bounds. t = amount of movement of q (>= 0).
            // Basic variable i changes by -dir * a[i][q] * t; it must stay
            // within [0, upper[basis[i]]]. q itself must stay within
            // [0, upper[q]].
            let mut t_max = if self.upper[q].is_finite() {
                self.upper[q]
            } else {
                f64::INFINITY
            };
            // Leaving candidate: (row, basic var goes to which bound).
            let mut leaving: Option<(usize, NonbasicAt)> = None;
            for i in 0..self.n_rows {
                let alpha = dir * self.a[i][q];
                let xb = self.b[i];
                if alpha > PIVOT_EPS {
                    // Basic decreases towards 0.
                    let t = xb / alpha;
                    if t < t_max - EPS || (t < t_max + EPS && leaving.is_none()) {
                        if t < t_max {
                            t_max = t.max(0.0);
                            leaving = Some((i, NonbasicAt::Lower));
                        }
                    }
                } else if alpha < -PIVOT_EPS {
                    let ub = self.upper[self.basis[i]];
                    if ub.is_finite() {
                        // Basic increases towards its upper bound.
                        let t = (ub - xb) / (-alpha);
                        if t < t_max {
                            t_max = t.max(0.0);
                            leaving = Some((i, NonbasicAt::Upper));
                        }
                    }
                }
            }

            if t_max.is_infinite() {
                return LpSolution {
                    status: LpStatus::Unbounded,
                    values: vec![0.0; lp.n_structural],
                    objective: f64::NEG_INFINITY,
                    iterations,
                };
            }

            degenerate_streak = if t_max < EPS { degenerate_streak + 1 } else { 0 };

            match leaving {
                None => {
                    // q moves all the way to its other bound; basis is
                    // unchanged ("bound flip").
                    for i in 0..self.n_rows {
                        self.b[i] -= dir * self.a[i][q] * t_max;
                    }
                    self.at[q] = match self.at[q] {
                        NonbasicAt::Lower => NonbasicAt::Upper,
                        NonbasicAt::Upper => NonbasicAt::Lower,
                    };
                }
                Some((r, leave_to)) => {
                    self.pivot(r, q, dir, t_max, leave_to);
                }
            }
            iterations += 1;
        }
    }

    /// Pivot: q enters the basis at row r; the old basic leaves to
    /// `leave_to`.
    fn pivot(&mut self, r: usize, q: usize, dir: f64, t: f64, leave_to: NonbasicAt) {
        let leaving_var = self.basis[r];

        // Update basic values for the movement t of q.
        for i in 0..self.n_rows {
            self.b[i] -= dir * self.a[i][q] * t;
        }
        // New basic value of q = rest value + dir * t.
        let q_new = self.nonbasic_value(q) + dir * t;

        // Normalize pivot row.
        let piv = self.a[r][q];
        debug_assert!(piv.abs() > PIVOT_EPS * 0.5, "tiny pivot {piv}");
        let inv = 1.0 / piv;
        for v in self.a[r].iter_mut() {
            *v *= inv;
        }
        // b[r] currently holds the (updated) value of the *leaving*
        // variable; replace row content for q's row, eliminating q from
        // other rows. For the b vector we maintain actual basic values, so
        // set row r to q's value first, then eliminate.
        self.b[r] = q_new;

        for i in 0..self.n_rows {
            if i == r {
                continue;
            }
            let factor = self.a[i][q];
            if factor != 0.0 {
                let (head, tail) = if i < r {
                    let (h, t2) = self.a.split_at_mut(r);
                    (&mut h[i], &t2[0])
                } else {
                    let (h, t2) = self.a.split_at_mut(i);
                    (&mut t2[0], &h[r])
                };
                for (x, y) in head.iter_mut().zip(tail.iter()) {
                    *x -= factor * y;
                }
                // Note: b[i] was already updated by the movement step; the
                // elimination does not change basic values, only the
                // representation.
            }
        }

        self.basis[r] = q;
        self.at[leaving_var] = leave_to;
        // Guard: a nonbasic "at upper" with infinite bound is invalid; can
        // only happen with numerical trouble.
        if leave_to == NonbasicAt::Upper && !self.upper[leaving_var].is_finite() {
            self.at[leaving_var] = NonbasicAt::Lower;
        }
    }

    fn extract(&self, lp: &StandardLp, iterations: usize) -> LpSolution {
        let mut values = vec![0.0; self.n_cols];
        for j in 0..self.n_cols {
            if !self.is_basic(j) {
                values[j] = self.nonbasic_value(j);
            }
        }
        for (i, &bj) in self.basis.iter().enumerate() {
            values[bj] = self.b[i];
        }
        // Check artificials: any residual means infeasible.
        let feas_tol = 1e-6 * (1.0 + self.big_m / 1e7);
        for j in self.artificial_start..self.n_cols {
            if values[j].abs() > feas_tol {
                return LpSolution {
                    status: LpStatus::Infeasible,
                    values: vec![0.0; lp.n_structural],
                    objective: f64::NAN,
                    iterations,
                };
            }
        }
        let structural: Vec<f64> = values[..lp.n_structural]
            .iter()
            .map(|&v| if v.abs() < 1e-11 { 0.0 } else { v })
            .collect();
        let objective = structural
            .iter()
            .zip(&lp.costs)
            .map(|(v, c)| v * c)
            .sum();
        LpSolution {
            status: LpStatus::Optimal,
            values: structural,
            objective,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(
        costs: Vec<f64>,
        rows: Vec<(Vec<f64>, bool, f64)>,
        upper: Vec<f64>,
    ) -> StandardLp {
        let n = costs.len();
        StandardLp {
            n_structural: n,
            costs,
            eq: rows.iter().map(|r| r.1).collect(),
            rhs: rows.iter().map(|r| r.2).collect(),
            rows: rows.into_iter().map(|r| r.0).collect(),
            upper,
        }
    }

    #[test]
    fn simple_two_var_max() {
        // min -x - 2y s.t. x + y <= 4, y <= 3 (via bound). Optimum (1, 3).
        let p = lp(
            vec![-1.0, -2.0],
            vec![(vec![1.0, 1.0], false, 4.0)],
            vec![f64::INFINITY, 3.0],
        );
        let s = solve_standard(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - (-7.0)).abs() < 1e-6, "obj {}", s.objective);
        assert!((s.values[0] - 1.0).abs() < 1e-6);
        assert!((s.values[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraint() {
        // min x + y s.t. x + 2y = 6, 0<=x, 0<=y<=2 -> y=2, x=2, obj 4.
        let p = lp(
            vec![1.0, 1.0],
            vec![(vec![1.0, 2.0], true, 6.0)],
            vec![f64::INFINITY, 2.0],
        );
        let s = solve_standard(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 4.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 3 (encoded as -x <= -3).
        let p = lp(
            vec![1.0],
            vec![
                (vec![1.0], false, 1.0),
                (vec![-1.0], false, -3.0),
            ],
            vec![f64::INFINITY],
        );
        let s = solve_standard(&p);
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x, x >= 0 unbounded.
        let p = lp(vec![-1.0], vec![], vec![f64::INFINITY]);
        let s = solve_standard(&p);
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn bounded_by_upper_only() {
        // min -x - y with x<=5, y<=7 and no rows: optimum at (5,7).
        let p = lp(vec![-1.0, -1.0], vec![], vec![5.0, 7.0]);
        let s = solve_standard(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 12.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple constraints active at the optimum.
        let p = lp(
            vec![-1.0, -1.0],
            vec![
                (vec![1.0, 0.0], false, 2.0),
                (vec![1.0, 0.0], false, 2.0),
                (vec![0.0, 1.0], false, 2.0),
                (vec![1.0, 1.0], false, 4.0),
            ],
            vec![f64::INFINITY, f64::INFINITY],
        );
        let s = solve_standard(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 4.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_le_row_feasible() {
        // -x <= -2 means x >= 2; min x -> 2.
        let p = lp(
            vec![1.0],
            vec![(vec![-1.0], false, -2.0)],
            vec![f64::INFINITY],
        );
        let s = solve_standard(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn classic_product_mix() {
        // min -3x - 5y; x <= 4; 2y <= 12; 3x + 2y <= 18 -> (2, 6), obj -36.
        let p = lp(
            vec![-3.0, -5.0],
            vec![
                (vec![1.0, 0.0], false, 4.0),
                (vec![0.0, 2.0], false, 12.0),
                (vec![3.0, 2.0], false, 18.0),
            ],
            vec![f64::INFINITY, f64::INFINITY],
        );
        let s = solve_standard(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 36.0).abs() < 1e-6);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_with_upper_bounds_budget() {
        // The MDFC shape: min c'm s.t. sum m = F, 0 <= m_k <= C_k.
        // c = [3, 1, 2], C = [2, 2, 2], F = 4 -> m = [0, 2, 2], obj 6.
        let p = lp(
            vec![3.0, 1.0, 2.0],
            vec![(vec![1.0, 1.0, 1.0], true, 4.0)],
            vec![2.0, 2.0, 2.0],
        );
        let s = solve_standard(&p);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 6.0).abs() < 1e-6, "obj {}", s.objective);
        assert!((s.values[0]).abs() < 1e-6);
        assert!((s.values[1] - 2.0).abs() < 1e-6);
        assert!((s.values[2] - 2.0).abs() < 1e-6);
    }
}
