//! Sparse revised simplex with bounded variables and an LU-factored basis.
//!
//! This is the default LP engine. Compared to the dense tableau oracle in
//! [`crate::simplex::dense_reference`]:
//!
//! - **Columns are sparse** `(row, value)` vectors in CSC layout; the
//!   work per iteration scales with the nonzeros touched, not with
//!   `rows × cols`.
//! - **The basis is an LU factorization** ([`crate::lu::Lu`]): FTRAN/BTRAN
//!   solves replace the explicitly maintained `B^-1 A`, and basis
//!   exchanges append product-form update etas with a periodic
//!   refactorization cadence.
//! - **Bounds are native**: every variable (structural and logical) lives
//!   in `[lo, hi]` and nonbasic variables rest at either bound, so slack
//!   upper bounds never become rows and branch-and-bound tightenings stay
//!   in variable space (no lower-bound shifting as in the dense path).
//! - **Feasibility is two-phase**: rows whose initial logical value
//!   violates its bounds get a unit artificial, phase 1 minimizes the sum
//!   of artificials, and phase 2 runs with the artificials fixed to zero —
//!   no Big-M cost inflation, so tolerances stay at their natural scale.
//!
//! Pricing exploits a property the fill ILPs lean on heavily: a *bound
//! flip* (a nonbasic variable moving to its opposite bound) does not
//! change the basis, hence the duals and every reduced cost stay valid.
//! Each full pricing pass builds a candidate list sorted by `|d|`, and the
//! list is consumed flip after flip without re-pricing; only a true basis
//! exchange invalidates it. On the ILP-II knapsack relaxation this turns
//! hundreds of `O(n)` pricing scans into a handful.
//!
// Exact `== 0.0` / `!= 0.0` comparisons in this file are sparsity/no-op
// guards: skipping arithmetic on an exactly-zero entry never changes a
// result. pilfill: allow-file(float-eq)

use std::rc::Rc;

use crate::lu::{Lu, LuError, REFACTOR_INTERVAL};
use crate::model::Model;
use crate::simplex::{LpSolution, LpStatus};
use crate::Sense;

const EPS: f64 = 1e-9;
/// Pivot elements smaller than this are rejected for stability.
const PIVOT_EPS: f64 = 1e-7;

/// A linear program in sparse computational form:
/// `min c'x  s.t.  Ax + l = b,  lo <= (x, l) <= hi`,
/// where `l` is one logical (slack) variable per row whose bounds encode
/// the row sense: `<=` gives `l in [0, inf)`, `>=` gives `l in (-inf, 0]`,
/// `=` gives `l = 0`.
#[derive(Debug, Clone)]
pub(crate) struct SparseLp {
    /// Number of structural variables.
    pub(crate) n: usize,
    /// Number of rows (== number of logicals).
    pub(crate) m: usize,
    col_ptr: Vec<usize>,
    col_rows: Vec<usize>,
    col_vals: Vec<f64>,
    /// Structural costs, minimization sense.
    pub(crate) cost: Vec<f64>,
    /// Right-hand sides (after row equilibration).
    rhs: Vec<f64>,
    /// Bounds for all `n + m` columns: structural first, then logicals.
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Tolerance scale: `1 + max|rhs|`.
    scale: f64,
}

impl SparseLp {
    /// Builds the sparse form from a (presolved) [`Model`]. Maximization
    /// is negated into minimization; rows whose largest structural
    /// coefficient is far from 1 are equilibrated.
    pub(crate) fn build(model: &Model) -> Self {
        let n = model.num_vars();
        let cons = model.constraint_rows();
        let m = cons.len();
        let sign = if model.is_minimize() { 1.0 } else { -1.0 };
        let cost: Vec<f64> = model.objective_coeffs().iter().map(|&c| sign * c).collect();

        // Per-row equilibration factor.
        let mut row_scale = vec![1.0f64; m];
        for (i, c) in cons.iter().enumerate() {
            let max_abs = c.terms.iter().fold(0.0f64, |a, &(_, v)| a.max(v.abs()));
            if max_abs > 0.0 && !(1e-3..=1e3).contains(&max_abs) {
                row_scale[i] = 1.0 / max_abs;
            }
        }

        // CSC assembly: count, prefix, fill. Explicit zero coefficients
        // (the fill ILPs emit them for n = 0 budget terms) are dropped so
        // column supports reflect true sparsity — the crash basis below
        // depends on singleton detection seeing through them.
        let mut counts = vec![0usize; n + 1];
        for c in cons {
            for &(j, v) in &c.terms {
                if v != 0.0 {
                    counts[j + 1] += 1;
                }
            }
        }
        for j in 0..n {
            counts[j + 1] += counts[j];
        }
        let nnz = counts[n];
        let mut col_rows = vec![0usize; nnz];
        let mut col_vals = vec![0.0f64; nnz];
        let mut cursor = counts.clone();
        for (i, c) in cons.iter().enumerate() {
            for &(j, v) in &c.terms {
                if v != 0.0 {
                    let k = cursor[j];
                    col_rows[k] = i;
                    col_vals[k] = v * row_scale[i];
                    cursor[j] += 1;
                }
            }
        }

        let mut rhs = Vec::with_capacity(m);
        let mut lower: Vec<f64> = model.lower_bounds().to_vec();
        let mut upper: Vec<f64> = model.upper_bounds().to_vec();
        for (i, c) in cons.iter().enumerate() {
            rhs.push(c.rhs * row_scale[i]);
            let (lo, hi) = match c.sense {
                Sense::Le => (0.0, f64::INFINITY),
                Sense::Ge => (f64::NEG_INFINITY, 0.0),
                Sense::Eq => (0.0, 0.0),
            };
            lower.push(lo);
            upper.push(hi);
        }
        let scale = 1.0 + rhs.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        Self {
            n,
            m,
            col_ptr: counts,
            col_rows,
            col_vals,
            cost,
            rhs,
            lower,
            upper,
            scale,
        }
    }
}

/// Where a variable currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VStat {
    Basic,
    AtLower,
    AtUpper,
}

/// Outcome of one primal step on a candidate column.
enum Step {
    /// Bound flip: no basis change, candidate list stays valid.
    Flip,
    /// Basis exchange: reduced costs are stale.
    Pivot {
        degenerate: bool,
    },
    Unbounded,
    Trouble,
}

/// How a phase of the primal loop ended.
enum LoopEnd {
    Optimal,
    Unbounded,
    IterationLimit,
    Trouble,
}

/// Scatters column `j` of the working matrix through `f(row, value)`.
/// Columns `0..n` are structural (CSC), `n..n+m` are unit logicals, and
/// anything past that is an artificial `(row, sign)` pair.
#[inline]
fn col_apply(lp: &SparseLp, arts: &[(usize, f64)], j: usize, mut f: impl FnMut(usize, f64)) {
    if j < lp.n {
        for k in lp.col_ptr[j]..lp.col_ptr[j + 1] {
            f(lp.col_rows[k], lp.col_vals[k]);
        }
    } else if j < lp.n + lp.m {
        f(j - lp.n, 1.0);
    } else {
        let (row, sign) = arts[j - lp.n - lp.m];
        f(row, sign);
    }
}

/// Dot product of column `j` with a row-space vector.
#[inline]
fn col_dot(lp: &SparseLp, arts: &[(usize, f64)], j: usize, y: &[f64]) -> f64 {
    let mut acc = 0.0;
    col_apply(lp, arts, j, |i, a| acc += a * y[i]);
    acc
}

/// Sparse revised simplex state. A solved instance doubles as the
/// warm-start state for branch-and-bound: [`SparseSimplex::apply_var_bounds`]
/// tightens a structural variable in model space and
/// [`SparseSimplex::dual_solve`] re-optimizes from the current basis,
/// mirroring the dense `Tableau` contract.
#[derive(Debug, Clone)]
pub(crate) struct SparseSimplex {
    lp: Rc<SparseLp>,
    /// Working bounds for all columns (structural, logical, artificial).
    lo: Vec<f64>,
    up: Vec<f64>,
    /// Artificial columns as `(row, sign)`.
    arts: Vec<(usize, f64)>,
    status: Vec<VStat>,
    /// Basic column per row (slot).
    basis: Vec<usize>,
    /// Values of the basic variables, by slot.
    xb: Vec<f64>,
    lu: Lu,
    /// Row-space dual scratch.
    y: Vec<f64>,
    /// Reduced costs per column.
    d: Vec<f64>,
    /// FTRAN scratch (slot space).
    w: Vec<f64>,
    /// Improving candidate columns from the last full pricing.
    cands: Vec<usize>,
    phase1: bool,
}

impl SparseSimplex {
    /// Cold start: logical basis, artificials where the logical value
    /// violates its bounds.
    pub(crate) fn new(lp: Rc<SparseLp>) -> Self {
        let (n, m) = (lp.n, lp.m);
        let lo = lp.lower.clone();
        let up = lp.upper.clone();
        // Structural columns rest at their (finite, per Model's contract)
        // lower bound; the logical basis starts every row.
        let mut status = vec![VStat::AtLower; n];
        status.extend(std::iter::repeat_n(VStat::Basic, m));
        let basis: Vec<usize> = (n..n + m).collect();

        let mut sim = Self {
            lp: Rc::clone(&lp),
            lo,
            up,
            arts: Vec::new(),
            status,
            basis,
            xb: vec![0.0; m],
            lu: Lu::default(),
            y: vec![0.0; m],
            d: Vec::new(),
            w: vec![0.0; m],
            cands: Vec::new(),
            phase1: false,
        };
        // Identity basis always factors.
        let _ = sim.refactor();

        // Singleton-column crash: a structural column whose support is
        // exactly one row can replace that row's logical in the basis while
        // keeping the basis diagonal. When the implied basic value is
        // within the column's own bounds (and the displaced logical can
        // rest at zero, which every row sense admits), the row starts
        // primal-feasible with no artificial — on the fill ILPs, where
        // almost every row is a one-hot equality whose `n = 0` binary is a
        // free singleton, this eliminates phase 1 nearly outright.
        let tol = EPS * lp.scale;
        let mut row_singleton: Vec<Vec<usize>> = vec![Vec::new(); m];
        for j in 0..n {
            let span = lp.col_ptr[j]..lp.col_ptr[j + 1];
            if span.len() == 1 {
                let k = span.start;
                if lp.col_vals[k].abs() > PIVOT_EPS {
                    row_singleton[lp.col_rows[k]].push(j);
                }
            }
        }
        for (i, singletons) in row_singleton.iter().enumerate() {
            let v = sim.xb[i];
            let lj = n + i;
            if !(v < sim.lo[lj] - tol || v > sim.up[lj] + tol) {
                continue;
            }
            // First singleton whose implied basic value is in bounds wins.
            let chosen = singletons.iter().copied().find_map(|s| {
                let k = lp.col_ptr[s];
                let a = lp.col_vals[k];
                // With the logical resting at zero, the singleton absorbs
                // the whole row residual on top of its own rest value.
                let xs = sim.rest(s) + v / a;
                (xs >= sim.lo[s] - tol && xs <= sim.up[s] + tol).then_some((s, xs))
            });
            if let Some((s, xs)) = chosen {
                sim.status[lj] = if sim.lo[lj].is_finite() {
                    VStat::AtLower
                } else {
                    VStat::AtUpper
                };
                sim.status[s] = VStat::Basic;
                sim.basis[i] = s;
                sim.xb[i] = xs;
            }
        }
        // Remaining violated rows get an artificial that absorbs the
        // violation with a nonnegative value.
        let mut crashed = false;
        for i in 0..m {
            if sim.basis[i] < n {
                crashed = true;
                continue;
            }
            let v = sim.xb[i];
            let lj = n + i;
            let violated = v < sim.lo[lj] - tol || v > sim.up[lj] + tol;
            if violated {
                // Logical leaves to its nearest (zero) bound.
                sim.status[lj] = if v > 0.0 {
                    VStat::AtUpper
                } else {
                    VStat::AtLower
                };
                if !sim.up[lj].is_finite() {
                    sim.status[lj] = VStat::AtLower;
                }
                if !sim.lo[lj].is_finite() && sim.status[lj] == VStat::AtLower {
                    sim.status[lj] = VStat::AtUpper;
                }
                let rest = sim.rest(lj);
                let value = v - rest;
                let sign = if value >= 0.0 { 1.0 } else { -1.0 };
                let aj = n + m + sim.arts.len();
                sim.arts.push((i, sign));
                sim.status.push(VStat::Basic);
                sim.basis[i] = aj;
                sim.xb[i] = value.abs();
            }
        }
        for _ in 0..sim.arts.len() {
            sim.lo.push(0.0);
            sim.up.push(f64::INFINITY);
        }
        if crashed || !sim.arts.is_empty() {
            // Refactor with the crash/artificial basis (still diagonal:
            // singletons and unit columns only touch their own row).
            let _ = sim.refactor();
        }
        sim
    }

    /// Cumulative LU refactorization count.
    pub(crate) fn refactor_count(&self) -> usize {
        self.lu.refactor_count()
    }

    fn total_cols(&self) -> usize {
        self.lp.n + self.lp.m + self.arts.len()
    }

    /// Phase-aware cost of column `j`.
    #[inline]
    fn cost(&self, j: usize) -> f64 {
        if self.phase1 {
            if j >= self.lp.n + self.lp.m {
                1.0
            } else {
                0.0
            }
        } else if j < self.lp.n {
            self.lp.cost[j]
        } else {
            0.0
        }
    }

    /// Rest value of a nonbasic column.
    #[inline]
    fn rest(&self, j: usize) -> f64 {
        match self.status[j] {
            VStat::AtLower => self.lo[j],
            VStat::AtUpper => self.up[j],
            VStat::Basic => debug_unreachable_zero(),
        }
    }

    #[inline]
    fn improving(&self, j: usize) -> bool {
        match self.status[j] {
            VStat::AtLower => self.d[j] < -EPS,
            VStat::AtUpper => self.d[j] > EPS,
            VStat::Basic => false,
        }
    }

    /// Full pricing: `y = B^-T c_B`, then `d_j = c_j - y·A_j`.
    fn reprice(&mut self) {
        let m = self.lp.m;
        let mut any = false;
        for k in 0..m {
            let c = self.cost(self.basis[k]);
            self.y[k] = c;
            any |= c != 0.0;
        }
        if any {
            self.lu.btran(&mut self.y);
        }
        let total = self.total_cols();
        self.d.resize(total, 0.0);
        for j in 0..total {
            self.d[j] = if self.status[j] == VStat::Basic {
                0.0
            } else if any {
                self.cost(j) - col_dot(&self.lp, &self.arts, j, &self.y)
            } else {
                self.cost(j)
            };
        }
    }

    /// Rebuilds the improving-candidate list. Normal mode sorts by `|d|`
    /// descending (Dantzig order); Bland mode sorts ascending by index for
    /// anti-cycling. Fixed (zero-width) columns can never improve and are
    /// skipped.
    fn build_candidates(&mut self, bland: bool) {
        self.cands.clear();
        for j in 0..self.total_cols() {
            if self.status[j] != VStat::Basic && self.up[j] - self.lo[j] > EPS && self.improving(j)
            {
                self.cands.push(j);
            }
        }
        if !bland {
            let d = &self.d;
            if self.phase1 {
                // Phase-1 reduced costs are quantized (artificial costs are
                // all 1), so ties are the common case — break them toward
                // the cheapest true cost. On budget-row-bound fill models
                // this makes phase 1 assemble the phase-2-optimal support
                // directly instead of an arbitrary feasible one that phase
                // 2 must then unwind one basis exchange at a time.
                let lp = &self.lp;
                let true_cost = |j: usize| if j < lp.n { lp.cost[j] } else { 0.0 };
                self.cands.sort_unstable_by(|&a, &b| {
                    d[b].abs()
                        .total_cmp(&d[a].abs())
                        .then(true_cost(a).total_cmp(&true_cost(b)))
                        .then(a.cmp(&b))
                });
            } else {
                self.cands
                    .sort_unstable_by(|&a, &b| d[b].abs().total_cmp(&d[a].abs()).then(a.cmp(&b)));
            }
        }
    }

    /// Gathers the current basis columns and refactors; recomputes `xb`
    /// from scratch to shed accumulated drift.
    fn refactor(&mut self) -> Result<(), LuError> {
        let m = self.lp.m;
        let mut cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        for k in 0..m {
            let mut c = Vec::new();
            col_apply(&self.lp, &self.arts, self.basis[k], |i, a| c.push((i, a)));
            cols.push(c);
        }
        self.lu.factor(&cols)?;
        self.recompute_xb();
        Ok(())
    }

    /// `xb = B^-1 (b - sum over nonbasic columns of A_j * rest_j)`.
    fn recompute_xb(&mut self) {
        let mut v = self.lp.rhs.clone();
        for j in 0..self.total_cols() {
            if self.status[j] != VStat::Basic {
                let rest = self.rest(j);
                if rest != 0.0 {
                    col_apply(&self.lp, &self.arts, j, |i, a| v[i] -= a * rest);
                }
            }
        }
        self.lu.ftran(&mut v);
        self.xb = v;
    }

    /// Loads `w = B^-1 A_j` into the scratch.
    fn load_ftran_column(&mut self, j: usize) {
        self.w.iter_mut().for_each(|x| *x = 0.0);
        let w = &mut self.w;
        col_apply(&self.lp, &self.arts, j, |i, a| w[i] += a);
        self.lu.ftran(&mut self.w);
    }

    /// One primal step on candidate `j`: ratio test, then either a bound
    /// flip or a basis exchange.
    fn step(&mut self, j: usize) -> Step {
        self.load_ftran_column(j);
        let dir = if self.status[j] == VStat::AtLower {
            1.0
        } else {
            -1.0
        };
        let width = self.up[j] - self.lo[j];
        let mut t_best = width;
        let mut leave: Option<(usize, VStat)> = None;
        let m = self.lp.m;
        for r in 0..m {
            let wr = self.w[r];
            if wr == 0.0 {
                continue;
            }
            let alpha = dir * wr;
            let bv = self.basis[r];
            let xbr = self.xb[r];
            if alpha > PIVOT_EPS {
                if self.lo[bv].is_finite() {
                    let t = (xbr - self.lo[bv]) / alpha;
                    if t < t_best {
                        t_best = t.max(0.0);
                        leave = Some((r, VStat::AtLower));
                    }
                }
            } else if alpha < -PIVOT_EPS && self.up[bv].is_finite() {
                let t = (self.up[bv] - xbr) / (-alpha);
                if t < t_best {
                    t_best = t.max(0.0);
                    leave = Some((r, VStat::AtUpper));
                }
            }
        }
        if t_best.is_infinite() {
            return Step::Unbounded;
        }
        match leave {
            None => {
                // Bound flip: move all the way to the opposite bound.
                for r in 0..m {
                    let wr = self.w[r];
                    if wr != 0.0 {
                        self.xb[r] -= dir * wr * t_best;
                    }
                }
                self.status[j] = match self.status[j] {
                    VStat::AtLower => VStat::AtUpper,
                    _ => VStat::AtLower,
                };
                Step::Flip
            }
            Some((r, leave_to)) => {
                let new_val = self.rest(j) + dir * t_best;
                for i in 0..m {
                    let wi = self.w[i];
                    if wi != 0.0 {
                        self.xb[i] -= dir * wi * t_best;
                    }
                }
                self.xb[r] = new_val;
                let lv = self.basis[r];
                self.status[lv] = if leave_to == VStat::AtUpper && !self.up[lv].is_finite() {
                    VStat::AtLower
                } else {
                    leave_to
                };
                self.basis[r] = j;
                self.status[j] = VStat::Basic;
                if !self.lu.push_update(&self.w, r) {
                    // Growth-triggered fallback: the update pivot is bad,
                    // so rebuild the factorization for the new basis.
                    if self.refactor().is_err() {
                        return Step::Trouble;
                    }
                }
                Step::Pivot {
                    degenerate: t_best < EPS,
                }
            }
        }
    }

    fn maybe_refactor(&mut self) -> bool {
        if self.lu.updates_since_refactor() >= REFACTOR_INTERVAL || self.lu.eta_growth_exceeded() {
            return self.refactor().is_ok();
        }
        true
    }

    /// Primal loop for the current phase. Consumes the candidate list
    /// across bound flips (duals unchanged), re-pricing only after basis
    /// exchanges; optimality is always verified with a fresh pricing pass.
    fn primal_loop(&mut self, iterations: &mut usize) -> LoopEnd {
        let total = self.total_cols();
        let iter_limit = 200 * (self.lp.m + total).max(50);
        let mut degenerate_streak = 0usize;
        loop {
            if *iterations > iter_limit {
                return LoopEnd::IterationLimit;
            }
            if !self.maybe_refactor() {
                return LoopEnd::Trouble;
            }
            let bland = degenerate_streak > (2 * self.lp.m).max(10);
            self.reprice();
            self.build_candidates(bland);
            if self.cands.is_empty() {
                return LoopEnd::Optimal;
            }
            let cands = std::mem::take(&mut self.cands);
            let mut outcome = None;
            for &j in &cands {
                if self.status[j] == VStat::Basic || !self.improving(j) {
                    continue;
                }
                *iterations += 1;
                match self.step(j) {
                    Step::Flip => {
                        degenerate_streak = 0;
                        if *iterations > iter_limit {
                            break;
                        }
                    }
                    Step::Pivot { degenerate } => {
                        degenerate_streak = if degenerate { degenerate_streak + 1 } else { 0 };
                        outcome = Some(LoopEnd::Optimal); // placeholder: continue outer loop
                        break;
                    }
                    Step::Unbounded => {
                        outcome = Some(LoopEnd::Unbounded);
                        break;
                    }
                    Step::Trouble => {
                        outcome = Some(LoopEnd::Trouble);
                        break;
                    }
                }
            }
            self.cands = cands;
            match outcome {
                Some(LoopEnd::Unbounded) => return LoopEnd::Unbounded,
                Some(LoopEnd::Trouble) => return LoopEnd::Trouble,
                _ => {}
            }
        }
    }

    /// Solves from the current (cold) state: phase 1 if artificials are
    /// present, then phase 2.
    pub(crate) fn primal_solve(&mut self) -> LpSolution {
        let mut iterations = 0usize;
        if !self.arts.is_empty() {
            self.phase1 = true;
            let end = self.primal_loop(&mut iterations);
            self.phase1 = false;
            match end {
                LoopEnd::Optimal => {}
                LoopEnd::Unbounded | LoopEnd::IterationLimit | LoopEnd::Trouble => {
                    return self.failed(LpStatus::IterationLimit, iterations);
                }
            }
            // Phase-1 objective: total artificial residual.
            let mut infeas = 0.0f64;
            for (k, &bv) in self.basis.iter().enumerate() {
                if bv >= self.lp.n + self.lp.m {
                    infeas += self.xb[k].abs();
                }
            }
            if infeas > 1e-7 * self.lp.scale {
                return self.failed(LpStatus::Infeasible, iterations);
            }
            // Fix artificials to zero for phase 2.
            for a in 0..self.arts.len() {
                let j = self.lp.n + self.lp.m + a;
                self.up[j] = 0.0;
            }
        }
        match self.primal_loop(&mut iterations) {
            LoopEnd::Optimal => self.extract(iterations),
            LoopEnd::Unbounded => self.failed(LpStatus::Unbounded, iterations),
            LoopEnd::IterationLimit | LoopEnd::Trouble => {
                self.failed(LpStatus::IterationLimit, iterations)
            }
        }
    }

    fn failed(&self, status: LpStatus, iterations: usize) -> LpSolution {
        LpSolution {
            status,
            values: vec![0.0; self.lp.n],
            objective: if status == LpStatus::Unbounded {
                f64::NEG_INFINITY
            } else {
                f64::NAN
            },
            iterations,
        }
    }

    /// Extracts the structural solution in **model space** (no shifts).
    fn extract(&self, iterations: usize) -> LpSolution {
        // Residual artificials mean the point is not actually feasible.
        let art_tol = 1e-6 * self.lp.scale;
        for (k, &bv) in self.basis.iter().enumerate() {
            if bv >= self.lp.n + self.lp.m && self.xb[k].abs() > art_tol {
                return self.failed(LpStatus::Infeasible, iterations);
            }
        }
        let mut values = vec![0.0; self.lp.n];
        for (j, v) in values.iter_mut().enumerate() {
            if self.status[j] != VStat::Basic {
                *v = self.rest(j);
            }
        }
        for (k, &bv) in self.basis.iter().enumerate() {
            if bv < self.lp.n {
                values[bv] = self.xb[k];
            }
        }
        for v in values.iter_mut() {
            if v.abs() < 1e-11 {
                *v = 0.0;
            }
        }
        let objective = values.iter().zip(&self.lp.cost).map(|(v, c)| v * c).sum();
        LpSolution {
            status: LpStatus::Optimal,
            values,
            objective,
            iterations,
        }
    }

    /// Tightens structural column `j` to `[lo, hi]` **in model space**.
    /// Only the basic values change (via the column's FTRAN image); the
    /// basis stays dual feasible, so [`SparseSimplex::dual_solve`]
    /// re-optimizes from here. Returns `false` on an empty interval.
    pub(crate) fn apply_var_bounds(&mut self, j: usize, lo: f64, hi: f64) -> bool {
        debug_assert!(j < self.lp.n);
        if hi - lo < -1e-9 {
            return false;
        }
        let hi = hi.max(lo);
        if self.status[j] == VStat::Basic {
            self.lo[j] = lo;
            self.up[j] = hi;
            return true;
        }
        let old_rest = self.rest(j);
        if self.status[j] == VStat::AtUpper && !hi.is_finite() {
            self.status[j] = VStat::AtLower;
        }
        self.lo[j] = lo;
        self.up[j] = hi;
        let delta = self.rest(j) - old_rest;
        if delta != 0.0 {
            self.load_ftran_column(j);
            for r in 0..self.lp.m {
                let wr = self.w[r];
                if wr != 0.0 {
                    self.xb[r] -= delta * wr;
                }
            }
        }
        true
    }

    /// Reduced-cost sign conditions for every nonbasic, non-fixed column.
    fn dual_feasible(&self, tol: f64) -> bool {
        (0..self.total_cols()).all(|j| match self.status[j] {
            VStat::Basic => true,
            _ if self.up[j] - self.lo[j] <= EPS => true,
            VStat::AtLower => self.d[j] >= -tol,
            VStat::AtUpper => self.d[j] <= tol,
        })
    }

    /// Re-optimizes with the bounded dual simplex after
    /// [`SparseSimplex::apply_var_bounds`]. Returns `None` on numerical
    /// trouble (the caller falls back to a cold solve); otherwise a
    /// solution with status `Optimal` or `Infeasible` — the same contract
    /// as the dense `Tableau::dual_solve`.
    pub(crate) fn dual_solve(&mut self) -> Option<LpSolution> {
        let feas_tol = 1e-7 * self.lp.scale;
        let total = self.total_cols();
        let iter_limit = 100 * (self.lp.m + total).max(50);
        let mut iterations = 0usize;
        loop {
            if iterations > iter_limit || !self.maybe_refactor() {
                return None;
            }
            self.reprice();
            if iterations == 0 && !self.dual_feasible(feas_tol) {
                return None;
            }

            // Leaving row: largest primal bound violation.
            let mut leave: Option<(usize, f64, VStat)> = None;
            for r in 0..self.lp.m {
                let bv = self.basis[r];
                let xbr = self.xb[r];
                if self.lo[bv].is_finite() && xbr < self.lo[bv] - feas_tol {
                    let viol = self.lo[bv] - xbr;
                    if leave.is_none_or(|(_, v, _)| viol > v) {
                        leave = Some((r, viol, VStat::AtLower));
                    }
                } else if self.up[bv].is_finite() && xbr > self.up[bv] + feas_tol {
                    let viol = xbr - self.up[bv];
                    if leave.is_none_or(|(_, v, _)| viol > v) {
                        leave = Some((r, viol, VStat::AtUpper));
                    }
                }
            }
            let Some((r, _, leave_to)) = leave else {
                // Primal feasible again; certify optimality on fresh duals.
                if !self.dual_feasible(feas_tol) {
                    return None;
                }
                return Some(self.extract(iterations));
            };

            // Alpha row: rho = B^-T e_r, alpha_j = rho · A_j.
            self.y.iter_mut().for_each(|x| *x = 0.0);
            self.y[r] = 1.0;
            self.lu.btran(&mut self.y);
            let below = leave_to == VStat::AtLower;
            let mut entering: Option<(usize, f64, f64)> = None;
            let mut any_eligible_sign = false;
            for j in 0..total {
                if self.status[j] == VStat::Basic {
                    continue;
                }
                let arj = col_dot(&self.lp, &self.arts, j, &self.y);
                let eligible = match (below, self.status[j]) {
                    (true, VStat::AtLower) => arj < -EPS,
                    (true, VStat::AtUpper) => arj > EPS,
                    (false, VStat::AtLower) => arj > EPS,
                    (false, VStat::AtUpper) => arj < -EPS,
                    (_, VStat::Basic) => false,
                };
                if !eligible {
                    continue;
                }
                any_eligible_sign = true;
                if arj.abs() <= PIVOT_EPS {
                    continue;
                }
                let ratio = self.d[j].abs() / arj.abs();
                let better = match entering {
                    None => true,
                    Some((_, best, besta)) => {
                        ratio < best - EPS || (ratio < best + EPS && arj.abs() > besta)
                    }
                };
                if better {
                    entering = Some((j, ratio, arj.abs()));
                }
            }
            match entering {
                Some((q, _, _)) => {
                    let dir = if self.status[q] == VStat::AtLower {
                        1.0
                    } else {
                        -1.0
                    };
                    self.load_ftran_column(q);
                    let wr = self.w[r];
                    if wr.abs() <= PIVOT_EPS * 0.5 {
                        return None;
                    }
                    let target = match leave_to {
                        VStat::AtLower => self.lo[self.basis[r]],
                        _ => self.up[self.basis[r]],
                    };
                    let t = ((self.xb[r] - target) / (dir * wr)).max(0.0);
                    let new_val = self.rest(q) + dir * t;
                    for i in 0..self.lp.m {
                        let wi = self.w[i];
                        if wi != 0.0 {
                            self.xb[i] -= dir * wi * t;
                        }
                    }
                    self.xb[r] = new_val;
                    let lv = self.basis[r];
                    self.status[lv] = if leave_to == VStat::AtUpper && !self.up[lv].is_finite() {
                        VStat::AtLower
                    } else {
                        leave_to
                    };
                    self.basis[r] = q;
                    self.status[q] = VStat::Basic;
                    if !self.lu.push_update(&self.w, r) && self.refactor().is_err() {
                        return None;
                    }
                }
                None if any_eligible_sign => return None,
                None => {
                    // No column can reduce the violation: primal infeasible.
                    return Some(LpSolution {
                        status: LpStatus::Infeasible,
                        values: vec![0.0; self.lp.n],
                        objective: f64::NAN,
                        iterations,
                    });
                }
            }
            iterations += 1;
        }
    }
}

#[cold]
fn debug_unreachable_zero() -> f64 {
    debug_assert!(false, "rest() called on a basic column");
    0.0
}

/// Solves the LP cold and, on optimality, returns the solved state for
/// warm-started re-solves.
pub(crate) fn solve_sparse(lp: &Rc<SparseLp>) -> (LpSolution, Option<SparseSimplex>) {
    let mut sim = SparseSimplex::new(Rc::clone(lp));
    let sol = sim.primal_solve();
    let warm = (sol.status == LpStatus::Optimal).then_some(sim);
    (sol, warm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, Objective, Sense};

    fn solve_model(m: &Model) -> LpSolution {
        let pre = m.presolved().expect("feasible presolve");
        let lp = Rc::new(SparseLp::build(&pre));
        let (sol, _) = solve_sparse(&lp);
        sol
    }

    #[test]
    fn product_mix_matches_hand_solution() {
        // max 3x + 5y; x <= 4; 2y <= 12; 3x + 2y <= 18 -> (2, 6), 36.
        let mut m = Model::new(Objective::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 3.0);
        let y = m.add_var(0.0, f64::INFINITY, 5.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Le, 4.0);
        m.add_constraint(vec![(y, 2.0)], Sense::Le, 12.0);
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let s = solve_model(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        // Internal objective is minimize sense: -36.
        assert!((s.objective + 36.0).abs() < 1e-6, "obj {}", s.objective);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_budget_with_upper_bounds() {
        // min 3a + b + 2c, a + b + c = 4, all in [0, 2] -> (0, 2, 2), 6.
        let mut m = Model::new(Objective::Minimize);
        let a = m.add_var(0.0, 2.0, 3.0);
        let b = m.add_var(0.0, 2.0, 1.0);
        let c = m.add_var(0.0, 2.0, 2.0);
        m.add_constraint(vec![(a, 1.0), (b, 1.0), (c, 1.0)], Sense::Eq, 4.0);
        let s = solve_model(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 6.0).abs() < 1e-6, "obj {}", s.objective);
        assert!(s.values[0].abs() < 1e-6);
    }

    #[test]
    fn infeasible_band_detected() {
        let mut m = Model::new(Objective::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Le, 1.0);
        m.add_constraint(vec![(x, 1.0)], Sense::Ge, 3.0);
        // Presolve consumes singleton rows; rebuild with two-var rows so
        // the simplex itself proves infeasibility.
        let mut m2 = Model::new(Objective::Minimize);
        let a = m2.add_var(0.0, 10.0, 1.0);
        let b = m2.add_var(0.0, 10.0, 1.0);
        m2.add_constraint(vec![(a, 1.0), (b, 1.0)], Sense::Le, 1.0);
        m2.add_constraint(vec![(a, 1.0), (b, 1.0)], Sense::Ge, 3.0);
        assert!(m.presolved().is_none() || solve_model(&m).status == LpStatus::Infeasible);
        let s = solve_model(&m2);
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Objective::Maximize);
        let _ = m.add_var(0.0, f64::INFINITY, 1.0);
        let s = solve_model(&m);
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_lower_bounds_native() {
        // min x with x in [-5, 5], x >= -3 via a two-var row to survive
        // presolve: min x + 0y, x + y >= -3, y in [0, 0.5].
        let mut m = Model::new(Objective::Minimize);
        let x = m.add_var(-5.0, 5.0, 1.0);
        let y = m.add_var(0.0, 0.5, 0.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, -3.0);
        let s = solve_model(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 3.5).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn ge_row_uses_logical_upper_bound() {
        // min x + y, x + y >= 7, x >= 2, y >= 3 (bounds) -> 7.
        let mut m = Model::new(Objective::Minimize);
        let x = m.add_var(2.0, f64::INFINITY, 1.0);
        let y = m.add_var(3.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 7.0);
        let s = solve_model(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 7.0).abs() < 1e-6);
    }

    #[test]
    fn warm_restart_matches_cold_after_bound_tightening() {
        let mut m = Model::new(Objective::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 3.0);
        let y = m.add_var(0.0, f64::INFINITY, 5.0);
        m.add_constraint(vec![(x, 1.0), (y, 0.001)], Sense::Le, 4.0);
        m.add_constraint(vec![(y, 2.0)], Sense::Le, 12.0);
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let pre = m.presolved().expect("feasible");
        let lp = Rc::new(SparseLp::build(&pre));
        let (root, warm) = solve_sparse(&lp);
        assert_eq!(root.status, LpStatus::Optimal);
        let mut sim = warm.expect("warm state");
        assert!(sim.apply_var_bounds(0, 0.0, 1.0));
        let ws = sim.dual_solve().expect("dual path");
        assert_eq!(ws.status, LpStatus::Optimal);

        let mut cold = m.clone();
        cold.set_bounds(crate::VarId(0), 0.0, 1.0);
        let cs = solve_model(&cold);
        assert!(
            (ws.objective - cs.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            ws.objective,
            cs.objective
        );
    }

    #[test]
    fn warm_restart_raised_lower_bound() {
        // min 3a + b + 2c, a + b + c = 4, all [0,2]; then force a >= 1.
        let mut m = Model::new(Objective::Minimize);
        let _a = m.add_var(0.0, 2.0, 3.0);
        let _b = m.add_var(0.0, 2.0, 1.0);
        let _c = m.add_var(0.0, 2.0, 2.0);
        m.add_constraint(
            vec![
                (crate::VarId(0), 1.0),
                (crate::VarId(1), 1.0),
                (crate::VarId(2), 1.0),
            ],
            Sense::Eq,
            4.0,
        );
        let pre = m.presolved().expect("feasible");
        let lp = Rc::new(SparseLp::build(&pre));
        let (root, warm) = solve_sparse(&lp);
        assert_eq!(root.status, LpStatus::Optimal);
        let mut sim = warm.expect("warm");
        assert!(sim.apply_var_bounds(0, 1.0, 2.0));
        let s = sim.dual_solve().expect("dual path");
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 7.0).abs() < 1e-6, "obj {}", s.objective);
        assert!((s.values[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn warm_restart_detects_infeasible_child() {
        // x + y = 4 with x, y in [0, 2]: forcing x = 0 leaves y = 4 > 2.
        let mut m = Model::new(Objective::Minimize);
        let x = m.add_var(0.0, 2.0, 1.0);
        let y = m.add_var(0.0, 2.0, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Eq, 4.0);
        let pre = m.presolved().expect("feasible");
        let lp = Rc::new(SparseLp::build(&pre));
        let (root, warm) = solve_sparse(&lp);
        assert_eq!(root.status, LpStatus::Optimal);
        let mut sim = warm.expect("warm");
        assert!(sim.apply_var_bounds(0, 0.0, 0.0));
        let s = sim.dual_solve().expect("dual path");
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn empty_interval_rejected() {
        let mut m = Model::new(Objective::Minimize);
        let _x = m.add_var(0.0, 5.0, 1.0);
        let lp = Rc::new(SparseLp::build(&m));
        let (_, warm) = solve_sparse(&lp);
        let mut sim = warm.expect("warm");
        assert!(!sim.apply_var_bounds(0, 3.0, 2.0));
    }

    #[test]
    fn knapsack_relaxation_is_mostly_bound_flips() {
        // ILP-II shape: one equality budget row over many bounded columns.
        // The candidate-list pricing should solve it with very few true
        // pivots (each pivot forces a full re-price; flips do not).
        let mut m = Model::new(Objective::Minimize);
        let mut terms = Vec::new();
        for k in 0..200usize {
            let cost = 1.0 + ((k * 37) % 101) as f64 * 0.013;
            let v = m.add_var(0.0, 1.0, cost);
            terms.push((v, 1.0 + (k % 5) as f64));
        }
        m.add_constraint(terms, Sense::Eq, 180.0);
        let s = solve_model(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        // Feasibility of the extracted point.
        let lhs: f64 = s
            .values
            .iter()
            .enumerate()
            .map(|(k, v)| v * (1.0 + (k % 5) as f64))
            .sum();
        assert!((lhs - 180.0).abs() < 1e-6, "budget row violated: {lhs}");
    }
}
