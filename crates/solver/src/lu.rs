//! Sparse LU factorization of the simplex basis with eta-file updates.
//!
//! The basis `B` (one sparse column per basic variable) is factored as
//! `B = L·U` by left-looking Gaussian elimination:
//!
//! - **Markowitz-ordered pivoting**: columns are processed in ascending
//!   nonzero-count order, and within each column the pivot row is the
//!   numerically eligible row (`|a| >= 0.1 * max|a|`) with the smallest
//!   static row count — the classic cheap approximation of the Markowitz
//!   `(r-1)(c-1)` fill bound. Simplex bases are dominated by logical
//!   (identity) columns, so this ordering usually factors with zero fill.
//! - **`L` as an eta file**: each elimination step stores its multipliers
//!   as one [`Eta`]; applying the file in order computes `L^-1 v`
//!   (forward) or `L^-T v` (reverse).
//! - **`U` by columns**: back-substitution walks the pivot order in
//!   reverse using the stored upper-triangular columns.
//!
//! Basis exchanges append **product-form update etas** (the eta-file /
//! Forrest–Tomlin-style update without the permutation bookkeeping): after
//! slot `p` swaps its column, `B_new^-1 = E^-1 B_old^-1`, so FTRAN applies
//! the update file after the factor and BTRAN applies its transpose
//! before it. The factorization is rebuilt from scratch — a *refactor* —
//! on a fixed cadence ([`REFACTOR_INTERVAL`] updates), when the update
//! file outgrows the factor ([`eta_growth_exceeded`]), or on demand when
//! an update pivot is numerically unacceptable (the growth-triggered
//! fallback: the caller refactors and retries with a clean factor).
//!
// Exact `!= 0.0` comparisons in this file are sparsity guards: skipping
// arithmetic on an exactly-zero entry never changes a result.
// pilfill: allow-file(float-eq)

/// Update etas accumulated before a scheduled refactorization.
pub(crate) const REFACTOR_INTERVAL: usize = 64;

/// An update pivot below this fraction of the entering column's largest
/// entry triggers a refactor-and-retry instead of an unstable update.
pub(crate) const UPDATE_PIVOT_REL_TOL: f64 = 1e-8;

/// Relative threshold for accepting a factorization pivot within a column.
const FACTOR_PIVOT_REL_TOL: f64 = 0.1;

/// Entries smaller than this are dropped when harvesting scratch vectors.
const DROP_TOL: f64 = 1e-13;

/// One elimination (or product-form update) step: at pivot position `r`,
/// subtract `mult * v[r]` from each listed row (FTRAN direction).
#[derive(Debug, Clone)]
struct Eta {
    r: usize,
    /// `(row, multiplier)` pairs, excluding the pivot row itself.
    entries: Vec<(usize, f64)>,
}

/// A product-form update eta: slot `p` absorbed an entering column whose
/// FTRAN image was `w` (pivot `w[p]` stored inverted).
#[derive(Debug, Clone)]
struct UpdateEta {
    p: usize,
    inv_piv: f64,
    /// `(slot, w_slot)` pairs, excluding the pivot slot.
    entries: Vec<(usize, f64)>,
}

/// One column of `U` in pivot coordinates: diagonal `piv` at pivot row
/// `r`, plus entries on the pivot rows of earlier elimination steps.
#[derive(Debug, Clone)]
struct UCol {
    r: usize,
    piv: f64,
    above: Vec<(usize, f64)>,
}

/// Error from a basis factorization attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LuError {
    /// The basis matrix is (numerically) singular.
    Singular,
}

/// LU factors of the current basis plus the product-form update file.
///
/// All solves are expressed in *slot* space: `ftran` maps a row-space
/// right-hand side to coefficients per basis slot, `btran` maps slot-space
/// costs to row-space duals.
#[derive(Debug, Clone, Default)]
pub(crate) struct Lu {
    m: usize,
    letas: Vec<Eta>,
    ucols: Vec<UCol>,
    /// Basis slot factored at elimination step `k`.
    slot_of_step: Vec<usize>,
    /// Elimination step that owns pivot row `r` (dense, length `m`).
    step_of_row: Vec<usize>,
    updates: Vec<UpdateEta>,
    factor_nnz: usize,
    refactors: usize,
}

impl Lu {
    /// Number of refactorizations performed so far (monotonic).
    pub(crate) fn refactor_count(&self) -> usize {
        self.refactors
    }

    /// Number of update etas appended since the last refactorization.
    pub(crate) fn updates_since_refactor(&self) -> usize {
        self.updates.len()
    }

    /// `true` when the update file has outgrown the factor and a refactor
    /// would pay for itself (growth trigger).
    pub(crate) fn eta_growth_exceeded(&self) -> bool {
        let update_nnz: usize = self.updates.iter().map(|e| e.entries.len() + 1).sum();
        update_nnz > 4 * (self.factor_nnz + self.m).max(16)
    }

    /// Factors the basis given by `cols` (one sparse column per slot,
    /// entries as `(row, value)`), replacing any previous factor and
    /// clearing the update file.
    ///
    /// # Errors
    ///
    /// [`LuError::Singular`] when no numerically acceptable pivot exists
    /// for some column.
    pub(crate) fn factor(&mut self, cols: &[Vec<(usize, f64)>]) -> Result<(), LuError> {
        let m = cols.len();
        self.m = m;
        self.letas.clear();
        self.ucols.clear();
        self.slot_of_step.clear();
        self.updates.clear();
        self.step_of_row.clear();
        self.step_of_row.resize(m, usize::MAX);
        self.refactors += 1;
        self.factor_nnz = 0;
        if m == 0 {
            return Ok(());
        }

        // Static row counts drive the Markowitz-style pivot-row choice.
        let mut row_count = vec![0usize; m];
        for col in cols {
            for &(r, _) in col {
                row_count[r] += 1;
            }
        }
        // Column order: ascending nonzero count, ties by slot index.
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&j| (cols[j].len(), j));

        let mut consumed = vec![false; m];
        let mut w = vec![0.0f64; m];
        let mut touched: Vec<usize> = Vec::with_capacity(m);

        for &slot in &order {
            // Scatter the column and apply the existing elimination steps.
            for &(r, v) in &cols[slot] {
                if w[r] == 0.0 {
                    touched.push(r);
                }
                w[r] += v;
            }
            for eta in &self.letas {
                let t = w[eta.r];
                if t != 0.0 {
                    for &(i, mult) in &eta.entries {
                        if w[i] == 0.0 {
                            touched.push(i);
                        }
                        w[i] -= mult * t;
                    }
                }
            }

            // Pivot row: numerically eligible, minimum static row count.
            let mut max_abs = 0.0f64;
            for &r in &touched {
                if !consumed[r] {
                    max_abs = max_abs.max(w[r].abs());
                }
            }
            if max_abs < DROP_TOL {
                for &r in &touched {
                    w[r] = 0.0;
                }
                return Err(LuError::Singular);
            }
            let mut pivot_row = usize::MAX;
            let mut pivot_score = (usize::MAX, usize::MAX);
            for &r in &touched {
                if consumed[r] || w[r].abs() < FACTOR_PIVOT_REL_TOL * max_abs {
                    continue;
                }
                let score = (row_count[r], r);
                if score < pivot_score {
                    pivot_score = score;
                    pivot_row = r;
                }
            }
            let piv = w[pivot_row];

            // Harvest U entries (consumed rows) and L multipliers (the
            // rest), then clear the scratch.
            let mut above: Vec<(usize, f64)> = Vec::new();
            let mut mults: Vec<(usize, f64)> = Vec::new();
            touched.sort_unstable();
            for &r in &touched {
                let v = w[r];
                w[r] = 0.0;
                if v.abs() < DROP_TOL || r == pivot_row {
                    continue;
                }
                if consumed[r] {
                    above.push((r, v));
                } else {
                    mults.push((r, v / piv));
                }
            }
            touched.clear();
            self.factor_nnz += above.len() + mults.len() + 1;
            self.step_of_row[pivot_row] = self.slot_of_step.len();
            self.slot_of_step.push(slot);
            self.ucols.push(UCol {
                r: pivot_row,
                piv,
                above,
            });
            self.letas.push(Eta {
                r: pivot_row,
                entries: mults,
            });
            consumed[pivot_row] = true;
        }
        Ok(())
    }

    /// FTRAN: solves `B x = v` in place. On entry `v` is a row-space
    /// vector; on exit it holds the solution indexed by basis slot.
    pub(crate) fn ftran(&self, v: &mut [f64]) {
        debug_assert_eq!(v.len(), self.m);
        // L^-1 (forward through the elimination file).
        for eta in &self.letas {
            let t = v[eta.r];
            if t != 0.0 {
                for &(i, mult) in &eta.entries {
                    v[i] -= mult * t;
                }
            }
        }
        // U^-1 (reverse pivot order), permuting rows into slots as we go.
        // Values are staged per elimination step and scattered afterwards
        // so row/slot indices never collide mid-solve.
        let steps = self.ucols.len();
        for k in (0..steps).rev() {
            let uc = &self.ucols[k];
            let x = v[uc.r] / uc.piv;
            v[uc.r] = x;
            for &(r, u) in &uc.above {
                v[r] -= u * x;
            }
        }
        // v is now indexed by pivot row of each step; permute to slots.
        self.permute_rows_to_slots(v);
        // Product-form updates, oldest first (slot space).
        for e in &self.updates {
            let t = v[e.p] * e.inv_piv;
            if t != 0.0 {
                for &(i, wv) in &e.entries {
                    v[i] -= wv * t;
                }
            }
            v[e.p] = t;
        }
    }

    /// BTRAN: solves `B^T y = c` in place. On entry `v` holds a slot-space
    /// vector (e.g. basic costs); on exit it holds the row-space duals.
    pub(crate) fn btran(&self, v: &mut [f64]) {
        debug_assert_eq!(v.len(), self.m);
        // Transposed updates, newest first (still slot space).
        for e in self.updates.iter().rev() {
            let mut t = v[e.p];
            for &(i, wv) in &e.entries {
                t -= wv * v[i];
            }
            v[e.p] = t * e.inv_piv;
        }
        // Permute slots to pivot rows, then solve U^T (forward order).
        self.permute_slots_to_rows(v);
        let steps = self.ucols.len();
        for k in 0..steps {
            let uc = &self.ucols[k];
            let mut t = v[uc.r];
            for &(r, u) in &uc.above {
                t -= u * v[r];
            }
            v[uc.r] = t / uc.piv;
        }
        // L^-T (reverse through the elimination file).
        for eta in self.letas.iter().rev() {
            let mut t = v[eta.r];
            for &(i, mult) in &eta.entries {
                t -= mult * v[i];
            }
            v[eta.r] = t;
        }
    }

    /// Re-indexes `v` from pivot-row order to slot order: the value at
    /// pivot row `r_k` belongs to slot `slot_of_step[k]`.
    fn permute_rows_to_slots(&self, v: &mut [f64]) {
        let mut out = vec![0.0; self.m];
        for (k, &slot) in self.slot_of_step.iter().enumerate() {
            out[slot] = v[self.ucols[k].r];
        }
        v.copy_from_slice(&out);
    }

    /// Inverse of [`Lu::permute_rows_to_slots`].
    fn permute_slots_to_rows(&self, v: &mut [f64]) {
        let mut out = vec![0.0; self.m];
        for (k, &slot) in self.slot_of_step.iter().enumerate() {
            out[self.ucols[k].r] = v[slot];
        }
        v.copy_from_slice(&out);
    }

    /// Appends a product-form update: slot `p` absorbs an entering column
    /// whose FTRAN image is `w` (slot space, dense). Returns `false` when
    /// the pivot `w[p]` is too small relative to the column — the caller
    /// should refactor and retry.
    pub(crate) fn push_update(&mut self, w: &[f64], p: usize) -> bool {
        debug_assert_eq!(w.len(), self.m);
        let piv = w[p];
        let max_abs = w.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
        if piv.abs() < UPDATE_PIVOT_REL_TOL * max_abs.max(1.0) {
            return false;
        }
        let entries: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &x)| i != p && x.abs() >= DROP_TOL)
            .map(|(i, &x)| (i, x))
            .collect();
        self.updates.push(UpdateEta {
            p,
            inv_piv: 1.0 / piv,
            entries,
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilfill_prng::rngs::StdRng;
    use pilfill_prng::{Rng, SeedableRng};

    /// Dense reference solve via Gaussian elimination with partial
    /// pivoting.
    fn dense_solve(a: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
        let m = b.len();
        let mut aug: Vec<Vec<f64>> = (0..m)
            .map(|i| {
                let mut row: Vec<f64> = (0..m).map(|j| a[i][j]).collect();
                row.push(b[i]);
                row
            })
            .collect();
        for k in 0..m {
            let piv_row = (k..m)
                .max_by(|&p, &q| aug[p][k].abs().total_cmp(&aug[q][k].abs()))
                .unwrap();
            aug.swap(k, piv_row);
            let piv = aug[k][k];
            assert!(piv.abs() > 1e-12, "singular test matrix");
            let pivot_row: Vec<f64> = aug[k][k..=m].to_vec();
            for (i, row) in aug.iter_mut().enumerate() {
                if i != k && row[k] != 0.0 {
                    let f = row[k] / piv;
                    for (pv, cell) in pivot_row.iter().zip(&mut row[k..=m]) {
                        *cell -= f * pv;
                    }
                }
            }
        }
        (0..m).map(|i| aug[i][m] / aug[i][i]).collect()
    }

    fn dense_from_cols(cols: &[Vec<(usize, f64)>]) -> Vec<Vec<f64>> {
        let m = cols.len();
        let mut a = vec![vec![0.0; m]; m];
        for (j, col) in cols.iter().enumerate() {
            for &(i, v) in col {
                a[i][j] += v;
            }
        }
        a
    }

    fn random_nonsingular(rng: &mut StdRng, m: usize) -> Vec<Vec<(usize, f64)>> {
        // Diagonal plus a sprinkle of off-diagonal entries keeps the
        // matrix comfortably nonsingular while staying sparse.
        (0..m)
            .map(|j| {
                let mut col = vec![(j, rng.gen_range(0.5f64..2.0))];
                for _ in 0..rng.gen_range(0usize..3) {
                    let i = rng.gen_range(0usize..m);
                    if i != j {
                        col.push((i, rng.gen_range(-1.0f64..1.0)));
                    }
                }
                col
            })
            .collect()
    }

    #[test]
    fn ftran_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(0xA11CE);
        for _ in 0..64 {
            let m = rng.gen_range(1usize..10);
            let cols = random_nonsingular(&mut rng, m);
            let mut lu = Lu::default();
            lu.factor(&cols).expect("nonsingular");
            let b: Vec<f64> = (0..m).map(|_| rng.gen_range(-3.0f64..3.0)).collect();
            let mut x = b.clone();
            lu.ftran(&mut x);
            let want = dense_solve(&dense_from_cols(&cols), &b);
            for (got, want) in x.iter().zip(&want) {
                assert!((got - want).abs() < 1e-8, "ftran {got} vs {want}");
            }
        }
    }

    #[test]
    fn btran_matches_dense_transpose_solve() {
        let mut rng = StdRng::seed_from_u64(0xB17A);
        for _ in 0..64 {
            let m = rng.gen_range(1usize..10);
            let cols = random_nonsingular(&mut rng, m);
            let mut lu = Lu::default();
            lu.factor(&cols).expect("nonsingular");
            let c: Vec<f64> = (0..m).map(|_| rng.gen_range(-3.0f64..3.0)).collect();
            let mut y = c.clone();
            lu.btran(&mut y);
            // Dense transpose solve.
            let a = dense_from_cols(&cols);
            let at: Vec<Vec<f64>> = (0..m).map(|i| (0..m).map(|j| a[j][i]).collect()).collect();
            let want = dense_solve(&at, &c);
            for (got, want) in y.iter().zip(&want) {
                assert!((got - want).abs() < 1e-8, "btran {got} vs {want}");
            }
        }
    }

    #[test]
    fn update_etas_match_refactored_basis() {
        let mut rng = StdRng::seed_from_u64(0xE7A);
        for _ in 0..32 {
            let m = rng.gen_range(2usize..8);
            let mut cols = random_nonsingular(&mut rng, m);
            let mut lu = Lu::default();
            lu.factor(&cols).expect("nonsingular");
            // Replace a slot with a fresh column through push_update.
            for _ in 0..3 {
                let p = rng.gen_range(0usize..m);
                let newcol = {
                    let mut col = vec![(p, rng.gen_range(0.8f64..2.0))];
                    let extra = rng.gen_range(0usize..m);
                    if extra != p {
                        col.push((extra, rng.gen_range(-0.7f64..0.7)));
                    }
                    col
                };
                let mut w = vec![0.0; m];
                for &(i, v) in &newcol {
                    w[i] += v;
                }
                lu.ftran(&mut w);
                assert!(lu.push_update(&w, p), "acceptable pivot");
                cols[p] = newcol;
            }
            // Updated factor must agree with a from-scratch refactor.
            let mut fresh = Lu::default();
            fresh.factor(&cols).expect("nonsingular");
            let b: Vec<f64> = (0..m).map(|_| rng.gen_range(-2.0f64..2.0)).collect();
            let (mut x1, mut x2) = (b.clone(), b.clone());
            lu.ftran(&mut x1);
            fresh.ftran(&mut x2);
            for (a, b) in x1.iter().zip(&x2) {
                assert!((a - b).abs() < 1e-7, "updated {a} vs refactored {b}");
            }
            let c: Vec<f64> = (0..m).map(|_| rng.gen_range(-2.0f64..2.0)).collect();
            let (mut y1, mut y2) = (c.clone(), c.clone());
            lu.btran(&mut y1);
            fresh.btran(&mut y2);
            for (a, b) in y1.iter().zip(&y2) {
                assert!((a - b).abs() < 1e-7, "updated {a} vs refactored {b}");
            }
        }
    }

    #[test]
    fn singular_basis_rejected() {
        // Two identical columns.
        let cols = vec![vec![(0, 1.0), (1, 1.0)], vec![(0, 1.0), (1, 1.0)]];
        let mut lu = Lu::default();
        assert_eq!(lu.factor(&cols), Err(LuError::Singular));
    }

    #[test]
    fn identity_basis_factors_with_no_fill() {
        let cols: Vec<Vec<(usize, f64)>> = (0..6).map(|j| vec![(j, 1.0)]).collect();
        let mut lu = Lu::default();
        lu.factor(&cols).expect("identity");
        let mut v: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let before = v.clone();
        lu.ftran(&mut v);
        assert_eq!(v, before);
    }
}
