//! Randomized tests: the MILP solver must agree with exhaustive
//! enumeration on random small pure-integer programs, and LP solutions must
//! dominate every sampled feasible point. Driven by the in-repo seeded
//! PRNG so every run explores the same cases.

use pilfill_prng::rngs::StdRng;
use pilfill_prng::{Rng, SeedableRng};
use pilfill_solver::{Model, Objective, Sense, SolveError};

#[derive(Debug, Clone)]
struct RandomIp {
    maximize: bool,
    objs: Vec<f64>,
    caps: Vec<i64>,
    /// (coeffs, sense, rhs)
    cons: Vec<(Vec<f64>, Sense, f64)>,
}

/// Round to quarters to avoid near-degenerate float comparisons between
/// solver and brute force.
fn quarters(x: f64) -> f64 {
    (x * 4.0).round() / 4.0
}

fn rand_sense(rng: &mut StdRng) -> Sense {
    match rng.gen_range(0u32..3) {
        0 => Sense::Le,
        1 => Sense::Ge,
        _ => Sense::Eq,
    }
}

fn rand_ip(rng: &mut StdRng) -> RandomIp {
    let n = rng.gen_range(2usize..5);
    let objs: Vec<f64> = (0..n)
        .map(|_| quarters(rng.gen_range(-5.0f64..5.0)))
        .collect();
    let caps: Vec<i64> = (0..n).map(|_| rng.gen_range(0i64..4)).collect();
    let n_cons = rng.gen_range(0usize..3);
    let cons = (0..n_cons)
        .map(|_| {
            let coeffs: Vec<f64> = (0..n)
                .map(|_| quarters(rng.gen_range(-3.0f64..3.0)))
                .collect();
            let sense = rand_sense(rng);
            let rhs = quarters(rng.gen_range(-6.0f64..10.0));
            (coeffs, sense, rhs)
        })
        .collect();
    RandomIp {
        maximize: rng.gen::<bool>(),
        objs,
        caps,
        cons,
    }
}

fn enumerate_best(ip: &RandomIp) -> Option<f64> {
    let n = ip.caps.len();
    let mut best: Option<f64> = None;
    let mut x = vec![0i64; n];
    loop {
        let feasible = ip.cons.iter().all(|(coeffs, sense, rhs)| {
            let lhs: f64 = coeffs.iter().zip(&x).map(|(c, &v)| c * v as f64).sum();
            match sense {
                Sense::Le => lhs <= rhs + 1e-7,
                Sense::Ge => lhs >= rhs - 1e-7,
                Sense::Eq => (lhs - rhs).abs() < 1e-7,
            }
        });
        if feasible {
            let obj: f64 = ip.objs.iter().zip(&x).map(|(c, &v)| c * v as f64).sum();
            best = Some(match best {
                None => obj,
                Some(b) => {
                    if ip.maximize {
                        b.max(obj)
                    } else {
                        b.min(obj)
                    }
                }
            });
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            x[i] += 1;
            if x[i] <= ip.caps[i] {
                break;
            }
            x[i] = 0;
            i += 1;
        }
    }
}

fn build_model(ip: &RandomIp) -> Model {
    let mut m = Model::new(if ip.maximize {
        Objective::Maximize
    } else {
        Objective::Minimize
    });
    let vars: Vec<_> = ip
        .objs
        .iter()
        .zip(&ip.caps)
        .map(|(&o, &c)| m.add_integer_var(0.0, c as f64, o))
        .collect();
    for (coeffs, sense, rhs) in &ip.cons {
        m.add_constraint(vars.iter().zip(coeffs).map(|(&v, &c)| (v, c)), *sense, *rhs);
    }
    m
}

#[test]
fn milp_matches_exhaustive_enumeration() {
    let mut rng = StdRng::seed_from_u64(0x501_7E51);
    for case in 0..128 {
        let ip = rand_ip(&mut rng);
        let model = build_model(&ip);
        let brute = enumerate_best(&ip);
        match (model.solve(), brute) {
            (Ok(sol), Some(best)) => {
                assert!(
                    (sol.objective - best).abs() < 1e-5,
                    "case {case}: solver={} brute={} ip={:?}",
                    sol.objective,
                    best,
                    ip
                );
                // The reported point must itself be feasible and integral.
                for (v, cap) in sol.values.iter().zip(&ip.caps) {
                    assert!((v - v.round()).abs() < 1e-6);
                    assert!(v.round() >= -1e-9 && v.round() <= *cap as f64 + 1e-9);
                }
            }
            (Err(SolveError::Infeasible), None) => {}
            (got, want) => {
                panic!("case {case}: solver {got:?} vs brute {want:?} on {ip:?}");
            }
        }
    }
}

#[test]
fn lp_relaxation_dominates_integer_points() {
    let mut rng = StdRng::seed_from_u64(0x501_7E52);
    for case in 0..128 {
        let ip = rand_ip(&mut rng);
        let model = build_model(&ip);
        // LP optimum must be at least as good as every feasible integer
        // point.
        if let (Ok(lp), Some(best)) = (model.solve_lp(), enumerate_best(&ip)) {
            if ip.maximize {
                assert!(
                    lp.objective >= best - 1e-5,
                    "case {case}: lp {} < best integer {}",
                    lp.objective,
                    best
                );
            } else {
                assert!(
                    lp.objective <= best + 1e-5,
                    "case {case}: lp {} > best integer {}",
                    lp.objective,
                    best
                );
            }
        }
    }
}
