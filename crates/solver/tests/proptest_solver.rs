//! Property-based tests: the MILP solver must agree with exhaustive
//! enumeration on random small pure-integer programs, and LP solutions must
//! dominate every sampled feasible point.

use pilfill_solver::{Model, Objective, Sense, SolveError};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomIp {
    maximize: bool,
    objs: Vec<f64>,
    caps: Vec<i64>,
    /// (coeffs, sense, rhs)
    cons: Vec<(Vec<f64>, Sense, f64)>,
}

fn sense_strategy() -> impl Strategy<Value = Sense> {
    prop_oneof![Just(Sense::Le), Just(Sense::Ge), Just(Sense::Eq)]
}

fn ip_strategy() -> impl Strategy<Value = RandomIp> {
    (2usize..5)
        .prop_flat_map(|n| {
            let objs = prop::collection::vec(-5.0f64..5.0, n..=n);
            let caps = prop::collection::vec(0i64..4, n..=n);
            let cons = prop::collection::vec(
                (
                    prop::collection::vec(-3.0f64..3.0, n..=n),
                    sense_strategy(),
                    -6.0f64..10.0,
                ),
                0..3,
            );
            (any::<bool>(), objs, caps, cons)
        })
        .prop_map(|(maximize, objs, caps, cons)| RandomIp {
            maximize,
            // Round coefficients to quarters to avoid near-degenerate float
            // comparisons between solver and brute force.
            objs: objs.iter().map(|c| (c * 4.0).round() / 4.0).collect(),
            caps,
            cons: cons
                .into_iter()
                .map(|(coef, s, r)| {
                    (
                        coef.iter().map(|c| (c * 4.0).round() / 4.0).collect(),
                        s,
                        (r * 4.0).round() / 4.0,
                    )
                })
                .collect(),
        })
}

fn enumerate_best(ip: &RandomIp) -> Option<f64> {
    let n = ip.caps.len();
    let mut best: Option<f64> = None;
    let mut x = vec![0i64; n];
    loop {
        let feasible = ip.cons.iter().all(|(coeffs, sense, rhs)| {
            let lhs: f64 = coeffs
                .iter()
                .zip(&x)
                .map(|(c, &v)| c * v as f64)
                .sum();
            match sense {
                Sense::Le => lhs <= rhs + 1e-7,
                Sense::Ge => lhs >= rhs - 1e-7,
                Sense::Eq => (lhs - rhs).abs() < 1e-7,
            }
        });
        if feasible {
            let obj: f64 = ip
                .objs
                .iter()
                .zip(&x)
                .map(|(c, &v)| c * v as f64)
                .sum();
            best = Some(match best {
                None => obj,
                Some(b) => {
                    if ip.maximize {
                        b.max(obj)
                    } else {
                        b.min(obj)
                    }
                }
            });
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            x[i] += 1;
            if x[i] <= ip.caps[i] {
                break;
            }
            x[i] = 0;
            i += 1;
        }
    }
}

fn build_model(ip: &RandomIp) -> Model {
    let mut m = Model::new(if ip.maximize {
        Objective::Maximize
    } else {
        Objective::Minimize
    });
    let vars: Vec<_> = ip
        .objs
        .iter()
        .zip(&ip.caps)
        .map(|(&o, &c)| m.add_integer_var(0.0, c as f64, o))
        .collect();
    for (coeffs, sense, rhs) in &ip.cons {
        m.add_constraint(
            vars.iter().zip(coeffs).map(|(&v, &c)| (v, c)),
            *sense,
            *rhs,
        );
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn milp_matches_exhaustive_enumeration(ip in ip_strategy()) {
        let model = build_model(&ip);
        let brute = enumerate_best(&ip);
        match (model.solve(), brute) {
            (Ok(sol), Some(best)) => {
                prop_assert!(
                    (sol.objective - best).abs() < 1e-5,
                    "solver={} brute={} ip={:?}",
                    sol.objective, best, ip
                );
                // The reported point must itself be feasible and integral.
                for (v, cap) in sol.values.iter().zip(&ip.caps) {
                    prop_assert!((v - v.round()).abs() < 1e-6);
                    prop_assert!(v.round() >= -1e-9 && v.round() <= *cap as f64 + 1e-9);
                }
            }
            (Err(SolveError::Infeasible), None) => {}
            (got, want) => {
                return Err(TestCaseError::fail(format!(
                    "solver {got:?} vs brute {want:?} on {ip:?}"
                )));
            }
        }
    }

    #[test]
    fn lp_relaxation_dominates_integer_points(ip in ip_strategy()) {
        let model = build_model(&ip);
        // LP optimum must be at least as good as every feasible integer point.
        if let (Ok(lp), Some(best)) = (model.solve_lp(), enumerate_best(&ip)) {
            if ip.maximize {
                prop_assert!(lp.objective >= best - 1e-5,
                    "lp {} < best integer {}", lp.objective, best);
            } else {
                prop_assert!(lp.objective <= best + 1e-5,
                    "lp {} > best integer {}", lp.objective, best);
            }
        }
    }
}
