//! Backend equivalence suite: the sparse revised simplex must agree with
//! the dense reference tableau — same status, same objective, and (for
//! integer programs with unique optima) identical incumbents — across
//! hundreds of seeded random instances. Driven by the in-repo PRNG so
//! every run explores the same cases.

use pilfill_prng::rngs::StdRng;
use pilfill_prng::{Rng, SeedableRng};
use pilfill_solver::{Model, Objective, Sense, SolveError, SolverBackend};

/// Round to quarters so brute-force-style comparisons stay well away from
/// float noise.
fn quarters(x: f64) -> f64 {
    (x * 4.0).round() / 4.0
}

fn rand_sense(rng: &mut StdRng) -> Sense {
    match rng.gen_range(0u32..4) {
        0 | 1 => Sense::Le,
        2 => Sense::Ge,
        _ => Sense::Eq,
    }
}

/// A random bounded LP: continuous variables with mixed-sign finite lower
/// bounds, occasional infinite uppers, and a handful of random rows.
fn rand_lp(rng: &mut StdRng) -> Model {
    let n = rng.gen_range(2usize..7);
    let maximize = rng.gen::<bool>();
    let mut m = Model::with_backend(
        if maximize {
            Objective::Maximize
        } else {
            Objective::Minimize
        },
        SolverBackend::Sparse,
    );
    let vars: Vec<_> = (0..n)
        .map(|_| {
            let lb = quarters(rng.gen_range(-4.0f64..2.0));
            let width = quarters(rng.gen_range(0.0f64..8.0));
            let ub = if rng.gen_range(0u32..5) == 0 {
                f64::INFINITY
            } else {
                lb + width
            };
            let obj = quarters(rng.gen_range(-5.0f64..5.0));
            m.add_var(lb, ub, obj)
        })
        .collect();
    for _ in 0..rng.gen_range(1usize..4) {
        let coeffs: Vec<f64> = (0..n)
            .map(|_| quarters(rng.gen_range(-3.0f64..3.0)))
            .collect();
        let sense = rand_sense(rng);
        let rhs = quarters(rng.gen_range(-6.0f64..10.0));
        m.add_constraint(vars.iter().zip(&coeffs).map(|(&v, &c)| (v, c)), sense, rhs);
    }
    m
}

/// A random pure-integer program with jittered costs, so the integer
/// optimum is (with overwhelming probability under the fixed seed)
/// unique — letting the suite demand identical incumbents, not just
/// matching objectives.
fn rand_ip(rng: &mut StdRng) -> Model {
    let n = rng.gen_range(2usize..6);
    let maximize = rng.gen::<bool>();
    let mut m = Model::with_backend(
        if maximize {
            Objective::Maximize
        } else {
            Objective::Minimize
        },
        SolverBackend::Sparse,
    );
    let vars: Vec<_> = (0..n)
        .map(|_| {
            let cap = rng.gen_range(0i64..4);
            // A distinct jitter per variable breaks objective ties.
            let obj = quarters(rng.gen_range(-4.0f64..4.0)) + rng.gen_range(0.0f64..1.0) * 1e-3;
            m.add_integer_var(0.0, cap as f64, obj)
        })
        .collect();
    for _ in 0..rng.gen_range(1usize..3) {
        let coeffs: Vec<f64> = (0..n)
            .map(|_| quarters(rng.gen_range(-2.0f64..3.0)))
            .collect();
        let sense = rand_sense(rng);
        let rhs = quarters(rng.gen_range(-2.0f64..8.0));
        m.add_constraint(vars.iter().zip(&coeffs).map(|(&v, &c)| (v, c)), sense, rhs);
    }
    m
}

fn with_dense(model: &Model) -> Model {
    let mut dense = model.clone();
    dense.set_backend(SolverBackend::DenseReference);
    dense
}

fn same_error(a: &SolveError, b: &SolveError) -> bool {
    a == b
}

/// 192 random bounded LPs: both engines must report the same status, and
/// equal objectives at optimality.
#[test]
fn lp_objectives_agree_across_backends() {
    let mut rng = StdRng::seed_from_u64(0xEAE_0001);
    for case in 0..192 {
        let sparse_model = rand_lp(&mut rng);
        let dense_model = with_dense(&sparse_model);
        match (sparse_model.solve_lp(), dense_model.solve_lp()) {
            (Ok(s), Ok(d)) => {
                let tol = 1e-6 * (1.0 + d.objective.abs());
                assert!(
                    (s.objective - d.objective).abs() <= tol,
                    "case {case}: sparse {} vs dense {}",
                    s.objective,
                    d.objective
                );
            }
            (Err(se), Err(de)) => {
                assert!(
                    same_error(&se, &de),
                    "case {case}: sparse err {se:?} vs dense err {de:?}"
                );
            }
            (s, d) => panic!("case {case}: sparse {s:?} vs dense {d:?}"),
        }
    }
}

/// 96 random jittered-cost integer programs: identical incumbents (not
/// just objectives) across backends.
#[test]
fn milp_incumbents_identical_across_backends() {
    let mut rng = StdRng::seed_from_u64(0xEAE_0002);
    for case in 0..96 {
        let sparse_model = rand_ip(&mut rng);
        let dense_model = with_dense(&sparse_model);
        match (sparse_model.solve(), dense_model.solve()) {
            (Ok(s), Ok(d)) => {
                let tol = 1e-6 * (1.0 + d.objective.abs());
                assert!(
                    (s.objective - d.objective).abs() <= tol,
                    "case {case}: sparse obj {} vs dense obj {}",
                    s.objective,
                    d.objective
                );
                let si: Vec<i64> = s.values.iter().map(|v| v.round() as i64).collect();
                let di: Vec<i64> = d.values.iter().map(|v| v.round() as i64).collect();
                assert_eq!(si, di, "case {case}: incumbents differ");
            }
            (Err(se), Err(de)) => {
                assert!(
                    same_error(&se, &de),
                    "case {case}: sparse err {se:?} vs dense err {de:?}"
                );
            }
            (s, d) => panic!("case {case}: sparse {s:?} vs dense {d:?}"),
        }
    }
}

/// ILP-II-shaped instances (one-hot binaries, per-column convexity rows,
/// one equality budget row) at a larger scale than the random sweep: the
/// exact shape the fill flow produces, where bound-flip-heavy knapsack
/// relaxations exercise the sparse engine's candidate list hardest.
#[test]
fn ilp2_shaped_models_agree_across_backends() {
    let mut rng = StdRng::seed_from_u64(0xEAE_0003);
    for case in 0..8 {
        let k = rng.gen_range(6usize..14);
        let cap = rng.gen_range(2u32..5);
        let mut sparse_model = Model::with_backend(Objective::Minimize, SolverBackend::Sparse);
        let mut budget_terms = Vec::new();
        let mut total_cap = 0u32;
        for _ in 0..k {
            let alpha = rng.gen_range(0.2f64..2.0);
            let vars: Vec<_> = (0..=cap)
                .map(|n| {
                    // Non-convex jitter forces genuine branching.
                    let cost = alpha * f64::from(n) * 0.4 + rng.gen_range(0.0f64..0.8);
                    sparse_model.add_binary_var(cost)
                })
                .collect();
            sparse_model.add_constraint(vars.iter().map(|&v| (v, 1.0)), Sense::Eq, 1.0);
            budget_terms.extend(vars.iter().enumerate().map(|(n, &v)| (v, n as f64)));
            total_cap += cap;
        }
        let budget = f64::from(rng.gen_range(1u32..total_cap));
        sparse_model.add_constraint(budget_terms, Sense::Eq, budget);
        let dense_model = with_dense(&sparse_model);
        let s = sparse_model.solve().expect("sparse solvable");
        let d = dense_model.solve().expect("dense solvable");
        let tol = 1e-6 * (1.0 + d.objective.abs());
        assert!(
            (s.objective - d.objective).abs() <= tol,
            "case {case}: sparse {} vs dense {}",
            s.objective,
            d.objective
        );
    }
}
