//! Active-line extraction: the per-layer wire segments the fill must keep
//! its distance from, annotated with the timing data the MDFC objective
//! needs (entry resistance, per-unit resistance, downstream-sink weight).

use pilfill_geom::{Coord, Dir, Rect};
use pilfill_layout::{Design, LayerId, LayoutError, NetId, SegmentId, SignalDir};
use pilfill_rc::{annotate_net_into, AnnotateScratch, SegmentTiming};

/// One active (signal-carrying) line on the fill layer.
///
/// Lines are stored in layer-local *horizontal* orientation: a vertically
/// routed layer is transposed during extraction so every downstream
/// algorithm can assume horizontal routing (the paper's convention).
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveLine {
    /// Owning net; `None` for obstruction pseudo-lines (macros block fill
    /// and induce coupling on their neighbours, but have no signal of
    /// their own).
    pub net: Option<NetId>,
    /// Segment within the net.
    pub segment: SegmentId,
    /// Drawn rectangle (in the possibly transposed frame).
    pub rect: Rect,
    /// Downstream sink count (the paper's weight `W_l`).
    pub weight: u32,
    /// Per-unit-length resistance in ohm/dbu.
    pub res_per_dbu: f64,
    /// Resistance from the net source to the signal-entry end of the line.
    pub upstream_res: f64,
    /// x coordinate (in the transposed frame) of the signal-entry end.
    pub entry_x: Coord,
    /// Signal flow along x.
    pub signal: SignalDir,
}

impl ActiveLine {
    /// Upstream resistance seen at position `x` along the line (Eq. (13)'s
    /// `R_l + sum r_l`): entry resistance plus wire resistance from the
    /// entry end to `x`. `x` is clamped to the line's extent.
    pub fn res_at(&self, x: Coord) -> f64 {
        let x = x.clamp(self.rect.left, self.rect.right);
        self.upstream_res + self.res_per_dbu * (x - self.entry_x).abs() as f64
    }
}

/// Reusable arena for [`extract_net_lines_with`]: the RC annotator's
/// traversal scratch plus the per-net timing buffer. A warm scratch makes
/// re-extracting a net allocation-free.
#[derive(Debug, Default)]
pub struct ExtractScratch {
    annotate: AnnotateScratch,
    timing: Vec<SegmentTiming>,
}

/// Extracts all active lines of `layer`, transposing vertical layers into
/// the horizontal frame. Wrong-direction segments on the layer are skipped
/// (the paper ignores wrong-direction routing, Sec. 5.2). Obstructions on
/// the layer become zero-weight, zero-resistance pseudo-lines: fill keeps
/// its distance from them and their induced coupling charges only the
/// *real* line on the other side of a gap.
///
/// # Errors
///
/// Propagates net-topology errors from the RC annotator.
pub fn extract_active_lines(
    design: &Design,
    layer: LayerId,
) -> Result<Vec<ActiveLine>, LayoutError> {
    let mut out = Vec::new();
    extract_active_lines_into(design, layer, &mut out)?;
    Ok(out)
}

/// [`extract_active_lines`] into a caller-owned buffer: `out` is cleared
/// and refilled, reusing its capacity across extractions.
///
/// # Errors
///
/// Propagates net-topology errors from the RC annotator; `out` may hold a
/// partial extraction on error.
pub fn extract_active_lines_into(
    design: &Design,
    layer: LayerId,
    out: &mut Vec<ActiveLine>,
) -> Result<(), LayoutError> {
    out.clear();
    let mut scratch = ExtractScratch::default();
    for net_id in 0..design.nets.len() {
        extract_net_lines_with(design, layer, NetId(net_id), &mut scratch, out)?;
    }
    extract_obstruction_lines(design, layer, out);
    Ok(())
}

/// Appends the active lines of one net, in segment order — the same order
/// and values [`extract_active_lines`] produces for that net (per-net RC
/// annotation is independent of every other net). The incremental rebuild
/// cache uses this to re-extract only the nets whose geometry changed.
///
/// # Errors
///
/// Propagates the net's topology error from the RC annotator.
pub fn extract_net_lines(
    design: &Design,
    layer: LayerId,
    net_id: NetId,
    out: &mut Vec<ActiveLine>,
) -> Result<(), LayoutError> {
    extract_net_lines_with(design, layer, net_id, &mut ExtractScratch::default(), out)
}

/// [`extract_net_lines`] over a caller-owned [`ExtractScratch`]: with warm
/// buffers the per-net annotation performs no heap allocation. The output
/// is identical — the scratch only changes where intermediates live.
///
/// # Errors
///
/// Propagates the net's topology error from the RC annotator.
pub fn extract_net_lines_with(
    design: &Design,
    layer: LayerId,
    net_id: NetId,
    scratch: &mut ExtractScratch,
    out: &mut Vec<ActiveLine>,
) -> Result<(), LayoutError> {
    let net = &design.nets[net_id.0];
    let layer_dir = design.layers[layer.0].dir;
    if !net.segments.iter().any(|s| s.layer == layer) {
        return Ok(());
    }
    annotate_net_into(
        net,
        &design.tech,
        &mut scratch.annotate,
        &mut scratch.timing,
    )?;
    for (seg_idx, seg) in net.segments.iter().enumerate() {
        if seg.layer != layer || seg.dir() != layer_dir {
            continue;
        }
        let t = scratch.timing[seg_idx];
        let rect = match layer_dir {
            Dir::Horizontal => seg.rect(),
            Dir::Vertical => seg.rect().transposed(),
        };
        let entry = match layer_dir {
            Dir::Horizontal => seg.start.x,
            Dir::Vertical => seg.start.y,
        };
        out.push(ActiveLine {
            net: Some(net_id),
            segment: SegmentId(seg_idx),
            rect,
            weight: t.weight,
            res_per_dbu: t.res_per_dbu,
            upstream_res: t.upstream_res,
            entry_x: entry,
            signal: seg.signal_dir(),
        });
    }
    Ok(())
}

/// Appends the obstruction pseudo-lines of `layer` (they always trail the
/// net lines in extraction order).
pub fn extract_obstruction_lines(design: &Design, layer: LayerId, out: &mut Vec<ActiveLine>) {
    let layer_dir = design.layers[layer.0].dir;
    for o in design.obstructions_on_layer(layer) {
        let rect = match layer_dir {
            Dir::Horizontal => o.rect,
            Dir::Vertical => o.rect.transposed(),
        };
        out.push(ActiveLine {
            net: None,
            segment: SegmentId(usize::MAX),
            rect,
            weight: 0,
            res_per_dbu: 0.0,
            upstream_res: 0.0,
            entry_x: rect.left,
            signal: SignalDir::Increasing,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilfill_geom::{Dir, Point};
    use pilfill_layout::DesignBuilder;

    fn design() -> Design {
        DesignBuilder::new("d", Rect::new(0, 0, 50_000, 50_000))
            .layer("m3", Dir::Horizontal)
            .layer("m2", Dir::Vertical)
            .net("a", Point::new(1_000, 10_000))
            .segment(
                "m3",
                Point::new(1_000, 10_000),
                Point::new(41_000, 10_000),
                200,
            )
            .segment(
                "m2",
                Point::new(41_000, 10_000),
                Point::new(41_000, 30_000),
                200,
            )
            .sink(Point::new(41_000, 30_000))
            .build()
            .expect("valid")
    }

    #[test]
    fn horizontal_layer_lines_extracted() {
        let d = design();
        let lines = extract_active_lines(&d, LayerId(0)).expect("extract");
        assert_eq!(lines.len(), 1);
        let l = &lines[0];
        assert_eq!(l.rect, Rect::new(1_000, 9_900, 41_000, 10_100));
        assert_eq!(l.weight, 1);
        assert_eq!(l.entry_x, 1_000);
        assert_eq!(l.upstream_res, 0.0);
    }

    #[test]
    fn vertical_layer_lines_are_transposed() {
        let d = design();
        let lines = extract_active_lines(&d, LayerId(1)).expect("extract");
        assert_eq!(lines.len(), 1);
        let l = &lines[0];
        // Original rect: x [40900, 41100), y [10000, 30000) -> transposed.
        assert_eq!(l.rect, Rect::new(10_000, 40_900, 30_000, 41_100));
        // Entry at the jog's start y.
        assert_eq!(l.entry_x, 10_000);
        // The vertical segment has the trunk upstream of it.
        assert!(l.upstream_res > 0.0);
    }

    #[test]
    fn res_at_grows_away_from_entry() {
        let d = design();
        let lines = extract_active_lines(&d, LayerId(0)).expect("extract");
        let l = &lines[0];
        assert_eq!(l.res_at(1_000), l.upstream_res);
        let mid = l.res_at(21_000);
        let far = l.res_at(41_000);
        assert!(mid > l.upstream_res);
        assert!(far > mid);
        // 40_000 dbu of 200-wide wire at 0.07 ohm/sq = 14 ohm.
        assert!((far - 14.0).abs() < 1e-9, "far = {far}");
        // Clamped outside the line.
        assert_eq!(l.res_at(100_000), far);
        assert_eq!(l.res_at(-5), l.upstream_res);
    }

    #[test]
    fn reversed_signal_direction_measures_from_right() {
        let d = DesignBuilder::new("d", Rect::new(0, 0, 50_000, 50_000))
            .layer("m3", Dir::Horizontal)
            .net("a", Point::new(41_000, 10_000))
            .segment(
                "m3",
                Point::new(41_000, 10_000),
                Point::new(1_000, 10_000),
                200,
            )
            .sink(Point::new(1_000, 10_000))
            .build()
            .expect("valid");
        let lines = extract_active_lines(&d, LayerId(0)).expect("extract");
        let l = &lines[0];
        assert_eq!(l.entry_x, 41_000);
        assert_eq!(l.signal, SignalDir::Decreasing);
        assert!(l.res_at(1_000) > l.res_at(40_000));
    }
}
