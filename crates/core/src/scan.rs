//! The scan-line slack-column algorithm (paper Figure 7).
//!
//! Assuming horizontal routing, the area is divided into vertical *site
//! columns* one fill-site wide. Sweeping the active lines bottom-to-top
//! yields, per site column, the maximal vertical gaps between consecutive
//! lines (or between a line and the area boundary). Each gap is a
//! [`SlackColumn`]: it knows the line below, the line above, and the
//! concrete fill *slots* (y positions) that respect the buffer distance.

use crate::{ActiveLine, FillFeature};
use pilfill_geom::{Coord, Interval, Rect};
use pilfill_layout::FillRules;

/// A maximal vertical run of fillable space in one site column.
#[derive(Debug, Clone, PartialEq)]
pub struct SlackColumn {
    /// Site-column index (0 = leftmost).
    pub site_x: usize,
    /// Left edge of the site column.
    pub x: Coord,
    /// Edge-to-edge vertical gap `[below.top, above.bottom)` (or the area
    /// boundary where no line bounds the gap).
    pub gap: Interval,
    /// Index (into the scanned line slice) of the line below, if any.
    pub below: Option<usize>,
    /// Index of the line above, if any.
    pub above: Option<usize>,
    /// Feasible fill slot bottoms (ascending y), spaced one site pitch
    /// apart, respecting the buffer distance on line-bounded sides.
    pub slots: Vec<Coord>,
}

impl SlackColumn {
    /// Number of fill features the column can hold (the paper's `C_k`).
    pub fn capacity(&self) -> u32 {
        pilfill_geom::units::saturating_count(self.slots.len() as u64)
    }

    /// The line-to-line distance `d` of the capacitance model, defined only
    /// when both sides are active lines.
    pub fn distance(&self) -> Option<Coord> {
        match (self.below, self.above) {
            (Some(_), Some(_)) => Some(self.gap.len()),
            _ => None,
        }
    }

    /// x of a fill feature placed in this column (centered in the site).
    pub fn feature_x(&self, rules: FillRules) -> Coord {
        self.x + (rules.site_pitch() - rules.feature_size) / 2
    }
}

fn slots_for_gap(
    gap: Interval,
    below_is_line: bool,
    above_is_line: bool,
    rules: FillRules,
) -> Vec<Coord> {
    let lo = gap.lo + if below_is_line { rules.buffer } else { 0 };
    let hi = gap.hi - if above_is_line { rules.buffer } else { 0 };
    let mut slots = Vec::new();
    let mut y = lo;
    while y + rules.feature_size <= hi {
        slots.push(y);
        y += rules.site_pitch();
    }
    slots
}

/// Runs the Figure-7 scan over `bounds`, producing every slack column.
///
/// `lines` must be in the horizontal frame (see
/// [`crate::extract_active_lines`]); only their overlap with `bounds` is
/// considered. Site columns narrower than one site pitch (at the right
/// boundary) are skipped — they cannot hold a feature.
pub fn scan_slack_columns(
    lines: &[ActiveLine],
    bounds: Rect,
    rules: FillRules,
) -> Vec<SlackColumn> {
    let pitch = rules.site_pitch();
    let n_cols = pilfill_geom::units::index(bounds.width() / pitch);
    if n_cols == 0 {
        return Vec::new();
    }

    // Lines sorted by bottom edge (step 2 of Figure 7), pre-clipped to the
    // scan bounds. Each line is expanded by the buffer distance in x so
    // that no slot can be created within the buffer of a line *end*; the
    // vertical buffer is enforced per-slot instead (`slots_for_gap`), which
    // keeps the gap's edge-to-edge distance `d` exact for the capacitance
    // model.
    let mut order: Vec<(usize, Rect)> = lines
        .iter()
        .enumerate()
        .filter_map(|(i, l)| {
            let expanded = Rect::new(
                l.rect.left - rules.buffer,
                l.rect.bottom,
                l.rect.right + rules.buffer,
                l.rect.top,
            );
            let clipped = expanded.intersection(&bounds);
            (!clipped.is_empty()).then_some((i, clipped))
        })
        .collect();
    order.sort_by_key(|(_, r)| r.bottom);

    // Open gap state per site column.
    let mut open_y = vec![bounds.bottom; n_cols];
    let mut open_below: Vec<Option<usize>> = vec![None; n_cols];
    let mut out = Vec::new();

    let col_range = |r: &Rect| -> (usize, usize) {
        // Site columns whose [x, x+pitch) overlaps the rect's x span.
        let lo = pilfill_geom::units::index(((r.left - bounds.left) / pitch).max(0));
        let hi = pilfill_geom::units::index((r.right - 1 - bounds.left) / pitch).min(n_cols - 1);
        (lo, hi)
    };

    let emit = |site_x: usize,
                gap: Interval,
                below: Option<usize>,
                above: Option<usize>,
                out: &mut Vec<SlackColumn>| {
        if gap.is_empty() {
            return;
        }
        let slots = slots_for_gap(gap, below.is_some(), above.is_some(), rules);
        out.push(SlackColumn {
            site_x,
            x: bounds.left + pilfill_geom::units::coord(site_x) * pitch,
            gap,
            below,
            above,
            slots,
        });
    };

    for (line_idx, rect) in order {
        let (lo, hi) = col_range(&rect);
        for c in lo..=hi {
            let gap = Interval::new(open_y[c], rect.bottom);
            emit(c, gap, open_below[c], Some(line_idx), &mut out);
            open_y[c] = open_y[c].max(rect.top);
            open_below[c] = Some(line_idx);
        }
    }
    // Step 14: close columns at the top boundary.
    for c in 0..n_cols {
        let gap = Interval::new(open_y[c], bounds.top);
        emit(c, gap, open_below[c], None, &mut out);
    }

    out.sort_by_key(|col| (col.site_x, col.gap.lo));
    out
}

/// Locates the slack column (by index into `columns`) that contains a fill
/// feature placed at `feature`. Returns `None` for positions outside every
/// column (e.g. inside a line or out of bounds).
///
/// `columns` must be the unmodified result of [`scan_slack_columns`] for
/// the same `bounds` and `rules`.
pub fn locate_feature(
    columns: &[SlackColumn],
    bounds: Rect,
    rules: FillRules,
    feature: FillFeature,
) -> Option<usize> {
    let pitch = rules.site_pitch();
    if feature.x < bounds.left || feature.y < bounds.bottom {
        return None;
    }
    let site_x = pilfill_geom::units::index((feature.x - bounds.left) / pitch);
    // Binary search the sorted (site_x, gap.lo) order.
    let start = columns.partition_point(|c| c.site_x < site_x);
    columns[start..]
        .iter()
        .take_while(|c| c.site_x == site_x)
        .position(|c| c.gap.contains(feature.y))
        .map(|offset| start + offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilfill_layout::{NetId, SegmentId, SignalDir};

    fn rules() -> FillRules {
        FillRules {
            feature_size: 300,
            gap: 150,
            buffer: 150,
        }
    }

    fn line(rect: Rect) -> ActiveLine {
        ActiveLine {
            net: Some(NetId(0)),
            segment: SegmentId(0),
            rect,
            weight: 1,
            res_per_dbu: 3.5e-4,
            upstream_res: 0.0,
            entry_x: rect.left,
            signal: SignalDir::Increasing,
        }
    }

    #[test]
    fn empty_area_yields_full_height_columns() {
        let bounds = Rect::new(0, 0, 4_500, 3_000);
        let cols = scan_slack_columns(&[], bounds, rules());
        assert_eq!(cols.len(), 10); // 4500 / 450
        for c in &cols {
            assert_eq!(c.gap, Interval::new(0, 3_000));
            assert_eq!(c.below, None);
            assert_eq!(c.above, None);
            // No buffers at boundaries: slots at 0, 450, ..., 2700.
            assert_eq!(c.capacity(), 7);
            assert_eq!(c.distance(), None);
        }
    }

    #[test]
    fn single_line_splits_columns() {
        let bounds = Rect::new(0, 0, 900, 10_000);
        let l = line(Rect::new(0, 4_000, 900, 4_200));
        let cols = scan_slack_columns(&[l], bounds, rules());
        // 2 site columns x 2 gaps each.
        assert_eq!(cols.len(), 4);
        let below_gaps: Vec<_> = cols.iter().filter(|c| c.above == Some(0)).collect();
        let above_gaps: Vec<_> = cols.iter().filter(|c| c.below == Some(0)).collect();
        assert_eq!(below_gaps.len(), 2);
        assert_eq!(above_gaps.len(), 2);
        assert_eq!(below_gaps[0].gap, Interval::new(0, 4_000));
        assert_eq!(above_gaps[0].gap, Interval::new(4_200, 10_000));
        // Buffer applies on the line side only.
        assert_eq!(below_gaps[0].slots.first(), Some(&0));
        let last = *below_gaps[0].slots.last().expect("has slots");
        assert!(last + 300 <= 4_000 - 150);
    }

    #[test]
    fn gap_between_two_lines_has_distance() {
        let bounds = Rect::new(0, 0, 450, 10_000);
        let a = line(Rect::new(0, 1_000, 450, 1_200));
        let b = line(Rect::new(0, 3_000, 450, 3_300));
        let cols = scan_slack_columns(&[a, b], bounds, rules());
        let mid = cols
            .iter()
            .find(|c| c.below == Some(0) && c.above == Some(1))
            .expect("middle gap");
        assert_eq!(mid.gap, Interval::new(1_200, 3_000));
        assert_eq!(mid.distance(), Some(1_800));
        // usable = 1800 - 300 = 1500 -> slots at 1350, 1800, 2250 + ...
        // floor((1500 - 300)/450)+1 = 3.
        assert_eq!(mid.capacity(), 3);
        // All slots respect buffers.
        for &s in &mid.slots {
            assert!(s >= 1_200 + 150);
            assert!(s + 300 <= 3_000 - 150);
        }
    }

    #[test]
    fn capacity_matches_rc_helper_for_line_line_gaps() {
        let bounds = Rect::new(0, 0, 450, 50_000);
        for gap_len in (700..20_000).step_by(333) {
            let a = line(Rect::new(0, 1_000, 450, 1_200));
            let b = line(Rect::new(0, 1_200 + gap_len, 450, 1_500 + gap_len));
            let cols = scan_slack_columns(&[a, b], bounds, rules());
            let mid = cols
                .iter()
                .find(|c| c.below == Some(0) && c.above == Some(1))
                .expect("gap");
            assert_eq!(
                mid.capacity(),
                pilfill_rc::max_fill_features(gap_len, rules()),
                "gap {gap_len}"
            );
        }
    }

    #[test]
    fn partial_x_overlap_only_affects_covered_columns() {
        let bounds = Rect::new(0, 0, 1_800, 5_000); // 4 site columns
                                                    // The line covers columns 0 and 1; its buffer-expanded extent
                                                    // [-150, 1050) additionally blocks column 2 ([900, 1350)).
        let l = line(Rect::new(0, 2_000, 900, 2_200));
        let cols = scan_slack_columns(&[l], bounds, rules());
        let full: Vec<_> = cols
            .iter()
            .filter(|c| c.gap == Interval::new(0, 5_000))
            .collect();
        assert_eq!(full.len(), 1); // only column 3 untouched
        assert!(full.iter().all(|c| c.site_x == 3));
    }

    #[test]
    fn no_slot_within_buffer_of_a_line_end() {
        let bounds = Rect::new(0, 0, 4_500, 5_000);
        let l = line(Rect::new(2_000, 2_000, 3_000, 2_280));
        let r = rules();
        let cols = scan_slack_columns(&[l], bounds, r);
        for c in &cols {
            for &slot in &c.slots {
                let feat = Rect::new(
                    c.feature_x(r),
                    slot,
                    c.feature_x(r) + r.feature_size,
                    slot + r.feature_size,
                );
                let keepout = Rect::new(2_000, 2_000, 3_000, 2_280).grown(r.buffer);
                assert!(
                    !feat.overlaps(&keepout),
                    "slot at {feat} violates buffer around the line"
                );
            }
        }
    }

    #[test]
    fn touching_lines_produce_no_gap_between() {
        let bounds = Rect::new(0, 0, 450, 5_000);
        let a = line(Rect::new(0, 1_000, 450, 2_000));
        let b = line(Rect::new(0, 2_000, 450, 3_000));
        let cols = scan_slack_columns(&[a, b], bounds, rules());
        assert!(cols
            .iter()
            .all(|c| !(c.below == Some(0) && c.above == Some(1))));
        assert_eq!(cols.len(), 2); // bottom and top boundary gaps only
    }

    #[test]
    fn locate_feature_round_trips_slots() {
        let bounds = Rect::new(0, 0, 4_500, 8_000);
        let a = line(Rect::new(900, 3_000, 3_600, 3_300));
        let cols = scan_slack_columns(&[a], bounds, rules());
        for (i, c) in cols.iter().enumerate() {
            for &slot in &c.slots {
                let f = FillFeature {
                    x: c.feature_x(rules()),
                    y: slot,
                };
                assert_eq!(
                    locate_feature(&cols, bounds, rules(), f),
                    Some(i),
                    "column {i} slot {slot}"
                );
            }
        }
    }

    #[test]
    fn locate_feature_outside_returns_none() {
        let bounds = Rect::new(0, 0, 900, 5_000);
        let a = line(Rect::new(0, 2_000, 900, 2_500));
        let cols = scan_slack_columns(&[a], bounds, rules());
        // Inside the line.
        let inside = FillFeature { x: 75, y: 2_100 };
        assert_eq!(locate_feature(&cols, bounds, rules(), inside), None);
        // Out of bounds.
        let out = FillFeature { x: -10, y: 0 };
        assert_eq!(locate_feature(&cols, bounds, rules(), out), None);
    }

    #[test]
    fn slot_capacity_sums_are_stable_under_line_order() {
        let bounds = Rect::new(0, 0, 2_700, 9_000);
        let mut lines = vec![
            line(Rect::new(0, 1_000, 2_700, 1_200)),
            line(Rect::new(450, 5_000, 1_800, 5_300)),
            line(Rect::new(0, 7_000, 900, 7_400)),
        ];
        let a = scan_slack_columns(&lines, bounds, rules());
        lines.reverse();
        // Line indices change, but geometry (gaps and capacities) must not.
        let b = scan_slack_columns(&lines, bounds, rules());
        let summarize = |cols: &[SlackColumn]| -> Vec<(usize, Interval, u32)> {
            cols.iter()
                .map(|c| (c.site_x, c.gap, c.capacity()))
                .collect()
        };
        assert_eq!(summarize(&a), summarize(&b));
    }
}
