//! The scan-line slack-column algorithm (paper Figure 7).
//!
//! Assuming horizontal routing, the area is divided into vertical *site
//! columns* one fill-site wide. Sweeping the active lines bottom-to-top
//! yields, per site column, the maximal vertical gaps between consecutive
//! lines (or between a line and the area boundary). Each gap is a
//! [`SlackColumn`]: it knows the line below, the line above, and the
//! concrete fill *slots* (y positions) that respect the buffer distance.
//!
//! The sweep runs over a caller-owned [`ScanScratch`] arena: the line
//! events, the struct-of-arrays event mirrors, the occupancy bitmask and
//! the active-set buffers all live in reused storage, and a [`SlackColumn`]
//! is a flat `Copy` value (its slots are an arithmetic progression, not a
//! `Vec`), so a warm re-scan performs zero heap allocation.
//!
//! Two implementations share the event builder:
//!
//! - [`scan_site_columns`] — the production *span sweep*. Site columns
//!   where the active-line set can change are marked in a chunked `u64`
//!   bitmask ([`layout::MASK_WORD_BITS`]); maximal zero runs are spans
//!   whose columns all see the identical active set, so the gap structure
//!   is built once per span (a template of `Copy` gaps) and stamped per
//!   column. The active set itself is a rank-sorted index into separate
//!   flat `Coord`/`u32` arrays (struct-of-arrays), maintained with a
//!   branch-light retain + two-pointer merge per boundary.
//! - [`scan_site_columns_reference`] — the retained per-column interval
//!   walk, kept verbatim as the oracle the span sweep is property-tested
//!   against (bit-identical output is a hard invariant).

use crate::{ActiveLine, FillFeature};
use pilfill_geom::{units, Coord, Interval, Rect};
use pilfill_layout::FillRules;

pub mod layout;

/// Feasible fill slot bottoms of one slack column, stored as an arithmetic
/// progression `lo, lo + pitch, ..., lo + (count - 1) * pitch` instead of a
/// materialized `Vec<Coord>`. Slots are always evenly spaced by the site
/// pitch, so the progression is lossless, `Copy`, and lets tile splitting
/// take O(1) sub-ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slots {
    lo: Coord,
    /// Stride in dbu. Stored narrow (site pitches are a few hundred dbu)
    /// so a [`SlackColumn`] packs into one 64-byte cache line; widened
    /// back to `Coord` for all arithmetic.
    pitch: i32,
    count: u32,
}

impl Slots {
    /// The progression with no slots.
    pub const EMPTY: Slots = Slots {
        lo: 0,
        pitch: 1,
        count: 0,
    };

    /// The progression `lo, lo + pitch, ..., lo + (count - 1) * pitch`.
    ///
    /// # Panics
    ///
    /// Panics if `pitch <= 0` (the empty progression still needs a valid
    /// stride for arithmetic) or if `pitch` overflows the packed `i32`
    /// stride.
    pub fn evenly(lo: Coord, pitch: Coord, count: u32) -> Slots {
        assert!(
            pitch > 0 && pitch <= i64::from(i32::MAX),
            "slot pitch must be positive and fit i32 (got {pitch})"
        );
        Slots {
            lo,
            // Range-checked by the assert above.
            pitch: pitch as i32, // pilfill: allow(as-cast)
            count,
        }
    }

    /// Slots of a gap: start `buffer` above the bottom line (none at the
    /// area boundary), step one site pitch, and stop while a feature still
    /// fits below the top line's buffer.
    pub fn for_gap(
        gap: Interval,
        below_is_line: bool,
        above_is_line: bool,
        rules: FillRules,
    ) -> Slots {
        let lo = gap.lo + if below_is_line { rules.buffer } else { 0 };
        let hi = gap.hi - if above_is_line { rules.buffer } else { 0 };
        let pitch = rules.site_pitch();
        let avail = hi - lo - rules.feature_size;
        if avail < 0 {
            return Slots::EMPTY;
        }
        Slots::evenly(
            lo,
            pitch,
            units::saturating_count((avail / pitch) as u64 + 1),
        )
    }

    /// The stride as a `Coord` (internal widening accessor).
    #[inline]
    fn stride(&self) -> Coord {
        Coord::from(self.pitch)
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        // u32 -> usize is widening on every supported target.
        self.count as usize // pilfill: allow(as-cast)
    }

    /// Whether the progression holds no slots.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `i`-th slot bottom, if `i < len()`.
    pub fn get(&self, i: usize) -> Option<Coord> {
        (i < self.len()).then(|| self.lo + units::coord(i) * self.stride())
    }

    /// The first slot bottom.
    pub fn first(&self) -> Option<Coord> {
        self.get(0)
    }

    /// The last slot bottom.
    pub fn last(&self) -> Option<Coord> {
        self.len().checked_sub(1).and_then(|k| self.get(k))
    }

    /// Iterates the slot bottoms in ascending order.
    pub fn iter(self) -> impl DoubleEndedIterator<Item = Coord> + ExactSizeIterator + Clone {
        let Slots { lo, pitch, count } = self;
        (0..count).map(move |k| lo + Coord::from(k) * Coord::from(pitch))
    }

    /// The sub-progression `[start, start + len)`, clamped to the slots
    /// that exist.
    pub fn slice(&self, start: usize, len: usize) -> Slots {
        let start = start.min(self.len());
        let len = len.min(self.len() - start);
        Slots {
            lo: self.lo + units::coord(start) * self.stride(),
            pitch: self.pitch,
            count: units::saturating_count(len as u64),
        }
    }

    /// How many slots lie strictly below `y` — the split point used when a
    /// column is partitioned at a tile-row boundary.
    pub fn count_below(&self, y: Coord) -> usize {
        if self.count == 0 || y <= self.lo {
            return 0;
        }
        let pitch = self.stride();
        let k = (y - self.lo + pitch - 1) / pitch;
        units::index(k).min(self.len())
    }
}

impl IntoIterator for &Slots {
    type Item = Coord;
    type IntoIter = std::vec::IntoIter<Coord>;
    fn into_iter(self) -> Self::IntoIter {
        // Convenience for `for s in &col.slots` call sites; hot paths use
        // the allocation-free `iter()`.
        self.iter().collect::<Vec<_>>().into_iter()
    }
}

/// A maximal vertical run of fillable space in one site column.
///
/// The layout is packed to exactly one 64-byte cache line (enforced
/// below): the scan writes tens of thousands of these per sweep and the
/// tile-problem build streams them all back, so the struct size is the
/// dominant memory-traffic term of both hot paths. Line references are
/// `u32` (line counts are bounded far below `u32::MAX`) and the slot
/// stride is an `i32` for the same reason.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlackColumn {
    /// Site-column index (0 = leftmost).
    pub site_x: usize,
    /// Left edge of the site column.
    pub x: Coord,
    /// Edge-to-edge vertical gap `[below.top, above.bottom)` (or the area
    /// boundary where no line bounds the gap).
    pub gap: Interval,
    /// Index (into the scanned line slice) of the line below, if any.
    pub below: Option<u32>,
    /// Index of the line above, if any.
    pub above: Option<u32>,
    /// Feasible fill slot bottoms (ascending y), spaced one site pitch
    /// apart, respecting the buffer distance on line-bounded sides.
    pub slots: Slots,
}

// One slack column == one cache line; a silent regrowth (e.g. a field
// widening back to `usize`) would re-inflate every scan and tile pass.
const _: () = assert!(std::mem::size_of::<SlackColumn>() == 64);

impl SlackColumn {
    /// Number of fill features the column can hold (the paper's `C_k`).
    pub fn capacity(&self) -> u32 {
        self.slots.count
    }

    /// The line-to-line distance `d` of the capacitance model, defined only
    /// when both sides are active lines.
    pub fn distance(&self) -> Option<Coord> {
        match (self.below, self.above) {
            (Some(_), Some(_)) => Some(self.gap.len()),
            _ => None,
        }
    }

    /// x of a fill feature placed in this column (centered in the site).
    pub fn feature_x(&self, rules: FillRules) -> Coord {
        self.x + (rules.site_pitch() - rules.feature_size) / 2
    }
}

/// One buffer-expanded, bounds-clipped line in the sweep, restricted to
/// the site columns it covers.
#[derive(Debug, Clone, Copy)]
struct SweepEvent {
    bottom: Coord,
    top: Coord,
    /// First covered site column, relative to the scanned range start.
    lo: u32,
    /// Last covered site column (inclusive), relative to the range start.
    hi: u32,
    /// Index into the scanned line slice.
    line: u32,
}

/// Exact division by a scan-invariant positive pitch via the round-up
/// reciprocal method (Granlund & Montgomery): with `l = ceil(log2 d)` and
/// `m = floor(2^(32+l) / d) + 1`, `floor(m * n / 2^(32+l)) == floor(n / d)`
/// for every `0 <= n < 2^32`. Proof sketch: `m * d = 2^(32+l) + k` with
/// `1 <= k <= d`, so the error term `k * n / (d * 2^(32+l))` is strictly
/// below `1 / d` (because `k * n <= 2^l * (2^32 - 1) < 2^(32+l)`), which
/// can never carry `floor(n / d + err)` past the next integer. The sweep
/// divides once per emitted gap; replacing the hardware divide with a
/// multiply + shift is a measurable win on the scan hot path.
#[derive(Debug, Clone, Copy)]
struct PitchRecip {
    m: u64,
    s: u32,
}

impl PitchRecip {
    fn new(pitch: Coord) -> PitchRecip {
        assert!(pitch > 0, "site pitch must be positive (got {pitch})");
        let l = if pitch == 1 {
            0
        } else {
            64 - ((pitch - 1) as u64).leading_zeros() // pilfill: allow(as-cast)
        };
        let m = ((1u128 << (32 + l)) / pitch as u128) as u64 + 1; // pilfill: allow(as-cast)
        PitchRecip { m, s: 32 + l }
    }

    /// `n / pitch` for `0 <= n < 2^32` (callers guard the range).
    #[inline]
    fn div(self, n: Coord) -> Coord {
        debug_assert!((0..1 << 32).contains(&n));
        ((n as u64 as u128 * u128::from(self.m)) >> self.s) as Coord // pilfill: allow(as-cast)
    }
}

/// Reusable arena for [`scan_slack_columns_into`]: sweep events, their
/// struct-of-arrays mirrors, the boundary/active bitmasks and the
/// starter/ender schedules, plus the retained reference path's
/// counting-sort bucket. A warm scratch makes a re-scan allocation-free.
#[derive(Debug, Default)]
pub struct ScanScratch {
    events: Vec<SweepEvent>,
    // Struct-of-arrays mirrors of the bottom-sorted events (span sweep).
    /// Clipped bottom edges, indexed by event rank.
    soa_bottom: Vec<Coord>,
    /// Clipped top edges, indexed by event rank.
    soa_top: Vec<Coord>,
    /// Scanned-line index, indexed by event rank.
    soa_line: Vec<u32>,
    /// Chunked boundary bitmask over the scanned columns: bit `c` is set
    /// when a line starts at relative column `c`.
    start_mask: Vec<u64>,
    /// Bit `c` set when a line's last covered column is `c - 1`.
    end_mask: Vec<u64>,
    /// Span boundaries (`start_mask | end_mask | bit 0`) decoded to
    /// ascending relative columns.
    spans: Vec<u32>,
    /// Exclusive prefix offsets into `starters`, one per scanned column + 1.
    start_offsets: Vec<u32>,
    /// Event ranks grouped by first covered column, each group rank-sorted.
    starters: Vec<u32>,
    /// Exclusive prefix offsets into `enders`, one per scanned column + 1.
    end_offsets: Vec<u32>,
    /// Event ranks grouped by the column *after* their last, rank-sorted.
    enders: Vec<u32>,
    /// Per-column write cursors shared by both distributions.
    start_cursors: Vec<u32>,
    /// Chunked active-set bitmask over event ranks: bit `r` set while
    /// event `r` covers the current span. Ascending bit order is
    /// ascending rank order — the emission order of the interval walk.
    active_words: Vec<u64>,
    // Retained interval-walk reference path.
    /// Exclusive prefix offsets into `bucket`, one per scanned column + 1.
    offsets: Vec<u32>,
    /// Per-column write cursors while distributing events.
    cursors: Vec<u32>,
    /// Event indices grouped by column, each group in global bottom order.
    bucket: Vec<u32>,
}

/// Runs the Figure-7 scan over `bounds`, producing every slack column.
///
/// `lines` must be in the horizontal frame (see
/// [`crate::extract_active_lines`]); only their overlap with `bounds` is
/// considered. Site columns narrower than one site pitch (at the right
/// boundary) are skipped — they cannot hold a feature.
///
/// Convenience wrapper over [`scan_slack_columns_into`] with a fresh
/// scratch; repeated callers should hold their own [`ScanScratch`].
pub fn scan_slack_columns(
    lines: &[ActiveLine],
    bounds: Rect,
    rules: FillRules,
) -> Vec<SlackColumn> {
    let mut scratch = ScanScratch::default();
    let mut out = Vec::new();
    scan_slack_columns_into(lines, bounds, rules, &mut scratch, &mut out);
    out
}

/// [`scan_slack_columns`] over a caller-owned scratch arena and output
/// buffer: `out` is cleared and refilled, and with warm buffers the scan
/// performs no heap allocation.
pub fn scan_slack_columns_into(
    lines: &[ActiveLine],
    bounds: Rect,
    rules: FillRules,
    scratch: &mut ScanScratch,
    out: &mut Vec<SlackColumn>,
) {
    out.clear();
    let n_cols = site_column_count(bounds, rules);
    scan_site_columns(lines, bounds, rules, 0..n_cols, scratch, out);
}

/// Number of full site columns across `bounds`.
pub fn site_column_count(bounds: Rect, rules: FillRules) -> usize {
    units::index(bounds.width() / rules.site_pitch())
}

/// Builds the bottom-sorted sweep events of `lines` over the site columns
/// `lo_site..hi_site` (step 2 of Figure 7), with covered columns stored
/// relative to `lo_site`. Each line is expanded by the buffer distance in
/// x so that no slot can be created within the buffer of a line *end*; the
/// vertical buffer is enforced per-slot instead (`Slots::for_gap`), which
/// keeps the gap's edge-to-edge distance `d` exact for the capacitance
/// model. Equal bottoms stay in line order, matching the historical
/// stable sweep exactly: each line yields at most one event and events
/// are pushed in line order, so the unstable sort's `(bottom, line)` key
/// is duplicate-free and reproduces a stable bottom sort without the
/// merge-buffer allocation.
fn build_events(
    lines: &[ActiveLine],
    bounds: Rect,
    rules: FillRules,
    lo_site: usize,
    hi_site: usize,
    events: &mut Vec<SweepEvent>,
) {
    let pitch = rules.site_pitch();
    events.clear();
    for (i, l) in lines.iter().enumerate() {
        let expanded = Rect::new(
            l.rect.left - rules.buffer,
            l.rect.bottom,
            l.rect.right + rules.buffer,
            l.rect.top,
        );
        let clipped = expanded.intersection(&bounds);
        if clipped.is_empty() {
            continue;
        }
        // Site columns whose [x, x+pitch) overlaps the rect's x span,
        // clamped to the requested range.
        let lo = units::index(((clipped.left - bounds.left) / pitch).max(0)).max(lo_site);
        let hi = units::index((clipped.right - 1 - bounds.left) / pitch).min(hi_site - 1);
        if lo > hi {
            continue;
        }
        // Site indices are bounded by die width / pitch and line indices
        // by the input slice length — both far below u32::MAX.
        events.push(SweepEvent {
            bottom: clipped.bottom,
            top: clipped.top,
            lo: (lo - lo_site) as u32, // pilfill: allow(as-cast)
            hi: (hi - lo_site) as u32, // pilfill: allow(as-cast)
            line: i as u32,            // pilfill: allow(as-cast)
        });
    }
    events.sort_unstable_by_key(|e| (e.bottom, e.line));
}

/// Scans only the site columns in `sites` (absolute indices), *appending*
/// their slack columns to `out` in (site_x, gap.lo) order. This is the
/// partial-rescan entry used by the incremental rebuild cache: columns of
/// clean site ranges are reused, dirty ranges are re-swept.
///
/// This is the production span sweep (see the module docs); its output is
/// bit-identical to [`scan_site_columns_reference`], enforced by seeded
/// property tests.
pub fn scan_site_columns(
    lines: &[ActiveLine],
    bounds: Rect,
    rules: FillRules,
    sites: std::ops::Range<usize>,
    scratch: &mut ScanScratch,
    out: &mut Vec<SlackColumn>,
) {
    let pitch = rules.site_pitch();
    let n_cols = site_column_count(bounds, rules);
    let lo_site = sites.start.min(n_cols);
    let hi_site = sites.end.min(n_cols);
    if lo_site >= hi_site {
        return;
    }
    let n_active = hi_site - lo_site;

    build_events(lines, bounds, rules, lo_site, hi_site, &mut scratch.events);
    let ScanScratch {
        events,
        soa_bottom,
        soa_top,
        soa_line,
        start_mask,
        end_mask,
        spans,
        start_offsets,
        starters,
        end_offsets,
        enders,
        start_cursors,
        active_words,
        ..
    } = scratch;
    const W: usize = layout::MASK_WORD_BITS;

    // Struct-of-arrays mirrors: the emission loop reads bottoms, tops and
    // line indices as independent flat streams instead of chasing whole
    // event structs through the cache.
    soa_bottom.clear();
    soa_top.clear();
    soa_line.clear();
    for e in events.iter() {
        soa_bottom.push(e.bottom);
        soa_top.push(e.top);
        soa_line.push(e.line);
    }

    // Boundary bitmasks: bit `c` of `start_mask` marks a line's first
    // covered column, bit `c` of `end_mask` the column right after a
    // line's last. Maximal runs with neither bit set are spans whose
    // columns all emit identical gaps. u32 -> usize below is widening on
    // every supported target.
    let words = n_active.div_ceil(W);
    start_mask.clear();
    start_mask.resize(words, 0);
    end_mask.clear();
    end_mask.resize(words, 0);
    for e in events.iter() {
        let lo = e.lo as usize; // pilfill: allow(as-cast)
        start_mask[lo / W] |= 1u64 << (lo % W);
        let after = e.hi as usize + 1; // pilfill: allow(as-cast)
        if after < n_active {
            end_mask[after / W] |= 1u64 << (after % W);
        }
    }
    // Word-level bit scan of the union: each boundary costs one
    // `trailing_zeros` plus one clear-lowest-bit, independent of how wide
    // its span is.
    spans.clear();
    for wi in 0..words {
        let mut w = start_mask[wi] | end_mask[wi];
        if wi == 0 {
            w |= 1;
        }
        while w != 0 {
            let bit = w.trailing_zeros() as usize; // pilfill: allow(as-cast)
            spans.push((wi * W + bit) as u32); // pilfill: allow(as-cast)
            w &= w - 1;
        }
    }

    // Counting-sort the events into per-boundary schedules: `starters[b]`
    // holds the ranks whose first column is `b`, `enders[b]` the ranks
    // whose last column is `b - 1`. Distributing in rank (bottom-sort)
    // order keeps each group rank-sorted.
    start_offsets.clear();
    start_offsets.resize(n_active + 1, 0);
    end_offsets.clear();
    end_offsets.resize(n_active + 1, 0);
    for e in events.iter() {
        start_offsets[e.lo as usize + 1] += 1; // pilfill: allow(as-cast)
        let after = e.hi as usize + 1; // pilfill: allow(as-cast)
        if after < n_active {
            end_offsets[after + 1] += 1;
        }
    }
    for i in 0..n_active {
        start_offsets[i + 1] += start_offsets[i];
        end_offsets[i + 1] += end_offsets[i];
    }
    starters.clear();
    starters.resize(events.len(), 0);
    start_cursors.clear();
    start_cursors.extend_from_slice(&start_offsets[..n_active]);
    for (rank, e) in events.iter().enumerate() {
        let cursor = &mut start_cursors[e.lo as usize]; // pilfill: allow(as-cast)
        starters[*cursor as usize] = rank as u32; // pilfill: allow(as-cast)
        *cursor += 1;
    }
    enders.clear();
    enders.resize(units::index(Coord::from(end_offsets[n_active])), 0);
    start_cursors.clear();
    start_cursors.extend_from_slice(&end_offsets[..n_active]);
    for (rank, e) in events.iter().enumerate() {
        let after = e.hi as usize + 1; // pilfill: allow(as-cast)
        if after < n_active {
            let cursor = &mut start_cursors[after];
            enders[*cursor as usize] = rank as u32; // pilfill: allow(as-cast)
            *cursor += 1;
        }
    }

    // The active set as a chunked bitmask over event ranks: entering a
    // boundary costs O(starts + expiries) single-bit flips (amortized two
    // per event over the whole sweep), and walking the set bits in word
    // order replays the events in ascending rank order — exactly the
    // bottom-sorted sequence the per-column interval walk sees.
    active_words.clear();
    active_words.resize(events.len().div_ceil(W), 0);

    let recip = PitchRecip::new(pitch);
    let feature = rules.feature_size;
    let buffer = rules.buffer;
    for (si, &boundary) in spans.iter().enumerate() {
        let b = boundary as usize; // pilfill: allow(as-cast)
        let b_end = spans.get(si + 1).map_or(n_active, |&n| n as usize); // pilfill: allow(as-cast)

        if end_mask[b / W] & (1u64 << (b % W)) != 0 {
            // pilfill: allow(as-cast)
            let (e0, e1) = (end_offsets[b] as usize, end_offsets[b + 1] as usize);
            for &r in &enders[e0..e1] {
                let r = r as usize; // pilfill: allow(as-cast)
                active_words[r / W] &= !(1u64 << (r % W));
            }
        }
        if start_mask[b / W] & (1u64 << (b % W)) != 0 {
            // pilfill: allow(as-cast)
            let (s0, s1) = (start_offsets[b] as usize, start_offsets[b + 1] as usize);
            for &r in &starters[s0..s1] {
                let r = r as usize; // pilfill: allow(as-cast)
                active_words[r / W] |= 1u64 << (r % W);
            }
        }

        // Emit the span's first column directly (step 14 of Figure 7:
        // gaps open at the area bottom or the previous line's top, close
        // at the next line's bottom or the area top; empty gaps are
        // skipped). The slot count uses the exact pitch reciprocal.
        let run_start = out.len();
        let site_x = lo_site + b;
        let x = bounds.left + units::coord(site_x) * pitch;
        let mut open_y = bounds.bottom;
        let mut open_below: Option<u32> = None;
        let mut emit = |gap: Interval, below: Option<u32>, above: Option<u32>| {
            if gap.is_empty() {
                return;
            }
            let slot_lo = gap.lo + if below.is_some() { buffer } else { 0 };
            let slot_hi = gap.hi - if above.is_some() { buffer } else { 0 };
            let avail = slot_hi - slot_lo - feature;
            let slots = if avail < 0 {
                Slots::EMPTY
            } else if avail < 1 << 32 {
                // Same result as `Slots::for_gap`: the reciprocal divide
                // is exact on this range and the count fits u32.
                Slots::evenly(slot_lo, pitch, (recip.div(avail) + 1) as u32) // pilfill: allow(as-cast)
            } else {
                Slots::for_gap(gap, below.is_some(), above.is_some(), rules)
            };
            out.push(SlackColumn {
                site_x,
                x,
                gap,
                below,
                above,
                slots,
            });
        };
        for (wi, &word) in active_words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let r = wi * W + w.trailing_zeros() as usize; // pilfill: allow(as-cast)
                w &= w - 1;
                let below_line = Some(soa_line[r]);
                emit(Interval::new(open_y, soa_bottom[r]), open_below, below_line);
                open_y = open_y.max(soa_top[r]);
                open_below = below_line;
            }
        }
        emit(Interval::new(open_y, bounds.top), open_below, None);

        // Replicate the emitted run for the span's remaining columns: a
        // SlackColumn is `Copy`, so each is a site_x/x patch.
        let run_end = out.len();
        for rel in b + 1..b_end {
            let site_x = lo_site + rel;
            let x = bounds.left + units::coord(site_x) * pitch;
            for k in run_start..run_end {
                let mut col = out[k];
                col.site_x = site_x;
                col.x = x;
                out.push(col);
            }
        }
    }
}

/// The retained per-column interval walk — the original Figure-7 sweep,
/// kept as the oracle [`scan_site_columns`] is property-tested against.
/// Same contract and output, O(columns x events) bucket distribution
/// instead of span templates.
pub fn scan_site_columns_reference(
    lines: &[ActiveLine],
    bounds: Rect,
    rules: FillRules,
    sites: std::ops::Range<usize>,
    scratch: &mut ScanScratch,
    out: &mut Vec<SlackColumn>,
) {
    let pitch = rules.site_pitch();
    let n_cols = site_column_count(bounds, rules);
    let lo_site = sites.start.min(n_cols);
    let hi_site = sites.end.min(n_cols);
    if lo_site >= hi_site {
        return;
    }
    let n_active = hi_site - lo_site;

    build_events(lines, bounds, rules, lo_site, hi_site, &mut scratch.events);
    let events = &scratch.events;

    // Counting-sort the events into per-column groups. Distributing in
    // global bottom order keeps each group bottom-sorted with the same
    // tie-breaks, so the per-column sweep below sees exactly the event
    // sequence the historical single-pass sweep saw.
    let offsets = &mut scratch.offsets;
    offsets.clear();
    offsets.resize(n_active + 1, 0);
    for e in events.iter() {
        for c in e.lo..=e.hi {
            // u32 -> usize is widening on every supported target.
            offsets[c as usize + 1] += 1; // pilfill: allow(as-cast)
        }
    }
    for i in 0..n_active {
        offsets[i + 1] += offsets[i];
    }
    let cursors = &mut scratch.cursors;
    cursors.clear();
    cursors.extend_from_slice(&offsets[..n_active]);
    let bucket = &mut scratch.bucket;
    bucket.clear();
    bucket.resize(units::index(Coord::from(offsets[n_active])), 0);
    // u32 -> usize below is widening; event indices fit u32 because the
    // event count is bounded by the line count.
    for (ei, e) in events.iter().enumerate() {
        for c in e.lo..=e.hi {
            let cursor = &mut cursors[c as usize]; // pilfill: allow(as-cast)
            bucket[*cursor as usize] = ei as u32; // pilfill: allow(as-cast)
            *cursor += 1;
        }
    }

    // Sweep each column independently: gaps open at the area bottom (or
    // the previous line's top) and close at the next line's bottom (step
    // 14: the area top). Emission is naturally sorted by (site_x, gap.lo).
    let emit = |site_x: usize,
                gap: Interval,
                below: Option<u32>,
                above: Option<u32>,
                out: &mut Vec<SlackColumn>| {
        if gap.is_empty() {
            return;
        }
        out.push(SlackColumn {
            site_x,
            x: bounds.left + units::coord(site_x) * pitch,
            gap,
            below,
            above,
            slots: Slots::for_gap(gap, below.is_some(), above.is_some(), rules),
        });
    };
    for rel in 0..n_active {
        let site_x = lo_site + rel;
        let mut open_y = bounds.bottom;
        let mut open_below: Option<u32> = None;
        // u32 -> usize throughout the sweep is widening on every
        // supported target.
        let group = &bucket[offsets[rel] as usize..offsets[rel + 1] as usize]; // pilfill: allow(as-cast)
        for &ei in group {
            let e = &events[ei as usize]; // pilfill: allow(as-cast)
            let below_line = Some(e.line);
            emit(
                site_x,
                Interval::new(open_y, e.bottom),
                open_below,
                below_line,
                out,
            );
            open_y = open_y.max(e.top);
            open_below = below_line;
        }
        emit(
            site_x,
            Interval::new(open_y, bounds.top),
            open_below,
            None,
            out,
        );
    }
}

/// [`scan_slack_columns`] routed through the retained interval walk
/// ([`scan_site_columns_reference`]) — the comparison oracle for property
/// tests and benchmarks.
pub fn scan_slack_columns_reference(
    lines: &[ActiveLine],
    bounds: Rect,
    rules: FillRules,
) -> Vec<SlackColumn> {
    let mut scratch = ScanScratch::default();
    let mut out = Vec::new();
    let n_cols = site_column_count(bounds, rules);
    scan_site_columns_reference(lines, bounds, rules, 0..n_cols, &mut scratch, &mut out);
    out
}

/// Locates the slack column (by index into `columns`) that contains a fill
/// feature placed at `feature`. Returns `None` for positions outside every
/// column (e.g. inside a line or out of bounds).
///
/// `columns` must be the unmodified result of [`scan_slack_columns`] for
/// the same `bounds` and `rules`.
pub fn locate_feature(
    columns: &[SlackColumn],
    bounds: Rect,
    rules: FillRules,
    feature: FillFeature,
) -> Option<usize> {
    let pitch = rules.site_pitch();
    if feature.x < bounds.left || feature.y < bounds.bottom {
        return None;
    }
    let site_x = pilfill_geom::units::index((feature.x - bounds.left) / pitch);
    // Binary search the sorted (site_x, gap.lo) order.
    let start = columns.partition_point(|c| c.site_x < site_x);
    columns[start..]
        .iter()
        .take_while(|c| c.site_x == site_x)
        .position(|c| c.gap.contains(feature.y))
        .map(|offset| start + offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilfill_layout::{NetId, SegmentId, SignalDir};

    fn rules() -> FillRules {
        FillRules {
            feature_size: 300,
            gap: 150,
            buffer: 150,
        }
    }

    fn line(rect: Rect) -> ActiveLine {
        ActiveLine {
            net: Some(NetId(0)),
            segment: SegmentId(0),
            rect,
            weight: 1,
            res_per_dbu: 3.5e-4,
            upstream_res: 0.0,
            entry_x: rect.left,
            signal: SignalDir::Increasing,
        }
    }

    /// The pre-progression slot rule, kept as the reference for
    /// [`Slots::for_gap`].
    fn slots_by_loop(gap: Interval, below_is_line: bool, above_is_line: bool) -> Vec<Coord> {
        let r = rules();
        let lo = gap.lo + if below_is_line { r.buffer } else { 0 };
        let hi = gap.hi - if above_is_line { r.buffer } else { 0 };
        let mut slots = Vec::new();
        let mut y = lo;
        while y + r.feature_size <= hi {
            slots.push(y);
            y += r.site_pitch();
        }
        slots
    }

    #[test]
    fn slots_progression_matches_reference_loop() {
        for lo in [-900, 0, 37, 449, 450] {
            for len in 0..2_000 {
                let gap = Interval::new(lo, lo + len);
                for (below, above) in [(false, false), (true, false), (false, true), (true, true)] {
                    let want = slots_by_loop(gap, below, above);
                    let got = Slots::for_gap(gap, below, above, rules());
                    assert_eq!(got.len(), want.len(), "gap {gap} {below}/{above}");
                    assert_eq!(got.iter().collect::<Vec<_>>(), want);
                    assert_eq!(got.first(), want.first().copied());
                    assert_eq!(got.last(), want.last().copied());
                    for (i, &w) in want.iter().enumerate() {
                        assert_eq!(got.get(i), Some(w));
                    }
                    assert_eq!(got.get(want.len()), None);
                }
            }
        }
    }

    #[test]
    fn slots_slice_and_count_below_are_consistent() {
        let gap = Interval::new(1_000, 5_000);
        let slots = Slots::for_gap(gap, true, true, rules());
        let all: Vec<Coord> = slots.iter().collect();
        assert!(slots.len() >= 3, "test wants a few slots");
        for start in 0..=slots.len() {
            for len in 0..=slots.len() + 1 {
                let sub = slots.slice(start, len);
                let want: Vec<Coord> = all[start.min(all.len())..]
                    .iter()
                    .take(len)
                    .copied()
                    .collect();
                assert_eq!(sub.iter().collect::<Vec<_>>(), want, "slice({start},{len})");
            }
        }
        for y in (gap.lo - 500..gap.hi + 500).step_by(77) {
            let want = all.iter().filter(|&&s| s < y).count();
            assert_eq!(slots.count_below(y), want, "count_below({y})");
        }
        // Split at a slot boundary: the two halves partition the slots.
        if let Some(mid) = slots.get(1) {
            let k = slots.count_below(mid);
            assert_eq!(k, 1);
            let below = slots.slice(0, k);
            let above = slots.slice(k, slots.len() - k);
            let mut rejoined: Vec<Coord> = below.iter().collect();
            rejoined.extend(above.iter());
            assert_eq!(rejoined, all);
        }
    }

    #[test]
    fn empty_area_yields_full_height_columns() {
        let bounds = Rect::new(0, 0, 4_500, 3_000);
        let cols = scan_slack_columns(&[], bounds, rules());
        assert_eq!(cols.len(), 10); // 4500 / 450
        for c in &cols {
            assert_eq!(c.gap, Interval::new(0, 3_000));
            assert_eq!(c.below, None);
            assert_eq!(c.above, None);
            // No buffers at boundaries: slots at 0, 450, ..., 2700.
            assert_eq!(c.capacity(), 7);
            assert_eq!(c.distance(), None);
        }
    }

    #[test]
    fn single_line_splits_columns() {
        let bounds = Rect::new(0, 0, 900, 10_000);
        let l = line(Rect::new(0, 4_000, 900, 4_200));
        let cols = scan_slack_columns(&[l], bounds, rules());
        // 2 site columns x 2 gaps each.
        assert_eq!(cols.len(), 4);
        let below_gaps: Vec<_> = cols.iter().filter(|c| c.above == Some(0)).collect();
        let above_gaps: Vec<_> = cols.iter().filter(|c| c.below == Some(0)).collect();
        assert_eq!(below_gaps.len(), 2);
        assert_eq!(above_gaps.len(), 2);
        assert_eq!(below_gaps[0].gap, Interval::new(0, 4_000));
        assert_eq!(above_gaps[0].gap, Interval::new(4_200, 10_000));
        // Buffer applies on the line side only.
        assert_eq!(below_gaps[0].slots.first(), Some(0));
        let last = below_gaps[0].slots.last().expect("has slots");
        assert!(last + 300 <= 4_000 - 150);
    }

    #[test]
    fn gap_between_two_lines_has_distance() {
        let bounds = Rect::new(0, 0, 450, 10_000);
        let a = line(Rect::new(0, 1_000, 450, 1_200));
        let b = line(Rect::new(0, 3_000, 450, 3_300));
        let cols = scan_slack_columns(&[a, b], bounds, rules());
        let mid = cols
            .iter()
            .find(|c| c.below == Some(0) && c.above == Some(1))
            .expect("middle gap");
        assert_eq!(mid.gap, Interval::new(1_200, 3_000));
        assert_eq!(mid.distance(), Some(1_800));
        // usable = 1800 - 300 = 1500 -> slots at 1350, 1800, 2250 + ...
        // floor((1500 - 300)/450)+1 = 3.
        assert_eq!(mid.capacity(), 3);
        // All slots respect buffers.
        for s in mid.slots.iter() {
            assert!(s >= 1_200 + 150);
            assert!(s + 300 <= 3_000 - 150);
        }
    }

    #[test]
    fn capacity_matches_rc_helper_for_line_line_gaps() {
        let bounds = Rect::new(0, 0, 450, 50_000);
        for gap_len in (700..20_000).step_by(333) {
            let a = line(Rect::new(0, 1_000, 450, 1_200));
            let b = line(Rect::new(0, 1_200 + gap_len, 450, 1_500 + gap_len));
            let cols = scan_slack_columns(&[a, b], bounds, rules());
            let mid = cols
                .iter()
                .find(|c| c.below == Some(0) && c.above == Some(1))
                .expect("gap");
            assert_eq!(
                mid.capacity(),
                pilfill_rc::max_fill_features(gap_len, rules()),
                "gap {gap_len}"
            );
        }
    }

    #[test]
    fn partial_x_overlap_only_affects_covered_columns() {
        let bounds = Rect::new(0, 0, 1_800, 5_000); // 4 site columns
                                                    // The line covers columns 0 and 1; its buffer-expanded extent
                                                    // [-150, 1050) additionally blocks column 2 ([900, 1350)).
        let l = line(Rect::new(0, 2_000, 900, 2_200));
        let cols = scan_slack_columns(&[l], bounds, rules());
        let full: Vec<_> = cols
            .iter()
            .filter(|c| c.gap == Interval::new(0, 5_000))
            .collect();
        assert_eq!(full.len(), 1); // only column 3 untouched
        assert!(full.iter().all(|c| c.site_x == 3));
    }

    #[test]
    fn no_slot_within_buffer_of_a_line_end() {
        let bounds = Rect::new(0, 0, 4_500, 5_000);
        let l = line(Rect::new(2_000, 2_000, 3_000, 2_280));
        let r = rules();
        let cols = scan_slack_columns(&[l], bounds, r);
        for c in &cols {
            for slot in c.slots.iter() {
                let feat = Rect::new(
                    c.feature_x(r),
                    slot,
                    c.feature_x(r) + r.feature_size,
                    slot + r.feature_size,
                );
                let keepout = Rect::new(2_000, 2_000, 3_000, 2_280).grown(r.buffer);
                assert!(
                    !feat.overlaps(&keepout),
                    "slot at {feat} violates buffer around the line"
                );
            }
        }
    }

    #[test]
    fn touching_lines_produce_no_gap_between() {
        let bounds = Rect::new(0, 0, 450, 5_000);
        let a = line(Rect::new(0, 1_000, 450, 2_000));
        let b = line(Rect::new(0, 2_000, 450, 3_000));
        let cols = scan_slack_columns(&[a, b], bounds, rules());
        assert!(cols
            .iter()
            .all(|c| !(c.below == Some(0) && c.above == Some(1))));
        assert_eq!(cols.len(), 2); // bottom and top boundary gaps only
    }

    #[test]
    fn locate_feature_round_trips_slots() {
        let bounds = Rect::new(0, 0, 4_500, 8_000);
        let a = line(Rect::new(900, 3_000, 3_600, 3_300));
        let cols = scan_slack_columns(&[a], bounds, rules());
        for (i, c) in cols.iter().enumerate() {
            for slot in c.slots.iter() {
                let f = FillFeature {
                    x: c.feature_x(rules()),
                    y: slot,
                };
                assert_eq!(
                    locate_feature(&cols, bounds, rules(), f),
                    Some(i),
                    "column {i} slot {slot}"
                );
            }
        }
    }

    #[test]
    fn locate_feature_outside_returns_none() {
        let bounds = Rect::new(0, 0, 900, 5_000);
        let a = line(Rect::new(0, 2_000, 900, 2_500));
        let cols = scan_slack_columns(&[a], bounds, rules());
        // Inside the line.
        let inside = FillFeature { x: 75, y: 2_100 };
        assert_eq!(locate_feature(&cols, bounds, rules(), inside), None);
        // Out of bounds.
        let out = FillFeature { x: -10, y: 0 };
        assert_eq!(locate_feature(&cols, bounds, rules(), out), None);
    }

    #[test]
    fn slot_capacity_sums_are_stable_under_line_order() {
        let bounds = Rect::new(0, 0, 2_700, 9_000);
        let mut lines = vec![
            line(Rect::new(0, 1_000, 2_700, 1_200)),
            line(Rect::new(450, 5_000, 1_800, 5_300)),
            line(Rect::new(0, 7_000, 900, 7_400)),
        ];
        let a = scan_slack_columns(&lines, bounds, rules());
        lines.reverse();
        // Line indices change, but geometry (gaps and capacities) must not.
        let b = scan_slack_columns(&lines, bounds, rules());
        let summarize = |cols: &[SlackColumn]| -> Vec<(usize, Interval, u32)> {
            cols.iter()
                .map(|c| (c.site_x, c.gap, c.capacity()))
                .collect()
        };
        assert_eq!(summarize(&a), summarize(&b));
    }

    #[test]
    fn partial_site_range_scan_matches_the_full_scan() {
        let bounds = Rect::new(0, 0, 4_500, 9_000);
        let lines = vec![
            line(Rect::new(0, 1_000, 4_500, 1_200)),
            line(Rect::new(900, 5_000, 2_700, 5_300)),
            line(Rect::new(1_800, 7_000, 4_500, 7_400)),
        ];
        let full = scan_slack_columns(&lines, bounds, rules());
        let n = site_column_count(bounds, rules());
        let mut scratch = ScanScratch::default();
        // Re-scan in arbitrary chunk sizes; concatenation must equal the
        // full scan exactly (this is the rebuild cache's contract).
        for chunk in [1usize, 2, 3, 7, n] {
            let mut stitched = Vec::new();
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                scan_site_columns(
                    &lines,
                    bounds,
                    rules(),
                    start..end,
                    &mut scratch,
                    &mut stitched,
                );
                start = end;
            }
            assert_eq!(stitched, full, "chunk size {chunk}");
        }
    }

    #[test]
    fn span_sweep_matches_the_reference_interval_walk() {
        let bounds = Rect::new(0, 0, 9_000, 9_000);
        let lines = vec![
            line(Rect::new(0, 1_000, 9_000, 1_200)),
            // Equal bottoms with overlap: tie-break order must survive.
            line(Rect::new(900, 1_000, 2_700, 1_300)),
            line(Rect::new(1_800, 5_000, 4_500, 5_300)),
            line(Rect::new(4_500, 5_000, 9_000, 5_200)),
            line(Rect::new(0, 7_000, 900, 7_400)),
            // A tall skinny line: many boundaries in one mask word.
            line(Rect::new(8_100, 200, 8_550, 8_800)),
        ];
        assert_eq!(
            scan_slack_columns(&lines, bounds, rules()),
            scan_slack_columns_reference(&lines, bounds, rules()),
        );
        let n = site_column_count(bounds, rules());
        let mut scratch = ScanScratch::default();
        for range in [0..3, 2..n, 5..7, 0..n, 3..3] {
            let mut fast = Vec::new();
            let mut slow = Vec::new();
            scan_site_columns(
                &lines,
                bounds,
                rules(),
                range.clone(),
                &mut scratch,
                &mut fast,
            );
            scan_site_columns_reference(
                &lines,
                bounds,
                rules(),
                range.clone(),
                &mut scratch,
                &mut slow,
            );
            assert_eq!(fast, slow, "range {range:?}");
        }
    }

    #[test]
    fn warm_rescan_into_scratch_is_reusable() {
        let bounds = Rect::new(0, 0, 2_700, 9_000);
        let lines = vec![
            line(Rect::new(0, 1_000, 2_700, 1_200)),
            line(Rect::new(450, 5_000, 1_800, 5_300)),
        ];
        let mut scratch = ScanScratch::default();
        let mut out = Vec::new();
        scan_slack_columns_into(&lines, bounds, rules(), &mut scratch, &mut out);
        let first = out.clone();
        scan_slack_columns_into(&lines, bounds, rules(), &mut scratch, &mut out);
        assert_eq!(out, first);
        assert_eq!(out, scan_slack_columns(&lines, bounds, rules()));
    }
}
