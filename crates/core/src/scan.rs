//! The scan-line slack-column algorithm (paper Figure 7).
//!
//! Assuming horizontal routing, the area is divided into vertical *site
//! columns* one fill-site wide. Sweeping the active lines bottom-to-top
//! yields, per site column, the maximal vertical gaps between consecutive
//! lines (or between a line and the area boundary). Each gap is a
//! [`SlackColumn`]: it knows the line below, the line above, and the
//! concrete fill *slots* (y positions) that respect the buffer distance.
//!
//! The sweep runs over a caller-owned [`ScanScratch`] arena: the line
//! events, the per-column bucket index and the cursors all live in reused
//! buffers, and a [`SlackColumn`] is a flat `Copy` value (its slots are an
//! arithmetic progression, not a `Vec`), so a warm re-scan performs zero
//! heap allocation.

use crate::{ActiveLine, FillFeature};
use pilfill_geom::{units, Coord, Interval, Rect};
use pilfill_layout::FillRules;

/// Feasible fill slot bottoms of one slack column, stored as an arithmetic
/// progression `lo, lo + pitch, ..., lo + (count - 1) * pitch` instead of a
/// materialized `Vec<Coord>`. Slots are always evenly spaced by the site
/// pitch, so the progression is lossless, `Copy`, and lets tile splitting
/// take O(1) sub-ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slots {
    lo: Coord,
    pitch: Coord,
    count: u32,
}

impl Slots {
    /// The progression with no slots.
    pub const EMPTY: Slots = Slots {
        lo: 0,
        pitch: 1,
        count: 0,
    };

    /// The progression `lo, lo + pitch, ..., lo + (count - 1) * pitch`.
    ///
    /// # Panics
    ///
    /// Panics if `pitch <= 0` (the empty progression still needs a valid
    /// stride for arithmetic).
    pub fn evenly(lo: Coord, pitch: Coord, count: u32) -> Slots {
        assert!(pitch > 0, "slot pitch must be positive (got {pitch})");
        Slots { lo, pitch, count }
    }

    /// Slots of a gap: start `buffer` above the bottom line (none at the
    /// area boundary), step one site pitch, and stop while a feature still
    /// fits below the top line's buffer.
    pub fn for_gap(
        gap: Interval,
        below_is_line: bool,
        above_is_line: bool,
        rules: FillRules,
    ) -> Slots {
        let lo = gap.lo + if below_is_line { rules.buffer } else { 0 };
        let hi = gap.hi - if above_is_line { rules.buffer } else { 0 };
        let pitch = rules.site_pitch();
        let avail = hi - lo - rules.feature_size;
        if avail < 0 {
            return Slots::EMPTY;
        }
        Slots {
            lo,
            pitch,
            count: units::saturating_count((avail / pitch) as u64 + 1),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        // u32 -> usize is widening on every supported target.
        self.count as usize // pilfill: allow(as-cast)
    }

    /// Whether the progression holds no slots.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `i`-th slot bottom, if `i < len()`.
    pub fn get(&self, i: usize) -> Option<Coord> {
        (i < self.len()).then(|| self.lo + units::coord(i) * self.pitch)
    }

    /// The first slot bottom.
    pub fn first(&self) -> Option<Coord> {
        self.get(0)
    }

    /// The last slot bottom.
    pub fn last(&self) -> Option<Coord> {
        self.len().checked_sub(1).and_then(|k| self.get(k))
    }

    /// Iterates the slot bottoms in ascending order.
    pub fn iter(self) -> impl DoubleEndedIterator<Item = Coord> + ExactSizeIterator + Clone {
        let Slots { lo, pitch, count } = self;
        (0..count).map(move |k| lo + Coord::from(k) * pitch)
    }

    /// The sub-progression `[start, start + len)`, clamped to the slots
    /// that exist.
    pub fn slice(&self, start: usize, len: usize) -> Slots {
        let start = start.min(self.len());
        let len = len.min(self.len() - start);
        Slots {
            lo: self.lo + units::coord(start) * self.pitch,
            pitch: self.pitch,
            count: units::saturating_count(len as u64),
        }
    }

    /// How many slots lie strictly below `y` — the split point used when a
    /// column is partitioned at a tile-row boundary.
    pub fn count_below(&self, y: Coord) -> usize {
        if self.count == 0 || y <= self.lo {
            return 0;
        }
        let k = (y - self.lo + self.pitch - 1) / self.pitch;
        units::index(k).min(self.len())
    }
}

impl IntoIterator for &Slots {
    type Item = Coord;
    type IntoIter = std::vec::IntoIter<Coord>;
    fn into_iter(self) -> Self::IntoIter {
        // Convenience for `for s in &col.slots` call sites; hot paths use
        // the allocation-free `iter()`.
        self.iter().collect::<Vec<_>>().into_iter()
    }
}

/// A maximal vertical run of fillable space in one site column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlackColumn {
    /// Site-column index (0 = leftmost).
    pub site_x: usize,
    /// Left edge of the site column.
    pub x: Coord,
    /// Edge-to-edge vertical gap `[below.top, above.bottom)` (or the area
    /// boundary where no line bounds the gap).
    pub gap: Interval,
    /// Index (into the scanned line slice) of the line below, if any.
    pub below: Option<usize>,
    /// Index of the line above, if any.
    pub above: Option<usize>,
    /// Feasible fill slot bottoms (ascending y), spaced one site pitch
    /// apart, respecting the buffer distance on line-bounded sides.
    pub slots: Slots,
}

impl SlackColumn {
    /// Number of fill features the column can hold (the paper's `C_k`).
    pub fn capacity(&self) -> u32 {
        self.slots.count
    }

    /// The line-to-line distance `d` of the capacitance model, defined only
    /// when both sides are active lines.
    pub fn distance(&self) -> Option<Coord> {
        match (self.below, self.above) {
            (Some(_), Some(_)) => Some(self.gap.len()),
            _ => None,
        }
    }

    /// x of a fill feature placed in this column (centered in the site).
    pub fn feature_x(&self, rules: FillRules) -> Coord {
        self.x + (rules.site_pitch() - rules.feature_size) / 2
    }
}

/// One buffer-expanded, bounds-clipped line in the sweep, restricted to
/// the site columns it covers.
#[derive(Debug, Clone, Copy)]
struct SweepEvent {
    bottom: Coord,
    top: Coord,
    /// First covered site column (absolute index).
    lo: u32,
    /// Last covered site column (absolute index, inclusive).
    hi: u32,
    /// Index into the scanned line slice.
    line: u32,
}

/// Reusable arena for [`scan_slack_columns_into`]: sweep events, the
/// per-column counting-sort bucket and its offsets/cursors. A warm scratch
/// makes a re-scan allocation-free.
#[derive(Debug, Default)]
pub struct ScanScratch {
    events: Vec<SweepEvent>,
    /// Exclusive prefix offsets into `bucket`, one per scanned column + 1.
    offsets: Vec<u32>,
    /// Per-column write cursors while distributing events.
    cursors: Vec<u32>,
    /// Event indices grouped by column, each group in global bottom order.
    bucket: Vec<u32>,
}

/// Runs the Figure-7 scan over `bounds`, producing every slack column.
///
/// `lines` must be in the horizontal frame (see
/// [`crate::extract_active_lines`]); only their overlap with `bounds` is
/// considered. Site columns narrower than one site pitch (at the right
/// boundary) are skipped — they cannot hold a feature.
///
/// Convenience wrapper over [`scan_slack_columns_into`] with a fresh
/// scratch; repeated callers should hold their own [`ScanScratch`].
pub fn scan_slack_columns(
    lines: &[ActiveLine],
    bounds: Rect,
    rules: FillRules,
) -> Vec<SlackColumn> {
    let mut scratch = ScanScratch::default();
    let mut out = Vec::new();
    scan_slack_columns_into(lines, bounds, rules, &mut scratch, &mut out);
    out
}

/// [`scan_slack_columns`] over a caller-owned scratch arena and output
/// buffer: `out` is cleared and refilled, and with warm buffers the scan
/// performs no heap allocation.
pub fn scan_slack_columns_into(
    lines: &[ActiveLine],
    bounds: Rect,
    rules: FillRules,
    scratch: &mut ScanScratch,
    out: &mut Vec<SlackColumn>,
) {
    out.clear();
    let n_cols = site_column_count(bounds, rules);
    scan_site_columns(lines, bounds, rules, 0..n_cols, scratch, out);
}

/// Number of full site columns across `bounds`.
pub fn site_column_count(bounds: Rect, rules: FillRules) -> usize {
    units::index(bounds.width() / rules.site_pitch())
}

/// Scans only the site columns in `sites` (absolute indices), *appending*
/// their slack columns to `out` in (site_x, gap.lo) order. This is the
/// partial-rescan entry used by the incremental rebuild cache: columns of
/// clean site ranges are reused, dirty ranges are re-swept.
pub fn scan_site_columns(
    lines: &[ActiveLine],
    bounds: Rect,
    rules: FillRules,
    sites: std::ops::Range<usize>,
    scratch: &mut ScanScratch,
    out: &mut Vec<SlackColumn>,
) {
    let pitch = rules.site_pitch();
    let n_cols = site_column_count(bounds, rules);
    let lo_site = sites.start.min(n_cols);
    let hi_site = sites.end.min(n_cols);
    if lo_site >= hi_site {
        return;
    }
    let n_active = hi_site - lo_site;

    // Step 2 of Figure 7: lines become events sorted by bottom edge,
    // pre-clipped to the scan bounds. Each line is expanded by the buffer
    // distance in x so that no slot can be created within the buffer of a
    // line *end*; the vertical buffer is enforced per-slot instead
    // (`Slots::for_gap`), which keeps the gap's edge-to-edge distance `d`
    // exact for the capacitance model. The stable sort keeps equal bottoms
    // in line order, matching the historical sweep exactly.
    let events = &mut scratch.events;
    events.clear();
    for (i, l) in lines.iter().enumerate() {
        let expanded = Rect::new(
            l.rect.left - rules.buffer,
            l.rect.bottom,
            l.rect.right + rules.buffer,
            l.rect.top,
        );
        let clipped = expanded.intersection(&bounds);
        if clipped.is_empty() {
            continue;
        }
        // Site columns whose [x, x+pitch) overlaps the rect's x span,
        // clamped to the requested range.
        let lo = units::index(((clipped.left - bounds.left) / pitch).max(0)).max(lo_site);
        let hi = units::index((clipped.right - 1 - bounds.left) / pitch).min(hi_site - 1);
        if lo > hi {
            continue;
        }
        // Site indices are bounded by die width / pitch and line indices
        // by the input slice length — both far below u32::MAX.
        events.push(SweepEvent {
            bottom: clipped.bottom,
            top: clipped.top,
            lo: lo as u32,  // pilfill: allow(as-cast)
            hi: hi as u32,  // pilfill: allow(as-cast)
            line: i as u32, // pilfill: allow(as-cast)
        });
    }
    events.sort_by_key(|e| e.bottom);

    // Counting-sort the events into per-column groups. Distributing in
    // global bottom order keeps each group bottom-sorted with the same
    // tie-breaks, so the per-column sweep below sees exactly the event
    // sequence the historical single-pass sweep saw.
    let offsets = &mut scratch.offsets;
    offsets.clear();
    offsets.resize(n_active + 1, 0);
    for e in events.iter() {
        for c in e.lo..=e.hi {
            // u32 -> usize is widening on every supported target.
            offsets[(c as usize - lo_site) + 1] += 1; // pilfill: allow(as-cast)
        }
    }
    for i in 0..n_active {
        offsets[i + 1] += offsets[i];
    }
    let cursors = &mut scratch.cursors;
    cursors.clear();
    cursors.extend_from_slice(&offsets[..n_active]);
    let bucket = &mut scratch.bucket;
    bucket.clear();
    bucket.resize(units::index(Coord::from(offsets[n_active])), 0);
    // u32 -> usize below is widening; event indices fit u32 because the
    // event count is bounded by the line count.
    for (ei, e) in events.iter().enumerate() {
        for c in e.lo..=e.hi {
            let cursor = &mut cursors[c as usize - lo_site]; // pilfill: allow(as-cast)
            bucket[*cursor as usize] = ei as u32; // pilfill: allow(as-cast)
            *cursor += 1;
        }
    }

    // Sweep each column independently: gaps open at the area bottom (or
    // the previous line's top) and close at the next line's bottom (step
    // 14: the area top). Emission is naturally sorted by (site_x, gap.lo).
    let emit = |site_x: usize,
                gap: Interval,
                below: Option<usize>,
                above: Option<usize>,
                out: &mut Vec<SlackColumn>| {
        if gap.is_empty() {
            return;
        }
        out.push(SlackColumn {
            site_x,
            x: bounds.left + units::coord(site_x) * pitch,
            gap,
            below,
            above,
            slots: Slots::for_gap(gap, below.is_some(), above.is_some(), rules),
        });
    };
    for rel in 0..n_active {
        let site_x = lo_site + rel;
        let mut open_y = bounds.bottom;
        let mut open_below: Option<usize> = None;
        // u32 -> usize throughout the sweep is widening on every
        // supported target.
        let group = &bucket[offsets[rel] as usize..offsets[rel + 1] as usize]; // pilfill: allow(as-cast)
        for &ei in group {
            let e = &events[ei as usize]; // pilfill: allow(as-cast)
            let below_line = Some(e.line as usize); // pilfill: allow(as-cast)
            emit(
                site_x,
                Interval::new(open_y, e.bottom),
                open_below,
                below_line,
                out,
            );
            open_y = open_y.max(e.top);
            open_below = below_line;
        }
        emit(
            site_x,
            Interval::new(open_y, bounds.top),
            open_below,
            None,
            out,
        );
    }
}

/// Locates the slack column (by index into `columns`) that contains a fill
/// feature placed at `feature`. Returns `None` for positions outside every
/// column (e.g. inside a line or out of bounds).
///
/// `columns` must be the unmodified result of [`scan_slack_columns`] for
/// the same `bounds` and `rules`.
pub fn locate_feature(
    columns: &[SlackColumn],
    bounds: Rect,
    rules: FillRules,
    feature: FillFeature,
) -> Option<usize> {
    let pitch = rules.site_pitch();
    if feature.x < bounds.left || feature.y < bounds.bottom {
        return None;
    }
    let site_x = pilfill_geom::units::index((feature.x - bounds.left) / pitch);
    // Binary search the sorted (site_x, gap.lo) order.
    let start = columns.partition_point(|c| c.site_x < site_x);
    columns[start..]
        .iter()
        .take_while(|c| c.site_x == site_x)
        .position(|c| c.gap.contains(feature.y))
        .map(|offset| start + offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilfill_layout::{NetId, SegmentId, SignalDir};

    fn rules() -> FillRules {
        FillRules {
            feature_size: 300,
            gap: 150,
            buffer: 150,
        }
    }

    fn line(rect: Rect) -> ActiveLine {
        ActiveLine {
            net: Some(NetId(0)),
            segment: SegmentId(0),
            rect,
            weight: 1,
            res_per_dbu: 3.5e-4,
            upstream_res: 0.0,
            entry_x: rect.left,
            signal: SignalDir::Increasing,
        }
    }

    /// The pre-progression slot rule, kept as the reference for
    /// [`Slots::for_gap`].
    fn slots_by_loop(gap: Interval, below_is_line: bool, above_is_line: bool) -> Vec<Coord> {
        let r = rules();
        let lo = gap.lo + if below_is_line { r.buffer } else { 0 };
        let hi = gap.hi - if above_is_line { r.buffer } else { 0 };
        let mut slots = Vec::new();
        let mut y = lo;
        while y + r.feature_size <= hi {
            slots.push(y);
            y += r.site_pitch();
        }
        slots
    }

    #[test]
    fn slots_progression_matches_reference_loop() {
        for lo in [-900, 0, 37, 449, 450] {
            for len in 0..2_000 {
                let gap = Interval::new(lo, lo + len);
                for (below, above) in [(false, false), (true, false), (false, true), (true, true)] {
                    let want = slots_by_loop(gap, below, above);
                    let got = Slots::for_gap(gap, below, above, rules());
                    assert_eq!(got.len(), want.len(), "gap {gap} {below}/{above}");
                    assert_eq!(got.iter().collect::<Vec<_>>(), want);
                    assert_eq!(got.first(), want.first().copied());
                    assert_eq!(got.last(), want.last().copied());
                    for (i, &w) in want.iter().enumerate() {
                        assert_eq!(got.get(i), Some(w));
                    }
                    assert_eq!(got.get(want.len()), None);
                }
            }
        }
    }

    #[test]
    fn slots_slice_and_count_below_are_consistent() {
        let gap = Interval::new(1_000, 5_000);
        let slots = Slots::for_gap(gap, true, true, rules());
        let all: Vec<Coord> = slots.iter().collect();
        assert!(slots.len() >= 3, "test wants a few slots");
        for start in 0..=slots.len() {
            for len in 0..=slots.len() + 1 {
                let sub = slots.slice(start, len);
                let want: Vec<Coord> = all[start.min(all.len())..]
                    .iter()
                    .take(len)
                    .copied()
                    .collect();
                assert_eq!(sub.iter().collect::<Vec<_>>(), want, "slice({start},{len})");
            }
        }
        for y in (gap.lo - 500..gap.hi + 500).step_by(77) {
            let want = all.iter().filter(|&&s| s < y).count();
            assert_eq!(slots.count_below(y), want, "count_below({y})");
        }
        // Split at a slot boundary: the two halves partition the slots.
        if let Some(mid) = slots.get(1) {
            let k = slots.count_below(mid);
            assert_eq!(k, 1);
            let below = slots.slice(0, k);
            let above = slots.slice(k, slots.len() - k);
            let mut rejoined: Vec<Coord> = below.iter().collect();
            rejoined.extend(above.iter());
            assert_eq!(rejoined, all);
        }
    }

    #[test]
    fn empty_area_yields_full_height_columns() {
        let bounds = Rect::new(0, 0, 4_500, 3_000);
        let cols = scan_slack_columns(&[], bounds, rules());
        assert_eq!(cols.len(), 10); // 4500 / 450
        for c in &cols {
            assert_eq!(c.gap, Interval::new(0, 3_000));
            assert_eq!(c.below, None);
            assert_eq!(c.above, None);
            // No buffers at boundaries: slots at 0, 450, ..., 2700.
            assert_eq!(c.capacity(), 7);
            assert_eq!(c.distance(), None);
        }
    }

    #[test]
    fn single_line_splits_columns() {
        let bounds = Rect::new(0, 0, 900, 10_000);
        let l = line(Rect::new(0, 4_000, 900, 4_200));
        let cols = scan_slack_columns(&[l], bounds, rules());
        // 2 site columns x 2 gaps each.
        assert_eq!(cols.len(), 4);
        let below_gaps: Vec<_> = cols.iter().filter(|c| c.above == Some(0)).collect();
        let above_gaps: Vec<_> = cols.iter().filter(|c| c.below == Some(0)).collect();
        assert_eq!(below_gaps.len(), 2);
        assert_eq!(above_gaps.len(), 2);
        assert_eq!(below_gaps[0].gap, Interval::new(0, 4_000));
        assert_eq!(above_gaps[0].gap, Interval::new(4_200, 10_000));
        // Buffer applies on the line side only.
        assert_eq!(below_gaps[0].slots.first(), Some(0));
        let last = below_gaps[0].slots.last().expect("has slots");
        assert!(last + 300 <= 4_000 - 150);
    }

    #[test]
    fn gap_between_two_lines_has_distance() {
        let bounds = Rect::new(0, 0, 450, 10_000);
        let a = line(Rect::new(0, 1_000, 450, 1_200));
        let b = line(Rect::new(0, 3_000, 450, 3_300));
        let cols = scan_slack_columns(&[a, b], bounds, rules());
        let mid = cols
            .iter()
            .find(|c| c.below == Some(0) && c.above == Some(1))
            .expect("middle gap");
        assert_eq!(mid.gap, Interval::new(1_200, 3_000));
        assert_eq!(mid.distance(), Some(1_800));
        // usable = 1800 - 300 = 1500 -> slots at 1350, 1800, 2250 + ...
        // floor((1500 - 300)/450)+1 = 3.
        assert_eq!(mid.capacity(), 3);
        // All slots respect buffers.
        for s in mid.slots.iter() {
            assert!(s >= 1_200 + 150);
            assert!(s + 300 <= 3_000 - 150);
        }
    }

    #[test]
    fn capacity_matches_rc_helper_for_line_line_gaps() {
        let bounds = Rect::new(0, 0, 450, 50_000);
        for gap_len in (700..20_000).step_by(333) {
            let a = line(Rect::new(0, 1_000, 450, 1_200));
            let b = line(Rect::new(0, 1_200 + gap_len, 450, 1_500 + gap_len));
            let cols = scan_slack_columns(&[a, b], bounds, rules());
            let mid = cols
                .iter()
                .find(|c| c.below == Some(0) && c.above == Some(1))
                .expect("gap");
            assert_eq!(
                mid.capacity(),
                pilfill_rc::max_fill_features(gap_len, rules()),
                "gap {gap_len}"
            );
        }
    }

    #[test]
    fn partial_x_overlap_only_affects_covered_columns() {
        let bounds = Rect::new(0, 0, 1_800, 5_000); // 4 site columns
                                                    // The line covers columns 0 and 1; its buffer-expanded extent
                                                    // [-150, 1050) additionally blocks column 2 ([900, 1350)).
        let l = line(Rect::new(0, 2_000, 900, 2_200));
        let cols = scan_slack_columns(&[l], bounds, rules());
        let full: Vec<_> = cols
            .iter()
            .filter(|c| c.gap == Interval::new(0, 5_000))
            .collect();
        assert_eq!(full.len(), 1); // only column 3 untouched
        assert!(full.iter().all(|c| c.site_x == 3));
    }

    #[test]
    fn no_slot_within_buffer_of_a_line_end() {
        let bounds = Rect::new(0, 0, 4_500, 5_000);
        let l = line(Rect::new(2_000, 2_000, 3_000, 2_280));
        let r = rules();
        let cols = scan_slack_columns(&[l], bounds, r);
        for c in &cols {
            for slot in c.slots.iter() {
                let feat = Rect::new(
                    c.feature_x(r),
                    slot,
                    c.feature_x(r) + r.feature_size,
                    slot + r.feature_size,
                );
                let keepout = Rect::new(2_000, 2_000, 3_000, 2_280).grown(r.buffer);
                assert!(
                    !feat.overlaps(&keepout),
                    "slot at {feat} violates buffer around the line"
                );
            }
        }
    }

    #[test]
    fn touching_lines_produce_no_gap_between() {
        let bounds = Rect::new(0, 0, 450, 5_000);
        let a = line(Rect::new(0, 1_000, 450, 2_000));
        let b = line(Rect::new(0, 2_000, 450, 3_000));
        let cols = scan_slack_columns(&[a, b], bounds, rules());
        assert!(cols
            .iter()
            .all(|c| !(c.below == Some(0) && c.above == Some(1))));
        assert_eq!(cols.len(), 2); // bottom and top boundary gaps only
    }

    #[test]
    fn locate_feature_round_trips_slots() {
        let bounds = Rect::new(0, 0, 4_500, 8_000);
        let a = line(Rect::new(900, 3_000, 3_600, 3_300));
        let cols = scan_slack_columns(&[a], bounds, rules());
        for (i, c) in cols.iter().enumerate() {
            for slot in c.slots.iter() {
                let f = FillFeature {
                    x: c.feature_x(rules()),
                    y: slot,
                };
                assert_eq!(
                    locate_feature(&cols, bounds, rules(), f),
                    Some(i),
                    "column {i} slot {slot}"
                );
            }
        }
    }

    #[test]
    fn locate_feature_outside_returns_none() {
        let bounds = Rect::new(0, 0, 900, 5_000);
        let a = line(Rect::new(0, 2_000, 900, 2_500));
        let cols = scan_slack_columns(&[a], bounds, rules());
        // Inside the line.
        let inside = FillFeature { x: 75, y: 2_100 };
        assert_eq!(locate_feature(&cols, bounds, rules(), inside), None);
        // Out of bounds.
        let out = FillFeature { x: -10, y: 0 };
        assert_eq!(locate_feature(&cols, bounds, rules(), out), None);
    }

    #[test]
    fn slot_capacity_sums_are_stable_under_line_order() {
        let bounds = Rect::new(0, 0, 2_700, 9_000);
        let mut lines = vec![
            line(Rect::new(0, 1_000, 2_700, 1_200)),
            line(Rect::new(450, 5_000, 1_800, 5_300)),
            line(Rect::new(0, 7_000, 900, 7_400)),
        ];
        let a = scan_slack_columns(&lines, bounds, rules());
        lines.reverse();
        // Line indices change, but geometry (gaps and capacities) must not.
        let b = scan_slack_columns(&lines, bounds, rules());
        let summarize = |cols: &[SlackColumn]| -> Vec<(usize, Interval, u32)> {
            cols.iter()
                .map(|c| (c.site_x, c.gap, c.capacity()))
                .collect()
        };
        assert_eq!(summarize(&a), summarize(&b));
    }

    #[test]
    fn partial_site_range_scan_matches_the_full_scan() {
        let bounds = Rect::new(0, 0, 4_500, 9_000);
        let lines = vec![
            line(Rect::new(0, 1_000, 4_500, 1_200)),
            line(Rect::new(900, 5_000, 2_700, 5_300)),
            line(Rect::new(1_800, 7_000, 4_500, 7_400)),
        ];
        let full = scan_slack_columns(&lines, bounds, rules());
        let n = site_column_count(bounds, rules());
        let mut scratch = ScanScratch::default();
        // Re-scan in arbitrary chunk sizes; concatenation must equal the
        // full scan exactly (this is the rebuild cache's contract).
        for chunk in [1usize, 2, 3, 7, n] {
            let mut stitched = Vec::new();
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                scan_site_columns(
                    &lines,
                    bounds,
                    rules(),
                    start..end,
                    &mut scratch,
                    &mut stitched,
                );
                start = end;
            }
            assert_eq!(stitched, full, "chunk size {chunk}");
        }
    }

    #[test]
    fn warm_rescan_into_scratch_is_reusable() {
        let bounds = Rect::new(0, 0, 2_700, 9_000);
        let lines = vec![
            line(Rect::new(0, 1_000, 2_700, 1_200)),
            line(Rect::new(450, 5_000, 1_800, 5_300)),
        ];
        let mut scratch = ScanScratch::default();
        let mut out = Vec::new();
        scan_slack_columns_into(&lines, bounds, rules(), &mut scratch, &mut out);
        let first = out.clone();
        scan_slack_columns_into(&lines, bounds, rules(), &mut scratch, &mut out);
        assert_eq!(out, first);
        assert_eq!(out, scan_slack_columns(&lines, bounds, rules()));
    }
}
