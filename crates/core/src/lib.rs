//! # pilfill-core
//!
//! The PIL-Fill core: Performance-Impact Limited area fill synthesis
//! (Chen, Gupta, Kahng, 2003).
//!
//! Given a routed design and a per-tile fill budget (from the density
//! engine), the *Minimum Delay with Fill Constraint* (MDFC) problem asks
//! where inside each tile the prescribed fill features should go so that
//! the total (optionally downstream-sink-weighted) Elmore delay increase is
//! minimized.
//!
//! The crate provides:
//!
//! - [`ActiveLine`] extraction and the scan-line slack-column algorithm of
//!   the paper's Figure 7 ([`scan_slack_columns`]);
//! - the three slack-column definitions of Section 5.1
//!   ([`SlackColumnDef`]) and per-tile problem construction
//!   ([`TileProblem`]);
//! - the four placement methods of Section 5/6: the density-only
//!   [`methods::NormalFill`] baseline, [`methods::IlpOne`] (linearized
//!   capacitance, Sec. 5.2), [`methods::IlpTwo`] (lookup-table ILP,
//!   Sec. 5.3), [`methods::GreedyFill`] (Fig. 8), plus an exact
//!   dynamic-programming reference ([`methods::DpExact`]) used for
//!   verification;
//! - the method-independent delay-impact evaluator ([`evaluate`]) and the
//!   end-to-end [`flow`] that regenerates the paper's experiments.
//!
//! # Examples
//!
//! ```
//! use pilfill_core::flow::{FlowConfig, run_flow};
//! use pilfill_core::methods::GreedyFill;
//! use pilfill_layout::synth::{SynthConfig, synthesize};
//!
//! let design = synthesize(&SynthConfig::small_test(1));
//! let config = FlowConfig::new(8_000, 2)?;
//! let outcome = run_flow(&design, &config, &GreedyFill)?;
//! assert_eq!(outcome.placed_features, outcome.budget_total);
//! # Ok::<(), pilfill_core::FlowError>(())
//! ```

pub mod budget_ext;
pub mod evaluate;
pub mod flow;
mod line;
pub mod methods;
mod scan;
mod tile;
pub mod verify;

pub use evaluate::{evaluate_placement, evaluate_placement_pool, DelayImpact};
pub use flow::{
    run_flow, run_flow_all_layers, run_flow_streamed, FlowConfig, FlowContext, FlowError,
    FlowOutcome, RebuildDirt, RebuildStats,
};
pub use line::{
    extract_active_lines, extract_active_lines_into, extract_net_lines, extract_net_lines_with,
    extract_obstruction_lines, ActiveLine, ExtractScratch,
};
pub use pilfill_exec::WorkerPool;
pub use scan::layout;
pub use scan::{
    scan_site_columns, scan_site_columns_reference, scan_slack_columns, scan_slack_columns_into,
    scan_slack_columns_reference, site_column_count, ScanScratch, SlackColumn, Slots,
};
pub use tile::{
    build_slab_problems, build_tile_problems, build_tile_problems_parallel,
    build_tile_problems_pool, def_three_capacities, slab_ranges, SlackColumnDef, TileColumn,
    TileProblem,
};
pub use verify::{check_fill, DrcReport, DrcViolation};

/// A placed square fill feature (lower-left corner; side length comes from
/// the design's [`pilfill_layout::FillRules`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FillFeature {
    /// Lower-left x.
    pub x: pilfill_geom::Coord,
    /// Lower-left y.
    pub y: pilfill_geom::Coord,
}

impl FillFeature {
    /// The drawn rectangle given the feature side length.
    pub fn rect(&self, size: pilfill_geom::Coord) -> pilfill_geom::Rect {
        pilfill_geom::Rect::new(self.x, self.y, self.x + size, self.y + size)
    }
}
