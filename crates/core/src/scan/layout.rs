//! Data-layout constants of the scanline hot path, collected in one place
//! so the kernel shapes (bitmask word width, slab chunking) are documented
//! and tuned together rather than scattered as magic numbers.

/// Bits per occupancy-bitmask word in the span sweep.
///
/// The scan marks every site column where the active-line set can change
/// (a line starts, or a line expired just before) as one bit in a chunked
/// `u64` mask; maximal runs of zero bits are *spans* whose columns all see
/// the identical active set, extracted with word-level `trailing_zeros`
/// scans instead of per-column interval chasing. `u64` is the widest
/// integer with single-instruction bit scans on every supported target,
/// so one word covers 64 site columns per scan step.
pub const MASK_WORD_BITS: usize = 64;

/// Global slack columns per definition-III slab-row work item.
///
/// The sharded tile-problem build distributes the global column list in
/// fixed-size chunks. The shard size is independent of the worker-pool
/// lane count, so the merged output is the concatenation of the same
/// shards in the same order for every pool — exactly the sequential
/// result. 64 columns keep a shard's working set (columns + cost-table
/// rows) within L1 while still amortizing the claim overhead.
pub const DEF_THREE_SHARD_COLUMNS: usize = 64;
