//! End-to-end PIL-Fill flow: density analysis, fill budgeting, per-tile
//! MDFC solving and exact evaluation — the pipeline behind every row of
//! the paper's Tables 1 and 2.

use crate::methods::{FillMethod, MethodError};
use crate::{
    build_slab_problems, build_tile_problems_pool, def_three_capacities, evaluate_placement,
    evaluate_placement_pool, extract_net_lines_with, extract_obstruction_lines, scan_site_columns,
    scan_slack_columns_into, site_column_count, slab_ranges, ActiveLine, DelayImpact,
    ExtractScratch, FillFeature, ScanScratch, SlackColumn, SlackColumnDef, TileProblem,
};
use pilfill_density::{
    lp_budget, montecarlo_budget, BudgetError, DensityAnalysis, DensityMap, DissectionError,
    FillBudget, FixedDissection,
};
use pilfill_exec::WorkerPool;
use pilfill_geom::{units, Coord, Rect};
use pilfill_layout::{Design, LayerId, LayoutError, NetId};
use pilfill_prng::rngs::StdRng;
use pilfill_prng::SeedableRng;
use std::borrow::Cow;
use std::ops::Range;
use std::time::{Duration, Instant};

/// Configuration of one flow run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// Fill target layer.
    pub layer: LayerId,
    /// Density window size in dbu (the paper's `w`).
    pub window: Coord,
    /// Dissection parameter (the paper's `r`).
    pub r: usize,
    /// Slack-column definition for the per-tile problems.
    pub def: SlackColumnDef,
    /// Optimize the weighted objective (Table 2) instead of the unweighted
    /// one (Table 1). Evaluation always reports both.
    pub weighted: bool,
    /// Window-density upper bound for budgeting.
    pub max_density: f64,
    /// Seed for stochastic methods (Normal fill).
    pub seed: u64,
    /// Use the exact LP for budgeting instead of the Monte-Carlo greedy
    /// (only sensible for small tile grids).
    pub lp_budget: bool,
}

impl FlowConfig {
    /// A default configuration for the given window size and dissection:
    /// SlackColumn-III, unweighted objective, Monte-Carlo budgeting, 33%
    /// density bound.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Dissection`] if `window` is not positive and
    /// divisible by `r`.
    pub fn new(window: Coord, r: usize) -> Result<Self, FlowError> {
        // `r` is untrusted config: reject (rather than assert) values that
        // do not fit a coordinate.
        let r_coord = units::try_coord(r).unwrap_or(-1);
        if window <= 0 || r_coord <= 0 || window % r_coord != 0 {
            return Err(FlowError::Dissection(DissectionError::InvalidWindow {
                window,
                r,
            }));
        }
        Ok(Self {
            layer: LayerId(0),
            window,
            r,
            def: SlackColumnDef::Three,
            weighted: false,
            max_density: 0.33,
            seed: 0xF111,
            lp_budget: false,
        })
    }
}

/// Error from the end-to-end flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// Invalid dissection parameters.
    Dissection(DissectionError),
    /// Layout/topology problem.
    Layout(LayoutError),
    /// Fill budgeting failed.
    Budget(BudgetError),
    /// A per-tile method failed.
    Method(MethodError),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Dissection(e) => write!(f, "dissection: {e}"),
            FlowError::Layout(e) => write!(f, "layout: {e}"),
            FlowError::Budget(e) => write!(f, "budget: {e}"),
            FlowError::Method(e) => write!(f, "method: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<DissectionError> for FlowError {
    fn from(e: DissectionError) -> Self {
        FlowError::Dissection(e)
    }
}
impl From<LayoutError> for FlowError {
    fn from(e: LayoutError) -> Self {
        FlowError::Layout(e)
    }
}
impl From<BudgetError> for FlowError {
    fn from(e: BudgetError) -> Self {
        FlowError::Budget(e)
    }
}
impl From<MethodError> for FlowError {
    fn from(e: MethodError) -> Self {
        FlowError::Method(e)
    }
}

/// Everything a flow run produces.
#[derive(Debug, Clone)]
#[must_use = "a flow run is expensive; dropping its outcome discards the results"]
pub struct FlowOutcome {
    /// Method name.
    pub method: &'static str,
    /// Exact delay impact of the placement.
    pub impact: DelayImpact,
    /// Total features prescribed by the density budget.
    pub budget_total: u64,
    /// Features actually placed.
    pub placed_features: u64,
    /// Budgeted features that could not be placed (capacity shortfall —
    /// non-zero mainly under SlackColumn-I).
    pub shortfall: u64,
    /// Window-density analysis before fill.
    pub density_before: DensityAnalysis,
    /// Window-density analysis after fill.
    pub density_after: DensityAnalysis,
    /// The placed fill features (for export / rendering).
    pub features: Vec<FillFeature>,
    /// Wall-clock time spent in the per-tile placement method.
    pub solve_time: Duration,
    /// Number of tiles in the dissection.
    pub tiles: usize,
}

/// Number of logical CPUs of the host, used to fall back to the serial
/// paths when a multi-lane pool cannot actually run in parallel (lanes
/// would only add claim/wake overhead — the PR4 bench regression).
fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `true` when `pool` can genuinely run more than one lane at once.
fn pool_is_parallel(pool: &WorkerPool) -> bool {
    pool.lanes() > 1 && host_parallelism() > 1
}

/// The method-independent flow state up to (and including) the fill
/// budget, shared by [`FlowContext::build_pool`] and the streamed runner:
/// frame transposition, dissection, per-net line extraction, the arena
/// scan, definition-III slack capacities, density map and budget. Tile
/// problems are *not* built here — the streamed pipeline fuses their
/// construction with solving.
struct Prelude<'d> {
    frame_design: Cow<'d, Design>,
    transposed: bool,
    dissection: FixedDissection,
    lines: Vec<ActiveLine>,
    net_line_ranges: Vec<Range<usize>>,
    columns: Vec<SlackColumn>,
    slack: Vec<u32>,
    density_map: DensityMap,
    density_before: DensityAnalysis,
    budget: FillBudget,
    budget_total: u64,
}

fn prelude<'d>(design: &'d Design, config: &FlowConfig) -> Result<Prelude<'d>, FlowError> {
    // Work in a frame where the target layer routes horizontally.
    let transposed = design
        .layers
        .get(config.layer.0)
        .map(|l| l.dir.is_vertical())
        .unwrap_or(false);
    let frame_design: Cow<'d, Design> = if transposed {
        Cow::Owned(design.transposed())
    } else {
        Cow::Borrowed(design)
    };
    let design: &Design = &frame_design;
    let dissection = FixedDissection::new(design.die, config.window, config.r)?;

    // Per-net extraction, recording each net's line range so the rebuild
    // cache can later re-extract changed nets in place.
    let mut lines = Vec::new();
    let mut net_line_ranges = Vec::with_capacity(design.nets.len());
    let mut extract_scratch = ExtractScratch::default();
    for ni in 0..design.nets.len() {
        let start = lines.len();
        extract_net_lines_with(
            design,
            config.layer,
            NetId(ni),
            &mut extract_scratch,
            &mut lines,
        )?;
        net_line_ranges.push(start..lines.len());
    }
    extract_obstruction_lines(design, config.layer, &mut lines);

    let mut scratch = ScanScratch::default();
    let mut columns = Vec::new();
    scan_slack_columns_into(&lines, design.die, design.rules, &mut scratch, &mut columns);

    // Per-tile capacity for budgeting always uses definition III (the
    // physical truth); the method may then be run under a weaker
    // definition and take a shortfall. The capacities come straight from
    // the global scan — no capacitance tables are built for budgeting.
    let slack: Vec<u32> = def_three_capacities(&columns, &dissection, design.rules)
        .into_iter()
        .map(units::saturating_count)
        .collect();

    let density_map = DensityMap::compute(design, config.layer, &dissection);
    let density_before = density_map.analyze();
    let feature_area = design.rules.feature_area();
    let budget = if config.lp_budget {
        lp_budget(&density_map, &slack, feature_area, config.max_density)?
    } else {
        montecarlo_budget(&density_map, &slack, feature_area, config.max_density)?
    };
    let budget_total = budget.total();

    Ok(Prelude {
        frame_design,
        transposed,
        dissection,
        lines,
        net_line_ranges,
        columns,
        slack,
        density_map,
        density_before,
        budget,
        budget_total,
    })
}

/// Which tiles' previously computed solve results a
/// [`FlowContext::rebuild`] invalidated — the complement of what a
/// result cache layered above the context may keep.
///
/// Invalidated means the tile's [`TileProblem`] was rebuilt or its
/// budgeted feature count may have changed; a cached per-tile solve for
/// any other tile is still exactly what a fresh solve would produce
/// (the methods are deterministic functions of problem, budget, and
/// seed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebuildDirt {
    /// Every tile: the context was fully rebuilt, or the budget changed
    /// (every tile's allotment may differ).
    All,
    /// Only these row-major tile indices, sorted ascending (possibly
    /// empty for a pure cache hit).
    Tiles(Vec<usize>),
}

/// What [`FlowContext::rebuild`] did: either a localized update or a full
/// rebuild, with the dirty extents for diagnostics and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "rebuild stats tell whether the cache actually hit"]
pub struct RebuildStats {
    /// `true` when the context fell back to a full [`FlowContext::build`]
    /// (config/frame/topology change).
    pub full: bool,
    /// Nets whose geometry or timing changed.
    pub changed_nets: usize,
    /// Site columns re-swept.
    pub dirty_site_columns: usize,
    /// Tile-grid columns whose problems were rebuilt.
    pub dirty_grid_columns: usize,
    /// `true` when the cached budget was reused because the edit left the
    /// density map and the slack vector bit-identical (budgeting is a pure
    /// function of the two, so the cached result equals a fresh one).
    pub budget_reused: bool,
}

impl RebuildStats {
    /// The stats of a full (non-incremental) rebuild.
    pub const FULL: RebuildStats = RebuildStats {
        full: true,
        changed_nets: 0,
        dirty_site_columns: 0,
        dirty_grid_columns: 0,
        budget_reused: false,
    };
}

/// Outcome of the shared incremental-rebuild body: either the context was
/// patched in place, or the change was not localizable and the caller
/// must rebuild from scratch (with the design lifetime it owns).
enum IncrOutcome {
    NeedsFull,
    Done {
        stats: RebuildStats,
        dirt: RebuildDirt,
    },
}

/// Solves one tile: budget lookup, capacity clamp, per-tile seeded RNG,
/// method dispatch — the single definition behind [`FlowContext::run`],
/// the pooled runner, the streamed pipeline, and
/// [`FlowContext::solve_tile`].
fn solve_one_tile(
    problem: &TileProblem,
    budget: &FillBudget,
    config: &FlowConfig,
    method: &dyn FillMethod,
) -> Result<(Vec<u32>, Duration), MethodError> {
    let want = budget.features(problem.cell);
    let effective = units::saturating_count(u64::from(want).min(problem.capacity()));
    if effective == 0 {
        return Ok((vec![0; problem.columns.len()], Duration::ZERO));
    }
    let mut rng = StdRng::seed_from_u64(tile_seed(config.seed, problem.cell));
    let t0 = Instant::now();
    method
        .place(problem, effective, config.weighted, &mut rng)
        .map(|counts| (counts, t0.elapsed()))
}

/// Precomputed, method-independent flow state: everything up to (and
/// including) the fill budget. Build once per (design, config) and run
/// several methods against it without repaying the setup cost.
///
/// Algorithms are written for horizontally routed layers; when the target
/// layer routes vertically, the context works on the transposed design and
/// transposes placed features back into the original frame. Horizontal
/// layers borrow the caller's design ([`Cow::Borrowed`]) — only the
/// transposed path pays for an owned copy.
#[derive(Debug, Clone)]
pub struct FlowContext<'d> {
    /// The design in the working frame (transposed for vertical layers).
    frame_design: Cow<'d, Design>,
    /// `true` when the working frame is the transpose of the input.
    transposed: bool,
    /// The configuration the context was built under (the rebuild cache
    /// key, together with the frame design).
    config: FlowConfig,
    dissection: FixedDissection,
    lines: Vec<ActiveLine>,
    /// Line range of each net within `lines` (obstruction pseudo-lines
    /// trail the last net).
    net_line_ranges: Vec<Range<usize>>,
    columns: Vec<SlackColumn>,
    problems: Vec<TileProblem>,
    slack: Vec<u32>,
    budget: FillBudget,
    budget_total: u64,
    density_before: DensityAnalysis,
    density_map: DensityMap,
    /// Spare map the rebuild cache folds fresh geometry into
    /// ([`DensityMap::recompute`]), so checking whether drawn area moved
    /// costs no allocations; swapped with `density_map` when it did.
    density_scratch: DensityMap,
}

impl<'d> FlowContext<'d> {
    /// Builds the context: extraction, scan, tile problems, density map and
    /// fill budget.
    ///
    /// # Errors
    ///
    /// See [`FlowError`].
    pub fn build(design: &'d Design, config: &FlowConfig) -> Result<Self, FlowError> {
        Self::build_pool(design, config, &WorkerPool::new(1))
    }

    /// Like [`FlowContext::build`], but prepares the per-tile problems on a
    /// transient `threads`-lane [`WorkerPool`] (per-tile slack scans for
    /// definitions I/II, sharded global-column distribution for
    /// definition III). The result is identical for every thread count.
    /// Callers building repeatedly should hold their own pool and use
    /// [`FlowContext::build_pool`] to amortize worker spawn-up.
    ///
    /// # Errors
    ///
    /// See [`FlowError`].
    pub fn build_parallel(
        design: &'d Design,
        config: &FlowConfig,
        threads: usize,
    ) -> Result<Self, FlowError> {
        Self::build_pool(design, config, &WorkerPool::new(threads))
    }

    /// Like [`FlowContext::build`], but prepares the per-tile problems on
    /// the caller's persistent [`WorkerPool`]. The result is identical for
    /// every pool size.
    ///
    /// On a single-CPU host a multi-lane pool cannot overlap any work, so
    /// the build transparently falls back to the serial path (the lanes
    /// would only add claim/wake overhead).
    ///
    /// # Errors
    ///
    /// See [`FlowError`].
    pub fn build_pool(
        design: &'d Design,
        config: &FlowConfig,
        pool: &WorkerPool,
    ) -> Result<Self, FlowError> {
        if pool.lanes() > 1 && !pool_is_parallel(pool) {
            return Self::build_pool_impl(design, config, &WorkerPool::new(1));
        }
        Self::build_pool_impl(design, config, pool)
    }

    /// [`FlowContext::build_pool`] without the single-CPU serial fallback —
    /// exercises the multi-lane path regardless of the host. Test-only.
    #[doc(hidden)]
    pub fn build_pool_forced(
        design: &'d Design,
        config: &FlowConfig,
        pool: &WorkerPool,
    ) -> Result<Self, FlowError> {
        Self::build_pool_impl(design, config, pool)
    }

    fn build_pool_impl(
        design: &'d Design,
        config: &FlowConfig,
        pool: &WorkerPool,
    ) -> Result<Self, FlowError> {
        let p = prelude(design, config)?;
        let frame: &Design = &p.frame_design;
        let problems = build_tile_problems_pool(
            &p.lines,
            &p.columns,
            &p.dissection,
            &frame.tech,
            frame.rules,
            config.def,
            pool,
        );
        Ok(Self {
            frame_design: p.frame_design,
            transposed: p.transposed,
            config: config.clone(),
            dissection: p.dissection,
            lines: p.lines,
            net_line_ranges: p.net_line_ranges,
            columns: p.columns,
            problems,
            slack: p.slack,
            budget: p.budget,
            budget_total: p.budget_total,
            density_before: p.density_before,
            density_scratch: DensityMap::zeros(p.density_map.dissection()),
            density_map: p.density_map,
        })
    }

    /// Incrementally rebuilds the context for a mutated `design`, reusing
    /// every cached artifact whose inputs did not change.
    ///
    /// The cache key is exact, not a hash: nets are diffed value-for-value
    /// against the design the context was built from. For each changed net
    /// its lines are re-extracted in place; if the net's segments moved,
    /// the site columns its old and new buffer-expanded lines cover are
    /// re-swept through the arena scan and their tiles' def-III slack is
    /// patched per slab. Only the tile-grid columns containing a changed
    /// site column get their [`TileProblem`]s rebuilt
    /// ([`build_slab_problems`]) — value-only edits (a sink or timing
    /// change) skip the sweep entirely, since columns depend only on
    /// rects. The density map and budget are recomputed only when a
    /// segment moved AND the recomputed map or slack actually differ;
    /// otherwise the cached budget is reused (budgeting is a pure function
    /// of the two). All clean columns and problems are kept bit-for-bit.
    ///
    /// Falls back to a full [`FlowContext::build_pool`] — reported via
    /// [`RebuildStats::full`] — when the change is not localizable: a
    /// different config, die, rules, tech, layer table, obstruction set or
    /// net count, a transposed working frame, or a changed net whose line
    /// count on the target layer differs (line indices would shift under
    /// every clean column).
    ///
    /// # Errors
    ///
    /// See [`FlowError`]. On error the context is left in its previous
    /// state (full-rebuild errors excepted).
    pub fn rebuild(
        &mut self,
        design: &'d Design,
        config: &FlowConfig,
        pool: &WorkerPool,
    ) -> Result<RebuildStats, FlowError> {
        Ok(self.rebuild_tracked(design, config, pool)?.0)
    }

    /// Like [`FlowContext::rebuild`], but additionally reports which
    /// tiles' previously computed solve results the rebuild invalidated
    /// ([`RebuildDirt`]) — the contract a per-tile result cache layered
    /// above the context (the serving layer) relies on.
    ///
    /// # Errors
    ///
    /// See [`FlowContext::rebuild`].
    pub fn rebuild_tracked(
        &mut self,
        design: &'d Design,
        config: &FlowConfig,
        pool: &WorkerPool,
    ) -> Result<(RebuildStats, RebuildDirt), FlowError> {
        match self.rebuild_incr(design, config)? {
            IncrOutcome::NeedsFull => {
                *self = Self::build_pool(design, config, pool)?;
                Ok((RebuildStats::FULL, RebuildDirt::All))
            }
            IncrOutcome::Done { stats, dirt } => {
                self.frame_design = Cow::Borrowed(design);
                Ok((stats, dirt))
            }
        }
    }

    /// The incremental-rebuild body shared by the borrowed
    /// ([`FlowContext::rebuild_tracked`]) and owned
    /// ([`FlowContext::rebuild_owned`]) entry points. Never stores
    /// `design` into the context — on [`IncrOutcome::Done`] the caller
    /// installs it with the lifetime it owns; on
    /// [`IncrOutcome::NeedsFull`] the caller replaces the whole context
    /// (partial line splices made before a mid-diff bailout are then
    /// overwritten wholesale).
    fn rebuild_incr(
        &mut self,
        design: &Design,
        config: &FlowConfig,
    ) -> Result<IncrOutcome, FlowError> {
        let new_transposed = design
            .layers
            .get(config.layer.0)
            .map(|l| l.dir.is_vertical())
            .unwrap_or(false);
        {
            let old: &Design = &self.frame_design;
            // The slab rebuild below is a definition-III construction
            // (weaker definitions re-scan per tile anyway).
            if *config != self.config
                || config.def != SlackColumnDef::Three
                || self.transposed
                || new_transposed
                || design.die != old.die
                || design.rules != old.rules
                || design.tech != old.tech
                || design.layers != old.layers
                || design.obstructions != old.obstructions
                || design.nets.len() != old.nets.len()
            {
                return Ok(IncrOutcome::NeedsFull);
            }
        }

        let die = design.die;
        let rules = design.rules;
        let pitch = rules.site_pitch();
        let n_sites = site_column_count(die, rules);
        // Two dirt granularities. `resolve`: site columns whose tiles'
        // problems must be rebuilt (any line change — weights feed the
        // cost tables). `rescan`: site columns whose slack columns must be
        // re-swept (geometry moved — columns depend only on rects, so a
        // value-only edit like a sink-weight bump leaves them untouched,
        // and with them the slack vector and the density map).
        let mut resolve = vec![false; n_sites];
        let mut rescan = vec![false; n_sites];
        // Marks the site columns a line's buffer-expanded rect covers —
        // exactly the columns whose sweep sees the line as an event.
        let mark = |rect: Rect, dirty: &mut Vec<bool>| {
            let expanded = Rect::new(
                rect.left - rules.buffer,
                rect.bottom,
                rect.right + rules.buffer,
                rect.top,
            );
            let clipped = expanded.intersection(&die);
            if clipped.is_empty() || n_sites == 0 {
                return;
            }
            let lo = units::index(((clipped.left - die.left) / pitch).max(0));
            let hi = units::index((clipped.right - 1 - die.left) / pitch).min(n_sites - 1);
            for s in dirty.iter_mut().take(hi + 1).skip(lo) {
                *s = true;
            }
        };

        // Diff nets value-for-value; re-extract changed ones in place.
        let mut changed_nets = 0usize;
        let mut geometry_changed = false;
        let mut fresh: Vec<ActiveLine> = Vec::new();
        let mut extract_scratch = ExtractScratch::default();
        for ni in 0..design.nets.len() {
            if design.nets[ni] == self.frame_design.nets[ni] {
                continue;
            }
            changed_nets += 1;
            let geometry = design.nets[ni].segments != self.frame_design.nets[ni].segments;
            geometry_changed |= geometry;
            fresh.clear();
            extract_net_lines_with(
                design,
                config.layer,
                NetId(ni),
                &mut extract_scratch,
                &mut fresh,
            )?;
            let range = self.net_line_ranges[ni].clone();
            if fresh.len() != range.len() {
                // Line indices after this net would shift; every clean
                // column's below/above reference would dangle.
                return Ok(IncrOutcome::NeedsFull);
            }
            for l in self.lines[range.clone()].iter().chain(fresh.iter()) {
                mark(l.rect, &mut resolve);
                if geometry {
                    mark(l.rect, &mut rescan);
                }
            }
            for (slot, line) in self.lines[range].iter_mut().zip(fresh.drain(..)) {
                *slot = line;
            }
        }
        let dirty_site_columns = rescan.iter().filter(|&&d| d).count();
        if !resolve.iter().any(|&d| d) {
            return Ok(IncrOutcome::Done {
                stats: RebuildStats {
                    full: false,
                    changed_nets,
                    dirty_site_columns: 0,
                    dirty_grid_columns: 0,
                    budget_reused: true,
                },
                dirt: RebuildDirt::Tiles(Vec::new()),
            });
        }

        // Splice the column list: clean site runs keep their columns
        // (a flat copy — `SlackColumn` is `Copy`), dirty runs are re-swept.
        // Value-only edits rescan nothing: columns depend only on rects.
        let grid = self.dissection.tiles();
        let nx = grid.nx();
        if dirty_site_columns > 0 {
            let mut new_columns = Vec::with_capacity(self.columns.len());
            let mut scratch = ScanScratch::default();
            let mut site = 0usize;
            let mut cursor = 0usize;
            while site < n_sites {
                let run_start = site;
                let run_dirty = rescan[site];
                while site < n_sites && rescan[site] == run_dirty {
                    site += 1;
                }
                let run_cursor = cursor;
                while cursor < self.columns.len() && self.columns[cursor].site_x < site {
                    cursor += 1;
                }
                if run_dirty {
                    scan_site_columns(
                        &self.lines,
                        die,
                        rules,
                        run_start..site,
                        &mut scratch,
                        &mut new_columns,
                    );
                } else {
                    new_columns.extend_from_slice(&self.columns[run_cursor..cursor]);
                }
            }
            self.columns = new_columns;
        }

        // Rebuild problems for tile-grid columns containing any changed
        // site; patch slack only where the columns were actually re-swept.
        let mark_grid = |sites: &[bool], dirty_grid: &mut Vec<bool>| {
            for (s, d) in sites.iter().enumerate() {
                if !d {
                    continue;
                }
                let fx = die.left + units::coord(s) * pitch + (pitch - rules.feature_size) / 2;
                if fx >= grid.bounds().left && fx < grid.bounds().right {
                    let ix = units::index((fx - grid.bounds().left) / grid.pitch_x()).min(nx - 1);
                    dirty_grid[ix] = true;
                }
            }
        };
        let mut dirty_grid = vec![false; nx];
        let mut rescan_grid = vec![false; nx];
        mark_grid(&resolve, &mut dirty_grid);
        mark_grid(&rescan, &mut rescan_grid);
        let ranges = slab_ranges(&self.columns, &self.dissection, rules);
        let old_slack = self.slack.clone();
        let mut dirty_grid_columns = 0usize;
        for (ix, is_dirty) in dirty_grid.iter().enumerate() {
            if !is_dirty {
                continue;
            }
            dirty_grid_columns += 1;
            let slab = build_slab_problems(
                &self.lines,
                &self.columns[ranges[ix].clone()],
                &self.dissection,
                &design.tech,
                rules,
                ix,
            );
            for (iy, p) in slab.into_iter().enumerate() {
                self.problems[iy * nx + ix] = p;
            }
            if !rescan_grid[ix] {
                continue;
            }
            // Def-III slack is a per-column sum binned into tiles, and a
            // slab's columns only ever bin into its own grid column, so
            // feeding just this slab patches exactly its tiles' slack
            // (integer sums — bit-identical to the full recompute).
            let slab_caps =
                def_three_capacities(&self.columns[ranges[ix].clone()], &self.dissection, rules);
            for iy in 0..grid.ny() {
                self.slack[iy * nx + ix] = units::saturating_count(slab_caps[iy * nx + ix]);
            }
        }

        // Density and budget are global, but budgeting is a pure function
        // of the density map and the slack vector: an edit that changed
        // line values without moving drawn area or slot counts (a timing
        // or sink-weight update, say) leaves both inputs bit-identical,
        // and then the cached budget IS what a fresh build would compute.
        // When no segment moved at all, both inputs are untouched by
        // construction and even the equality check is skipped.
        let budget_reused = if geometry_changed {
            self.density_scratch.recompute(design, config.layer);
            let reused = self.density_scratch == self.density_map && self.slack == old_slack;
            if !reused {
                std::mem::swap(&mut self.density_map, &mut self.density_scratch);
                self.density_before = self.density_map.analyze();
                let feature_area = rules.feature_area();
                self.budget = if config.lp_budget {
                    lp_budget(
                        &self.density_map,
                        &self.slack,
                        feature_area,
                        config.max_density,
                    )?
                } else {
                    montecarlo_budget(
                        &self.density_map,
                        &self.slack,
                        feature_area,
                        config.max_density,
                    )?
                };
                self.budget_total = self.budget.total();
            }
            reused
        } else {
            true
        };

        // A changed budget may change any tile's allotment; otherwise
        // only the rebuilt grid columns' tiles lost their problems.
        let dirt = if budget_reused {
            let mut tiles = Vec::with_capacity(dirty_grid_columns * grid.ny());
            for iy in 0..grid.ny() {
                for (ix, is_dirty) in dirty_grid.iter().enumerate() {
                    if *is_dirty {
                        tiles.push(iy * nx + ix);
                    }
                }
            }
            RebuildDirt::Tiles(tiles)
        } else {
            RebuildDirt::All
        };

        Ok(IncrOutcome::Done {
            stats: RebuildStats {
                full: false,
                changed_nets,
                dirty_site_columns,
                dirty_grid_columns,
                budget_reused,
            },
            dirt,
        })
    }

    /// The design in the working frame (transposed when the target layer
    /// routes vertically).
    pub fn frame_design(&self) -> &Design {
        &self.frame_design
    }

    /// The per-tile problems (row-major).
    pub fn problems(&self) -> &[TileProblem] {
        &self.problems
    }

    /// The global slack columns.
    pub fn columns(&self) -> &[crate::SlackColumn] {
        &self.columns
    }

    /// The extracted active lines.
    pub fn lines(&self) -> &[crate::ActiveLine] {
        &self.lines
    }

    /// Total budgeted features.
    pub fn budget_total(&self) -> u64 {
        self.budget_total
    }

    /// Features budgeted for one tile.
    pub fn budget_features(&self, cell: pilfill_geom::CellIndex) -> u32 {
        self.budget.features(cell)
    }

    /// Runs one placement method against the prepared context, solving
    /// tiles on a transient `threads`-lane [`WorkerPool`]. The result is
    /// identical to [`FlowContext::run`] for any thread count: per-tile
    /// seeds depend only on the tile index, and tile results are merged in
    /// tile order. Callers running repeatedly should hold their own pool
    /// and use [`FlowContext::run_pool`] to amortize worker spawn-up.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Method`] if any tile solve fails.
    pub fn run_parallel(
        &self,
        config: &FlowConfig,
        method: &(dyn FillMethod + Sync),
        threads: usize,
    ) -> Result<FlowOutcome, FlowError> {
        let threads = threads.max(1);
        if threads == 1 || self.problems.len() < 2 {
            return self.run(config, method);
        }
        self.run_pool(config, method, &WorkerPool::new(threads))
    }

    /// Runs one placement method against the prepared context on the
    /// caller's persistent [`WorkerPool`]. Tiles are claimed dynamically
    /// (one 4.5ms ILP-II tile no longer serializes a static chunk of
    /// followers) and the delay evaluation is sharded by slack column; the
    /// result is bit-identical to [`FlowContext::run`] for every pool
    /// size.
    ///
    /// On a single-CPU host (or a 1-lane pool) this falls back to the
    /// serial [`FlowContext::run`] — the lanes cannot overlap and would
    /// only add claim/wake overhead.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Method`] if any tile solve fails.
    pub fn run_pool(
        &self,
        config: &FlowConfig,
        method: &(dyn FillMethod + Sync),
        pool: &WorkerPool,
    ) -> Result<FlowOutcome, FlowError> {
        if !pool_is_parallel(pool) || self.problems.len() < 2 {
            return self.run(config, method);
        }
        self.run_pool_impl(config, method, pool)
    }

    /// [`FlowContext::run_pool`] without the single-CPU serial fallback —
    /// exercises the multi-lane path regardless of the host. Test-only.
    #[doc(hidden)]
    pub fn run_pool_forced(
        &self,
        config: &FlowConfig,
        method: &(dyn FillMethod + Sync),
        pool: &WorkerPool,
    ) -> Result<FlowOutcome, FlowError> {
        let n = self.problems.len();
        if pool.lanes() == 1 || n < 2 {
            return self.run(config, method);
        }
        self.run_pool_impl(config, method, pool)
    }

    fn run_pool_impl(
        &self,
        config: &FlowConfig,
        method: &(dyn FillMethod + Sync),
        pool: &WorkerPool,
    ) -> Result<FlowOutcome, FlowError> {
        let n = self.problems.len();

        // Each tile owns one pre-partitioned result slot: no locks, no
        // contention, and every slot is written exactly once.
        type TileResult = Result<(Vec<u32>, Duration), MethodError>;
        let mut results: Vec<Option<TileResult>> = Vec::new();
        results.resize_with(n, || None);
        pool.for_each_slot(&mut results, |i, slot| {
            *slot = Some(solve_one_tile(
                &self.problems[i],
                &self.budget,
                config,
                method,
            ));
        });

        let mut per_tile = Vec::with_capacity(n);
        for (i, slot) in results.into_iter().enumerate() {
            // The pool claims every index exactly once: each slot is written.
            let (counts, elapsed) = slot.expect("every tile visited")?; // pilfill: allow(unwrap)
            per_tile.push((i, counts, elapsed));
        }
        self.assemble(method.name(), per_tile, Some(pool))
    }

    /// Runs one placement method against the prepared context.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Method`] if a tile solve fails.
    pub fn run(
        &self,
        config: &FlowConfig,
        method: &dyn FillMethod,
    ) -> Result<FlowOutcome, FlowError> {
        let mut per_tile = Vec::with_capacity(self.problems.len());
        for (i, problem) in self.problems.iter().enumerate() {
            let (counts, elapsed) = solve_one_tile(problem, &self.budget, config, method)?;
            per_tile.push((i, counts, elapsed));
        }
        self.assemble(method.name(), per_tile, None)
    }

    /// Solves the single tile at row-major index `index` — budget lookup,
    /// capacity clamp, per-tile seeded RNG, method dispatch. Because the
    /// per-tile seed depends only on the tile cell, solving any subset of
    /// tiles in any order produces exactly the counts a full
    /// [`FlowContext::run`] would — the building block for per-tile
    /// result caches that re-solve only what a rebuild dirtied.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.problems().len()`.
    ///
    /// # Errors
    ///
    /// Returns the method's [`MethodError`] if the solve fails.
    pub fn solve_tile(
        &self,
        config: &FlowConfig,
        method: &dyn FillMethod,
        index: usize,
    ) -> Result<(Vec<u32>, Duration), MethodError> {
        solve_one_tile(&self.problems[index], &self.budget, config, method)
    }

    /// Assembles a [`FlowOutcome`] from externally collected per-tile
    /// counts — `(row-major tile index, per-column counts, solve time)`,
    /// in tile-index order, one entry per tile. With counts produced by
    /// [`FlowContext::solve_tile`] (freshly or replayed from a cache) the
    /// outcome is bit-identical to [`FlowContext::run`].
    ///
    /// # Errors
    ///
    /// See [`FlowError`].
    pub fn finish_run(
        &self,
        method_name: &'static str,
        per_tile: Vec<(usize, Vec<u32>, Duration)>,
    ) -> Result<FlowOutcome, FlowError> {
        self.assemble(method_name, per_tile, None)
    }

    /// Merges per-tile assignments into features, density and impact. With
    /// a pool, the delay evaluation shards its per-column work across the
    /// lanes (same result — the accumulator fold order is fixed).
    fn assemble(
        &self,
        method_name: &'static str,
        per_tile: Vec<(usize, Vec<u32>, Duration)>,
        pool: Option<&WorkerPool>,
    ) -> Result<FlowOutcome, FlowError> {
        let design: &Design = &self.frame_design;
        let mut features: Vec<FillFeature> = Vec::new();
        let mut placed = 0u64;
        let mut shortfall = 0u64;
        let mut density_after_map = self.density_map.clone();
        let feature_area = design.rules.feature_area();
        let mut solve_time = Duration::ZERO;
        let mut area_deltas = Vec::with_capacity(per_tile.len());

        for (i, counts, elapsed) in per_tile {
            let problem = &self.problems[i];
            let want = self.budget.features(problem.cell) as u64;
            let tile_placed: u64 = counts.iter().map(|&m| m as u64).sum();
            shortfall += want.saturating_sub(tile_placed);
            solve_time += elapsed;
            for (col, &m) in problem.columns.iter().zip(&counts) {
                for slot in col.slots.iter().take(units::index(i64::from(m))) {
                    features.push(FillFeature {
                        x: col.feature_x,
                        y: slot,
                    });
                }
            }
            placed += tile_placed;
            area_deltas.push((problem.cell, tile_placed as i64 * feature_area));
        }
        // One batched update → a single prefix-sum rebuild instead of one
        // per tile.
        density_after_map.add_tile_areas(area_deltas);

        let impact = match pool {
            Some(pool) => evaluate_placement_pool(
                pool,
                &features,
                &self.columns,
                &self.lines,
                design.die,
                &design.tech,
                design.rules,
                design.nets.len(),
            ),
            None => evaluate_placement(
                &features,
                &self.columns,
                &self.lines,
                design.die,
                &design.tech,
                design.rules,
                design.nets.len(),
            ),
        };

        // Report features in the caller's frame.
        if self.transposed {
            for f in features.iter_mut() {
                *f = FillFeature { x: f.y, y: f.x };
            }
        }

        Ok(FlowOutcome {
            method: method_name,
            impact,
            budget_total: self.budget_total,
            placed_features: placed,
            shortfall,
            density_before: self.density_before,
            density_after: density_after_map.analyze(),
            features,
            solve_time,
            tiles: self.dissection.num_tiles(),
        })
    }

    /// Detaches the context from the borrowed design, cloning the frame
    /// design if it was borrowed. Everything else is already owned, so
    /// this is one `Design` clone at most — the price of admission for
    /// storing a context beyond its design's lifetime (a cross-request
    /// context cache).
    pub fn into_owned(self) -> FlowContext<'static> {
        FlowContext {
            frame_design: Cow::Owned(self.frame_design.into_owned()),
            transposed: self.transposed,
            config: self.config,
            dissection: self.dissection,
            lines: self.lines,
            net_line_ranges: self.net_line_ranges,
            columns: self.columns,
            problems: self.problems,
            slack: self.slack,
            budget: self.budget,
            budget_total: self.budget_total,
            density_before: self.density_before,
            density_map: self.density_map,
            density_scratch: self.density_scratch,
        }
    }
}

impl FlowContext<'static> {
    /// [`FlowContext::rebuild_tracked`] for detached
    /// ([`FlowContext::into_owned`]) contexts: the mutated `design` may
    /// live arbitrarily briefly — the context clones it into its owned
    /// frame instead of borrowing. The incremental machinery (and its
    /// results) are exactly those of [`FlowContext::rebuild`]; a clone
    /// (~60µs on T2) replaces the borrow, which is what lets a long-lived
    /// context cache serve the edit→re-fill loop.
    ///
    /// # Errors
    ///
    /// See [`FlowContext::rebuild`].
    pub fn rebuild_owned(
        &mut self,
        design: &Design,
        config: &FlowConfig,
        pool: &WorkerPool,
    ) -> Result<(RebuildStats, RebuildDirt), FlowError> {
        match self.rebuild_incr(design, config)? {
            IncrOutcome::NeedsFull => {
                *self = FlowContext::build_pool(design, config, pool)?.into_owned();
                Ok((RebuildStats::FULL, RebuildDirt::All))
            }
            IncrOutcome::Done { stats, dirt } => {
                self.frame_design = Cow::Owned(design.clone());
                Ok((stats, dirt))
            }
        }
    }
}

/// Per-tile RNG seed, independent of tile iteration order and thread
/// scheduling.
fn tile_seed(seed: u64, cell: pilfill_geom::CellIndex) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(((cell.0 as u64) << 32) | cell.1 as u64)
}

/// Convenience wrapper: build a [`FlowContext`] and run one method.
///
/// # Errors
///
/// See [`FlowError`].
pub fn run_flow(
    design: &Design,
    config: &FlowConfig,
    method: &dyn FillMethod,
) -> Result<FlowOutcome, FlowError> {
    FlowContext::build(design, config)?.run(config, method)
}

/// The streamed fill pipeline: context build and tile solving fused into
/// one pass.
///
/// After the shared prelude (extraction, arena scan, slack, density,
/// budget — the budget is a barrier: no tile can be solved before every
/// tile's slack is known), the tile-problem construction is *streamed*:
/// a producer walks the tile-grid columns left to right, expanding each
/// grid column's slab of global slack columns into its [`TileProblem`]s
/// ([`build_slab_problems`]), and publishes each finished slab to the
/// pool's lanes, which solve its tiles immediately while the producer
/// moves on to the next slab. Wall-clock approaches
/// `max(build, solve)` instead of `build + solve`.
///
/// Results are folded in row-major tile order, so the outcome — features,
/// density, and every f64 accumulation in the delay impact — is
/// bit-identical to [`FlowContext::build`] + [`FlowContext::run`] at any
/// lane count (the per-tile RNG seeds depend only on the tile cell). On a
/// single-CPU host (or a 1-lane pool) the producer and consumer run fused
/// in one serial loop over the same order.
///
/// Definitions I/II have no slab decomposition; they fall back to
/// build + run internally.
///
/// Returns the built context alongside the outcome so further methods can
/// be run (or the context [rebuilt](FlowContext::rebuild)) without paying
/// the setup again.
///
/// # Errors
///
/// See [`FlowError`].
pub fn run_flow_streamed<'d>(
    design: &'d Design,
    config: &FlowConfig,
    method: &(dyn FillMethod + Sync),
    pool: &WorkerPool,
) -> Result<(FlowContext<'d>, FlowOutcome), FlowError> {
    run_flow_streamed_impl(design, config, method, pool, pool_is_parallel(pool))
}

/// [`run_flow_streamed`] without the single-CPU serial fallback —
/// exercises the producer/consumer gate regardless of the host. Test-only.
#[doc(hidden)]
pub fn run_flow_streamed_forced<'d>(
    design: &'d Design,
    config: &FlowConfig,
    method: &(dyn FillMethod + Sync),
    pool: &WorkerPool,
) -> Result<(FlowContext<'d>, FlowOutcome), FlowError> {
    run_flow_streamed_impl(design, config, method, pool, pool.lanes() > 1)
}

fn run_flow_streamed_impl<'d>(
    design: &'d Design,
    config: &FlowConfig,
    method: &(dyn FillMethod + Sync),
    pool: &WorkerPool,
    parallel: bool,
) -> Result<(FlowContext<'d>, FlowOutcome), FlowError> {
    if config.def != SlackColumnDef::Three {
        let ctx = FlowContext::build_pool(design, config, pool)?;
        let outcome = ctx.run_pool(config, method, pool)?;
        return Ok((ctx, outcome));
    }

    let p = prelude(design, config)?;
    let grid = p.dissection.tiles();
    let (nx, ny) = (grid.nx(), grid.ny());
    let ranges = slab_ranges(&p.columns, &p.dissection, p.frame_design.rules);

    type TileResult = Result<(Vec<u32>, Duration), MethodError>;
    let solve_tile = |problem: &TileProblem| -> TileResult {
        solve_one_tile(problem, &p.budget, config, method)
    };
    let build_slab = |ix: usize| -> Vec<TileProblem> {
        build_slab_problems(
            &p.lines,
            &p.columns[ranges[ix].clone()],
            &p.dissection,
            &p.frame_design.tech,
            p.frame_design.rules,
            ix,
        )
    };
    let solve_slab = |_ix: usize, slab: &Vec<TileProblem>| -> Vec<TileResult> {
        slab.iter().map(solve_tile).collect()
    };

    let (slabs, results) = if parallel {
        pool.stream_map(nx, build_slab, solve_slab)
    } else {
        // Fused serial loop: produce slab `ix`, then consume it — the same
        // per-tile order with no gate traffic.
        let mut slabs = Vec::with_capacity(nx);
        let mut results = Vec::with_capacity(nx);
        for ix in 0..nx {
            let slab = build_slab(ix);
            results.push(solve_slab(ix, &slab));
            slabs.push(slab);
        }
        (slabs, results)
    };

    // Fold slabs (column-major) into the row-major tile order; the fixed
    // fold order is what makes the outcome bit-identical to the serial
    // build + run at any lane count.
    let mut problems = Vec::with_capacity(nx * ny);
    let mut per_tile = Vec::with_capacity(nx * ny);
    let mut slab_iters: Vec<_> = slabs.into_iter().map(Vec::into_iter).collect();
    let mut result_iters: Vec<_> = results.into_iter().map(Vec::into_iter).collect();
    for iy in 0..ny {
        for ix in 0..nx {
            // Every slab holds exactly `ny` tiles (build_slab_problems).
            // pilfill: allow(unwrap)
            let problem = slab_iters[ix].next().expect("slab tile count");
            // pilfill: allow(unwrap)
            let (counts, elapsed) = result_iters[ix].next().expect("slab result count")?;
            per_tile.push((iy * nx + ix, counts, elapsed));
            problems.push(problem);
        }
    }

    let ctx = FlowContext {
        frame_design: p.frame_design,
        transposed: p.transposed,
        config: config.clone(),
        dissection: p.dissection,
        lines: p.lines,
        net_line_ranges: p.net_line_ranges,
        columns: p.columns,
        problems,
        slack: p.slack,
        budget: p.budget,
        budget_total: p.budget_total,
        density_before: p.density_before,
        density_scratch: DensityMap::zeros(p.density_map.dissection()),
        density_map: p.density_map,
    };
    let eval_pool = if parallel { Some(pool) } else { None };
    let outcome = ctx.assemble(method.name(), per_tile, eval_pool)?;
    Ok((ctx, outcome))
}

/// Runs the flow for every layer of the design (the full-chip fill step:
/// each layer gets its own dissection, budget and placement). `config`'s
/// `layer` field is overridden per layer; all other settings are shared.
///
/// # Errors
///
/// Returns the first [`FlowError`] encountered.
pub fn run_flow_all_layers(
    design: &Design,
    config: &FlowConfig,
    method: &dyn FillMethod,
) -> Result<Vec<(LayerId, FlowOutcome)>, FlowError> {
    (0..design.layers.len())
        .map(|li| {
            let mut layer_config = config.clone();
            layer_config.layer = LayerId(li);
            let outcome = run_flow(design, &layer_config, method)?;
            Ok((LayerId(li), outcome))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{DpExact, GreedyFill, IlpOne, IlpTwo, NormalFill};
    use pilfill_layout::synth::{synthesize, SynthConfig};

    fn design() -> Design {
        synthesize(&SynthConfig::small_test(21))
    }

    fn config() -> FlowConfig {
        FlowConfig::new(8_000, 2).expect("valid config")
    }

    #[test]
    fn flow_places_full_budget_under_def_three() {
        let d = design();
        let outcome = run_flow(&d, &config(), &GreedyFill).expect("flow");
        assert_eq!(outcome.shortfall, 0);
        assert_eq!(outcome.placed_features, outcome.budget_total);
        assert_eq!(outcome.impact.unlocated_features, 0);
    }

    #[test]
    fn fill_improves_density_uniformity() {
        let d = design();
        let outcome = run_flow(&d, &config(), &NormalFill).expect("flow");
        assert!(outcome.budget_total > 0, "test design needs fill");
        assert!(
            outcome.density_after.min_window_density > outcome.density_before.min_window_density
        );
        assert!(outcome.density_after.max_window_density <= 0.35 + 1e-9);
    }

    #[test]
    fn all_methods_share_density_quality() {
        let d = design();
        let cfg = config();
        let ctx = FlowContext::build(&d, &cfg).expect("ctx");
        let outcomes: Vec<FlowOutcome> = [
            &NormalFill as &dyn crate::methods::FillMethod,
            &GreedyFill,
            &IlpOne,
            &IlpTwo,
        ]
        .iter()
        .map(|m| ctx.run(&cfg, *m).expect("run"))
        .collect();
        let reference = outcomes[0].density_after;
        for o in &outcomes[1..] {
            assert_eq!(o.placed_features, outcomes[0].placed_features);
            assert!(
                (o.density_after.min_window_density - reference.min_window_density).abs() < 1e-12,
                "{}: density quality must be identical",
                o.method
            );
        }
    }

    #[test]
    fn method_ordering_matches_paper() {
        let d = design();
        let cfg = config();
        let ctx = FlowContext::build(&d, &cfg).expect("ctx");
        let run =
            |m: &dyn crate::methods::FillMethod| ctx.run(&cfg, m).expect("run").impact.total_delay;
        let normal = run(&NormalFill);
        let greedy = run(&GreedyFill);
        let ilp2 = run(&IlpTwo);
        let dp = run(&DpExact);
        // ILP-II optimizes the exact per-tile model: it must beat Normal
        // and match the DP reference closely.
        assert!(ilp2 <= normal + 1e-24, "ilp2 {ilp2} vs normal {normal}");
        assert!(ilp2 <= greedy + 1e-24, "ilp2 {ilp2} vs greedy {greedy}");
        assert!(
            (ilp2 - dp).abs() <= 1e-9 * (1.0 + dp.abs()),
            "ilp2 {ilp2} vs dp {dp}"
        );
        // Greedy should also improve on random placement.
        assert!(
            greedy <= normal + 1e-24,
            "greedy {greedy} vs normal {normal}"
        );
    }

    #[test]
    fn def_one_takes_shortfall() {
        let d = design();
        let mut cfg = config();
        cfg.def = SlackColumnDef::One;
        let outcome = run_flow(&d, &cfg, &GreedyFill).expect("flow");
        // Definition I wastes all boundary slack; on a sparse design the
        // budget cannot fit.
        assert!(
            outcome.shortfall > 0,
            "expected shortfall under SlackColumn-I"
        );
        assert_eq!(
            outcome.placed_features + outcome.shortfall,
            outcome.budget_total
        );
    }

    #[test]
    fn weighted_objective_reduces_weighted_metric() {
        let d = design();
        let mut cfg = config();
        let ctx = FlowContext::build(&d, &cfg).expect("ctx");
        cfg.weighted = false;
        let unweighted_run = ctx.run(&cfg, &IlpTwo).expect("run");
        cfg.weighted = true;
        let weighted_run = ctx.run(&cfg, &IlpTwo).expect("run");
        assert!(weighted_run.impact.weighted_delay <= unweighted_run.impact.weighted_delay + 1e-24);
    }

    #[test]
    fn parallel_run_is_bit_identical_for_every_method_and_thread_count() {
        let d = design();
        let cfg = config();
        let ctx = FlowContext::build(&d, &cfg).expect("ctx");
        let bounded = crate::methods::BoundedGreedy::new(1e-12);
        let methods: [&(dyn crate::methods::FillMethod + Sync); 6] = [
            &NormalFill,
            &GreedyFill,
            &bounded,
            &IlpOne,
            &IlpTwo,
            &DpExact,
        ];
        for method in methods {
            let seq = ctx.run(&cfg, method).expect("seq");
            for threads in [1usize, 2, 8] {
                let pool = WorkerPool::new(threads);
                let runs = [
                    ctx.run_parallel(&cfg, method, threads).expect("par"),
                    ctx.run_pool(&cfg, method, &pool).expect("pooled"),
                    ctx.run_pool_forced(&cfg, method, &pool).expect("forced"),
                ];
                for par in &runs {
                    let tag = format!("{} @ {threads} threads", method.name());
                    // Everything except wall-clock timing must be
                    // bit-identical, including the sharded evaluation's
                    // f64 accumulators inside `impact`.
                    assert_eq!(seq.method, par.method, "{tag}");
                    assert_eq!(seq.features, par.features, "{tag}");
                    assert_eq!(seq.placed_features, par.placed_features, "{tag}");
                    assert_eq!(seq.budget_total, par.budget_total, "{tag}");
                    assert_eq!(seq.shortfall, par.shortfall, "{tag}");
                    assert_eq!(seq.tiles, par.tiles, "{tag}");
                    assert_eq!(seq.impact, par.impact, "{tag}");
                    assert_eq!(seq.density_before, par.density_before, "{tag}");
                    assert_eq!(seq.density_after, par.density_after, "{tag}");
                }
            }
        }
    }

    #[test]
    fn pool_reuse_gives_identical_results_to_fresh_pools() {
        // One persistent pool across context build and two consecutive
        // runs must match transient per-call pools bit for bit.
        let d = design();
        let cfg = config();
        let pool = WorkerPool::new(4);
        let ctx = FlowContext::build_pool_forced(&d, &cfg, &pool).expect("pooled ctx");
        let fresh_ctx = FlowContext::build(&d, &cfg).expect("fresh ctx");
        assert_eq!(ctx.problems, fresh_ctx.problems);
        assert_eq!(ctx.budget_total, fresh_ctx.budget_total);

        let first = ctx
            .run_pool_forced(&cfg, &IlpTwo, &pool)
            .expect("first run");
        let second = ctx
            .run_pool_forced(&cfg, &IlpTwo, &pool)
            .expect("second run");
        let fresh = fresh_ctx.run_parallel(&cfg, &IlpTwo, 4).expect("fresh run");
        for run in [&second, &fresh] {
            assert_eq!(first.features, run.features);
            assert_eq!(first.impact, run.impact);
            assert_eq!(first.placed_features, run.placed_features);
            assert_eq!(first.shortfall, run.shortfall);
            assert_eq!(first.density_after, run.density_after);
        }
    }

    #[test]
    fn borrowed_design_context_matches_owned_transposed_context() {
        // The non-transposed path borrows the design (Cow::Borrowed);
        // sanity-check it against an explicit clone-based build.
        let d = design();
        let cfg = config();
        let ctx = FlowContext::build(&d, &cfg).expect("ctx");
        assert!(
            matches!(ctx.frame_design, Cow::Borrowed(_)),
            "horizontal layer must borrow the caller's design"
        );
        let mut vcfg = cfg.clone();
        vcfg.layer = pilfill_layout::LayerId(1); // m2, vertical
        let vctx = FlowContext::build(&d, &vcfg).expect("vertical ctx");
        assert!(
            matches!(vctx.frame_design, Cow::Owned(_)),
            "vertical layer needs the transposed working frame"
        );
    }

    #[test]
    fn parallel_build_matches_sequential_for_every_def() {
        let d = design();
        for def in [
            SlackColumnDef::One,
            SlackColumnDef::Two,
            SlackColumnDef::Three,
        ] {
            let mut cfg = config();
            cfg.def = def;
            let seq = FlowContext::build(&d, &cfg).expect("seq build");
            for threads in [2usize, 8] {
                let par = FlowContext::build_pool_forced(&d, &cfg, &WorkerPool::new(threads))
                    .expect("par build");
                assert_eq!(seq.problems, par.problems, "{def} @ {threads} threads");
                assert_eq!(seq.budget_total, par.budget_total);
                let a = seq.run(&cfg, &GreedyFill).expect("run seq ctx");
                let b = par.run(&cfg, &GreedyFill).expect("run par ctx");
                assert_eq!(a.features, b.features);
                assert_eq!(a.impact, b.impact);
            }
        }
    }

    #[test]
    fn all_layers_flow_covers_every_layer() {
        let d = design();
        let cfg = config();
        let outcomes = run_flow_all_layers(&d, &cfg, &GreedyFill).expect("all layers");
        assert_eq!(outcomes.len(), d.layers.len());
        for (layer, o) in &outcomes {
            assert_eq!(o.placed_features, o.budget_total, "layer {}", layer.0);
            // Features must clear the wires of their own layer.
            let size = d.rules.feature_size;
            for (_, _, seg) in d.segments_on_layer(*layer) {
                let keepout = seg.rect().grown(d.rules.buffer);
                for f in &o.features {
                    assert!(!f.rect(size).overlaps(&keepout));
                }
            }
        }
    }

    #[test]
    fn vertical_layer_flow_matches_transposed_horizontal_flow() {
        // Filling the vertical jog layer of a design must be exactly the
        // horizontal flow on the transposed design, with features mapped
        // back into the original frame.
        let d = design();
        let mut cfg = config();
        cfg.layer = pilfill_layout::LayerId(1); // m2, vertical
        let vertical = run_flow(&d, &cfg, &GreedyFill).expect("vertical flow");

        let dt = d.transposed();
        let horizontal = run_flow(&dt, &cfg, &GreedyFill).expect("transposed flow");
        assert_eq!(vertical.impact.total_delay, horizontal.impact.total_delay);
        assert_eq!(vertical.placed_features, horizontal.placed_features);
        let mapped: Vec<_> = horizontal
            .features
            .iter()
            .map(|f| crate::FillFeature { x: f.y, y: f.x })
            .collect();
        assert_eq!(vertical.features, mapped);

        // Features lie inside the original die and clear of m2 wires.
        let size = d.rules.feature_size;
        for f in &vertical.features {
            assert!(d.die.contains_rect(&f.rect(size)));
        }
        for (_, _, seg) in d.segments_on_layer(pilfill_layout::LayerId(1)) {
            let keepout = seg.rect().grown(d.rules.buffer);
            for f in &vertical.features {
                assert!(
                    !f.rect(size).overlaps(&keepout),
                    "vertical-layer fill too close to wire"
                );
            }
        }
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(FlowConfig::new(0, 2).is_err());
        assert!(FlowConfig::new(1_001, 2).is_err());
        assert!(FlowConfig::new(8_000, 0).is_err());
    }

    fn assert_outcomes_identical(a: &FlowOutcome, b: &FlowOutcome, tag: &str) {
        assert_eq!(a.method, b.method, "{tag}");
        assert_eq!(a.features, b.features, "{tag}");
        assert_eq!(a.placed_features, b.placed_features, "{tag}");
        assert_eq!(a.budget_total, b.budget_total, "{tag}");
        assert_eq!(a.shortfall, b.shortfall, "{tag}");
        assert_eq!(a.tiles, b.tiles, "{tag}");
        assert_eq!(a.impact, b.impact, "{tag}");
        assert_eq!(a.density_before, b.density_before, "{tag}");
        assert_eq!(a.density_after, b.density_after, "{tag}");
    }

    #[test]
    fn streamed_run_is_bit_identical_to_serial_for_every_lane_count() {
        let d = design();
        let cfg = config();
        let ctx = FlowContext::build(&d, &cfg).expect("ctx");
        for method in [
            &NormalFill as &(dyn crate::methods::FillMethod + Sync),
            &GreedyFill,
            &IlpTwo,
        ] {
            let serial = ctx.run(&cfg, method).expect("serial");
            for lanes in [1usize, 2, 4, 8] {
                let pool = WorkerPool::new(lanes);
                let (sctx, streamed) =
                    run_flow_streamed_forced(&d, &cfg, method, &pool).expect("streamed");
                let tag = format!("{} @ {lanes} lanes", method.name());
                assert_outcomes_identical(&serial, &streamed, &tag);
                assert_eq!(sctx.problems, ctx.problems, "{tag}");
                assert_eq!(sctx.columns, ctx.columns, "{tag}");
                assert_eq!(sctx.budget, ctx.budget, "{tag}");
                // The public (host-aware) entry must agree too.
                let (_, public) = run_flow_streamed(&d, &cfg, method, &pool).expect("public");
                assert_outcomes_identical(&serial, &public, &tag);
            }
        }
    }

    #[test]
    fn streamed_run_falls_back_for_weaker_definitions() {
        let d = design();
        let mut cfg = config();
        cfg.def = SlackColumnDef::Two;
        let pool = WorkerPool::new(2);
        let (ctx, streamed) = run_flow_streamed(&d, &cfg, &GreedyFill, &pool).expect("streamed");
        let serial = ctx.run(&cfg, &GreedyFill).expect("serial");
        assert_outcomes_identical(&serial, &streamed, "def II fallback");
    }

    /// Thicken one segment of one net — a localized geometry change that
    /// keeps the net's line count on the layer.
    fn mutate_one_segment(d: &Design) -> Design {
        let mut d2 = d.clone();
        let layer = LayerId(0);
        let (ni, si) = d2
            .nets
            .iter()
            .enumerate()
            .find_map(|(ni, n)| {
                n.segments
                    .iter()
                    .position(|s| s.layer == layer && s.start.y == s.end.y)
                    .map(|si| (ni, si))
            })
            .expect("a horizontal segment on the fill layer");
        d2.nets[ni].segments[si].width += 100;
        d2
    }

    #[test]
    fn rebuild_after_one_segment_mutation_matches_fresh_build() {
        let d = design();
        let cfg = config();
        let pool = WorkerPool::new(1);
        let d2 = mutate_one_segment(&d);

        let mut ctx = FlowContext::build(&d, &cfg).expect("ctx");
        let stats = ctx.rebuild(&d2, &cfg, &pool).expect("rebuild");
        assert!(!stats.full, "a one-segment change must stay incremental");
        assert_eq!(stats.changed_nets, 1);
        assert!(stats.dirty_site_columns > 0);
        assert!(stats.dirty_grid_columns > 0);

        let fresh = FlowContext::build(&d2, &cfg).expect("fresh");
        assert_eq!(ctx.lines, fresh.lines);
        assert_eq!(ctx.columns, fresh.columns);
        assert_eq!(ctx.problems, fresh.problems);
        assert_eq!(ctx.slack, fresh.slack);
        assert_eq!(ctx.budget, fresh.budget);
        assert_eq!(ctx.budget_total, fresh.budget_total);
        assert_eq!(ctx.density_before, fresh.density_before);

        // And the run outcome is bit-identical as well.
        let a = ctx.run(&cfg, &IlpTwo).expect("rebuilt run");
        let b = fresh.run(&cfg, &IlpTwo).expect("fresh run");
        assert_outcomes_identical(&a, &b, "rebuild vs fresh");
    }

    /// A value-only edit — duplicating a sink bumps downstream weights
    /// without moving any geometry — must re-solve the net's tiles but
    /// reuse the cached budget (density and slack are bit-identical).
    #[test]
    fn rebuild_after_sink_weight_change_reuses_the_budget() {
        let d = design();
        let cfg = config();
        let pool = WorkerPool::new(1);
        let mut d2 = d.clone();
        let sink = d2.nets[0].sinks[0];
        d2.nets[0].sinks.push(sink);

        let mut ctx = FlowContext::build(&d, &cfg).expect("ctx");
        let stats = ctx.rebuild(&d2, &cfg, &pool).expect("rebuild");
        assert!(!stats.full, "a sink edit must stay incremental");
        assert_eq!(stats.changed_nets, 1);
        assert_eq!(
            stats.dirty_site_columns, 0,
            "no geometry moved, so no column needs a re-sweep"
        );
        assert!(
            stats.dirty_grid_columns > 0,
            "the net's tiles must still be re-solved (weights feed costs)"
        );
        assert!(
            stats.budget_reused,
            "geometry-preserving edits must reuse the cached budget"
        );

        let fresh = FlowContext::build(&d2, &cfg).expect("fresh");
        assert_eq!(ctx.lines, fresh.lines);
        assert_eq!(ctx.columns, fresh.columns);
        assert_eq!(ctx.problems, fresh.problems);
        assert_eq!(ctx.slack, fresh.slack);
        assert_eq!(ctx.budget, fresh.budget);
        assert_eq!(ctx.budget_total, fresh.budget_total);
        assert_eq!(ctx.density_before, fresh.density_before);
        let a = ctx.run(&cfg, &IlpTwo).expect("rebuilt run");
        let b = fresh.run(&cfg, &IlpTwo).expect("fresh run");
        assert_outcomes_identical(&a, &b, "sink-weight rebuild vs fresh");
    }

    #[test]
    fn rebuild_with_no_change_is_a_no_op_hit() {
        let d = design();
        let cfg = config();
        let pool = WorkerPool::new(1);
        let mut ctx = FlowContext::build(&d, &cfg).expect("ctx");
        let before_problems = ctx.problems.clone();
        let stats = ctx.rebuild(&d, &cfg, &pool).expect("rebuild");
        assert_eq!(
            stats,
            RebuildStats {
                full: false,
                changed_nets: 0,
                dirty_site_columns: 0,
                dirty_grid_columns: 0,
                budget_reused: true,
            }
        );
        assert_eq!(ctx.problems, before_problems);
    }

    #[test]
    fn rebuild_falls_back_on_structural_changes() {
        let d = design();
        let cfg = config();
        let pool = WorkerPool::new(1);

        // Config change -> full.
        let mut ctx = FlowContext::build(&d, &cfg).expect("ctx");
        let mut cfg2 = cfg.clone();
        cfg2.weighted = true;
        assert!(ctx.rebuild(&d, &cfg2, &pool).expect("rebuild").full);

        // Net-count change -> full.
        let mut ctx = FlowContext::build(&d, &cfg).expect("ctx");
        let mut d2 = d.clone();
        d2.nets.pop();
        let stats = ctx.rebuild(&d2, &cfg, &pool).expect("rebuild");
        assert!(stats.full);
        let fresh = FlowContext::build(&d2, &cfg).expect("fresh");
        assert_eq!(ctx.problems, fresh.problems);
        assert_eq!(ctx.budget, fresh.budget);
    }

    #[test]
    fn solve_tile_and_finish_run_replay_matches_run() {
        let d = design();
        let cfg = config();
        let ctx = FlowContext::build(&d, &cfg).expect("ctx");
        let direct = ctx.run(&cfg, &IlpTwo).expect("run");
        let mut per_tile = Vec::new();
        for i in 0..ctx.problems().len() {
            let (counts, elapsed) = ctx.solve_tile(&cfg, &IlpTwo, i).expect("tile");
            per_tile.push((i, counts, elapsed));
        }
        let replayed = ctx.finish_run(IlpTwo.name(), per_tile).expect("finish");
        assert_outcomes_identical(&direct, &replayed, "solve_tile replay");
    }

    #[test]
    fn into_owned_preserves_run_results() {
        let d = design();
        let cfg = config();
        let borrowed = FlowContext::build(&d, &cfg).expect("ctx");
        let a = borrowed.run(&cfg, &IlpTwo).expect("borrowed run");
        let owned: FlowContext<'static> = borrowed.into_owned();
        drop(d); // the owned context must not depend on the design
        let b = owned.run(&cfg, &IlpTwo).expect("owned run");
        assert_outcomes_identical(&a, &b, "into_owned");
    }

    #[test]
    fn rebuild_owned_matches_borrowed_rebuild() {
        let d = design();
        let cfg = config();
        let pool = WorkerPool::new(1);
        let d2 = mutate_one_segment(&d);

        let mut borrowed = FlowContext::build(&d, &cfg).expect("ctx");
        let mut owned = FlowContext::build(&d, &cfg).expect("ctx").into_owned();
        let (stats_b, dirt_b) = borrowed.rebuild_tracked(&d2, &cfg, &pool).expect("rebuild");
        let (stats_o, dirt_o) = owned
            .rebuild_owned(&d2, &cfg, &pool)
            .expect("rebuild owned");
        assert_eq!(stats_b, stats_o);
        assert_eq!(dirt_b, dirt_o);
        assert!(!stats_o.full);
        let a = borrowed.run(&cfg, &IlpTwo).expect("run");
        let b = owned.run(&cfg, &IlpTwo).expect("run");
        assert_outcomes_identical(&a, &b, "rebuild_owned vs rebuild");

        // Structural fallback works on the owned path too.
        let mut d3 = d2.clone();
        d3.nets.pop();
        let (stats, dirt) = owned.rebuild_owned(&d3, &cfg, &pool).expect("full");
        assert!(stats.full);
        assert_eq!(dirt, RebuildDirt::All);
        let fresh = FlowContext::build(&d3, &cfg).expect("fresh");
        let a = owned.run(&cfg, &IlpTwo).expect("run");
        let b = fresh.run(&cfg, &IlpTwo).expect("run");
        assert_outcomes_identical(&a, &b, "owned full fallback");
    }

    #[test]
    fn rebuild_dirt_bounds_the_tiles_whose_results_change() {
        // Replay clean tiles from the pre-edit cache, re-solve only the
        // reported dirty tiles, and the assembled outcome must be
        // bit-identical to a fresh full run on the edited design — the
        // exact contract the serving layer's result cache relies on.
        let d = design();
        let cfg = config();
        let pool = WorkerPool::new(1);
        // A sink duplication changes line weights (so the net's tiles
        // must re-solve) without moving geometry (so the budget — and
        // with it every other tile's allotment — is reused). Pick the
        // net with the smallest x-span on the fill layer so the dirt
        // stays partial.
        let mut d2 = d.clone();
        let ni = d2
            .nets
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                !n.sinks.is_empty() && n.segments.iter().any(|s| s.layer == LayerId(0))
            })
            .min_by_key(|(_, n)| {
                let rects: Vec<_> = n
                    .segments
                    .iter()
                    .filter(|s| s.layer == LayerId(0))
                    .map(|s| s.rect())
                    .collect();
                let left = rects.iter().map(|r| r.left).min().unwrap_or(0);
                let right = rects.iter().map(|r| r.right).max().unwrap_or(0);
                right - left
            })
            .map(|(ni, _)| ni)
            .expect("a net with sinks on the fill layer");
        let sink = d2.nets[ni].sinks[0];
        d2.nets[ni].sinks.push(sink);

        let mut ctx = FlowContext::build(&d, &cfg).expect("ctx");
        let mut cached: Vec<Vec<u32>> = Vec::new();
        for i in 0..ctx.problems().len() {
            cached.push(ctx.solve_tile(&cfg, &IlpTwo, i).expect("tile").0);
        }
        let (stats, dirt) = ctx.rebuild_tracked(&d2, &cfg, &pool).expect("rebuild");
        assert!(!stats.full);
        assert!(stats.budget_reused);
        let RebuildDirt::Tiles(dirty) = &dirt else {
            panic!("value-only edit with reused budget must report tile dirt, got {dirt:?}");
        };
        assert!(!dirty.is_empty());
        assert!(dirty.len() < ctx.problems().len(), "dirt must be partial");
        assert!(dirty.windows(2).all(|w| w[0] < w[1]), "sorted ascending");

        let mut per_tile = Vec::new();
        for (i, counts) in cached.into_iter().enumerate() {
            let counts = if dirty.contains(&i) {
                ctx.solve_tile(&cfg, &IlpTwo, i).expect("re-solve").0
            } else {
                counts
            };
            per_tile.push((i, counts, Duration::ZERO));
        }
        let replayed = ctx.finish_run(IlpTwo.name(), per_tile).expect("finish");
        let fresh = FlowContext::build(&d2, &cfg)
            .expect("fresh")
            .run(&cfg, &IlpTwo)
            .expect("fresh run");
        assert_outcomes_identical(&fresh, &replayed, "dirty-tile replay");
    }

    #[test]
    fn forced_parallel_paths_match_the_serial_fallback() {
        // On any host, the forced multi-lane build/run must equal the
        // public entry points (which may fall back to serial on 1 CPU).
        let d = design();
        let cfg = config();
        let pool = WorkerPool::new(4);
        let ctx = FlowContext::build_pool(&d, &cfg, &pool).expect("ctx");
        let forced = FlowContext::build_pool_forced(&d, &cfg, &pool).expect("forced ctx");
        assert_eq!(ctx.problems, forced.problems);
        assert_eq!(ctx.budget_total, forced.budget_total);
        let a = ctx.run_pool(&cfg, &IlpTwo, &pool).expect("run");
        let b = forced
            .run_pool_forced(&cfg, &IlpTwo, &pool)
            .expect("forced run");
        assert_outcomes_identical(&a, &b, "forced vs fallback");
    }
}
