//! End-to-end PIL-Fill flow: density analysis, fill budgeting, per-tile
//! MDFC solving and exact evaluation — the pipeline behind every row of
//! the paper's Tables 1 and 2.

use crate::methods::{FillMethod, MethodError};
use crate::{
    build_tile_problems_pool, evaluate_placement, evaluate_placement_pool, extract_active_lines,
    scan_slack_columns, DelayImpact, FillFeature, SlackColumnDef, TileProblem,
};
use pilfill_density::{
    lp_budget, montecarlo_budget, BudgetError, DensityAnalysis, DensityMap, DissectionError,
    FixedDissection,
};
use pilfill_exec::WorkerPool;
use pilfill_geom::{units, Coord};
use pilfill_layout::{Design, LayerId, LayoutError};
use pilfill_prng::rngs::StdRng;
use pilfill_prng::SeedableRng;
use std::borrow::Cow;
use std::time::{Duration, Instant};

/// Configuration of one flow run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// Fill target layer.
    pub layer: LayerId,
    /// Density window size in dbu (the paper's `w`).
    pub window: Coord,
    /// Dissection parameter (the paper's `r`).
    pub r: usize,
    /// Slack-column definition for the per-tile problems.
    pub def: SlackColumnDef,
    /// Optimize the weighted objective (Table 2) instead of the unweighted
    /// one (Table 1). Evaluation always reports both.
    pub weighted: bool,
    /// Window-density upper bound for budgeting.
    pub max_density: f64,
    /// Seed for stochastic methods (Normal fill).
    pub seed: u64,
    /// Use the exact LP for budgeting instead of the Monte-Carlo greedy
    /// (only sensible for small tile grids).
    pub lp_budget: bool,
}

impl FlowConfig {
    /// A default configuration for the given window size and dissection:
    /// SlackColumn-III, unweighted objective, Monte-Carlo budgeting, 33%
    /// density bound.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Dissection`] if `window` is not positive and
    /// divisible by `r`.
    pub fn new(window: Coord, r: usize) -> Result<Self, FlowError> {
        // `r` is untrusted config: reject (rather than assert) values that
        // do not fit a coordinate.
        let r_coord = units::try_coord(r).unwrap_or(-1);
        if window <= 0 || r_coord <= 0 || window % r_coord != 0 {
            return Err(FlowError::Dissection(DissectionError::InvalidWindow {
                window,
                r,
            }));
        }
        Ok(Self {
            layer: LayerId(0),
            window,
            r,
            def: SlackColumnDef::Three,
            weighted: false,
            max_density: 0.33,
            seed: 0xF111,
            lp_budget: false,
        })
    }
}

/// Error from the end-to-end flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// Invalid dissection parameters.
    Dissection(DissectionError),
    /// Layout/topology problem.
    Layout(LayoutError),
    /// Fill budgeting failed.
    Budget(BudgetError),
    /// A per-tile method failed.
    Method(MethodError),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Dissection(e) => write!(f, "dissection: {e}"),
            FlowError::Layout(e) => write!(f, "layout: {e}"),
            FlowError::Budget(e) => write!(f, "budget: {e}"),
            FlowError::Method(e) => write!(f, "method: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<DissectionError> for FlowError {
    fn from(e: DissectionError) -> Self {
        FlowError::Dissection(e)
    }
}
impl From<LayoutError> for FlowError {
    fn from(e: LayoutError) -> Self {
        FlowError::Layout(e)
    }
}
impl From<BudgetError> for FlowError {
    fn from(e: BudgetError) -> Self {
        FlowError::Budget(e)
    }
}
impl From<MethodError> for FlowError {
    fn from(e: MethodError) -> Self {
        FlowError::Method(e)
    }
}

/// Everything a flow run produces.
#[derive(Debug, Clone)]
#[must_use = "a flow run is expensive; dropping its outcome discards the results"]
pub struct FlowOutcome {
    /// Method name.
    pub method: &'static str,
    /// Exact delay impact of the placement.
    pub impact: DelayImpact,
    /// Total features prescribed by the density budget.
    pub budget_total: u64,
    /// Features actually placed.
    pub placed_features: u64,
    /// Budgeted features that could not be placed (capacity shortfall —
    /// non-zero mainly under SlackColumn-I).
    pub shortfall: u64,
    /// Window-density analysis before fill.
    pub density_before: DensityAnalysis,
    /// Window-density analysis after fill.
    pub density_after: DensityAnalysis,
    /// The placed fill features (for export / rendering).
    pub features: Vec<FillFeature>,
    /// Wall-clock time spent in the per-tile placement method.
    pub solve_time: Duration,
    /// Number of tiles in the dissection.
    pub tiles: usize,
}

/// Precomputed, method-independent flow state: everything up to (and
/// including) the fill budget. Build once per (design, config) and run
/// several methods against it without repaying the setup cost.
///
/// Algorithms are written for horizontally routed layers; when the target
/// layer routes vertically, the context works on the transposed design and
/// transposes placed features back into the original frame. Horizontal
/// layers borrow the caller's design ([`Cow::Borrowed`]) — only the
/// transposed path pays for an owned copy.
#[derive(Debug, Clone)]
pub struct FlowContext<'d> {
    /// The design in the working frame (transposed for vertical layers).
    frame_design: Cow<'d, Design>,
    /// `true` when the working frame is the transpose of the input.
    transposed: bool,
    dissection: FixedDissection,
    lines: Vec<crate::ActiveLine>,
    columns: Vec<crate::SlackColumn>,
    problems: Vec<TileProblem>,
    budget: pilfill_density::FillBudget,
    budget_total: u64,
    density_before: DensityAnalysis,
    density_map: DensityMap,
}

impl<'d> FlowContext<'d> {
    /// Builds the context: extraction, scan, tile problems, density map and
    /// fill budget.
    ///
    /// # Errors
    ///
    /// See [`FlowError`].
    pub fn build(design: &'d Design, config: &FlowConfig) -> Result<Self, FlowError> {
        Self::build_pool(design, config, &WorkerPool::new(1))
    }

    /// Like [`FlowContext::build`], but prepares the per-tile problems on a
    /// transient `threads`-lane [`WorkerPool`] (per-tile slack scans for
    /// definitions I/II, sharded global-column distribution for
    /// definition III). The result is identical for every thread count.
    /// Callers building repeatedly should hold their own pool and use
    /// [`FlowContext::build_pool`] to amortize worker spawn-up.
    ///
    /// # Errors
    ///
    /// See [`FlowError`].
    pub fn build_parallel(
        design: &'d Design,
        config: &FlowConfig,
        threads: usize,
    ) -> Result<Self, FlowError> {
        Self::build_pool(design, config, &WorkerPool::new(threads))
    }

    /// Like [`FlowContext::build`], but prepares the per-tile problems on
    /// the caller's persistent [`WorkerPool`]. The result is identical for
    /// every pool size.
    ///
    /// # Errors
    ///
    /// See [`FlowError`].
    pub fn build_pool(
        design: &'d Design,
        config: &FlowConfig,
        pool: &WorkerPool,
    ) -> Result<Self, FlowError> {
        // Work in a frame where the target layer routes horizontally.
        let transposed = design
            .layers
            .get(config.layer.0)
            .map(|l| l.dir.is_vertical())
            .unwrap_or(false);
        let frame_design: Cow<'d, Design> = if transposed {
            Cow::Owned(design.transposed())
        } else {
            Cow::Borrowed(design)
        };
        let design: &Design = &frame_design;
        let dissection = FixedDissection::new(design.die, config.window, config.r)?;
        let lines = extract_active_lines(design, config.layer)?;
        let columns = scan_slack_columns(&lines, design.die, design.rules);

        // Per-tile capacity for budgeting always uses definition III (the
        // physical truth); the method may then be run under a weaker
        // definition and take a shortfall.
        let problems_three = build_tile_problems_pool(
            &lines,
            &columns,
            &dissection,
            &design.tech,
            design.rules,
            SlackColumnDef::Three,
            pool,
        );
        let slack: Vec<u32> = problems_three
            .iter()
            .map(|p| units::saturating_count(p.capacity()))
            .collect();

        let density_map = DensityMap::compute(design, config.layer, &dissection);
        let density_before = density_map.analyze();
        let feature_area = design.rules.feature_area();
        let budget = if config.lp_budget {
            lp_budget(&density_map, &slack, feature_area, config.max_density)?
        } else {
            montecarlo_budget(&density_map, &slack, feature_area, config.max_density)?
        };
        let budget_total = budget.total();

        let problems = if config.def == SlackColumnDef::Three {
            problems_three
        } else {
            build_tile_problems_pool(
                &lines,
                &columns,
                &dissection,
                &design.tech,
                design.rules,
                config.def,
                pool,
            )
        };

        Ok(Self {
            frame_design,
            transposed,
            dissection,
            lines,
            columns,
            problems,
            budget,
            budget_total,
            density_before,
            density_map,
        })
    }

    /// The design in the working frame (transposed when the target layer
    /// routes vertically).
    pub fn frame_design(&self) -> &Design {
        &self.frame_design
    }

    /// The per-tile problems (row-major).
    pub fn problems(&self) -> &[TileProblem] {
        &self.problems
    }

    /// The global slack columns.
    pub fn columns(&self) -> &[crate::SlackColumn] {
        &self.columns
    }

    /// The extracted active lines.
    pub fn lines(&self) -> &[crate::ActiveLine] {
        &self.lines
    }

    /// Total budgeted features.
    pub fn budget_total(&self) -> u64 {
        self.budget_total
    }

    /// Features budgeted for one tile.
    pub fn budget_features(&self, cell: pilfill_geom::CellIndex) -> u32 {
        self.budget.features(cell)
    }

    /// Runs one placement method against the prepared context, solving
    /// tiles on a transient `threads`-lane [`WorkerPool`]. The result is
    /// identical to [`FlowContext::run`] for any thread count: per-tile
    /// seeds depend only on the tile index, and tile results are merged in
    /// tile order. Callers running repeatedly should hold their own pool
    /// and use [`FlowContext::run_pool`] to amortize worker spawn-up.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Method`] if any tile solve fails.
    pub fn run_parallel(
        &self,
        config: &FlowConfig,
        method: &(dyn FillMethod + Sync),
        threads: usize,
    ) -> Result<FlowOutcome, FlowError> {
        let threads = threads.max(1);
        if threads == 1 || self.problems.len() < 2 {
            return self.run(config, method);
        }
        self.run_pool(config, method, &WorkerPool::new(threads))
    }

    /// Runs one placement method against the prepared context on the
    /// caller's persistent [`WorkerPool`]. Tiles are claimed dynamically
    /// (one 4.5ms ILP-II tile no longer serializes a static chunk of
    /// followers) and the delay evaluation is sharded by slack column; the
    /// result is bit-identical to [`FlowContext::run`] for every pool
    /// size.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Method`] if any tile solve fails.
    pub fn run_pool(
        &self,
        config: &FlowConfig,
        method: &(dyn FillMethod + Sync),
        pool: &WorkerPool,
    ) -> Result<FlowOutcome, FlowError> {
        let n = self.problems.len();
        if pool.threads() == 1 || n < 2 {
            return self.run(config, method);
        }

        // Each tile owns one pre-partitioned result slot: no locks, no
        // contention, and every slot is written exactly once.
        type TileResult = Result<(Vec<u32>, Duration), MethodError>;
        let mut results: Vec<Option<TileResult>> = Vec::new();
        results.resize_with(n, || None);
        pool.for_each_slot(&mut results, |i, slot| {
            let problem = &self.problems[i];
            let want = self.budget.features(problem.cell);
            let effective = units::saturating_count(u64::from(want).min(problem.capacity()));
            *slot = Some(if effective == 0 {
                Ok((vec![0; problem.columns.len()], Duration::ZERO))
            } else {
                let mut rng = StdRng::seed_from_u64(tile_seed(config.seed, problem.cell));
                let t0 = Instant::now();
                method
                    .place(problem, effective, config.weighted, &mut rng)
                    .map(|counts| (counts, t0.elapsed()))
            });
        });

        let mut per_tile = Vec::with_capacity(n);
        for (i, slot) in results.into_iter().enumerate() {
            // The pool claims every index exactly once: each slot is written.
            let (counts, elapsed) = slot.expect("every tile visited")?; // pilfill: allow(unwrap)
            per_tile.push((i, counts, elapsed));
        }
        self.assemble(method.name(), per_tile, Some(pool))
    }

    /// Runs one placement method against the prepared context.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Method`] if a tile solve fails.
    pub fn run(
        &self,
        config: &FlowConfig,
        method: &dyn FillMethod,
    ) -> Result<FlowOutcome, FlowError> {
        let mut per_tile = Vec::with_capacity(self.problems.len());
        for (i, problem) in self.problems.iter().enumerate() {
            let want = self.budget.features(problem.cell);
            let effective = units::saturating_count(u64::from(want).min(problem.capacity()));
            if effective == 0 {
                per_tile.push((i, vec![0; problem.columns.len()], Duration::ZERO));
                continue;
            }
            let mut rng = StdRng::seed_from_u64(tile_seed(config.seed, problem.cell));
            let t0 = Instant::now();
            let counts = method.place(problem, effective, config.weighted, &mut rng)?;
            per_tile.push((i, counts, t0.elapsed()));
        }
        self.assemble(method.name(), per_tile, None)
    }

    /// Merges per-tile assignments into features, density and impact. With
    /// a pool, the delay evaluation shards its per-column work across the
    /// lanes (same result — the accumulator fold order is fixed).
    fn assemble(
        &self,
        method_name: &'static str,
        per_tile: Vec<(usize, Vec<u32>, Duration)>,
        pool: Option<&WorkerPool>,
    ) -> Result<FlowOutcome, FlowError> {
        let design: &Design = &self.frame_design;
        let mut features: Vec<FillFeature> = Vec::new();
        let mut placed = 0u64;
        let mut shortfall = 0u64;
        let mut density_after_map = self.density_map.clone();
        let feature_area = design.rules.feature_area();
        let mut solve_time = Duration::ZERO;
        let mut area_deltas = Vec::with_capacity(per_tile.len());

        for (i, counts, elapsed) in per_tile {
            let problem = &self.problems[i];
            let want = self.budget.features(problem.cell) as u64;
            let tile_placed: u64 = counts.iter().map(|&m| m as u64).sum();
            shortfall += want.saturating_sub(tile_placed);
            solve_time += elapsed;
            for (col, &m) in problem.columns.iter().zip(&counts) {
                for &slot in col.slots.iter().take(units::index(i64::from(m))) {
                    features.push(FillFeature {
                        x: col.feature_x,
                        y: slot,
                    });
                }
            }
            placed += tile_placed;
            area_deltas.push((problem.cell, tile_placed as i64 * feature_area));
        }
        // One batched update → a single prefix-sum rebuild instead of one
        // per tile.
        density_after_map.add_tile_areas(area_deltas);

        let impact = match pool {
            Some(pool) => evaluate_placement_pool(
                pool,
                &features,
                &self.columns,
                &self.lines,
                design.die,
                &design.tech,
                design.rules,
                design.nets.len(),
            ),
            None => evaluate_placement(
                &features,
                &self.columns,
                &self.lines,
                design.die,
                &design.tech,
                design.rules,
                design.nets.len(),
            ),
        };

        // Report features in the caller's frame.
        if self.transposed {
            for f in features.iter_mut() {
                *f = FillFeature { x: f.y, y: f.x };
            }
        }

        Ok(FlowOutcome {
            method: method_name,
            impact,
            budget_total: self.budget_total,
            placed_features: placed,
            shortfall,
            density_before: self.density_before,
            density_after: density_after_map.analyze(),
            features,
            solve_time,
            tiles: self.dissection.num_tiles(),
        })
    }
}

/// Per-tile RNG seed, independent of tile iteration order and thread
/// scheduling.
fn tile_seed(seed: u64, cell: pilfill_geom::CellIndex) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(((cell.0 as u64) << 32) | cell.1 as u64)
}

/// Convenience wrapper: build a [`FlowContext`] and run one method.
///
/// # Errors
///
/// See [`FlowError`].
pub fn run_flow(
    design: &Design,
    config: &FlowConfig,
    method: &dyn FillMethod,
) -> Result<FlowOutcome, FlowError> {
    FlowContext::build(design, config)?.run(config, method)
}

/// Runs the flow for every layer of the design (the full-chip fill step:
/// each layer gets its own dissection, budget and placement). `config`'s
/// `layer` field is overridden per layer; all other settings are shared.
///
/// # Errors
///
/// Returns the first [`FlowError`] encountered.
pub fn run_flow_all_layers(
    design: &Design,
    config: &FlowConfig,
    method: &dyn FillMethod,
) -> Result<Vec<(LayerId, FlowOutcome)>, FlowError> {
    (0..design.layers.len())
        .map(|li| {
            let mut layer_config = config.clone();
            layer_config.layer = LayerId(li);
            let outcome = run_flow(design, &layer_config, method)?;
            Ok((LayerId(li), outcome))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{DpExact, GreedyFill, IlpOne, IlpTwo, NormalFill};
    use pilfill_layout::synth::{synthesize, SynthConfig};

    fn design() -> Design {
        synthesize(&SynthConfig::small_test(21))
    }

    fn config() -> FlowConfig {
        FlowConfig::new(8_000, 2).expect("valid config")
    }

    #[test]
    fn flow_places_full_budget_under_def_three() {
        let d = design();
        let outcome = run_flow(&d, &config(), &GreedyFill).expect("flow");
        assert_eq!(outcome.shortfall, 0);
        assert_eq!(outcome.placed_features, outcome.budget_total);
        assert_eq!(outcome.impact.unlocated_features, 0);
    }

    #[test]
    fn fill_improves_density_uniformity() {
        let d = design();
        let outcome = run_flow(&d, &config(), &NormalFill).expect("flow");
        assert!(outcome.budget_total > 0, "test design needs fill");
        assert!(
            outcome.density_after.min_window_density > outcome.density_before.min_window_density
        );
        assert!(outcome.density_after.max_window_density <= 0.35 + 1e-9);
    }

    #[test]
    fn all_methods_share_density_quality() {
        let d = design();
        let cfg = config();
        let ctx = FlowContext::build(&d, &cfg).expect("ctx");
        let outcomes: Vec<FlowOutcome> = [
            &NormalFill as &dyn crate::methods::FillMethod,
            &GreedyFill,
            &IlpOne,
            &IlpTwo,
        ]
        .iter()
        .map(|m| ctx.run(&cfg, *m).expect("run"))
        .collect();
        let reference = outcomes[0].density_after;
        for o in &outcomes[1..] {
            assert_eq!(o.placed_features, outcomes[0].placed_features);
            assert!(
                (o.density_after.min_window_density - reference.min_window_density).abs() < 1e-12,
                "{}: density quality must be identical",
                o.method
            );
        }
    }

    #[test]
    fn method_ordering_matches_paper() {
        let d = design();
        let cfg = config();
        let ctx = FlowContext::build(&d, &cfg).expect("ctx");
        let run =
            |m: &dyn crate::methods::FillMethod| ctx.run(&cfg, m).expect("run").impact.total_delay;
        let normal = run(&NormalFill);
        let greedy = run(&GreedyFill);
        let ilp2 = run(&IlpTwo);
        let dp = run(&DpExact);
        // ILP-II optimizes the exact per-tile model: it must beat Normal
        // and match the DP reference closely.
        assert!(ilp2 <= normal + 1e-24, "ilp2 {ilp2} vs normal {normal}");
        assert!(ilp2 <= greedy + 1e-24, "ilp2 {ilp2} vs greedy {greedy}");
        assert!(
            (ilp2 - dp).abs() <= 1e-9 * (1.0 + dp.abs()),
            "ilp2 {ilp2} vs dp {dp}"
        );
        // Greedy should also improve on random placement.
        assert!(
            greedy <= normal + 1e-24,
            "greedy {greedy} vs normal {normal}"
        );
    }

    #[test]
    fn def_one_takes_shortfall() {
        let d = design();
        let mut cfg = config();
        cfg.def = SlackColumnDef::One;
        let outcome = run_flow(&d, &cfg, &GreedyFill).expect("flow");
        // Definition I wastes all boundary slack; on a sparse design the
        // budget cannot fit.
        assert!(
            outcome.shortfall > 0,
            "expected shortfall under SlackColumn-I"
        );
        assert_eq!(
            outcome.placed_features + outcome.shortfall,
            outcome.budget_total
        );
    }

    #[test]
    fn weighted_objective_reduces_weighted_metric() {
        let d = design();
        let mut cfg = config();
        let ctx = FlowContext::build(&d, &cfg).expect("ctx");
        cfg.weighted = false;
        let unweighted_run = ctx.run(&cfg, &IlpTwo).expect("run");
        cfg.weighted = true;
        let weighted_run = ctx.run(&cfg, &IlpTwo).expect("run");
        assert!(weighted_run.impact.weighted_delay <= unweighted_run.impact.weighted_delay + 1e-24);
    }

    #[test]
    fn parallel_run_is_bit_identical_for_every_method_and_thread_count() {
        let d = design();
        let cfg = config();
        let ctx = FlowContext::build(&d, &cfg).expect("ctx");
        let bounded = crate::methods::BoundedGreedy::new(1e-12);
        let methods: [&(dyn crate::methods::FillMethod + Sync); 6] = [
            &NormalFill,
            &GreedyFill,
            &bounded,
            &IlpOne,
            &IlpTwo,
            &DpExact,
        ];
        for method in methods {
            let seq = ctx.run(&cfg, method).expect("seq");
            for threads in [1usize, 2, 8] {
                let pool = WorkerPool::new(threads);
                let runs = [
                    ctx.run_parallel(&cfg, method, threads).expect("par"),
                    ctx.run_pool(&cfg, method, &pool).expect("pooled"),
                ];
                for par in &runs {
                    let tag = format!("{} @ {threads} threads", method.name());
                    // Everything except wall-clock timing must be
                    // bit-identical, including the sharded evaluation's
                    // f64 accumulators inside `impact`.
                    assert_eq!(seq.method, par.method, "{tag}");
                    assert_eq!(seq.features, par.features, "{tag}");
                    assert_eq!(seq.placed_features, par.placed_features, "{tag}");
                    assert_eq!(seq.budget_total, par.budget_total, "{tag}");
                    assert_eq!(seq.shortfall, par.shortfall, "{tag}");
                    assert_eq!(seq.tiles, par.tiles, "{tag}");
                    assert_eq!(seq.impact, par.impact, "{tag}");
                    assert_eq!(seq.density_before, par.density_before, "{tag}");
                    assert_eq!(seq.density_after, par.density_after, "{tag}");
                }
            }
        }
    }

    #[test]
    fn pool_reuse_gives_identical_results_to_fresh_pools() {
        // One persistent pool across context build and two consecutive
        // runs must match transient per-call pools bit for bit.
        let d = design();
        let cfg = config();
        let pool = WorkerPool::new(4);
        let ctx = FlowContext::build_pool(&d, &cfg, &pool).expect("pooled ctx");
        let fresh_ctx = FlowContext::build(&d, &cfg).expect("fresh ctx");
        assert_eq!(ctx.problems, fresh_ctx.problems);
        assert_eq!(ctx.budget_total, fresh_ctx.budget_total);

        let first = ctx.run_pool(&cfg, &IlpTwo, &pool).expect("first run");
        let second = ctx.run_pool(&cfg, &IlpTwo, &pool).expect("second run");
        let fresh = fresh_ctx.run_parallel(&cfg, &IlpTwo, 4).expect("fresh run");
        for run in [&second, &fresh] {
            assert_eq!(first.features, run.features);
            assert_eq!(first.impact, run.impact);
            assert_eq!(first.placed_features, run.placed_features);
            assert_eq!(first.shortfall, run.shortfall);
            assert_eq!(first.density_after, run.density_after);
        }
    }

    #[test]
    fn borrowed_design_context_matches_owned_transposed_context() {
        // The non-transposed path borrows the design (Cow::Borrowed);
        // sanity-check it against an explicit clone-based build.
        let d = design();
        let cfg = config();
        let ctx = FlowContext::build(&d, &cfg).expect("ctx");
        assert!(
            matches!(ctx.frame_design, Cow::Borrowed(_)),
            "horizontal layer must borrow the caller's design"
        );
        let mut vcfg = cfg.clone();
        vcfg.layer = pilfill_layout::LayerId(1); // m2, vertical
        let vctx = FlowContext::build(&d, &vcfg).expect("vertical ctx");
        assert!(
            matches!(vctx.frame_design, Cow::Owned(_)),
            "vertical layer needs the transposed working frame"
        );
    }

    #[test]
    fn parallel_build_matches_sequential_for_every_def() {
        let d = design();
        for def in [
            SlackColumnDef::One,
            SlackColumnDef::Two,
            SlackColumnDef::Three,
        ] {
            let mut cfg = config();
            cfg.def = def;
            let seq = FlowContext::build(&d, &cfg).expect("seq build");
            for threads in [2usize, 8] {
                let par = FlowContext::build_parallel(&d, &cfg, threads).expect("par build");
                assert_eq!(seq.problems, par.problems, "{def} @ {threads} threads");
                assert_eq!(seq.budget_total, par.budget_total);
                let a = seq.run(&cfg, &GreedyFill).expect("run seq ctx");
                let b = par.run(&cfg, &GreedyFill).expect("run par ctx");
                assert_eq!(a.features, b.features);
                assert_eq!(a.impact, b.impact);
            }
        }
    }

    #[test]
    fn all_layers_flow_covers_every_layer() {
        let d = design();
        let cfg = config();
        let outcomes = run_flow_all_layers(&d, &cfg, &GreedyFill).expect("all layers");
        assert_eq!(outcomes.len(), d.layers.len());
        for (layer, o) in &outcomes {
            assert_eq!(o.placed_features, o.budget_total, "layer {}", layer.0);
            // Features must clear the wires of their own layer.
            let size = d.rules.feature_size;
            for (_, _, seg) in d.segments_on_layer(*layer) {
                let keepout = seg.rect().grown(d.rules.buffer);
                for f in &o.features {
                    assert!(!f.rect(size).overlaps(&keepout));
                }
            }
        }
    }

    #[test]
    fn vertical_layer_flow_matches_transposed_horizontal_flow() {
        // Filling the vertical jog layer of a design must be exactly the
        // horizontal flow on the transposed design, with features mapped
        // back into the original frame.
        let d = design();
        let mut cfg = config();
        cfg.layer = pilfill_layout::LayerId(1); // m2, vertical
        let vertical = run_flow(&d, &cfg, &GreedyFill).expect("vertical flow");

        let dt = d.transposed();
        let horizontal = run_flow(&dt, &cfg, &GreedyFill).expect("transposed flow");
        assert_eq!(vertical.impact.total_delay, horizontal.impact.total_delay);
        assert_eq!(vertical.placed_features, horizontal.placed_features);
        let mapped: Vec<_> = horizontal
            .features
            .iter()
            .map(|f| crate::FillFeature { x: f.y, y: f.x })
            .collect();
        assert_eq!(vertical.features, mapped);

        // Features lie inside the original die and clear of m2 wires.
        let size = d.rules.feature_size;
        for f in &vertical.features {
            assert!(d.die.contains_rect(&f.rect(size)));
        }
        for (_, _, seg) in d.segments_on_layer(pilfill_layout::LayerId(1)) {
            let keepout = seg.rect().grown(d.rules.buffer);
            for f in &vertical.features {
                assert!(
                    !f.rect(size).overlaps(&keepout),
                    "vertical-layer fill too close to wire"
                );
            }
        }
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(FlowConfig::new(0, 2).is_err());
        assert!(FlowConfig::new(1_001, 2).is_err());
        assert!(FlowConfig::new(8_000, 0).is_err());
    }
}
