//! Exact separable-resource-allocation solver for the MDFC tile problem,
//! used as an independent reference for the ILP methods in tests and as
//! the "exact" row of ablation studies.
//!
//! The MDFC objective is separable — `sum_k cost_k(m_k)` with one budget
//! constraint — so a simple dynamic program over (column, features used)
//! finds the true optimum of the exact (lookup-table) cost model.

use super::{check_budget, FillMethod, MethodError};
use crate::TileProblem;
use pilfill_geom::units;
use pilfill_prng::rngs::StdRng;

/// Exact DP over the lookup-table costs; optimal for the same model ILP-II
/// optimizes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpExact;

impl FillMethod for DpExact {
    fn name(&self) -> &'static str {
        "DP-exact"
    }

    fn place(
        &self,
        problem: &TileProblem,
        budget: u32,
        weighted: bool,
        _rng: &mut StdRng,
    ) -> Result<Vec<u32>, MethodError> {
        check_budget(problem, budget)?;
        let k = problem.columns.len();
        let b = units::index(i64::from(budget));
        // best[i][f]: min cost placing f features in the first i columns.
        // Kept as a flat rolling array with a parent table for recovery.
        const INF: f64 = f64::INFINITY;
        let mut best = vec![INF; b + 1];
        best[0] = 0.0;
        // choice[i][f] = features placed in column i when f used after i.
        let mut choice = vec![vec![u32::MAX; b + 1]; k];
        for (i, col) in problem.columns.iter().enumerate() {
            let cap = col.capacity().min(budget);
            let mut next = vec![INF; b + 1];
            let mut pick = vec![u32::MAX; b + 1];
            for (used, &base) in best.iter().enumerate() {
                if base == INF {
                    continue;
                }
                for m in 0..=cap {
                    let f = used + units::index(i64::from(m));
                    if f > b {
                        break;
                    }
                    let cost = base + col.cost_exact(m, weighted);
                    if cost < next[f] {
                        next[f] = cost;
                        pick[f] = m;
                    }
                }
            }
            best = next;
            choice[i] = pick;
        }
        if best[b] == INF {
            // Unreachable given the capacity check, but guard anyway.
            return Err(MethodError::BudgetOverCapacity {
                budget,
                capacity: problem.capacity(),
            });
        }
        // Recover the assignment.
        let mut counts = vec![0u32; k];
        let mut f = b;
        for i in (0..k).rev() {
            let m = choice[i][f];
            debug_assert_ne!(m, u32::MAX);
            counts[i] = m;
            f -= units::index(i64::from(m));
        }
        debug_assert_eq!(f, 0);
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::testutil::{assert_valid_assignment, synthetic_tile};
    use pilfill_prng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn dp_finds_free_columns() {
        let tile = synthetic_tile(&[(2_000, 5, 1.0)], 5);
        let counts = DpExact.place(&tile, 5, false, &mut rng()).expect("place");
        assert_eq!(counts, vec![0, 5]);
    }

    #[test]
    fn dp_matches_brute_force_on_small_tiles() {
        let tile = synthetic_tile(&[(1_500, 3, 2.0), (2_500, 3, 1.0), (4_000, 3, 3.0)], 1);
        for budget in 0..=10u32 {
            let counts = DpExact
                .place(&tile, budget, false, &mut rng())
                .expect("place");
            assert_valid_assignment(&tile, &counts, budget);
            let dp_cost = tile.cost_of(&counts, false);
            // Brute force over all assignments.
            let caps: Vec<u32> = tile.columns.iter().map(|c| c.capacity()).collect();
            let mut best = f64::INFINITY;
            let mut x = vec![0u32; caps.len()];
            'outer: loop {
                if x.iter().sum::<u32>() == budget {
                    best = best.min(tile.cost_of(&x, false));
                }
                let mut i = 0;
                loop {
                    if i == caps.len() {
                        break 'outer;
                    }
                    x[i] += 1;
                    if x[i] <= caps[i] {
                        break;
                    }
                    x[i] = 0;
                    i += 1;
                }
            }
            assert!(
                (dp_cost - best).abs() < 1e-20 * (1.0 + best.abs()),
                "budget {budget}: dp {dp_cost} vs brute {best}"
            );
        }
    }

    #[test]
    fn dp_never_worse_than_greedy() {
        use crate::methods::GreedyFill;
        let tile = synthetic_tile(
            &[
                (1_000, 4, 1.0),
                (1_400, 5, 0.8),
                (5_000, 6, 2.0),
                (900, 2, 0.1),
            ],
            2,
        );
        for budget in [3u32, 8, 14] {
            let dp = DpExact.place(&tile, budget, true, &mut rng()).expect("dp");
            let gr = GreedyFill
                .place(&tile, budget, true, &mut rng())
                .expect("greedy");
            assert!(
                tile.cost_of(&dp, true) <= tile.cost_of(&gr, true) + 1e-25,
                "budget {budget}"
            );
        }
    }
}
