//! Exact separable-resource-allocation solver for the MDFC tile problem,
//! used as an independent reference for the ILP methods in tests and as
//! the "exact" row of ablation studies.
//!
//! The MDFC objective is separable — `sum_k cost_k(m_k)` with one budget
//! constraint — so a simple dynamic program over (column, features used)
//! finds the true optimum of the exact (lookup-table) cost model.

use super::{check_budget, FillMethod, MethodError};
use crate::TileProblem;
use pilfill_geom::units;
use pilfill_prng::rngs::StdRng;

/// Exact DP over the lookup-table costs; optimal for the same model ILP-II
/// optimizes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpExact;

impl FillMethod for DpExact {
    fn name(&self) -> &'static str {
        "DP-exact"
    }

    fn place(
        &self,
        problem: &TileProblem,
        budget: u32,
        weighted: bool,
        _rng: &mut StdRng,
    ) -> Result<Vec<u32>, MethodError> {
        check_budget(problem, budget)?;
        let k = problem.columns.len();
        let b = units::index(i64::from(budget));
        const INF: f64 = f64::INFINITY;
        // Per-column cost tables, evaluated once per (column, m) pair:
        // the DP inner loop revisits each pair once per reachable state,
        // so looking the cost up there instead of re-deriving it from the
        // lookup table is the difference between ~cap and ~cap*b
        // `cost_exact` calls per column.
        let caps: Vec<usize> = problem
            .columns
            .iter()
            .map(|c| units::index(i64::from(c.capacity().min(budget))))
            .collect();
        let mut cost_off = Vec::with_capacity(k + 1);
        cost_off.push(0usize);
        for &cap in &caps {
            cost_off.push(cost_off[cost_off.len() - 1] + cap + 1);
        }
        let mut cost_tab = Vec::with_capacity(cost_off[k]);
        for (col, &cap) in problem.columns.iter().zip(&caps) {
            for m in 0..=cap {
                // Safe: m <= cap <= u32 capacity by construction.
                cost_tab.push(col.cost_exact(u32::try_from(m).unwrap_or(u32::MAX), weighted));
            }
        }
        // suffix[i] = capacity of columns i.. — states that cannot still
        // reach f = b are dead and need not be expanded.
        let mut suffix = vec![0usize; k + 1];
        for i in (0..k).rev() {
            suffix[i] = suffix[i + 1] + caps[i];
        }
        // best[f]: min cost placing f features in the columns so far.
        // Kept as a rolling pair of flat arrays with a flat parent table
        // (choice[i * (b + 1) + f]) for recovery.
        let mut best = vec![INF; b + 1];
        best[0] = 0.0;
        let mut next = vec![INF; b + 1];
        let mut choice = vec![u32::MAX; k * (b + 1)];
        // Highest state reachable after the columns processed so far.
        let mut reach = 0usize;
        for i in 0..k {
            let cap = caps[i];
            let costs = &cost_tab[cost_off[i]..cost_off[i] + cap + 1];
            let pick = &mut choice[i * (b + 1)..(i + 1) * (b + 1)];
            // Only states in [lo, reach] can still complete the budget.
            let lo = b.saturating_sub(suffix[i]);
            let new_reach = (reach + cap).min(b);
            next[lo..=new_reach].fill(INF);
            for (used, &base) in best.iter().enumerate().take(reach + 1).skip(lo) {
                if base == INF {
                    continue;
                }
                let mmax = cap.min(b - used);
                for (m, &c) in costs.iter().enumerate().take(mmax + 1) {
                    let f = used + m;
                    let cost = base + c;
                    if cost < next[f] {
                        next[f] = cost;
                        // Safe: m <= cap fits in u32 by construction.
                        pick[f] = u32::try_from(m).unwrap_or(u32::MAX);
                    }
                }
            }
            std::mem::swap(&mut best, &mut next);
            reach = new_reach;
        }
        if best[b] == INF {
            // Unreachable given the capacity check, but guard anyway.
            return Err(MethodError::BudgetOverCapacity {
                budget,
                capacity: problem.capacity(),
            });
        }
        // Recover the assignment.
        let mut counts = vec![0u32; k];
        let mut f = b;
        for i in (0..k).rev() {
            let m = choice[i * (b + 1) + f];
            debug_assert_ne!(m, u32::MAX);
            counts[i] = m;
            f -= units::index(i64::from(m));
        }
        debug_assert_eq!(f, 0);
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::testutil::{assert_valid_assignment, synthetic_tile};
    use pilfill_prng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn dp_finds_free_columns() {
        let tile = synthetic_tile(&[(2_000, 5, 1.0)], 5);
        let counts = DpExact.place(&tile, 5, false, &mut rng()).expect("place");
        assert_eq!(counts, vec![0, 5]);
    }

    #[test]
    fn dp_matches_brute_force_on_small_tiles() {
        let tile = synthetic_tile(&[(1_500, 3, 2.0), (2_500, 3, 1.0), (4_000, 3, 3.0)], 1);
        for budget in 0..=10u32 {
            let counts = DpExact
                .place(&tile, budget, false, &mut rng())
                .expect("place");
            assert_valid_assignment(&tile, &counts, budget);
            let dp_cost = tile.cost_of(&counts, false);
            // Brute force over all assignments.
            let caps: Vec<u32> = tile.columns.iter().map(|c| c.capacity()).collect();
            let mut best = f64::INFINITY;
            let mut x = vec![0u32; caps.len()];
            'outer: loop {
                if x.iter().sum::<u32>() == budget {
                    best = best.min(tile.cost_of(&x, false));
                }
                let mut i = 0;
                loop {
                    if i == caps.len() {
                        break 'outer;
                    }
                    x[i] += 1;
                    if x[i] <= caps[i] {
                        break;
                    }
                    x[i] = 0;
                    i += 1;
                }
            }
            assert!(
                (dp_cost - best).abs() < 1e-20 * (1.0 + best.abs()),
                "budget {budget}: dp {dp_cost} vs brute {best}"
            );
        }
    }

    #[test]
    fn dp_never_worse_than_greedy() {
        use crate::methods::GreedyFill;
        let tile = synthetic_tile(
            &[
                (1_000, 4, 1.0),
                (1_400, 5, 0.8),
                (5_000, 6, 2.0),
                (900, 2, 0.1),
            ],
            2,
        );
        for budget in [3u32, 8, 14] {
            let dp = DpExact.place(&tile, budget, true, &mut rng()).expect("dp");
            let gr = GreedyFill
                .place(&tile, budget, true, &mut rng())
                .expect("greedy");
            assert!(
                tile.cost_of(&dp, true) <= tile.cost_of(&gr, true) + 1e-25,
                "budget {budget}"
            );
        }
    }
}
