//! ILP-I (paper Section 5.2): integer program over per-column counts with
//! the *linearized* capacitance model of Eq. (6).
//!
//! Because the linearization underestimates capacitance — badly so when a
//! column approaches saturation — ILP-I's "optimal" answers can be worse
//! than Greedy's or even Normal's under the exact evaluation model, which
//! is exactly what the paper's Table 1 shows for several testcases.

use super::{check_budget, FillMethod, MethodError};
use crate::TileProblem;
use pilfill_geom::units;
use pilfill_prng::rngs::StdRng;
use pilfill_solver::{Model, Objective, Sense};

/// The Section-5.2 integer linear program (Eqs. 10-14).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IlpOne;

impl FillMethod for IlpOne {
    fn name(&self) -> &'static str {
        "ILP-I"
    }

    fn place(
        &self,
        problem: &TileProblem,
        budget: u32,
        weighted: bool,
        _rng: &mut StdRng,
    ) -> Result<Vec<u32>, MethodError> {
        check_budget(problem, budget)?;
        if budget == 0 {
            return Ok(vec![0; problem.columns.len()]);
        }
        // Scale objective coefficients to ~1 to keep the simplex
        // well-conditioned (costs are in ohm*farad ~ 1e-18).
        let raw: Vec<f64> = problem
            .columns
            .iter()
            .map(|c| c.alpha(weighted) * c.linear_cap_per_feature)
            .collect();
        let scale = raw.iter().fold(0.0f64, |m, c| m.max(*c));
        let scale = if scale > 0.0 { scale } else { 1.0 };

        let mut model = Model::new(Objective::Minimize);
        // Eq. (14): integer m_k in [0, C_k]; objective Eqs. (10)+(12)+(13)
        // folded: sum_k alpha_k * linear_cap_k * m_k.
        let vars: Vec<_> = problem
            .columns
            .iter()
            .zip(&raw)
            .map(|(c, &cost)| model.add_integer_var(0.0, c.capacity() as f64, cost / scale))
            .collect();
        // Eq. (11): the prescribed amount of fill.
        model.add_constraint(vars.iter().map(|&v| (v, 1.0)), Sense::Eq, budget as f64);
        let sol = model.solve()?;
        Ok(vars
            .iter()
            .map(|&v| units::saturating_count(sol.int_value(v).max(0) as u64))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::testutil::{assert_valid_assignment, synthetic_tile};
    use pilfill_prng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn hits_budget_exactly() {
        let tile = synthetic_tile(&[(1_500, 3, 2.0), (2_500, 4, 1.0)], 2);
        for budget in [0u32, 1, 5, 9] {
            let counts = IlpOne
                .place(&tile, budget, false, &mut rng())
                .expect("place");
            assert_valid_assignment(&tile, &counts, budget);
        }
    }

    #[test]
    fn prefers_columns_cheap_under_linear_model() {
        // Two identical columns except alpha: lower alpha wins under any
        // monotone cost model.
        let tile = synthetic_tile(&[(2_000, 4, 5.0), (2_000, 4, 1.0)], 0);
        let counts = IlpOne.place(&tile, 4, false, &mut rng()).expect("place");
        assert_eq!(counts, vec![0, 4]);
    }

    #[test]
    fn linearization_can_mislead_vs_exact_cost() {
        // Column A: wide gap (nearly linear); column B: narrow gap where the
        // exact cost explodes at saturation but the linear model stays mild.
        // Per feature (linear): A: alpha 1.0 * lin(d=6000) ; B: alpha scaled
        // so B looks cheaper linearly but is costlier exactly at high m.
        let tile = synthetic_tile(&[(6_000, 8, 1.0), (1_400, 2, 1.15)], 0);
        let ilp1 = IlpOne.place(&tile, 2, false, &mut rng()).expect("ilp1");
        // Under the linear model, B (index 1) is preferred when
        // alpha_B * lin_B < alpha_A * lin_A.
        let lin_cost = |i: usize, m: u32| {
            tile.columns[i].alpha(false) * tile.columns[i].linear_cap_per_feature * m as f64
        };
        if lin_cost(1, 1) < lin_cost(0, 1) {
            assert!(ilp1[1] > 0, "ILP-I should pick the linearly-cheap column");
            // And that choice is worse under the exact model than putting
            // everything in A.
            let alt = vec![2u32, 0];
            assert!(
                tile.cost_of(&ilp1, false) > tile.cost_of(&alt, false),
                "exact model should reveal the ILP-I mistake"
            );
        }
    }

    #[test]
    fn rejects_over_capacity() {
        let tile = synthetic_tile(&[(2_000, 1, 1.0)], 0);
        assert!(matches!(
            IlpOne.place(&tile, 5, false, &mut rng()),
            Err(MethodError::BudgetOverCapacity { .. })
        ));
    }
}
