//! The Greedy PIL-Fill method (paper Figure 8): sort columns by the delay
//! a *fully filled* column would cause (`r_hat * Cap_hat`) and fill the
//! cheapest columns to capacity until the budget is met.

use super::{check_budget, FillMethod, MethodError};
use crate::TileProblem;
use pilfill_prng::rngs::StdRng;

/// Figure-8 greedy: whole columns in ascending full-column delay order.
///
/// Note the coarseness the paper acknowledges: the score uses the full
/// column capacity `C_k`, so a column that would be cheap for one feature
/// but expensive when saturated is ranked by its saturated cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedyFill;

impl FillMethod for GreedyFill {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn place(
        &self,
        problem: &TileProblem,
        budget: u32,
        weighted: bool,
        _rng: &mut StdRng,
    ) -> Result<Vec<u32>, MethodError> {
        check_budget(problem, budget)?;
        let mut counts = vec![0u32; problem.columns.len()];
        // Line 13 of Figure 8: sort by full-capacity delay alpha * Cap(C_k).
        let mut order: Vec<usize> = (0..problem.columns.len())
            .filter(|&i| problem.columns[i].capacity() > 0)
            .collect();
        let score = |i: usize| -> f64 {
            let c = &problem.columns[i];
            c.cost_exact(c.capacity(), weighted)
        };
        order.sort_by(|&a, &b| score(a).total_cmp(&score(b)).then(a.cmp(&b)));
        // Lines 15-19: fill whole columns until the budget is met.
        let mut left = budget;
        for i in order {
            if left == 0 {
                break;
            }
            let take = left.min(problem.columns[i].capacity());
            counts[i] = take;
            left -= take;
        }
        debug_assert_eq!(left, 0);
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::testutil::{assert_valid_assignment, synthetic_tile};
    use pilfill_prng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn prefers_free_columns_first() {
        let tile = synthetic_tile(&[(2_000, 5, 1.0)], 5);
        let counts = GreedyFill
            .place(&tile, 5, false, &mut rng())
            .expect("place");
        assert_valid_assignment(&tile, &counts, 5);
        // All five features go into the zero-cost column (index 1).
        assert_eq!(counts, vec![0, 5]);
    }

    #[test]
    fn fills_low_alpha_columns_before_high() {
        let tile = synthetic_tile(&[(2_000, 4, 10.0), (2_000, 4, 1.0)], 0);
        let counts = GreedyFill
            .place(&tile, 4, false, &mut rng())
            .expect("place");
        assert_eq!(counts, vec![0, 4]);
    }

    #[test]
    fn overflows_into_next_cheapest() {
        let tile = synthetic_tile(&[(2_000, 4, 10.0), (2_000, 4, 1.0)], 2);
        let counts = GreedyFill
            .place(&tile, 7, false, &mut rng())
            .expect("place");
        assert_valid_assignment(&tile, &counts, 7);
        // Free column (2 slots) + cheap column (4) + 1 in the expensive one.
        assert_eq!(counts, vec![1, 4, 2]);
    }

    #[test]
    fn weighted_flag_changes_ranking() {
        // Column 0: low unweighted alpha but placed on a heavy line.
        let mut tile = synthetic_tile(&[(2_000, 4, 1.0), (2_000, 4, 1.5)], 0);
        tile.columns[0].alpha_weighted = 100.0;
        tile.columns[1].alpha_weighted = 1.5;
        let unweighted = GreedyFill.place(&tile, 4, false, &mut rng()).expect("u");
        let weighted = GreedyFill.place(&tile, 4, true, &mut rng()).expect("w");
        assert_eq!(unweighted, vec![4, 0]);
        assert_eq!(weighted, vec![0, 4]);
    }

    #[test]
    fn zero_budget_places_nothing() {
        let tile = synthetic_tile(&[(2_000, 4, 1.0)], 1);
        let counts = GreedyFill
            .place(&tile, 0, false, &mut rng())
            .expect("place");
        assert!(counts.iter().all(|&c| c == 0));
    }
}
