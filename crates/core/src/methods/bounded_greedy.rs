//! Bounded Greedy: Figure 8 plus the footnote fix.
//!
//! The paper notes that plain Greedy "will tend to insert fill close to the
//! active line with minimum resistance", which in pathological cases
//! concentrates the delay increase on a single net — worse for cycle time
//! than random fill; "this can be circumvented by placing an upper bound on
//! the added net delay". This method implements that bound: greedy fill in
//! Figure-8 order that tracks the delay added to each *net* so far (within
//! the tile) and skips any column whose saturation would push an adjacent
//! net over `max_net_delay`. If the bound leaves too little room for the
//! budget it is relaxed for the remainder — density targets always win.

use super::{check_budget, FillMethod, MethodError};
use crate::TileProblem;
use pilfill_layout::NetId;
use pilfill_prng::rngs::StdRng;
use std::collections::HashMap;

/// Greedy with an upper bound on the delay added to any single net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedGreedy {
    /// Maximum exact delay (seconds) fill in this tile may add to one net
    /// before that net's remaining columns are deferred.
    pub max_net_delay: f64,
}

impl BoundedGreedy {
    /// Creates the method with the given per-net delay bound.
    pub fn new(max_net_delay: f64) -> Self {
        Self { max_net_delay }
    }
}

impl FillMethod for BoundedGreedy {
    fn name(&self) -> &'static str {
        "Greedy-bounded"
    }

    fn place(
        &self,
        problem: &TileProblem,
        budget: u32,
        weighted: bool,
        _rng: &mut StdRng,
    ) -> Result<Vec<u32>, MethodError> {
        check_budget(problem, budget)?;
        let mut counts = vec![0u32; problem.columns.len()];
        let score = |i: usize| -> f64 {
            let c = &problem.columns[i];
            c.cost_exact(c.capacity(), weighted)
        };
        let mut order: Vec<usize> = (0..problem.columns.len())
            .filter(|&i| problem.columns[i].capacity() > 0)
            .collect();
        order.sort_by(|&a, &b| score(a).total_cmp(&score(b)).then(a.cmp(&b)));

        // Accumulated added delay per net (within this tile). A column's
        // full cost is attributed to each adjacent net — matching how the
        // evaluator charges both coupling partners.
        let mut net_delay: HashMap<NetId, f64> = HashMap::new();
        let mut left = budget;
        let mut deferred: Vec<usize> = Vec::new();
        for &i in &order {
            if left == 0 {
                break;
            }
            let col = &problem.columns[i];
            let take = left.min(col.capacity());
            let cost = col.cost_exact(take, weighted);
            let over = col
                .adjacent_nets
                .iter()
                .any(|n| net_delay.get(n).copied().unwrap_or(0.0) + cost > self.max_net_delay);
            if over {
                deferred.push(i);
                continue;
            }
            counts[i] = take;
            left -= take;
            for n in &col.adjacent_nets {
                *net_delay.entry(*n).or_insert(0.0) += cost;
            }
        }
        // The density budget always wins: relax the bound if needed, still
        // in cheapest-first order.
        for &i in &deferred {
            if left == 0 {
                break;
            }
            let take = left.min(problem.columns[i].capacity());
            counts[i] = take;
            left -= take;
        }
        debug_assert_eq!(left, 0);
        Ok(counts)
    }
}

/// Added delay per net of an assignment under the exact per-tile model —
/// the quantity [`BoundedGreedy`] bounds. (Cross-tile per-net attribution
/// is the global evaluator's job.)
pub fn net_delays(problem: &TileProblem, counts: &[u32], weighted: bool) -> HashMap<NetId, f64> {
    let mut out = HashMap::new();
    for (col, &m) in problem.columns.iter().zip(counts) {
        if m == 0 {
            continue;
        }
        let cost = col.cost_exact(m, weighted);
        for n in &col.adjacent_nets {
            *out.entry(*n).or_insert(0.0) += cost;
        }
    }
    out
}

/// Counts how many distinct columns an assignment uses (diagnostics for
/// the ablation harness).
pub fn used_columns(counts: &[u32]) -> usize {
    counts.iter().filter(|&&m| m > 0).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::testutil::{assert_valid_assignment, synthetic_tile};
    use crate::methods::GreedyFill;
    use pilfill_prng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn unbounded_limit_matches_plain_greedy() {
        let tile = synthetic_tile(&[(2_000, 4, 3.0), (2_500, 5, 1.0)], 2);
        let plain = GreedyFill.place(&tile, 7, false, &mut rng()).expect("g");
        let bounded = BoundedGreedy::new(f64::INFINITY)
            .place(&tile, 7, false, &mut rng())
            .expect("bg");
        assert_eq!(plain, bounded);
    }

    #[test]
    fn bound_diverts_fill_to_other_nets() {
        // Columns 0 and 1 both couple net 0 (cheapest per Figure-8 order);
        // column 2 couples net 1 and is slightly pricier. Plain greedy
        // saturates both net-0 columns; the per-net bound allows one but
        // not two, diverting the second batch onto net 1.
        use pilfill_layout::NetId;
        let mut tile = synthetic_tile(&[(2_500, 3, 1.0), (2_500, 3, 1.01), (2_500, 3, 1.3)], 0);
        tile.columns[0].adjacent_nets = vec![NetId(0)];
        tile.columns[1].adjacent_nets = vec![NetId(0)];
        tile.columns[2].adjacent_nets = vec![NetId(1)];

        let plain = GreedyFill.place(&tile, 6, false, &mut rng()).expect("g");
        assert_eq!(plain, vec![3, 3, 0]);
        let plain_net0 = net_delays(&tile, &plain, false)[&NetId(0)];

        let bound = tile.columns[0].cost_exact(3, false) * 1.5;
        let bounded = BoundedGreedy::new(bound)
            .place(&tile, 6, false, &mut rng())
            .expect("bg");
        assert_valid_assignment(&tile, &bounded, 6);
        assert_eq!(bounded, vec![3, 0, 3]);
        let delays = net_delays(&tile, &bounded, false);
        assert!(delays[&NetId(0)] <= bound);
        assert!(delays[&NetId(0)] < plain_net0);
    }

    #[test]
    fn bound_relaxed_when_budget_demands() {
        let tile = synthetic_tile(&[(2_000, 4, 1.0)], 1);
        // Bound below any paired-column cost, but budget 5 > free capacity 1.
        let counts = BoundedGreedy::new(0.0)
            .place(&tile, 5, false, &mut rng())
            .expect("bg");
        assert_valid_assignment(&tile, &counts, 5);
        assert_eq!(counts, vec![4, 1]);
    }

    #[test]
    fn net_delays_sum_matches_cost_per_net() {
        let tile = synthetic_tile(&[(2_000, 4, 1.0), (2_000, 4, 5.0)], 0);
        let counts = vec![4, 1];
        let d = net_delays(&tile, &counts, false);
        assert_eq!(d.len(), 2);
        assert_eq!(
            d[&pilfill_layout::NetId(0)],
            tile.columns[0].cost_exact(4, false)
        );
        assert_eq!(used_columns(&counts), 2);
    }
}
