//! The MDFC placement methods: Normal (density-only baseline), ILP-I,
//! ILP-II, Greedy, and an exact dynamic-programming reference.
//!
//! Every method answers the same question for one tile: given the tile's
//! slack columns and a fill budget `F`, how many features go into each
//! column? All methods place *exactly* `F` features (the caller clamps `F`
//! to the tile capacity first), so density quality is identical across
//! methods — only the delay impact differs.

mod bounded_greedy;
mod dp;
mod greedy;
mod ilp1;
mod ilp2;
mod normal;

pub use bounded_greedy::{net_delays, used_columns, BoundedGreedy};
pub use dp::DpExact;
pub use greedy::GreedyFill;
pub use ilp1::IlpOne;
pub use ilp2::IlpTwo;
pub use normal::NormalFill;

use crate::TileProblem;
use pilfill_prng::rngs::StdRng;

/// Error from a placement method.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodError {
    /// The fill budget exceeds the tile capacity (caller must clamp).
    BudgetOverCapacity {
        /// Requested features.
        budget: u32,
        /// Available slots.
        capacity: u64,
    },
    /// The underlying ILP solver failed.
    Solver(pilfill_solver::SolveError),
}

impl std::fmt::Display for MethodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MethodError::BudgetOverCapacity { budget, capacity } => {
                write!(f, "budget {budget} exceeds tile capacity {capacity}")
            }
            MethodError::Solver(e) => write!(f, "ilp solve failed: {e}"),
        }
    }
}

impl std::error::Error for MethodError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MethodError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pilfill_solver::SolveError> for MethodError {
    fn from(e: pilfill_solver::SolveError) -> Self {
        MethodError::Solver(e)
    }
}

/// A per-tile fill placement strategy.
pub trait FillMethod {
    /// Short name for reports ("Normal", "ILP-I", ...).
    fn name(&self) -> &'static str;

    /// Chooses per-column fill counts for `problem`. The result has one
    /// entry per column, sums to exactly `budget`, and respects column
    /// capacities.
    ///
    /// `weighted` selects the objective (Table 2 vs Table 1 of the paper);
    /// `rng` is used only by stochastic methods (Normal fill).
    ///
    /// # Errors
    ///
    /// [`MethodError::BudgetOverCapacity`] if `budget` exceeds the tile
    /// capacity, or [`MethodError::Solver`] from the ILP backends.
    fn place(
        &self,
        problem: &TileProblem,
        budget: u32,
        weighted: bool,
        rng: &mut StdRng,
    ) -> Result<Vec<u32>, MethodError>;
}

pub(crate) fn check_budget(problem: &TileProblem, budget: u32) -> Result<(), MethodError> {
    let capacity = problem.capacity();
    if budget as u64 > capacity {
        return Err(MethodError::BudgetOverCapacity { budget, capacity });
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::{TileColumn, TileProblem};
    use pilfill_geom::{Coord, Rect};
    use pilfill_layout::Tech;
    use pilfill_rc::{CapTable, CouplingModel};

    /// A synthetic tile with paired columns of the given distances and
    /// capacities, plus optionally one free (zero-cost) column.
    pub fn synthetic_tile(
        cols: &[(Coord, u32, f64)], // (distance d, capacity, alpha)
        free_capacity: u32,
    ) -> TileProblem {
        let model = CouplingModel::new(&Tech::default_180nm());
        let w = 300;
        let mut columns: Vec<TileColumn> = cols
            .iter()
            .enumerate()
            .map(|(i, &(d, cap, alpha))| {
                // Clamp to what the capacitance model allows (m * w < d).
                let cap = cap.min(((d - 1) / w) as u32);
                TileColumn {
                    feature_x: 1_000 * i as Coord,
                    slots: crate::Slots::evenly(0, 450, cap),
                    distance: Some(d),
                    alpha_weighted: alpha * 2.0,
                    alpha_unweighted: alpha,
                    table: Some(CapTable::build(&model, d, w, cap)),
                    linear_cap_per_feature: model.delta_cap_linear(1, d, w),
                    adjacent_nets: vec![pilfill_layout::NetId(i)],
                }
            })
            .collect();
        if free_capacity > 0 {
            columns.push(TileColumn {
                feature_x: 999_000,
                slots: crate::Slots::evenly(0, 450, free_capacity),
                distance: None,
                alpha_weighted: 0.0,
                alpha_unweighted: 0.0,
                table: None,
                linear_cap_per_feature: 0.0,
                adjacent_nets: Vec::new(),
            });
        }
        TileProblem {
            cell: (0, 0),
            rect: Rect::new(0, 0, 1_000_000, 1_000_000),
            columns,
        }
    }

    pub fn assert_valid_assignment(problem: &TileProblem, counts: &[u32], budget: u32) {
        assert_eq!(counts.len(), problem.columns.len());
        let total: u32 = counts.iter().sum();
        assert_eq!(total, budget, "assignment must hit the budget exactly");
        for (c, &m) in problem.columns.iter().zip(counts) {
            assert!(
                m <= c.capacity(),
                "count {m} over capacity {}",
                c.capacity()
            );
        }
    }
}
