//! The density-only "normal fill" baseline (the paper's reference \[3\]):
//! fill features are placed into uniformly random slack slots with no
//! regard to timing.

use super::{check_budget, FillMethod, MethodError};
use crate::TileProblem;
use pilfill_prng::rngs::StdRng;
use pilfill_prng::Rng;

/// Monte-Carlo random placement — the baseline every PIL-Fill method is
/// compared against in Tables 1 and 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NormalFill;

impl FillMethod for NormalFill {
    fn name(&self) -> &'static str {
        "Normal"
    }

    fn place(
        &self,
        problem: &TileProblem,
        budget: u32,
        _weighted: bool,
        rng: &mut StdRng,
    ) -> Result<Vec<u32>, MethodError> {
        check_budget(problem, budget)?;
        let mut counts = vec![0u32; problem.columns.len()];
        // Sample `budget` distinct slots uniformly: draw a random slot index
        // among the remaining free ones each time (weighted by remaining
        // capacity per column).
        let mut remaining: Vec<u32> = problem.columns.iter().map(|c| c.capacity()).collect();
        let mut free_total: u64 = remaining.iter().map(|&r| r as u64).sum();
        for _ in 0..budget {
            debug_assert!(free_total > 0);
            let mut pick = rng.gen_range(0..free_total);
            for (i, r) in remaining.iter_mut().enumerate() {
                if pick < *r as u64 {
                    *r -= 1;
                    counts[i] += 1;
                    free_total -= 1;
                    break;
                }
                pick -= *r as u64;
            }
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::testutil::{assert_valid_assignment, synthetic_tile};
    use pilfill_prng::SeedableRng;

    #[test]
    fn places_exact_budget() {
        let tile = synthetic_tile(&[(2_000, 4, 1.0), (3_000, 6, 2.0)], 5);
        let mut rng = StdRng::seed_from_u64(1);
        for budget in [0, 1, 7, 15] {
            let counts = NormalFill
                .place(&tile, budget, false, &mut rng)
                .expect("place");
            assert_valid_assignment(&tile, &counts, budget);
        }
    }

    #[test]
    fn rejects_over_capacity() {
        let tile = synthetic_tile(&[(2_000, 2, 1.0)], 0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            NormalFill.place(&tile, 3, false, &mut rng),
            Err(MethodError::BudgetOverCapacity { .. })
        ));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let tile = synthetic_tile(&[(2_000, 5, 1.0), (2_500, 5, 1.0)], 5);
        let a = NormalFill
            .place(&tile, 8, false, &mut StdRng::seed_from_u64(7))
            .expect("place");
        let b = NormalFill
            .place(&tile, 8, false, &mut StdRng::seed_from_u64(7))
            .expect("place");
        assert_eq!(a, b);
    }

    #[test]
    fn spreads_over_columns_statistically() {
        // With a large budget over two equal columns, both get fill.
        let tile = synthetic_tile(&[(20_000, 50, 1.0), (20_000, 50, 1.0)], 0);
        let counts = NormalFill
            .place(&tile, 60, false, &mut StdRng::seed_from_u64(3))
            .expect("place");
        assert!(counts[0] > 10 && counts[1] > 10, "{counts:?}");
    }
}
