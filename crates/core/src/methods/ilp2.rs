//! ILP-II (paper Section 5.3): the lookup-table integer program, with
//! exact incremental capacitances `f(n, d_k)` from the pre-built
//! [`CapTable`] (Eqs. 15-23), so the optimizer sees the true convex cost
//! curve instead of ILP-I's linearization.
//!
//! The model is compacted before solving. When every costed column's
//! scaled cost table is convex — the physical case, since [`CapTable`]
//! marginals grow with crowding — the paper's one-hot binaries `m_{k,n}`
//! are replaced by *incremental* binaries `z_{k,n}` whose objective
//! coefficient is the `n`-th marginal `f(n) - f(n-1)`. Nondecreasing
//! marginals make prefix selections (set `z_{k,1..=c}`) the cheapest way
//! to reach any cardinality `c`, and every prefix selection telescopes to
//! the exact table cost, so the compact model has the same optimum as the
//! one-hot model (a standard exchange argument). The payoff is the
//! constraint matrix: the per-column convexity rows vanish and only the
//! single budget row remains, turning the root relaxation into a
//! one-row knapsack that the simplex solves in a handful of pivots
//! instead of the dense LP that used to dominate per-tile runtime. A
//! non-convex table (possible only through rounding at the scale floor)
//! falls back to the one-hot encoding, which stays exact unconditionally.
//!
//! Branch-and-bound is warm-started from the greedy placement: the greedy
//! counts are feasible, and their exact objective seeds the search's
//! pruning level ([`pilfill_solver::MilpOptions::cutoff`]). When nothing
//! beats the cutoff the greedy counts are returned as-is (optimal to
//! within the pruning tolerance).

use super::{check_budget, FillMethod, GreedyFill, MethodError};
use crate::TileProblem;
use pilfill_geom::units;
use pilfill_prng::rngs::StdRng;
use pilfill_rc::CapTable;
use pilfill_solver::{BranchBoundStats, MilpOptions, Model, Objective, Sense, SolveError};

/// The Section-5.3 lookup-table ILP.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IlpTwo;

impl FillMethod for IlpTwo {
    fn name(&self) -> &'static str {
        "ILP-II"
    }

    fn place(
        &self,
        problem: &TileProblem,
        budget: u32,
        weighted: bool,
        rng: &mut StdRng,
    ) -> Result<Vec<u32>, MethodError> {
        self.place_with_stats(problem, budget, weighted, rng)
            .map(|(counts, _)| counts)
    }
}

impl IlpTwo {
    /// Like [`FillMethod::place`], but also reports the branch-and-bound
    /// search statistics (nodes, pivots, LU refactorizations, cuts) — the
    /// benchmark harness records these as solver-effort observability
    /// counters. Stats are reported even when the greedy incumbent
    /// survives the cutoff search.
    ///
    /// # Errors
    ///
    /// Same contract as [`FillMethod::place`].
    pub fn place_with_stats(
        &self,
        problem: &TileProblem,
        budget: u32,
        weighted: bool,
        rng: &mut StdRng,
    ) -> Result<(Vec<u32>, BranchBoundStats), MethodError> {
        check_budget(problem, budget)?;
        if budget == 0 {
            return Ok((vec![0; problem.columns.len()], BranchBoundStats::default()));
        }
        // Model reduction: zero-cost columns (no line pair, or zero delay
        // coefficient) are interchangeable, so they collapse into a single
        // aggregate integer variable. This keeps the binary count
        // proportional to the *costed* columns only, which is what makes
        // the per-tile ILPs tractable on large sparse tiles. The reduction
        // is exact: any distribution of the aggregate over free columns is
        // optimal.
        // Exact zero is the sentinel for "no adjacent line charged", set —
        // never computed — upstream; an epsilon would misclassify real
        // low-resistance columns. pilfill: allow(float-eq)
        let is_free = |c: &crate::TileColumn| c.table.is_none() || c.alpha(weighted) == 0.0;
        let free_cap: u64 = problem
            .columns
            .iter()
            .filter(|c| is_free(c))
            .map(|c| c.capacity() as u64)
            .sum();

        // Objective scaling (costs are in ohm*farad ~ 1e-18).
        let max_cost = problem
            .columns
            .iter()
            .filter(|c| c.capacity() > 0 && !is_free(c))
            .map(|c| c.cost_exact(c.capacity(), weighted))
            .fold(0.0f64, f64::max);
        let scale = if max_cost > 0.0 { max_cost } else { 1.0 };

        // Scaled marginal costs per costed column: `m_n = (f(n) - f(n-1))
        // / scale` for n = 1..=C_k. The incremental encoding is exact iff
        // these are nondecreasing within every column (convexity).
        let marginals: Vec<Option<Vec<f64>>> = problem
            .columns
            .iter()
            .map(|col| {
                if is_free(col) {
                    return None;
                }
                let alpha = col.alpha(weighted);
                col.table.as_ref().map(|t: &CapTable| {
                    (1..=col.capacity())
                        .map(|n| alpha * t.marginal(n) / scale)
                        .collect()
                })
            })
            .collect();
        // Tolerance in scaled space (all costs are in [0, 1] there): a
        // marginal may dip below its predecessor by round-off without
        // breaking the exchange argument in any measurable way.
        const CONVEX_EPS: f64 = 1e-12;
        let convex = marginals.iter().flatten().all(|ms| {
            ms.windows(2).all(|w| w[1] + CONVEX_EPS >= w[0]) && ms.iter().all(|&m| m >= -CONVEX_EPS)
        });

        let mut model = Model::new(Objective::Minimize);
        let mut vars: Vec<Option<Vec<pilfill_solver::VarId>>> =
            Vec::with_capacity(problem.columns.len());
        let mut budget_terms: Vec<(pilfill_solver::VarId, f64)> = Vec::new();
        for (col, ms) in problem.columns.iter().zip(&marginals) {
            let Some(ms) = ms else {
                vars.push(None);
                continue;
            };
            if convex {
                // Incremental binaries z_{k,n}: cost is the n-th marginal,
                // count is the cardinality of the set binaries. No
                // per-column row needed — the budget row carries them with
                // unit coefficients.
                let col_vars: Vec<_> = ms.iter().map(|&m| model.add_binary_var(m)).collect();
                budget_terms.extend(col_vars.iter().map(|&v| (v, 1.0)));
                vars.push(Some(col_vars));
            } else {
                // One-hot binaries m_{k,n} (Eq. 15/23), n = 0..=C_k; cost
                // from the table (Eq. 20 folded into Eq. 16 through
                // Eq. 21).
                let cap = col.capacity();
                let col_vars: Vec<_> = (0..=cap)
                    .map(|n| {
                        let cost = col
                            .table
                            .as_ref()
                            .map_or(0.0, |t: &CapTable| col.alpha(weighted) * t.delta_cap(n));
                        model.add_binary_var(cost / scale)
                    })
                    .collect();
                // Eq. (19) with the n = 0 entry included: exactly one
                // count is chosen per column.
                model.add_constraint(col_vars.iter().map(|&v| (v, 1.0)), Sense::Eq, 1.0);
                budget_terms.extend(col_vars.iter().enumerate().map(|(n, &v)| (v, n as f64)));
                vars.push(Some(col_vars));
            }
        }
        // The aggregate free variable (continuous: the budget row forces an
        // integral value given integral binaries).
        let free_var = model.add_var(0.0, free_cap as f64, 0.0);
        budget_terms.push((free_var, 1.0));
        // Eqs. (17)+(18) folded: sum_k sum_n n * m_{k,n} + free = F (with
        // the incremental encoding every binary counts one feature, so the
        // coefficient is simply 1).
        model.add_constraint(budget_terms, Sense::Eq, budget as f64);

        // Incumbent warm start: greedy is deterministic, feasible for the
        // same budget row (it places exactly `budget` features within
        // column capacities), and usually optimal on sparse tiles. Its
        // exact objective — evaluated by the same tables the model costs
        // with, in the same `scale` — seeds branch-and-bound's pruning
        // level.
        let greedy_counts = GreedyFill.place(problem, budget, weighted, rng)?;
        let greedy_cost = problem.cost_of(&greedy_counts, weighted) / scale;

        let options = MilpOptions {
            cutoff: Some(greedy_cost),
            ..MilpOptions::default()
        };
        let (result, stats) = model.solve_with_stats(&options);
        let sol = match result {
            Ok(sol) => sol,
            // Nothing beats the greedy incumbent (Cutoff), or the node
            // budget ran out before anything did (NodeLimit): keep the
            // greedy counts, which are optimal to within the pruning
            // tolerance `gap_tol * scale`.
            Err(SolveError::Cutoff | SolveError::NodeLimit) => return Ok((greedy_counts, stats)),
            Err(e) => return Err(e.into()),
        };
        let mut counts: Vec<u32> = vars
            .iter()
            .map(|col_vars| match col_vars {
                // Incremental: the count is how many binaries are set (ties
                // between equal marginals may set a non-prefix subset; the
                // prefix of the same cardinality costs the same or less, so
                // cardinality extraction never degrades the objective).
                Some(cv) if convex => units::saturating_count(
                    cv.iter().filter(|&&v| sol.value(v) > 0.5).count() as u64,
                ),
                Some(cv) => cv
                    .iter()
                    .enumerate()
                    .find(|(_, &v)| sol.value(v) > 0.5)
                    .map(|(n, _)| units::saturating_count(n as u64))
                    .unwrap_or(0),
                None => 0,
            })
            .collect();
        // Distribute the aggregate over the free columns.
        let mut free_left = sol.value(free_var).round().max(0.0) as u64;
        for (i, col) in problem.columns.iter().enumerate() {
            if free_left == 0 {
                break;
            }
            if is_free(col) {
                let take = units::saturating_count(u64::from(col.capacity()).min(free_left));
                counts[i] = take;
                free_left -= u64::from(take);
            }
        }
        // Numerical safety: if rounding left a residual against the exact
        // budget, top up / trim in free columns first.
        reconcile_budget(problem, &mut counts, budget, &is_free);
        Ok((counts, stats))
    }
}

/// Adjusts `counts` so they sum exactly to `budget`, preferring free
/// columns for any correction (costed columns only as a last resort, which
/// only triggers on solver round-off).
fn reconcile_budget(
    problem: &TileProblem,
    counts: &mut [u32],
    budget: u32,
    is_free: &dyn Fn(&crate::TileColumn) -> bool,
) {
    let mut total: i64 = counts.iter().map(|&m| m as i64).sum();
    let order: Vec<usize> = {
        let mut free: Vec<usize> = (0..counts.len())
            .filter(|&i| is_free(&problem.columns[i]))
            .collect();
        let costed: Vec<usize> = (0..counts.len())
            .filter(|&i| !is_free(&problem.columns[i]))
            .collect();
        free.extend(costed);
        free
    };
    for &i in &order {
        if total == budget as i64 {
            break;
        }
        let cap = problem.columns[i].capacity();
        if total < i64::from(budget) {
            let missing =
                units::saturating_count(u64::try_from(i64::from(budget) - total).unwrap_or(0));
            let add = missing.min(cap - counts[i]);
            counts[i] += add;
            total += i64::from(add);
        } else {
            let excess =
                units::saturating_count(u64::try_from(total - i64::from(budget)).unwrap_or(0));
            let sub = excess.min(counts[i]);
            counts[i] -= sub;
            total -= i64::from(sub);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::testutil::{assert_valid_assignment, synthetic_tile};
    use crate::methods::{DpExact, GreedyFill, IlpOne};
    use pilfill_prng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn hits_budget_exactly() {
        let tile = synthetic_tile(&[(1_500, 3, 2.0), (2_500, 4, 1.0)], 2);
        for budget in [0u32, 1, 5, 9] {
            let counts = IlpTwo
                .place(&tile, budget, false, &mut rng())
                .expect("place");
            assert_valid_assignment(&tile, &counts, budget);
        }
    }

    #[test]
    fn matches_dp_exact_optimum() {
        let tile = synthetic_tile(
            &[
                (1_000, 3, 1.0),
                (1_400, 4, 0.8),
                (5_000, 5, 2.0),
                (900, 2, 0.1),
            ],
            2,
        );
        for budget in [2u32, 6, 11] {
            for weighted in [false, true] {
                let ilp = IlpTwo
                    .place(&tile, budget, weighted, &mut rng())
                    .expect("ilp2");
                let dp = DpExact
                    .place(&tile, budget, weighted, &mut rng())
                    .expect("dp");
                let ci = tile.cost_of(&ilp, weighted);
                let cd = tile.cost_of(&dp, weighted);
                assert!(
                    (ci - cd).abs() <= 1e-9 * (1.0 + cd.abs()),
                    "budget {budget} weighted {weighted}: ilp2 {ci} vs dp {cd}"
                );
            }
        }
    }

    #[test]
    fn never_worse_than_greedy_or_ilp1_on_exact_model() {
        let tile = synthetic_tile(&[(6_000, 8, 1.0), (1_400, 3, 1.15), (2_000, 4, 0.5)], 1);
        for budget in [3u32, 7, 12] {
            let two = IlpTwo.place(&tile, budget, false, &mut rng()).expect("2");
            let one = IlpOne.place(&tile, budget, false, &mut rng()).expect("1");
            let gr = GreedyFill
                .place(&tile, budget, false, &mut rng())
                .expect("g");
            let c2 = tile.cost_of(&two, false);
            assert!(
                c2 <= tile.cost_of(&one, false) + 1e-25,
                "budget {budget} vs ilp1"
            );
            assert!(
                c2 <= tile.cost_of(&gr, false) + 1e-25,
                "budget {budget} vs greedy"
            );
        }
    }

    #[test]
    fn free_columns_absorb_first() {
        let tile = synthetic_tile(&[(2_000, 5, 1.0)], 4);
        let counts = IlpTwo.place(&tile, 4, false, &mut rng()).expect("place");
        assert_eq!(counts, vec![0, 4]);
    }
}
