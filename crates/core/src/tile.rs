//! Per-tile MDFC problem construction under the three slack-column
//! definitions of paper Section 5.1.
//!
//! - [`SlackColumnDef::One`]: only columns between two active lines *within
//!   the tile* are usable. Remaining slack space is wasted, so a tile's
//!   capacity may fall short of its fill budget (the paper's stated
//!   weakness of this definition).
//! - [`SlackColumnDef::Two`]: columns bounded by the tile boundary are also
//!   usable, but the optimizer sees them as cost-free even when a real
//!   active line sits just outside the tile — the mis-attribution the
//!   paper criticizes.
//! - [`SlackColumnDef::Three`]: columns come from the *global* scan, so a
//!   column inside the tile keeps its association with active lines in
//!   adjacent tiles. This is the most accurate definition and the default.

use crate::layout::DEF_THREE_SHARD_COLUMNS as DEF_THREE_SHARD;
use crate::{ActiveLine, SlackColumn, Slots};
use pilfill_density::FixedDissection;
use pilfill_exec::WorkerPool;
use pilfill_geom::{units, CellIndex, Coord, Grid, Rect};
use pilfill_layout::{FillRules, NetId, Tech};
use pilfill_rc::{CapTable, CouplingModel};

/// Which slack-column definition to build tile problems under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlackColumnDef {
    /// Line-to-line columns within the tile only (Figure 4).
    One,
    /// Additionally line-to-tile-boundary and boundary-to-boundary columns
    /// (Figure 5).
    Two,
    /// Global columns intersected with the tile, keeping cross-tile line
    /// associations (Figure 6). The default.
    Three,
}

impl std::fmt::Display for SlackColumnDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SlackColumnDef::One => "SlackColumn-I",
            SlackColumnDef::Two => "SlackColumn-II",
            SlackColumnDef::Three => "SlackColumn-III",
        })
    }
}

/// One decision column of a tile's MDFC instance.
#[derive(Debug, Clone, PartialEq)]
pub struct TileColumn {
    /// x of a feature placed in this column.
    pub feature_x: Coord,
    /// Feasible slot bottoms inside this tile (ascending).
    pub slots: Slots,
    /// Line-to-line distance `d` of the capacitance model; `None` when the
    /// column is not (known to be) between two active lines, making its
    /// modeled cost zero.
    pub distance: Option<Coord>,
    /// Weighted delay coefficient: `sum W_l * R_l(x)` over adjacent lines.
    pub alpha_weighted: f64,
    /// Unweighted delay coefficient: `sum R_l(x)` over adjacent lines.
    pub alpha_unweighted: f64,
    /// Exact incremental capacitance per count (ILP-II's lookup table);
    /// `None` for zero-cost columns.
    pub table: Option<CapTable>,
    /// Linearized (Eq. 6) incremental capacitance per feature; zero for
    /// zero-cost columns. Used by ILP-I only.
    pub linear_cap_per_feature: f64,
    /// Nets of the adjacent lines (0-2 entries; deduplicated when both
    /// sides belong to the same net).
    pub adjacent_nets: Vec<NetId>,
}

impl TileColumn {
    /// Capacity of the column inside this tile.
    pub fn capacity(&self) -> u32 {
        pilfill_geom::units::saturating_count(self.slots.len() as u64)
    }

    /// Delay coefficient for the requested objective.
    pub fn alpha(&self, weighted: bool) -> f64 {
        if weighted {
            self.alpha_weighted
        } else {
            self.alpha_unweighted
        }
    }

    /// Exact modeled delay cost of placing `m` features here.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds the capacity.
    pub fn cost_exact(&self, m: u32, weighted: bool) -> f64 {
        assert!(
            m <= self.capacity(),
            "m={m} over capacity {}",
            self.capacity()
        );
        match &self.table {
            Some(t) => self.alpha(weighted) * t.delta_cap(m),
            None => 0.0,
        }
    }
}

/// The MDFC instance of one tile.
#[derive(Debug, Clone, PartialEq)]
pub struct TileProblem {
    /// Tile index in the dissection grid.
    pub cell: CellIndex,
    /// Tile rectangle.
    pub rect: Rect,
    /// Decision columns.
    pub columns: Vec<TileColumn>,
}

impl TileProblem {
    /// Total fill capacity of the tile under its definition.
    pub fn capacity(&self) -> u64 {
        self.columns.iter().map(|c| c.capacity() as u64).sum()
    }

    /// Exact modeled cost of an assignment (one count per column).
    ///
    /// # Panics
    ///
    /// Panics if `counts` has the wrong length or exceeds a capacity.
    pub fn cost_of(&self, counts: &[u32], weighted: bool) -> f64 {
        assert_eq!(counts.len(), self.columns.len(), "counts length mismatch");
        self.columns
            .iter()
            .zip(counts)
            .map(|(c, &m)| c.cost_exact(m, weighted))
            .sum()
    }
}

fn make_tile_column(
    lines: &[ActiveLine],
    col: &SlackColumn,
    slots: Slots,
    rules: FillRules,
    model: &CouplingModel,
) -> TileColumn {
    let feature_x = col.feature_x(rules);
    let center_x = feature_x + rules.feature_size / 2;
    let mut alpha_w = 0.0;
    let mut alpha_u = 0.0;
    let mut adjacent_nets: Vec<NetId> = Vec::with_capacity(2);
    for idx in [col.below, col.above].into_iter().flatten() {
        // u32 -> usize is widening on every supported target.
        let line = &lines[idx as usize]; // pilfill: allow(as-cast)
        let r = line.res_at(center_x);
        alpha_u += r;
        alpha_w += line.weight as f64 * r;
        if let Some(net) = line.net {
            if !adjacent_nets.contains(&net) {
                adjacent_nets.push(net);
            }
        }
    }
    let distance = col.distance();
    let capacity = pilfill_geom::units::saturating_count(slots.len() as u64);
    let (table, linear) = match distance {
        Some(d) => (
            Some(CapTable::build(model, d, rules.feature_size, capacity)),
            model.delta_cap_linear(1, d, rules.feature_size),
        ),
        None => (None, 0.0),
    };
    TileColumn {
        feature_x,
        slots,
        distance,
        alpha_weighted: alpha_w,
        alpha_unweighted: alpha_u,
        table,
        linear_cap_per_feature: linear,
        adjacent_nets,
    }
}

/// Splits a global column's slot progression at tile-row boundaries,
/// calling `f` once per non-empty `(cell, sub-progression)` in ascending
/// row order — the arithmetic equivalent of classifying every slot through
/// `grid.cell_at` (slots outside the grid bounds are skipped, rows past the
/// last boundary clamp to the top row).
fn for_each_row_chunk(
    col: &SlackColumn,
    fx: Coord,
    grid: &Grid,
    mut f: impl FnMut(CellIndex, Slots),
) {
    let bounds = grid.bounds();
    if fx < bounds.left || fx >= bounds.right {
        return;
    }
    let ix = units::index((fx - bounds.left) / grid.pitch_x()).min(grid.nx() - 1);
    let mut start = col.slots.count_below(bounds.bottom);
    let stop = col.slots.count_below(bounds.top);
    while start < stop {
        let Some(y) = col.slots.get(start) else {
            return;
        };
        let iy = units::index((y - bounds.bottom) / grid.pitch_y()).min(grid.ny() - 1);
        let end = if iy + 1 >= grid.ny() {
            stop
        } else {
            let row_top = bounds.bottom + grid.pitch_y() * units::coord(iy + 1);
            col.slots.count_below(row_top).min(stop)
        };
        f((ix, iy), col.slots.slice(start, end - start));
        start = end;
    }
}

/// Definition III worker: expands one contiguous chunk of global columns
/// into `(tile index, column)` pairs, preserving column order within the
/// chunk.
fn def_three_chunk(
    lines: &[ActiveLine],
    chunk: &[SlackColumn],
    grid: &Grid,
    rules: FillRules,
    model: &CouplingModel,
) -> Vec<(usize, TileColumn)> {
    let mut out = Vec::new();
    for col in chunk {
        let fx = col.feature_x(rules);
        for_each_row_chunk(col, fx, grid, |(ix, iy), slots| {
            let tc = make_tile_column(lines, col, slots, rules, model);
            out.push((iy * grid.nx() + ix, tc));
        });
    }
    out
}

/// Per-tile definition-III fill capacities (row-major `iy * nx + ix`)
/// straight from the global scan — the slack counts the budget derivation
/// needs, with no capacitance tables built. Equals the per-tile capacity
/// sum of the definition-III [`TileProblem`]s.
pub fn def_three_capacities(
    columns: &[SlackColumn],
    dissection: &FixedDissection,
    rules: FillRules,
) -> Vec<u64> {
    let grid = dissection.tiles();
    let mut caps = vec![0u64; grid.len()];
    for col in columns {
        let fx = col.feature_x(rules);
        for_each_row_chunk(col, fx, &grid, |(ix, iy), slots| {
            caps[iy * grid.nx() + ix] += slots.len() as u64;
        });
    }
    caps
}

/// Grid column (tile x-index) a global slack column's features land in, or
/// `None` when the feature x falls outside the grid (such a column never
/// contributes a tile column).
fn grid_column_of(col: &SlackColumn, grid: &Grid, rules: FillRules) -> Option<usize> {
    let fx = col.feature_x(rules);
    let bounds = grid.bounds();
    if fx < bounds.left || fx >= bounds.right {
        return None;
    }
    Some(units::index((fx - bounds.left) / grid.pitch_x()).min(grid.nx() - 1))
}

/// Partitions the globally sorted column list into one contiguous range
/// per grid column (feature x is monotone in the site index, so the ranges
/// are contiguous). Out-of-grid columns are folded into the nearest range;
/// they contribute no tile columns either way.
pub fn slab_ranges(
    columns: &[SlackColumn],
    dissection: &FixedDissection,
    rules: FillRules,
) -> Vec<std::ops::Range<usize>> {
    let grid = dissection.tiles();
    let nx = grid.nx();
    let mut ranges: Vec<std::ops::Range<usize>> = Vec::with_capacity(nx);
    let mut start = 0usize;
    for ix in 0..nx {
        let end = columns[start..]
            .partition_point(|c| grid_column_of(c, &grid, rules).unwrap_or(ix) <= ix)
            + start;
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Builds the definition-III tile problems of one grid column — tiles
/// `(ix, 0..ny)`, indexed by row — from that column's slab of the global
/// scan (see [`slab_ranges`]). Feeding each slab through the same expansion
/// as the full build, in the same column order, makes the per-tile output
/// bit-identical to [`build_tile_problems`]; this is the unit of work of
/// the streamed pipeline and the rebuild cache.
pub fn build_slab_problems(
    lines: &[ActiveLine],
    slab: &[SlackColumn],
    dissection: &FixedDissection,
    tech: &Tech,
    rules: FillRules,
    ix: usize,
) -> Vec<TileProblem> {
    let model = CouplingModel::new(tech);
    let grid = dissection.tiles();
    let nx = grid.nx();
    let mut problems: Vec<TileProblem> = (0..grid.ny())
        .map(|iy| TileProblem {
            cell: (ix, iy),
            rect: grid.cell_rect((ix, iy)),
            columns: Vec::new(),
        })
        .collect();
    for (idx, tc) in def_three_chunk(lines, slab, &grid, rules, &model) {
        debug_assert_eq!(idx % nx, ix, "slab column escaped its grid column");
        problems[idx / nx].columns.push(tc);
    }
    problems
}

/// Definition I/II worker: scans and fills one tile in place. Each tile's
/// columns depend only on its own rect, so tiles are independent work
/// items. `scratch`/`cols` are reused sweep buffers (see
/// [`crate::ScanScratch`]); serial callers thread one pair through every
/// tile for an allocation-free rescan.
pub(crate) fn def_one_two_tile(
    lines: &[ActiveLine],
    problem: &mut TileProblem,
    rules: FillRules,
    model: &CouplingModel,
    def: SlackColumnDef,
    scratch: &mut crate::ScanScratch,
    cols: &mut Vec<SlackColumn>,
) {
    crate::scan_slack_columns_into(lines, problem.rect, rules, scratch, cols);
    for col in cols.iter() {
        if def == SlackColumnDef::One && col.distance().is_none() {
            continue;
        }
        if col.slots.is_empty() {
            continue;
        }
        let tc = make_tile_column(lines, col, col.slots, rules, model);
        problem.columns.push(tc);
    }
}

/// Builds one [`TileProblem`] per tile (row-major order) under `def`.
///
/// `global_columns` must be the result of [`crate::scan_slack_columns`]
/// over the full die with the same `lines` and `rules`.
pub fn build_tile_problems(
    lines: &[ActiveLine],
    global_columns: &[SlackColumn],
    dissection: &FixedDissection,
    tech: &Tech,
    rules: FillRules,
    def: SlackColumnDef,
) -> Vec<TileProblem> {
    build_tile_problems_parallel(lines, global_columns, dissection, tech, rules, def, 1)
}

/// Parallel variant of [`build_tile_problems`]: spins up a transient
/// [`WorkerPool`] with `threads` lanes and delegates to
/// [`build_tile_problems_pool`]. Callers building repeatedly (the flow,
/// the benches) should hold a pool and call the pool variant directly to
/// amortize worker spawn-up.
pub fn build_tile_problems_parallel(
    lines: &[ActiveLine],
    global_columns: &[SlackColumn],
    dissection: &FixedDissection,
    tech: &Tech,
    rules: FillRules,
    def: SlackColumnDef,
    threads: usize,
) -> Vec<TileProblem> {
    let pool = WorkerPool::new(threads);
    build_tile_problems_pool(lines, global_columns, dissection, tech, rules, def, &pool)
}

/// Pool-backed tile-problem build: work items are claimed dynamically from
/// `pool`'s lanes, and results land in pre-partitioned slots merged in
/// index order, so the output is identical to the sequential build for
/// every lane count.
///
/// Definition III shards the global column list into fixed-size chunks
/// (each expanding to `(tile, column)` pairs, concatenated in shard
/// order); definitions I and II treat each tile as one work item filling
/// its own `TileProblem` slot in place.
pub fn build_tile_problems_pool(
    lines: &[ActiveLine],
    global_columns: &[SlackColumn],
    dissection: &FixedDissection,
    tech: &Tech,
    rules: FillRules,
    def: SlackColumnDef,
    pool: &WorkerPool,
) -> Vec<TileProblem> {
    let model = CouplingModel::new(tech);
    let grid = dissection.tiles();
    let mut problems: Vec<TileProblem> = grid
        .indices()
        .map(|cell| TileProblem {
            cell,
            rect: grid.cell_rect(cell),
            columns: Vec::new(),
        })
        .collect();

    match def {
        SlackColumnDef::Three => {
            // Distribute each global column's slots to the tiles containing
            // them; the column keeps its true line associations.
            let shards: Vec<&[SlackColumn]> = global_columns.chunks(DEF_THREE_SHARD).collect();
            let parts = pool.map(shards.len(), |si| {
                def_three_chunk(lines, shards[si], &grid, rules, &model)
            });
            for part in parts {
                for (idx, tc) in part {
                    problems[idx].columns.push(tc);
                }
            }
        }
        SlackColumnDef::One | SlackColumnDef::Two => {
            // Per-tile scan: lines are clipped to the tile, so columns
            // bounded by geometry outside the tile lose their association
            // (definition II) or are dropped entirely (definition I).
            pool.for_each_slot(&mut problems, |_, problem| {
                let mut scratch = crate::ScanScratch::default();
                let mut cols = Vec::new();
                def_one_two_tile(lines, problem, rules, &model, def, &mut scratch, &mut cols);
            });
        }
    }

    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extract_active_lines, scan_slack_columns};
    use pilfill_geom::{Dir, Point};
    use pilfill_layout::{Design, DesignBuilder, LayerId};

    /// Two long parallel lines crossing the whole die with an empty band
    /// between them; the band crosses all tiles in x.
    fn two_line_design() -> Design {
        DesignBuilder::new("d", Rect::new(0, 0, 32_000, 32_000))
            .layer("m3", Dir::Horizontal)
            .net("a", Point::new(300, 10_000))
            .segment(
                "m3",
                Point::new(300, 10_000),
                Point::new(31_700, 10_000),
                280,
            )
            .sink(Point::new(31_700, 10_000))
            .net("b", Point::new(300, 13_000))
            .segment(
                "m3",
                Point::new(300, 13_000),
                Point::new(31_700, 13_000),
                280,
            )
            .sink(Point::new(31_700, 13_000))
            .build()
            .expect("valid")
    }

    fn setup(def: SlackColumnDef) -> (Design, Vec<TileProblem>) {
        let d = two_line_design();
        let dis = FixedDissection::new(d.die, 16_000, 2).expect("dissection");
        let lines = extract_active_lines(&d, LayerId(0)).expect("lines");
        let cols = scan_slack_columns(&lines, d.die, d.rules);
        let problems = build_tile_problems(&lines, &cols, &dis, &d.tech, d.rules, def);
        (d, problems)
    }

    #[test]
    fn def_three_capacity_equals_global_slots() {
        let d = two_line_design();
        let lines = extract_active_lines(&d, LayerId(0)).expect("lines");
        let cols = scan_slack_columns(&lines, d.die, d.rules);
        let global: u64 = cols.iter().map(|c| c.capacity() as u64).sum();
        let (_, problems) = setup(SlackColumnDef::Three);
        let tiles: u64 = problems.iter().map(TileProblem::capacity).sum();
        assert_eq!(tiles, global);
    }

    #[test]
    fn def_one_only_keeps_line_line_columns() {
        let (_, problems) = setup(SlackColumnDef::One);
        for p in &problems {
            for c in &p.columns {
                assert!(c.distance.is_some());
                assert!(c.table.is_some());
            }
        }
        // The lines run at y = 10k and 13k (tile rows 1); tile rows 2 and
        // 3 (y >= 16k) contain no line pair, so definition I gives them
        // zero capacity.
        let top_rows: u64 = problems
            .iter()
            .filter(|p| p.cell.1 >= 2)
            .map(TileProblem::capacity)
            .sum();
        assert_eq!(top_rows, 0);
    }

    #[test]
    fn def_ordering_capacity() {
        // Capacity: def I <= def II <= def III (III sees everything,
        // II wastes sub-pitch strips at tile edges, I only line pairs).
        let (_, one) = setup(SlackColumnDef::One);
        let (_, two) = setup(SlackColumnDef::Two);
        let (_, three) = setup(SlackColumnDef::Three);
        let cap = |ps: &[TileProblem]| ps.iter().map(TileProblem::capacity).sum::<u64>();
        assert!(cap(&one) <= cap(&two), "{} > {}", cap(&one), cap(&two));
        // II vs III can go either way per tile, but for this layout III
        // dominates because II loses edge strips.
        assert!(
            cap(&two) <= cap(&three) + 64,
            "{} vs {}",
            cap(&two),
            cap(&three)
        );
    }

    #[test]
    fn def_two_misattributes_cross_tile_gap() {
        // The gap between the two lines (y 10_140 .. 12_860) lies entirely
        // inside the bottom tile row, so II sees it. But the space *above*
        // line b within the bottom tiles (12.86k..16k) is bounded above by
        // the tile edge: II treats it as free while III knows the next
        // geometry is the die boundary too... use the band between line b
        // and the tile top: II gives it zero cost (above = tile edge).
        let (_, two) = setup(SlackColumnDef::Two);
        let bottom_tiles: Vec<_> = two.iter().filter(|p| p.cell.1 == 0).collect();
        let free_columns = bottom_tiles
            .iter()
            .flat_map(|p| &p.columns)
            .filter(|c| c.distance.is_none())
            .count();
        assert!(free_columns > 0, "definition II should see free columns");
    }

    #[test]
    fn alpha_grows_downstream() {
        // Columns far from the driver must have a larger coefficient.
        let (_, problems) = setup(SlackColumnDef::Three);
        let mut paired: Vec<(i64, f64)> = problems
            .iter()
            .flat_map(|p| &p.columns)
            .filter(|c| c.distance.is_some())
            .map(|c| (c.feature_x, c.alpha_unweighted))
            .collect();
        paired.sort_by_key(|(x, _)| *x);
        let first = paired.first().expect("columns").1;
        let last = paired.last().expect("columns").1;
        assert!(
            last > first,
            "alpha should grow with distance from source: {first} vs {last}"
        );
    }

    #[test]
    fn cost_of_is_monotone_in_counts() {
        let (_, problems) = setup(SlackColumnDef::Three);
        let p = problems
            .iter()
            .find(|p| p.columns.iter().any(|c| c.distance.is_some()))
            .expect("a tile with paired columns");
        let zero = vec![0u32; p.columns.len()];
        let mut one = zero.clone();
        let idx = p
            .columns
            .iter()
            .position(|c| c.distance.is_some() && c.capacity() > 0 && c.alpha_unweighted > 0.0)
            .expect("paired column with capacity");
        one[idx] = 1;
        assert_eq!(p.cost_of(&zero, false), 0.0);
        assert!(p.cost_of(&one, false) > 0.0);
        assert!(p.cost_of(&one, true) >= p.cost_of(&one, false) * 0.99);
    }

    #[test]
    fn slots_lie_inside_their_tile() {
        let (d, problems) = setup(SlackColumnDef::Three);
        for p in &problems {
            for c in &p.columns {
                for s in c.slots.iter() {
                    assert!(
                        p.rect.y_span().contains(s),
                        "slot {s} outside tile {:?}",
                        p.cell
                    );
                    assert!(c.feature_x >= d.die.left);
                }
            }
        }
    }

    #[test]
    fn def_three_capacities_match_problem_capacities() {
        let d = two_line_design();
        let dis = FixedDissection::new(d.die, 16_000, 2).expect("dissection");
        let lines = extract_active_lines(&d, LayerId(0)).expect("lines");
        let cols = scan_slack_columns(&lines, d.die, d.rules);
        let problems =
            build_tile_problems(&lines, &cols, &dis, &d.tech, d.rules, SlackColumnDef::Three);
        let caps = def_three_capacities(&cols, &dis, d.rules);
        let grid = dis.tiles();
        assert_eq!(caps.len(), problems.len());
        for p in &problems {
            let (ix, iy) = p.cell;
            assert_eq!(caps[iy * grid.nx() + ix], p.capacity(), "tile {:?}", p.cell);
        }
    }

    #[test]
    fn slab_builds_concatenate_to_the_full_build() {
        let d = two_line_design();
        let dis = FixedDissection::new(d.die, 16_000, 2).expect("dissection");
        let lines = extract_active_lines(&d, LayerId(0)).expect("lines");
        let cols = scan_slack_columns(&lines, d.die, d.rules);
        let full =
            build_tile_problems(&lines, &cols, &dis, &d.tech, d.rules, SlackColumnDef::Three);
        let grid = dis.tiles();
        let ranges = slab_ranges(&cols, &dis, d.rules);
        assert_eq!(ranges.len(), grid.nx());
        assert_eq!(ranges.last().expect("nx > 0").end, cols.len());
        for (ix, range) in ranges.iter().enumerate() {
            let slab =
                build_slab_problems(&lines, &cols[range.clone()], &dis, &d.tech, d.rules, ix);
            assert_eq!(slab.len(), grid.ny());
            for (iy, p) in slab.iter().enumerate() {
                assert_eq!(p, &full[iy * grid.nx() + ix], "tile ({ix}, {iy})");
            }
        }
    }
}
