//! Method-independent delay-impact evaluation.
//!
//! Every placement — Normal, Greedy, ILP-I, ILP-II, any slack-column
//! definition — is scored by the same procedure: locate each fill feature
//! in the *global* slack columns, count features per column, compute the
//! exact incremental coupling capacitance `f(m, d)` of the column's line
//! pair, and charge the Elmore delay increment to both lines at the
//! column's position (Eqs. (9) and (13)). Methods that optimize an
//! approximation (ILP-I's linearization, definition II's mis-attribution)
//! are therefore judged by reality, which is how the paper's Table 1 can
//! show ILP-I losing to the Normal baseline.

use crate::{ActiveLine, FillFeature, SlackColumn};
use pilfill_exec::WorkerPool;
use pilfill_geom::Rect;
use pilfill_layout::{FillRules, NetId, Tech};
use pilfill_rc::CouplingModel;

/// Delay impact of a fill placement.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a delay evaluation is pure; dropping it discards the verdict"]
pub struct DelayImpact {
    /// Total unweighted delay increase over all wire segments, in seconds
    /// (the paper's Table 1 metric).
    pub total_delay: f64,
    /// Downstream-sink-weighted total (the paper's Table 2 metric).
    pub weighted_delay: f64,
    /// Total incremental coupling capacitance, in farads.
    pub total_cap: f64,
    /// Features that landed in zero-impact columns (no line pair).
    pub free_features: u64,
    /// Features that could not be located in any slack column (should be
    /// zero for placements produced by the flow).
    pub unlocated_features: u64,
    /// Per-net unweighted delay increase, indexed by net id.
    pub per_net_delay: Vec<f64>,
    /// Per-net incremental coupling capacitance, indexed by net id (the
    /// quantity the Section-7 capacitance budgets constrain).
    pub per_net_cap: Vec<f64>,
}

impl DelayImpact {
    /// The net with the largest incremental coupling capacitance, with its
    /// value in farads.
    pub fn worst_net_cap(&self) -> Option<(NetId, f64)> {
        self.per_net_cap
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &c)| (NetId(i), c))
    }

    /// The nets whose delay increased most, as `(net, delay)` sorted
    /// descending, truncated to `n`.
    pub fn worst_nets(&self, n: usize) -> Vec<(NetId, f64)> {
        let mut v: Vec<(NetId, f64)> = self
            .per_net_delay
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0.0)
            .map(|(i, &d)| (NetId(i), d))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v.truncate(n);
        v
    }
}

/// One adjacent line's share of a column's contribution: the Elmore delay
/// increment, its weighted variant, and the net it charges.
#[derive(Debug, Clone, Copy)]
struct LineHit {
    dtau: f64,
    weighted_dtau: f64,
    net: Option<NetId>,
}

impl LineHit {
    /// Filler for unused `hits` slots (never folded: `n_hits` bounds the
    /// walk).
    const ZERO: Self = Self {
        dtau: 0.0,
        weighted_dtau: 0.0,
        net: None,
    };
}

/// The pure, order-independent contribution of one occupied slack column,
/// as a flat fixed-size record: the sharded evaluator's `pool.map` writes
/// these into a dense array (one slot per occupied column) that the serial
/// fold then streams in ascending column order, pinning down the f64
/// addition sequence. A free column carries only `free`; a column whose
/// defensive clamp zeroed the count carries nothing; a line-pair column
/// sets `paired` and fills `dcap` plus `n_hits` adjacent-line delay shares
/// (below first, then above — the serial iteration order).
#[derive(Debug, Clone, Copy)]
struct Contribution {
    /// `true` for line-pair columns: `dcap` and `hits[..n_hits]` carry
    /// data.
    paired: bool,
    /// Valid prefix length of `hits` (0..=2).
    n_hits: u8,
    /// Features in a column with no line pair: zero delay, counted free.
    free: u64,
    /// Exact incremental coupling capacitance of the column's line pair.
    dcap: f64,
    hits: [LineHit; 2],
}

impl Contribution {
    /// A zero record: no free features, no line-pair data.
    const EMPTY: Self = Self {
        paired: false,
        n_hits: 0,
        free: 0,
        dcap: 0.0,
        hits: [LineHit::ZERO; 2],
    };
}

/// Computes one column's [`Contribution`] for `m` located features.
fn column_contribution(
    col: &SlackColumn,
    m: u32,
    lines: &[ActiveLine],
    model: &CouplingModel,
    rules: FillRules,
) -> Contribution {
    let mut out = Contribution::EMPTY;
    let Some(d) = col.distance() else {
        out.free = u64::from(m);
        return out;
    };
    // Defensive clamp: placements from per-tile scans may exceed the
    // global slot count by a feature or two near tile cuts; never let
    // the metal close the gap in the model.
    let max_m = pilfill_geom::units::saturating_count(
        u64::try_from((d - 1) / rules.feature_size).unwrap_or(0),
    );
    let m = m.min(max_m);
    if m == 0 {
        return out;
    }
    out.paired = true;
    out.dcap = model.delta_cap_exact(m, d, rules.feature_size);
    let x = col.feature_x(rules) + rules.feature_size / 2;
    for idx in [col.below, col.above].into_iter().flatten() {
        // u32 -> usize is widening on every supported target.
        let line = &lines[idx as usize]; // pilfill: allow(as-cast)
        let dtau = out.dcap * line.res_at(x);
        out.hits[usize::from(out.n_hits)] = LineHit {
            dtau,
            weighted_dtau: f64::from(line.weight) * dtau,
            net: line.net,
        };
        out.n_hits += 1;
    }
    out
}

/// Evaluates `features` against the global slack columns.
///
/// `num_nets` sizes the per-net vector; `bounds`/`rules` must match the
/// scan that produced `columns`.
pub fn evaluate_placement(
    features: &[FillFeature],
    columns: &[SlackColumn],
    lines: &[ActiveLine],
    bounds: Rect,
    tech: &Tech,
    rules: FillRules,
    num_nets: usize,
) -> DelayImpact {
    evaluate_impl(
        features, columns, lines, bounds, tech, rules, num_nets, None,
    )
}

/// Like [`evaluate_placement`], but shards the per-column contribution
/// work across `pool`'s lanes.
///
/// Each occupied column's contribution (capacitance, per-line delay
/// shares) is a pure function of that column alone, computed into its own
/// slot; the accumulators are then folded serially in global column order,
/// which replays the exact f64 addition sequence of the serial evaluator.
/// The result is therefore bit-identical to [`evaluate_placement`] for
/// every lane count.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_placement_pool(
    pool: &WorkerPool,
    features: &[FillFeature],
    columns: &[SlackColumn],
    lines: &[ActiveLine],
    bounds: Rect,
    tech: &Tech,
    rules: FillRules,
    num_nets: usize,
) -> DelayImpact {
    evaluate_impl(
        features,
        columns,
        lines,
        bounds,
        tech,
        rules,
        num_nets,
        Some(pool),
    )
}

#[allow(clippy::too_many_arguments)]
fn evaluate_impl(
    features: &[FillFeature],
    columns: &[SlackColumn],
    lines: &[ActiveLine],
    bounds: Rect,
    tech: &Tech,
    rules: FillRules,
    num_nets: usize,
    pool: Option<&WorkerPool>,
) -> DelayImpact {
    let model = CouplingModel::new(tech);
    let mut counts = vec![0u32; columns.len()];
    let mut unlocated = 0u64;
    for &f in features {
        match crate::scan::locate_feature(columns, bounds, rules, f) {
            Some(i) => counts[i] += 1,
            None => unlocated += 1,
        }
    }

    // The fold is serial in both modes and always runs in ascending
    // column order, so the f64 accumulation sequence is fixed by the
    // column index, never by scheduling.
    let mut total = 0.0;
    let mut weighted = 0.0;
    let mut total_cap = 0.0;
    let mut free = 0u64;
    let mut per_net = vec![0.0f64; num_nets];
    let mut per_net_cap = vec![0.0f64; num_nets];
    {
        let mut fold = |c: Contribution| {
            free += c.free;
            if !c.paired {
                return;
            }
            total_cap += c.dcap;
            for hit in &c.hits[..usize::from(c.n_hits)] {
                total += hit.dtau;
                weighted += hit.weighted_dtau;
                if let Some(net) = hit.net {
                    per_net[net.0] += hit.dtau;
                    per_net_cap[net.0] += c.dcap;
                }
            }
        };
        match pool {
            Some(pool) => {
                // Dense worklist of occupied columns, ascending; each pure
                // contribution lands in its own disjoint slot before the
                // ordered fold replays the serial addition sequence.
                let occupied: Vec<usize> = counts
                    .iter()
                    .enumerate()
                    .filter(|(_, &m)| m > 0)
                    .map(|(i, _)| i)
                    .collect();
                let contributions = pool.map(occupied.len(), |k| {
                    let ci = occupied[k];
                    column_contribution(&columns[ci], counts[ci], lines, &model, rules)
                });
                contributions.into_iter().for_each(&mut fold);
            }
            // Serial: stream each contribution straight into the fold, no
            // worklist or slot vector.
            None => counts
                .iter()
                .enumerate()
                .filter(|(_, &m)| m > 0)
                .for_each(|(ci, &m)| {
                    fold(column_contribution(&columns[ci], m, lines, &model, rules))
                }),
        }
    }

    DelayImpact {
        total_delay: total,
        weighted_delay: weighted,
        total_cap,
        free_features: free,
        unlocated_features: unlocated,
        per_net_delay: per_net,
        per_net_cap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extract_active_lines, scan_slack_columns};
    use pilfill_geom::{Dir, Point};
    use pilfill_layout::{Design, DesignBuilder, LayerId};

    fn design() -> Design {
        DesignBuilder::new("d", Rect::new(0, 0, 9_000, 9_000))
            .layer("m3", Dir::Horizontal)
            .net("a", Point::new(300, 3_000))
            .segment("m3", Point::new(300, 3_000), Point::new(8_700, 3_000), 280)
            .sink(Point::new(8_700, 3_000))
            .net("b", Point::new(300, 5_000))
            .segment("m3", Point::new(300, 5_000), Point::new(8_700, 5_000), 280)
            .sink(Point::new(8_700, 5_000))
            .build()
            .expect("valid")
    }

    struct Setup {
        design: Design,
        lines: Vec<crate::ActiveLine>,
        columns: Vec<crate::SlackColumn>,
    }

    fn setup() -> Setup {
        let design = design();
        let lines = extract_active_lines(&design, LayerId(0)).expect("lines");
        let columns = scan_slack_columns(&lines, design.die, design.rules);
        Setup {
            design,
            lines,
            columns,
        }
    }

    fn eval(s: &Setup, features: &[FillFeature]) -> DelayImpact {
        evaluate_placement(
            features,
            &s.columns,
            &s.lines,
            s.design.die,
            &s.design.tech,
            s.design.rules,
            s.design.nets.len(),
        )
    }

    /// A feature in the middle of the gap between the two lines.
    fn feature_between(s: &Setup) -> FillFeature {
        let col = s
            .columns
            .iter()
            .find(|c| c.distance().is_some() && !c.slots.is_empty() && c.x >= 2_000)
            .expect("paired column");
        FillFeature {
            x: col.feature_x(s.design.rules),
            y: col.slots.get(col.slots.len() / 2).expect("slot"),
        }
    }

    #[test]
    fn empty_placement_has_zero_impact() {
        let s = setup();
        let impact = eval(&s, &[]);
        assert_eq!(impact.total_delay, 0.0);
        assert_eq!(impact.weighted_delay, 0.0);
        assert_eq!(impact.total_cap, 0.0);
        assert_eq!(impact.free_features, 0);
    }

    #[test]
    fn feature_between_lines_charges_both_nets() {
        let s = setup();
        let impact = eval(&s, &[feature_between(&s)]);
        assert!(impact.total_delay > 0.0);
        assert!(impact.total_cap > 0.0);
        assert!(impact.per_net_delay[0] > 0.0);
        assert!(impact.per_net_delay[1] > 0.0);
        assert_eq!(impact.free_features, 0);
        assert_eq!(impact.unlocated_features, 0);
        // Single-sink nets: weighted equals unweighted.
        assert!((impact.weighted_delay - impact.total_delay).abs() < 1e-30);
    }

    #[test]
    fn feature_far_from_lines_is_free() {
        let s = setup();
        // Top boundary gap: above = None.
        let col = s
            .columns
            .iter()
            .find(|c| c.above.is_none() && !c.slots.is_empty())
            .expect("boundary column");
        let f = FillFeature {
            x: col.feature_x(s.design.rules),
            y: col.slots.last().expect("slots"),
        };
        let impact = eval(&s, &[f]);
        assert_eq!(impact.total_delay, 0.0);
        assert_eq!(impact.free_features, 1);
    }

    #[test]
    fn more_features_in_gap_cost_superlinearly() {
        let s = setup();
        let col_idx = s
            .columns
            .iter()
            .position(|c| c.distance().is_some() && c.slots.len() >= 3 && c.x >= 2_000)
            .expect("column with 3 slots");
        let col = &s.columns[col_idx];
        let make = |k: usize| -> Vec<FillFeature> {
            col.slots
                .iter()
                .take(k)
                .map(|y| FillFeature {
                    x: col.feature_x(s.design.rules),
                    y,
                })
                .collect()
        };
        let d1 = eval(&s, &make(1)).total_delay;
        let d2 = eval(&s, &make(2)).total_delay;
        let d3 = eval(&s, &make(3)).total_delay;
        assert!(d2 > 2.0 * d1, "convexity: {d2} vs 2*{d1}");
        assert!(d3 - d2 > d2 - d1, "marginals increase");
    }

    #[test]
    fn delay_larger_far_from_driver() {
        let s = setup();
        let paired: Vec<&crate::SlackColumn> = s
            .columns
            .iter()
            .filter(|c| c.distance().is_some() && !c.slots.is_empty())
            .collect();
        let near = paired.first().expect("paired");
        let far = paired.last().expect("paired");
        assert!(far.x > near.x);
        let f = |c: &crate::SlackColumn| FillFeature {
            x: c.feature_x(s.design.rules),
            y: c.slots.first().expect("slot"),
        };
        let d_near = eval(&s, &[f(near)]).total_delay;
        let d_far = eval(&s, &[f(far)]).total_delay;
        assert!(
            d_far > d_near,
            "fill downstream must hurt more: {d_far} vs {d_near}"
        );
    }

    #[test]
    fn unlocated_features_are_counted() {
        let s = setup();
        // A position inside a line.
        let f = FillFeature { x: 1_000, y: 2_950 };
        let impact = eval(&s, &[f]);
        assert_eq!(impact.unlocated_features, 1);
    }

    #[test]
    fn sharded_evaluation_is_bit_identical_for_every_shard_count() {
        use pilfill_layout::synth::{synthesize, SynthConfig};
        // A dense placement on a seeded synthetic design: one feature in
        // every slot of every column, so every contribution variant
        // (paired, boundary-free) is exercised.
        let d = synthesize(&SynthConfig::small_test(7));
        let lines = extract_active_lines(&d, LayerId(0)).expect("lines");
        let columns = scan_slack_columns(&lines, d.die, d.rules);
        let features: Vec<FillFeature> = columns
            .iter()
            .flat_map(|c| {
                c.slots.iter().map(|y| FillFeature {
                    x: c.feature_x(d.rules),
                    y,
                })
            })
            .collect();
        assert!(features.len() > 100, "dense placement expected");
        let serial = evaluate_placement(
            &features,
            &columns,
            &lines,
            d.die,
            &d.tech,
            d.rules,
            d.nets.len(),
        );
        for shards in 1..=8 {
            let pool = WorkerPool::new(shards);
            let sharded = evaluate_placement_pool(
                &pool,
                &features,
                &columns,
                &lines,
                d.die,
                &d.tech,
                d.rules,
                d.nets.len(),
            );
            // Bit-identical, including every f64 accumulator: the fold
            // order is the column order regardless of shard count.
            assert_eq!(serial, sharded, "{shards} shards");
        }
    }

    #[test]
    fn worst_nets_sorted_descending() {
        let s = setup();
        let impact = eval(&s, &[feature_between(&s)]);
        let worst = impact.worst_nets(5);
        assert_eq!(worst.len(), 2);
        assert!(worst[0].1 >= worst[1].1);
    }
}
