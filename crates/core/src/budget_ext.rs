//! Per-net capacitance budgets — the paper's Section-7 "ongoing research"
//! direction, implemented as an extension.
//!
//! Timing-driven P&R flows maintain budgeted slacks per net; translated to
//! capacitance budgets, they let fill synthesis guarantee that no single
//! net absorbs more than its share of coupling increase, without having to
//! reason about full timing paths. The extension has two parts:
//!
//! - [`CapBudgets`]: a per-net capacitance allowance, derived here from a
//!   uniform fraction of each net's existing coupling exposure (a stand-in
//!   for the slack budgets a timing engine would provide);
//! - [`BudgetedIlpTwo`]: ILP-II with one extra linear constraint per net
//!   limiting the summed incremental capacitance of columns adjacent to
//!   that net's lines (the binary encoding makes the constraint linear).
//!
//! Because budgets can make a tile infeasible (the density target needs
//! more fill than the budgets allow near lines), the method falls back to
//! plain ILP-II for that tile and records nothing — the caller can detect
//! violations through [`crate::evaluate::DelayImpact::per_net_delay`].

use crate::methods::{check_budget, FillMethod, IlpTwo, MethodError};
use crate::{ActiveLine, SlackColumn, TileProblem};
use pilfill_geom::units;
use pilfill_layout::NetId;
use pilfill_prng::rngs::StdRng;
use pilfill_rc::CouplingModel;
use pilfill_solver::{Model, Objective, Sense};
use std::collections::HashMap;

/// Per-net incremental-capacitance allowances, in farads.
#[derive(Debug, Clone, PartialEq)]
pub struct CapBudgets {
    budgets: Vec<f64>,
}

impl CapBudgets {
    /// Uniform budgets: every net may absorb at most `cap` farads of
    /// fill-induced coupling.
    pub fn uniform(num_nets: usize, cap: f64) -> Self {
        Self {
            budgets: vec![cap; num_nets],
        }
    }

    /// Budgets from an explicit per-net vector (`f64::INFINITY` leaves a
    /// net unconstrained).
    pub fn from_global(budgets: Vec<f64>) -> Self {
        Self { budgets }
    }

    /// Budgets derived from timing slack under a required arrival time —
    /// the Section-7 translation of "budgeted slacks" into capacitance
    /// budgets (see [`pilfill_rc::slack`]). Nets already violating timing
    /// get a zero budget; sink-less nets are unconstrained.
    ///
    /// # Errors
    ///
    /// Propagates topology errors from the timing engine.
    pub fn from_slack(
        design: &pilfill_layout::Design,
        required: f64,
    ) -> Result<Self, pilfill_layout::LayoutError> {
        let budgets = pilfill_rc::cap_budgets_from_slack(
            design,
            pilfill_rc::default_wire_cap_per_m(),
            required,
        )?;
        Ok(Self { budgets })
    }

    /// Budgets proportional to each net's existing coupling exposure: the
    /// summed `C_B`-per-meter of every global column adjacent to the net,
    /// scaled by `fraction`. Nets with no exposure get a zero budget.
    pub fn proportional(
        lines: &[ActiveLine],
        columns: &[SlackColumn],
        model: &CouplingModel,
        num_nets: usize,
        fraction: f64,
    ) -> Self {
        let mut exposure = vec![0.0f64; num_nets];
        for col in columns {
            let Some(d) = col.distance() else { continue };
            let cb = model.cb_per_m(d);
            for idx in [col.below, col.above].into_iter().flatten() {
                // u32 -> usize is widening on every supported target.
                // pilfill: allow(as-cast)
                let line = &lines[idx as usize];
                if let Some(net) = line.net {
                    exposure[net.0] += cb * 1e-6; // per um of column
                }
            }
        }
        Self {
            budgets: exposure.iter().map(|e| e * fraction).collect(),
        }
    }

    /// The budget of one net.
    pub fn budget(&self, net: NetId) -> f64 {
        self.budgets[net.0]
    }

    /// Number of nets covered.
    pub fn len(&self) -> usize {
        self.budgets.len()
    }

    /// `true` if no nets are covered.
    pub fn is_empty(&self) -> bool {
        self.budgets.is_empty()
    }

    /// Converts global per-net budgets into per-tile ones by dividing each
    /// net's allowance by the number of tiles whose columns touch it, so
    /// the summed per-tile additions respect the global budget.
    #[must_use]
    pub fn split_over_tiles(&self, problems: &[TileProblem]) -> CapBudgets {
        let mut tile_count = vec![0u32; self.budgets.len()];
        for p in problems {
            let mut seen: Vec<NetId> = Vec::new();
            for c in &p.columns {
                for &n in &c.adjacent_nets {
                    if !seen.contains(&n) {
                        seen.push(n);
                    }
                }
            }
            for n in seen {
                tile_count[n.0] += 1;
            }
        }
        CapBudgets {
            budgets: self
                .budgets
                .iter()
                .zip(&tile_count)
                .map(|(&b, &t)| {
                    if b.is_finite() {
                        b / t.max(1) as f64
                    } else {
                        b
                    }
                })
                .collect(),
        }
    }

    /// A copy with every budget multiplied by `factor`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> CapBudgets {
        CapBudgets {
            budgets: self.budgets.iter().map(|b| b * factor).collect(),
        }
    }
}

/// ILP-II with per-net capacitance-budget constraints for one tile.
///
/// `budgets` are *per-tile* allowances. For a global per-net budget,
/// divide by the number of tiles the net's lines touch (see
/// [`CapBudgets::split_over_tiles`]). When a tile is infeasible under its
/// budgets, they are relaxed geometrically (x4 per retry) before falling
/// back to plain ILP-II — density targets always win.
#[derive(Debug, Clone)]
pub struct BudgetedIlpTwo {
    /// Per-net, per-tile allowances.
    pub budgets: CapBudgets,
}

impl FillMethod for BudgetedIlpTwo {
    fn name(&self) -> &'static str {
        "ILP-II+budgets"
    }

    fn place(
        &self,
        problem: &TileProblem,
        budget: u32,
        weighted: bool,
        rng: &mut StdRng,
    ) -> Result<Vec<u32>, MethodError> {
        check_budget(problem, budget)?;
        if budget == 0 {
            return Ok(vec![0; problem.columns.len()]);
        }

        let is_free = |c: &crate::TileColumn| c.table.is_none();
        let free_cap: u64 = problem
            .columns
            .iter()
            .filter(|c| is_free(c))
            .map(|c| c.capacity() as u64)
            .sum();
        let max_cost = problem
            .columns
            .iter()
            .filter(|c| c.capacity() > 0 && !is_free(c))
            .map(|c| c.cost_exact(c.capacity(), weighted))
            .fold(0.0f64, f64::max);
        let scale = if max_cost > 0.0 { max_cost } else { 1.0 };
        // Capacitances in the budget rows are scaled to ~1 as well.
        let cap_scale = problem
            .columns
            .iter()
            .filter_map(|c| c.table.as_ref().map(|t| t.delta_cap(t.capacity())))
            .fold(0.0f64, f64::max)
            .max(1e-30);

        // Budget rows can make a tile infeasible or the search slow; relax
        // the budgets geometrically before giving up. Density targets
        // always win over budgets.
        for relax in [1.0, 4.0, 16.0] {
            let mut model = Model::new(Objective::Minimize);
            let mut vars: Vec<Option<Vec<pilfill_solver::VarId>>> =
                Vec::with_capacity(problem.columns.len());
            let mut budget_terms = Vec::new();
            let mut net_terms: HashMap<NetId, Vec<(pilfill_solver::VarId, f64)>> = HashMap::new();
            for col in problem.columns.iter() {
                if is_free(col) {
                    vars.push(None);
                    continue;
                }
                // The `is_free` guard above filtered the table-less columns.
                let table = col.table.as_ref().expect("costed column has a table"); // pilfill: allow(unwrap)
                let col_vars: Vec<_> = (0..=col.capacity())
                    .map(|n| model.add_binary_var(col.alpha(weighted) * table.delta_cap(n) / scale))
                    .collect();
                model.add_constraint(col_vars.iter().map(|&v| (v, 1.0)), Sense::Eq, 1.0);
                budget_terms.extend(col_vars.iter().enumerate().map(|(n, &v)| (v, n as f64)));
                for &net in &col.adjacent_nets {
                    let terms = net_terms.entry(net).or_default();
                    terms.extend(col_vars.iter().enumerate().map(|(n, &v)| {
                        (
                            v,
                            table.delta_cap(units::saturating_count(n as u64)) / cap_scale,
                        )
                    }));
                }
                vars.push(Some(col_vars));
            }
            let free_var = model.add_var(0.0, free_cap as f64, 0.0);
            budget_terms.push((free_var, 1.0));
            model.add_constraint(budget_terms, Sense::Eq, budget as f64);
            for (net, terms) in net_terms {
                // Skip constraints that cannot bind: a huge right-hand side
                // would only degrade the solver's Big-M conditioning.
                let max_lhs: f64 = terms.iter().map(|&(_, c)| c.max(0.0)).sum();
                let rhs = relax * self.budgets.budget(net) / cap_scale;
                if rhs < max_lhs {
                    model.add_constraint(terms, Sense::Le, rhs);
                }
            }

            let options = pilfill_solver::MilpOptions {
                node_limit: 300,
                ..Default::default()
            };
            let sol = match model.solve_with(&options) {
                Ok(s) => s,
                Err(
                    pilfill_solver::SolveError::Infeasible
                    | pilfill_solver::SolveError::NodeLimit
                    | pilfill_solver::SolveError::IterationLimit,
                ) => continue,
                Err(e) => return Err(e.into()),
            };
            let mut counts: Vec<u32> = vars
                .iter()
                .map(|col_vars| match col_vars {
                    Some(cv) => cv
                        .iter()
                        .enumerate()
                        .find(|(_, &v)| sol.value(v) > 0.5)
                        .map(|(n, _)| units::saturating_count(n as u64))
                        .unwrap_or(0),
                    None => 0,
                })
                .collect();
            let mut free_left = sol.value(free_var).round().max(0.0) as u64;
            for (i, col) in problem.columns.iter().enumerate() {
                if free_left == 0 {
                    break;
                }
                if is_free(col) {
                    let take = units::saturating_count(u64::from(col.capacity()).min(free_left));
                    counts[i] = take;
                    free_left -= take as u64;
                }
            }
            return Ok(counts);
        }
        IlpTwo.place(problem, budget, weighted, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::testutil::synthetic_tile;
    use pilfill_prng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    /// Paired columns get nets 0 and 1 from the testutil builder; the free
    /// column has none.
    fn tile_with_nets() -> TileProblem {
        synthetic_tile(&[(2_000, 4, 1.0), (2_500, 4, 1.2)], 3)
    }

    #[test]
    fn generous_budgets_match_plain_ilp2() {
        let tile = tile_with_nets();
        let method = BudgetedIlpTwo {
            budgets: CapBudgets::uniform(2, 1.0), // effectively unlimited
        };
        let plain = IlpTwo.place(&tile, 6, false, &mut rng()).expect("ilp2");
        let budgeted = method.place(&tile, 6, false, &mut rng()).expect("budgeted");
        assert_eq!(tile.cost_of(&plain, false), tile.cost_of(&budgeted, false));
    }

    #[test]
    fn tight_budget_shifts_fill_off_the_protected_net() {
        let tile = tile_with_nets();
        // Allow net 0 almost nothing; force 8 features (free holds 3).
        let one_feature_cap = tile.columns[0].table.as_ref().expect("table").delta_cap(1);
        let method = BudgetedIlpTwo {
            budgets: CapBudgets {
                budgets: vec![one_feature_cap * 0.5, 1.0],
            },
        };
        let counts = method.place(&tile, 8, false, &mut rng()).expect("budgeted");
        // Column 0 (net 0) must stay empty; 4 on net 1, 3 free, and the
        // remaining feature... cannot exist: capacity check. Budget 8 =
        // 4 + 3 + 1 over net 0 -> infeasible -> fallback to plain ILP-II.
        // Use budget 7 so the constraint is satisfiable.
        let counts7 = method.place(&tile, 7, false, &mut rng()).expect("budgeted");
        assert_eq!(counts7[0], 0, "protected net must receive no fill");
        assert_eq!(counts7.iter().sum::<u32>(), 7);
        // Budget 8 falls back (still places everything).
        assert_eq!(counts.iter().sum::<u32>(), 8);
    }

    #[test]
    fn slack_budgets_shrink_with_tighter_timing() {
        use pilfill_layout::synth::{synthesize, SynthConfig};
        let d = synthesize(&SynthConfig::small_test(13));
        let loose = CapBudgets::from_slack(&d, 1e-9).expect("loose");
        let tight = CapBudgets::from_slack(&d, 1e-13).expect("tight");
        assert_eq!(loose.len(), d.nets.len());
        for i in 0..loose.len() {
            let n = NetId(i);
            assert!(tight.budget(n) <= loose.budget(n));
            assert!(loose.budget(n) >= 0.0);
        }
    }

    #[test]
    fn proportional_budgets_track_exposure() {
        use crate::{extract_active_lines, scan_slack_columns};
        use pilfill_geom::{Dir, Point, Rect};
        use pilfill_layout::{DesignBuilder, LayerId};
        let d = DesignBuilder::new("d", Rect::new(0, 0, 9_000, 9_000))
            .layer("m3", Dir::Horizontal)
            .net("a", Point::new(300, 3_000))
            .segment("m3", Point::new(300, 3_000), Point::new(8_700, 3_000), 280)
            .sink(Point::new(8_700, 3_000))
            .net("b", Point::new(300, 5_000))
            .segment("m3", Point::new(300, 5_000), Point::new(8_700, 5_000), 280)
            .sink(Point::new(8_700, 5_000))
            .net("far", Point::new(300, 8_500))
            .segment("m3", Point::new(300, 8_500), Point::new(2_000, 8_500), 280)
            .sink(Point::new(2_000, 8_500))
            .build()
            .expect("valid");
        let lines = extract_active_lines(&d, LayerId(0)).expect("lines");
        let columns = scan_slack_columns(&lines, d.die, d.rules);
        let model = CouplingModel::new(&d.tech);
        let budgets = CapBudgets::proportional(&lines, &columns, &model, d.nets.len(), 0.1);
        assert_eq!(budgets.len(), 3);
        // The coupled pair has exposure; every budget is finite and
        // non-negative.
        assert!(budgets.budget(NetId(0)) > 0.0);
        assert!(budgets.budget(NetId(1)) > 0.0);
        assert!(budgets.budget(NetId(2)) >= 0.0);
    }
}
