//! Fill DRC verification: checks a fill placement against the design
//! rules the way a signoff deck would — die containment, buffer distance
//! to wires and obstructions, fill-to-fill spacing, and overlaps.
//!
//! The flow's own placements satisfy these by construction (the scan-line
//! enforces them); the verifier exists for *imported* fill (e.g. read back
//! from GDSII with `pilfill_stream::GdsLibrary::fill_features`) and as
//! an independent check in tests and the `pilfill verify` CLI command.

use crate::FillFeature;
use pilfill_geom::{Coord, Rect};
use pilfill_layout::{Design, LayerId};
use std::collections::HashMap;

/// One design-rule violation found by [`check_fill`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrcViolation {
    /// A feature extends beyond the die.
    OffDie {
        /// The offending feature.
        feature: FillFeature,
    },
    /// A feature is within the buffer distance of a wire.
    BufferToWire {
        /// The offending feature.
        feature: FillFeature,
        /// The wire rectangle it crowds.
        wire: Rect,
    },
    /// A feature is within the buffer distance of an obstruction.
    BufferToObstruction {
        /// The offending feature.
        feature: FillFeature,
        /// The obstruction rectangle it crowds.
        obstruction: Rect,
    },
    /// Two features are closer than the fill-to-fill gap (overlapping
    /// features also report as this).
    FillSpacing {
        /// First feature.
        a: FillFeature,
        /// Second feature.
        b: FillFeature,
    },
}

impl std::fmt::Display for DrcViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DrcViolation::OffDie { feature } => {
                write!(f, "fill at ({}, {}) off die", feature.x, feature.y)
            }
            DrcViolation::BufferToWire { feature, wire } => write!(
                f,
                "fill at ({}, {}) within buffer of wire {wire}",
                feature.x, feature.y
            ),
            DrcViolation::BufferToObstruction {
                feature,
                obstruction,
            } => write!(
                f,
                "fill at ({}, {}) within buffer of obstruction {obstruction}",
                feature.x, feature.y
            ),
            DrcViolation::FillSpacing { a, b } => write!(
                f,
                "fill at ({}, {}) and ({}, {}) closer than the fill gap",
                a.x, a.y, b.x, b.y
            ),
        }
    }
}

/// Result of a fill DRC run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "a DRC run is pure; dropping the report discards the verdict"]
pub struct DrcReport {
    /// Features checked.
    pub checked: usize,
    /// All violations found (empty = clean).
    pub violations: Vec<DrcViolation>,
}

impl DrcReport {
    /// `true` when no rule is violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks `features` (placed on `layer`) against `design`'s rules.
///
/// Spacing uses a bucket grid, so the check is linear in the feature count
/// for well-formed placements.
pub fn check_fill(design: &Design, layer: LayerId, features: &[FillFeature]) -> DrcReport {
    let rules = design.rules;
    let size = rules.feature_size;
    let mut violations = Vec::new();

    // Die containment + keepouts.
    let wires: Vec<Rect> = design
        .segments_on_layer(layer)
        .map(|(_, _, s)| s.rect().grown(rules.buffer))
        .collect();
    let obstructions: Vec<Rect> = design
        .obstructions_on_layer(layer)
        .map(|o| o.rect.grown(rules.buffer))
        .collect();
    for &f in features {
        let rect = f.rect(size);
        if !design.die.contains_rect(&rect) {
            violations.push(DrcViolation::OffDie { feature: f });
        }
        for w in &wires {
            if rect.overlaps(w) {
                violations.push(DrcViolation::BufferToWire {
                    feature: f,
                    wire: w.shrunk(rules.buffer),
                });
            }
        }
        for o in &obstructions {
            if rect.overlaps(o) {
                violations.push(DrcViolation::BufferToObstruction {
                    feature: f,
                    obstruction: o.shrunk(rules.buffer),
                });
            }
        }
    }

    // Fill-to-fill spacing via bucket grid (bucket side = pitch).
    let pitch = rules.site_pitch().max(1);
    let mut buckets: HashMap<(Coord, Coord), Vec<usize>> = HashMap::new();
    for (i, f) in features.iter().enumerate() {
        buckets
            .entry((f.x.div_euclid(pitch), f.y.div_euclid(pitch)))
            .or_default()
            .push(i);
    }
    for (i, f) in features.iter().enumerate() {
        let rect = f.rect(size).grown(rules.gap);
        let (bx, by) = (f.x.div_euclid(pitch), f.y.div_euclid(pitch));
        for dx in -1..=1 {
            for dy in -1..=1 {
                let Some(others) = buckets.get(&(bx + dx, by + dy)) else {
                    continue;
                };
                for &j in others {
                    if j <= i {
                        continue;
                    }
                    if rect.overlaps(&features[j].rect(size)) {
                        violations.push(DrcViolation::FillSpacing {
                            a: *f,
                            b: features[j],
                        });
                    }
                }
            }
        }
    }

    DrcReport {
        checked: features.len(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilfill_geom::{Dir, Point};
    use pilfill_layout::DesignBuilder;

    fn design() -> Design {
        DesignBuilder::new("d", Rect::new(0, 0, 10_000, 10_000))
            .layer("m3", Dir::Horizontal)
            .obstruction("m3", Rect::new(6_000, 6_000, 8_000, 8_000))
            .net("a", Point::new(300, 3_000))
            .segment("m3", Point::new(300, 3_000), Point::new(9_000, 3_000), 280)
            .sink(Point::new(9_000, 3_000))
            .build()
            .expect("valid")
    }

    #[test]
    fn clean_placement_passes() {
        let d = design();
        let features = vec![
            FillFeature { x: 1_000, y: 5_000 },
            FillFeature { x: 1_450, y: 5_000 },
            FillFeature { x: 1_000, y: 5_450 },
        ];
        let report = check_fill(&d, LayerId(0), &features);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.checked, 3);
    }

    #[test]
    fn off_die_detected() {
        let d = design();
        let report = check_fill(&d, LayerId(0), &[FillFeature { x: 9_900, y: 0 }]);
        assert!(matches!(
            report.violations.as_slice(),
            [DrcViolation::OffDie { .. }]
        ));
    }

    #[test]
    fn wire_buffer_violation_detected() {
        let d = design();
        // Wire band is y [2860, 3140); buffer 150 -> keepout to 3290.
        let report = check_fill(&d, LayerId(0), &[FillFeature { x: 1_000, y: 3_200 }]);
        assert!(matches!(
            report.violations.as_slice(),
            [DrcViolation::BufferToWire { .. }]
        ));
    }

    #[test]
    fn obstruction_buffer_violation_detected() {
        let d = design();
        let report = check_fill(&d, LayerId(0), &[FillFeature { x: 5_800, y: 6_500 }]);
        assert!(matches!(
            report.violations.as_slice(),
            [DrcViolation::BufferToObstruction { .. }]
        ));
    }

    #[test]
    fn spacing_violation_detected_once_per_pair() {
        let d = design();
        let a = FillFeature { x: 1_000, y: 5_000 };
        let b = FillFeature { x: 1_100, y: 5_000 }; // 100 < gap 150 apart... overlapping actually
        let report = check_fill(&d, LayerId(0), &[a, b]);
        assert_eq!(
            report
                .violations
                .iter()
                .filter(|v| matches!(v, DrcViolation::FillSpacing { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn flow_output_is_always_clean() {
        use crate::flow::{run_flow, FlowConfig};
        use crate::methods::GreedyFill;
        use pilfill_layout::synth::{synthesize, SynthConfig};
        let d = synthesize(&SynthConfig::small_test(17));
        let cfg = FlowConfig::new(8_000, 2).expect("config");
        let outcome = run_flow(&d, &cfg, &GreedyFill).expect("flow");
        let report = check_fill(&d, cfg.layer, &outcome.features);
        assert!(
            report.is_clean(),
            "{:?}",
            &report.violations[..3.min(report.violations.len())]
        );
    }
}
