//! Randomized tests for the PIL-Fill core: scan-line invariants over
//! random line sets, and method contracts over random tile problems.
//! Driven by the in-repo seeded PRNG so every run explores the same
//! cases.

use pilfill_core::methods::{DpExact, FillMethod, GreedyFill, IlpOne, IlpTwo, NormalFill};
use pilfill_core::{scan_slack_columns, ActiveLine, FillFeature, SlackColumn};
use pilfill_geom::{Coord, Interval, Rect};
use pilfill_layout::{FillRules, NetId, SegmentId, SignalDir};
use pilfill_prng::rngs::StdRng;
use pilfill_prng::{Rng, SeedableRng};

fn rules() -> FillRules {
    FillRules {
        feature_size: 300,
        gap: 150,
        buffer: 150,
    }
}

fn bounds() -> Rect {
    Rect::new(0, 0, 9_000, 9_000)
}

/// Random horizontal, non-overlapping lines inside the bounds.
fn rand_lines(rng: &mut StdRng) -> Vec<ActiveLine> {
    let n = rng.gen_range(0usize..14);
    let mut lines: Vec<ActiveLine> = Vec::new();
    for _ in 0..n {
        let xs = rng.gen_range(0i64..18);
        let track = rng.gen_range(0i64..28);
        let len = rng.gen_range(1i64..18);
        let res = rng.gen_range(0.0f64..20.0);
        let y = 300 + track * 300;
        let rect = Rect::new(xs * 450, y, (xs + len).min(20) * 450, y + 280);
        if rect.is_empty() || rect.right > 9_000 || rect.top > 9_000 {
            continue;
        }
        // Skip overlapping lines (same-layer wires never overlap).
        if lines.iter().any(|l| l.rect.overlaps(&rect)) {
            continue;
        }
        lines.push(ActiveLine {
            net: Some(NetId(lines.len())),
            segment: SegmentId(0),
            rect,
            weight: 1 + (lines.len() as u32 % 3),
            res_per_dbu: 2.5e-4,
            upstream_res: res,
            entry_x: rect.left,
            signal: SignalDir::Increasing,
        });
    }
    lines
}

#[test]
fn scan_slots_never_touch_lines_or_each_other() {
    let mut rng = StdRng::seed_from_u64(0xC0_0001);
    for _ in 0..64 {
        let lines = rand_lines(&mut rng);
        let r = rules();
        let cols = scan_slack_columns(&lines, bounds(), r);
        let mut feature_rects: Vec<Rect> = Vec::new();
        for c in &cols {
            for slot in c.slots.iter() {
                let f = FillFeature {
                    x: c.feature_x(r),
                    y: slot,
                };
                let rect = f.rect(r.feature_size);
                assert!(bounds().contains_rect(&rect));
                for l in &lines {
                    assert!(
                        !rect.overlaps(&l.rect.grown(r.buffer)),
                        "slot {rect} violates buffer to line {}",
                        l.rect
                    );
                }
                feature_rects.push(rect);
            }
        }
        for (i, a) in feature_rects.iter().enumerate() {
            for b in &feature_rects[i + 1..] {
                assert!(!a.overlaps(b), "slots overlap: {a} vs {b}");
            }
        }
    }
}

#[test]
fn scan_gaps_partition_each_site_column() {
    let mut rng = StdRng::seed_from_u64(0xC0_0002);
    for _ in 0..64 {
        let lines = rand_lines(&mut rng);
        let r = rules();
        let b = bounds();
        let cols = scan_slack_columns(&lines, b, r);
        let n_cols = (b.width() / r.site_pitch()) as usize;
        for site in 0..n_cols {
            let gaps: Vec<&SlackColumn> = cols.iter().filter(|c| c.site_x == site).collect();
            // Gaps are disjoint and sorted.
            for pair in gaps.windows(2) {
                assert!(pair[0].gap.hi <= pair[1].gap.lo);
            }
            // Total gap length = column height minus covered length
            // (covered by buffer-expanded lines overlapping this column).
            let x_span = Interval::new(
                b.left + site as Coord * r.site_pitch(),
                b.left + (site as Coord + 1) * r.site_pitch(),
            );
            let mut covered = pilfill_geom::IntervalSet::new();
            for l in &lines {
                let expanded = Rect::new(
                    l.rect.left - r.buffer,
                    l.rect.bottom,
                    l.rect.right + r.buffer,
                    l.rect.top,
                );
                if expanded.x_span().overlaps(x_span) {
                    covered.insert(expanded.y_span());
                }
            }
            let gap_total: Coord = gaps.iter().map(|g| g.gap.len()).sum();
            assert_eq!(
                gap_total,
                b.height() - covered.covered_len_within(b.y_span()),
                "site {}",
                site
            );
        }
    }
}

/// The arena-backed counting-sort sweep must agree with a brute-force
/// per-site occupancy model: per site column, subtract every x-expanded
/// line's y span from the area, then enumerate slots of each maximal free
/// interval with the naive stepping loop.
#[test]
fn scratch_sweep_matches_brute_force_per_site_occupancy() {
    let mut rng = StdRng::seed_from_u64(0xC0_0005);
    let r = rules();
    let b = bounds();
    for _ in 0..64 {
        let lines = rand_lines(&mut rng);
        let cols = scan_slack_columns(&lines, b, r);
        let n_cols = (b.width() / r.site_pitch()) as usize;
        for site in 0..n_cols {
            let x_span = Interval::new(
                b.left + site as Coord * r.site_pitch(),
                b.left + (site as Coord + 1) * r.site_pitch(),
            );
            // Occupied y spans: lines expanded by the buffer in x only
            // (the vertical buffer is enforced per slot).
            let mut covered = pilfill_geom::IntervalSet::new();
            for l in &lines {
                let expanded = Rect::new(
                    l.rect.left - r.buffer,
                    l.rect.bottom,
                    l.rect.right + r.buffer,
                    l.rect.top,
                );
                if expanded.x_span().overlaps(x_span) {
                    covered.insert(expanded.y_span());
                }
            }
            let mut want_slots: Vec<Coord> = Vec::new();
            let mut want_gaps: Vec<Interval> = Vec::new();
            for free in covered.gaps_within(b.y_span()) {
                if free.is_empty() {
                    continue;
                }
                want_gaps.push(free);
                let lo = free.lo + if free.lo > b.bottom { r.buffer } else { 0 };
                let hi = free.hi - if free.hi < b.top { r.buffer } else { 0 };
                let mut y = lo;
                while y + r.feature_size <= hi {
                    want_slots.push(y);
                    y += r.site_pitch();
                }
            }
            let got: Vec<&SlackColumn> = cols.iter().filter(|c| c.site_x == site).collect();
            let got_gaps: Vec<Interval> = got.iter().map(|c| c.gap).collect();
            let got_slots: Vec<Coord> = got.iter().flat_map(|c| c.slots.iter()).collect();
            assert_eq!(got_gaps, want_gaps, "site {site}");
            assert_eq!(got_slots, want_slots, "site {site}");
            // Line-bounded sides must reference real lines.
            for c in &got {
                if let Some(below) = c.below {
                    assert_eq!(lines[below as usize].rect.top, c.gap.lo, "site {site}");
                }
                if let Some(above) = c.above {
                    assert_eq!(lines[above as usize].rect.bottom, c.gap.hi, "site {site}");
                }
            }
        }
    }
}

#[test]
fn methods_hit_budget_and_respect_capacities() {
    use pilfill_core::{build_tile_problems, SlackColumnDef};
    use pilfill_density::FixedDissection;
    use pilfill_layout::Tech;

    let mut rng = StdRng::seed_from_u64(0xC0_0003);
    for _ in 0..32 {
        let lines = rand_lines(&mut rng);
        let budget_frac = rng.gen_range(0.0f64..1.0);
        let weighted = rng.gen::<bool>();
        let r = rules();
        let cols = scan_slack_columns(&lines, bounds(), r);
        let dissection = FixedDissection::new(bounds(), 4_500, 2).expect("dissection");
        let problems = build_tile_problems(
            &lines,
            &cols,
            &dissection,
            &Tech::default_180nm(),
            r,
            SlackColumnDef::Three,
        );
        let methods: Vec<&dyn FillMethod> =
            vec![&NormalFill, &GreedyFill, &IlpOne, &IlpTwo, &DpExact];
        for p in problems.iter().take(4) {
            let cap = p.capacity();
            let budget = (cap as f64 * budget_frac).floor() as u32;
            for m in &methods {
                let mut mrng = StdRng::seed_from_u64(7);
                let counts = m
                    .place(p, budget, weighted, &mut mrng)
                    .unwrap_or_else(|e| panic!("{} failed: {e}", m.name()));
                assert_eq!(counts.len(), p.columns.len());
                assert_eq!(
                    counts.iter().map(|&c| c as u64).sum::<u64>(),
                    budget as u64,
                    "{} must hit the budget",
                    m.name()
                );
                for (c, &got) in p.columns.iter().zip(&counts) {
                    assert!(got <= c.capacity());
                }
            }
        }
    }
}

#[test]
fn optimizers_never_beat_dp_on_model_cost() {
    use pilfill_core::{build_tile_problems, SlackColumnDef};
    use pilfill_density::FixedDissection;
    use pilfill_layout::Tech;

    let mut rng = StdRng::seed_from_u64(0xC0_0004);
    for _ in 0..32 {
        let lines = rand_lines(&mut rng);
        let budget_frac = rng.gen_range(0.1f64..0.9);
        let r = rules();
        let cols = scan_slack_columns(&lines, bounds(), r);
        let dissection = FixedDissection::new(bounds(), 4_500, 2).expect("dissection");
        let problems = build_tile_problems(
            &lines,
            &cols,
            &dissection,
            &Tech::default_180nm(),
            r,
            SlackColumnDef::Three,
        );
        for p in problems.iter().take(2) {
            let budget = (p.capacity() as f64 * budget_frac).floor() as u32;
            let mut mrng = StdRng::seed_from_u64(3);
            let dp = DpExact.place(p, budget, false, &mut mrng).expect("dp");
            let dp_cost = p.cost_of(&dp, false);
            for m in [
                &IlpTwo as &dyn FillMethod,
                &GreedyFill,
                &IlpOne,
                &NormalFill,
            ] {
                let counts = m.place(p, budget, false, &mut mrng).expect("place");
                let cost = p.cost_of(&counts, false);
                assert!(
                    cost >= dp_cost - 1e-9 * (1.0 + dp_cost.abs()),
                    "{} ({cost}) beat the exact optimum ({dp_cost})",
                    m.name()
                );
            }
            // ILP-II must also *match* the optimum.
            let ilp2 = IlpTwo.place(p, budget, false, &mut mrng).expect("ilp2");
            let c2 = p.cost_of(&ilp2, false);
            assert!(
                (c2 - dp_cost).abs() <= 1e-6 * (1.0 + dp_cost.abs()),
                "ilp2 {c2} vs dp {dp_cost}"
            );
        }
    }
}

#[test]
fn solver_backends_agree_on_extracted_tiles_under_all_defs() {
    use pilfill_core::{build_tile_problems, SlackColumnDef};
    use pilfill_density::FixedDissection;
    use pilfill_layout::Tech;
    use pilfill_solver::{Model, Objective, Sense, SolverBackend};

    // One-hot ILP-II model (paper Eq. 15-23 shape) straight from the tile
    // tables, built identically for both backends.
    fn one_hot_model(p: &pilfill_core::TileProblem, budget: u32, backend: SolverBackend) -> Model {
        let mut m = Model::with_backend(Objective::Minimize, backend);
        let mut budget_terms = Vec::new();
        for col in &p.columns {
            let vars: Vec<_> = (0..=col.capacity().min(budget))
                .map(|n| m.add_binary_var(col.cost_exact(n, false)))
                .collect();
            m.add_constraint(vars.iter().map(|&v| (v, 1.0)), Sense::Eq, 1.0);
            budget_terms.extend(vars.iter().enumerate().map(|(n, &v)| (v, n as f64)));
        }
        m.add_constraint(budget_terms, Sense::Eq, f64::from(budget));
        m
    }

    let mut rng = StdRng::seed_from_u64(0xC0_0005);
    let mut compared = 0usize;
    for _ in 0..12 {
        let lines = rand_lines(&mut rng);
        let budget_frac = rng.gen_range(0.2f64..0.8);
        let r = rules();
        let cols = scan_slack_columns(&lines, bounds(), r);
        let dissection = FixedDissection::new(bounds(), 4_500, 2).expect("dissection");
        for def in [
            SlackColumnDef::One,
            SlackColumnDef::Two,
            SlackColumnDef::Three,
        ] {
            let problems =
                build_tile_problems(&lines, &cols, &dissection, &Tech::default_180nm(), r, def);
            for p in problems.iter().filter(|p| p.capacity() > 0).take(2) {
                let budget = (p.capacity() as f64 * budget_frac).floor() as u32;
                if budget == 0 {
                    continue;
                }
                let sparse = one_hot_model(p, budget, SolverBackend::Sparse)
                    .solve()
                    .expect("sparse solvable");
                let dense = one_hot_model(p, budget, SolverBackend::DenseReference)
                    .solve()
                    .expect("dense solvable");
                assert!(
                    (sparse.objective - dense.objective).abs()
                        <= 1e-6 * (1.0 + dense.objective.abs()),
                    "{def}: sparse {} vs dense {}",
                    sparse.objective,
                    dense.objective
                );
                // The production path (IlpTwo on the sparse default) must
                // land on the same optimum as the one-hot model.
                let mut mrng = StdRng::seed_from_u64(11);
                let counts = IlpTwo.place(p, budget, false, &mut mrng).expect("ilp2");
                let cost = p.cost_of(&counts, false);
                assert!(
                    (cost - dense.objective).abs() <= 1e-6 * (1.0 + dense.objective.abs()),
                    "{def}: ilp2 cost {cost} vs one-hot optimum {}",
                    dense.objective
                );
                compared += 1;
            }
        }
    }
    assert!(compared >= 16, "too few non-trivial tiles: {compared}");
}
