//! Randomized bit-identity tests for the span-sweep scanline against the
//! retained interval-walk reference: same `SlackColumn` output on random
//! line sets, on random stitched site ranges, and through the tile
//! problems of all three slack-column definitions. Driven by the in-repo
//! seeded PRNG so every run explores the same cases.

use pilfill_core::{
    build_tile_problems, scan_site_columns, scan_site_columns_reference, scan_slack_columns,
    scan_slack_columns_reference, site_column_count, ActiveLine, ScanScratch, SlackColumn,
    SlackColumnDef,
};
use pilfill_density::FixedDissection;
use pilfill_geom::Rect;
use pilfill_layout::{FillRules, NetId, SegmentId, SignalDir, Tech};
use pilfill_prng::rngs::StdRng;
use pilfill_prng::{Rng, SeedableRng};

fn rules() -> FillRules {
    FillRules {
        feature_size: 300,
        gap: 150,
        buffer: 150,
    }
}

fn bounds() -> Rect {
    Rect::new(0, 0, 9_000, 9_000)
}

/// Random horizontal, non-overlapping lines inside the bounds; includes
/// equal-bottom clusters (stable-sort tie-break coverage) and tall lines
/// spanning many site columns.
fn rand_lines(rng: &mut StdRng) -> Vec<ActiveLine> {
    let n = rng.gen_range(0usize..24);
    let mut lines: Vec<ActiveLine> = Vec::new();
    for _ in 0..n {
        let xs = rng.gen_range(0i64..18);
        // Bias tracks toward a few values so several lines share a bottom
        // edge and the sweep's tie order is exercised.
        let track = if rng.gen::<bool>() {
            rng.gen_range(0i64..28)
        } else {
            rng.gen_range(0i64..4) * 7
        };
        let len = rng.gen_range(1i64..18);
        let height = if rng.gen_range(0u32..8) == 0 {
            1_200
        } else {
            280
        };
        let y = 300 + track * 300;
        let rect = Rect::new(xs * 450, y, (xs + len).min(20) * 450, y + height);
        if rect.is_empty() || rect.right > 9_000 || rect.top > 9_000 {
            continue;
        }
        if lines.iter().any(|l| l.rect.overlaps(&rect)) {
            continue;
        }
        lines.push(ActiveLine {
            net: Some(NetId(lines.len())),
            segment: SegmentId(0),
            rect,
            weight: 1 + (lines.len() as u32 % 3),
            res_per_dbu: 2.5e-4,
            upstream_res: rng.gen_range(0.0f64..20.0),
            entry_x: rect.left,
            signal: SignalDir::Increasing,
        });
    }
    lines
}

/// Full-die scans must agree column-for-column (site, x, gap, neighbor
/// indices, slots — `SlackColumn` is `PartialEq` over all fields).
#[test]
fn span_sweep_matches_reference_on_random_line_sets() {
    let mut rng = StdRng::seed_from_u64(0x50A_0001);
    for _ in 0..64 {
        let lines = rand_lines(&mut rng);
        let fast = scan_slack_columns(&lines, bounds(), rules());
        let reference = scan_slack_columns_reference(&lines, bounds(), rules());
        assert_eq!(fast, reference, "lines = {}", lines.len());
    }
}

/// Scanning random site sub-ranges and stitching them back together must
/// reproduce both the reference on the same ranges and the full-die scan:
/// the sharded tile builders rely on partial scans being exact.
#[test]
fn stitched_partial_scans_match_reference_and_full_scan() {
    let mut rng = StdRng::seed_from_u64(0x50A_0002);
    let r = rules();
    let b = bounds();
    let n_cols = site_column_count(b, r);
    let mut scratch = ScanScratch::default();
    let mut ref_scratch = ScanScratch::default();
    for _ in 0..64 {
        let lines = rand_lines(&mut rng);
        let full = scan_slack_columns(&lines, b, r);
        // Cut the site range at 1..4 random interior points.
        let mut cuts: Vec<usize> = (0..rng.gen_range(1usize..5))
            .map(|_| rng.gen_range(0..=n_cols))
            .collect();
        cuts.push(0);
        cuts.push(n_cols);
        cuts.sort_unstable();
        let mut stitched: Vec<SlackColumn> = Vec::new();
        for w in cuts.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let mut fast = Vec::new();
            let mut reference = Vec::new();
            scan_site_columns(&lines, b, r, lo..hi, &mut scratch, &mut fast);
            scan_site_columns_reference(&lines, b, r, lo..hi, &mut ref_scratch, &mut reference);
            assert_eq!(fast, reference, "range {lo}..{hi}");
            stitched.extend_from_slice(&fast);
        }
        assert_eq!(stitched, full, "stitching the cuts loses columns");
    }
}

/// The scan feeds the tile builders; the problems built from the span
/// sweep's columns must equal those built from the reference's columns
/// under every slack-column definition.
#[test]
fn tile_problems_agree_under_all_three_definitions() {
    let mut rng = StdRng::seed_from_u64(0x50A_0003);
    let r = rules();
    let b = bounds();
    let tech = Tech::default_180nm();
    let dissection = FixedDissection::new(b, 4_500, 2).expect("valid dissection");
    for _ in 0..16 {
        let lines = rand_lines(&mut rng);
        let fast = scan_slack_columns(&lines, b, r);
        let reference = scan_slack_columns_reference(&lines, b, r);
        assert_eq!(fast, reference);
        for def in [
            SlackColumnDef::One,
            SlackColumnDef::Two,
            SlackColumnDef::Three,
        ] {
            let p_fast = build_tile_problems(&lines, &fast, &dissection, &tech, r, def);
            let p_ref = build_tile_problems(&lines, &reference, &dissection, &tech, r, def);
            assert_eq!(p_fast.len(), p_ref.len(), "{def:?}");
            for (a, b) in p_fast.iter().zip(&p_ref) {
                assert_eq!(a.columns, b.columns, "{def:?}");
            }
        }
    }
}

/// Degenerate inputs: empty line set, a single line, and a line filling
/// almost the whole die.
#[test]
fn span_sweep_matches_reference_on_degenerate_inputs() {
    let r = rules();
    let b = bounds();
    let mk = |rect: Rect| ActiveLine {
        net: Some(NetId(0)),
        segment: SegmentId(0),
        rect,
        weight: 1,
        res_per_dbu: 2.5e-4,
        upstream_res: 1.0,
        entry_x: rect.left,
        signal: SignalDir::Increasing,
    };
    let cases: Vec<Vec<ActiveLine>> = vec![
        vec![],
        vec![mk(Rect::new(450, 300, 900, 580))],
        vec![mk(Rect::new(0, 150, 9_000, 8_850))],
        vec![mk(Rect::new(0, 0, 450, 9_000))],
    ];
    for lines in cases {
        let fast = scan_slack_columns(&lines, b, r);
        let reference = scan_slack_columns_reference(&lines, b, r);
        assert_eq!(fast, reference);
    }
}
