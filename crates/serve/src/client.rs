//! Blocking client for the fill service: connect, frame requests,
//! decode replies, and retry `Busy` backpressure.

use crate::net::Stream;
use crate::protocol::{
    decode_reply, encode_request, read_frame, write_frame, DesignRef, FillParams, Reply, Request,
};
use std::time::Duration;

/// A connected client. One request is in flight at a time (the protocol
/// is strictly request/reply per connection).
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connects to a server by spec (`unix:PATH`, a socket path, or TCP
    /// `host:port`).
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(spec: &str) -> std::io::Result<Client> {
        Ok(Client {
            stream: Stream::connect(spec)?,
        })
    }

    /// Like [`Client::connect`], but retries for up to `timeout` while
    /// the server is still binding — the usual way tests and scripts
    /// wait for a just-spawned daemon.
    ///
    /// # Errors
    ///
    /// The last connect failure once `timeout` elapses.
    pub fn connect_retry(spec: &str, timeout: Duration) -> std::io::Result<Client> {
        let start = std::time::Instant::now();
        loop {
            match Client::connect(spec) {
                Ok(client) => return Ok(client),
                Err(e) if start.elapsed() >= timeout => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Sends one request and blocks for its reply.
    ///
    /// # Errors
    ///
    /// I/O failures, a server-side disconnect (`UnexpectedEof`), or a
    /// malformed reply frame (`InvalidData`).
    pub fn request(&mut self, req: &Request) -> std::io::Result<Reply> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )
        })?;
        decode_reply(&payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Sends a fill request.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn fill(&mut self, design: DesignRef, params: FillParams) -> std::io::Result<Reply> {
        self.request(&Request::Fill { design, params })
    }

    /// Sends a fill request, retrying `Busy` replies with a short sleep
    /// until `timeout` elapses (each retry is a fresh request; the
    /// server holds no state for rejected submissions).
    ///
    /// # Errors
    ///
    /// See [`Client::request`]. A final `Busy` is returned as-is when
    /// the timeout elapses.
    pub fn fill_retry(
        &mut self,
        design: &DesignRef,
        params: &FillParams,
        timeout: Duration,
    ) -> std::io::Result<Reply> {
        let start = std::time::Instant::now();
        loop {
            let reply = self.fill(design.clone(), params.clone())?;
            match reply {
                Reply::Busy { .. } if start.elapsed() < timeout => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                reply => return Ok(reply),
            }
        }
    }

    /// Asks the server to shut down; `Ok(true)` on an acknowledged
    /// shutdown.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shutdown(&mut self) -> std::io::Result<bool> {
        Ok(matches!(
            self.request(&Request::Shutdown)?,
            Reply::ShutdownOk
        ))
    }
}
