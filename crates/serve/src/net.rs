//! Transport abstraction: one connected stream / listener type over TCP
//! and unix-domain sockets.
//!
//! A listen/connect *spec* selects the transport: `unix:PATH` (or any
//! spec containing a `/`) is a unix socket path; anything else is a TCP
//! `host:port` address.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::Duration;

/// A parsed listen/connect spec.
pub(crate) enum Spec<'a> {
    /// TCP `host:port`.
    Tcp(&'a str),
    /// Unix-domain socket path.
    Unix(&'a str),
}

/// Parses a spec: `unix:PATH` or a path containing `/` → unix socket,
/// otherwise TCP `host:port`.
pub(crate) fn parse_spec(spec: &str) -> Spec<'_> {
    if let Some(path) = spec.strip_prefix("unix:") {
        Spec::Unix(path)
    } else if spec.contains('/') {
        Spec::Unix(spec)
    } else {
        Spec::Tcp(spec)
    }
}

/// One connected byte stream, TCP or unix.
#[derive(Debug)]
pub(crate) enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    /// Connects to a server by spec.
    pub(crate) fn connect(spec: &str) -> std::io::Result<Stream> {
        match parse_spec(spec) {
            Spec::Tcp(addr) => Ok(Stream::Tcp(TcpStream::connect(addr)?)),
            #[cfg(unix)]
            Spec::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
            #[cfg(not(unix))]
            Spec::Unix(_) => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix sockets are not supported on this platform",
            )),
        }
    }

    /// Clones the handle (shares the underlying socket).
    pub(crate) fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    /// Sets the read timeout (shared with clones of this socket).
    pub(crate) fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(dur),
        }
    }

    /// Peeks at incoming bytes without consuming them; `Ok(0)` means the
    /// peer closed its write side.
    pub(crate) fn peek(&self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.peek(buf),
            #[cfg(unix)]
            Stream::Unix(s) => unix_peek(s, buf),
        }
    }
}

/// `UnixStream::peek` is still unstable (`unix_socket_peek`), so peek
/// through the libc `recv` std already links, with `MSG_PEEK`. Honors
/// the socket's `SO_RCVTIMEO` like any other receive.
#[cfg(unix)]
fn unix_peek(s: &UnixStream, buf: &mut [u8]) -> std::io::Result<usize> {
    use std::os::unix::io::AsRawFd;
    extern "C" {
        fn recv(fd: i32, buf: *mut std::ffi::c_void, len: usize, flags: i32) -> isize;
    }
    /// POSIX `MSG_PEEK` (value 2 on every platform the workspace
    /// supports).
    const MSG_PEEK: i32 = 2;
    // SAFETY: `fd` is a valid open socket for the lifetime of `&self`,
    // and `buf` is a live, writable allocation of exactly `buf.len()`
    // bytes — the kernel writes at most that many.
    let n = unsafe { recv(s.as_raw_fd(), buf.as_mut_ptr().cast(), buf.len(), MSG_PEEK) };
    match usize::try_from(n) {
        Ok(n) => Ok(n),
        Err(_) => Err(std::io::Error::last_os_error()),
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A bound, non-blocking listener, TCP or unix.
#[derive(Debug)]
pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, String),
}

impl Listener {
    /// Binds by spec and switches to non-blocking accepts. A stale unix
    /// socket file left by a dead server is removed first.
    pub(crate) fn bind(spec: &str) -> std::io::Result<Listener> {
        match parse_spec(spec) {
            Spec::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Tcp(l))
            }
            #[cfg(unix)]
            Spec::Unix(path) => {
                if std::fs::metadata(path).is_ok() && Stream::connect(path).is_err() {
                    std::fs::remove_file(path)?;
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Unix(l, path.to_string()))
            }
            #[cfg(not(unix))]
            Spec::Unix(_) => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix sockets are not supported on this platform",
            )),
        }
    }

    /// The spec clients should connect to (resolves TCP port 0).
    pub(crate) fn addr(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map_or_else(|_| "?".to_string(), |a| a.to_string()),
            #[cfg(unix)]
            Listener::Unix(_, path) => format!("unix:{path}"),
        }
    }

    /// Accepts one pending connection; `WouldBlock` when none is queued.
    pub(crate) fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Unix(s))
            }
        }
    }

    /// The unix socket path to unlink on shutdown, if any.
    pub(crate) fn unix_path(&self) -> Option<&str> {
        match self {
            Listener::Tcp(_) => None,
            #[cfg(unix)]
            Listener::Unix(_, path) => Some(path),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse() {
        assert!(matches!(parse_spec("127.0.0.1:7777"), Spec::Tcp(_)));
        assert!(matches!(
            parse_spec("unix:/tmp/x.sock"),
            Spec::Unix("/tmp/x.sock")
        ));
        assert!(matches!(
            parse_spec("/tmp/x.sock"),
            Spec::Unix("/tmp/x.sock")
        ));
        assert!(matches!(parse_spec("localhost:0"), Spec::Tcp(_)));
    }
}
